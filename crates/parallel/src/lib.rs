//! # em-parallel — a small deterministic fork-join executor
//!
//! Every parallel hot path of the pipeline (overlap-index probing, feature
//! extraction, random-forest tree fitting, cross-validation folds, batch
//! prediction) fans out through [`Executor::map_indexed`]: the index space
//! `0..n` is split into contiguous chunks, one scoped thread per chunk, and
//! the per-index results are joined back **in index order**. Because every
//! work item is a pure function of its index, output is bit-identical to
//! the single-threaded run at any thread count — parallelism only changes
//! wall time, never results.
//!
//! The thread count is a process-wide knob, deliberately *outside* every
//! config struct that is serialized into checkpoints: resuming a checkpoint
//! on a machine with a different core count must not invalidate it.
//! Resolution order: [`set_threads`] override → `EM_THREADS` env var →
//! `std::thread::available_parallelism()`.
//!
//! ```
//! use em_parallel::Executor;
//!
//! let squares = Executor::new(4).map_indexed(8, 1, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide thread-count override; 0 means "not set, use the default".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Default thread count resolved once from `EM_THREADS` or the hardware.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// Parses an `EM_THREADS` value. `Err` carries the reason the value is
/// unusable; silent fallback to the hardware default is deliberately *not*
/// an option — a typo in the knob must be loud, not a mystery slowdown.
fn parse_em_threads(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "EM_THREADS={raw:?} is zero; use a positive thread count, or unset the \
             variable for the hardware default"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "EM_THREADS={raw:?} is not a positive integer; unset the variable for \
             the hardware default"
        )),
    }
}

fn default_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| match std::env::var("EM_THREADS") {
        Ok(raw) => match parse_em_threads(&raw) {
            Ok(n) => n,
            // Loud failure: an explicitly-set but invalid knob is a config
            // error, never a silent fall-back to the hardware default.
            Err(msg) => panic!("{msg}"),
        },
        Err(_) => std::thread::available_parallelism().map_or(1, usize::from),
    })
}

/// Sets the process-wide thread count. `0` clears the override, restoring
/// the `EM_THREADS`-or-hardware default. Changing the thread count never
/// changes results, only wall time.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The thread count parallel stages currently run with.
pub fn threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => default_threads(),
        n => n,
    }
}

/// A fork-join executor with a fixed worker count.
///
/// Cheap to construct per call site; [`Executor::current`] picks up the
/// process-wide setting so library code stays knob-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
    min_items: usize,
}

impl Executor {
    /// An executor with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Executor {
        Executor { threads: threads.max(1), min_items: 0 }
    }

    /// An executor with the process-wide thread count (see [`threads`]).
    pub fn current() -> Executor {
        Executor::new(threads())
    }

    /// Sets a floor on the input size worth spawning for: any map over
    /// fewer than `min_items` items runs inline on the calling thread,
    /// regardless of grain. Call sites whose per-item cost varies with the
    /// workload (e.g. tree fitting, where each item scans the whole
    /// training set) use this to express "spawn only if the total work
    /// covers thread start-up cost".
    pub fn with_min_items(self, min_items: usize) -> Executor {
        Executor { min_items, ..self }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `0..n`, returning results in index order.
    ///
    /// `grain` is the minimum number of indices worth one thread: the
    /// effective worker count is `min(threads, n / grain)`, so small inputs
    /// run inline without spawn overhead (see also
    /// [`Executor::with_min_items`]). `f` must be a pure function of its
    /// index for the bit-identical-at-any-thread-count guarantee to hold
    /// (shared read-only state is fine).
    pub fn map_indexed<R, F>(&self, n: usize, grain: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.map_indexed_with(n, grain, || (), |(), i| f(i))
    }

    /// [`Executor::map_indexed`] with a per-worker scratch state: each
    /// worker thread calls `init` exactly once and threads the resulting
    /// state through every index it owns. This is the chunked join driver
    /// the batch set-similarity join runs on — probe scratch (dense seen
    /// arrays, token-order buffers) is allocated once per worker instead of
    /// once per row, while the output stays a pure function of the index.
    ///
    /// `f` must produce a result that depends only on its index and
    /// read-only captures, never on the state's history — the state is for
    /// buffer *reuse*, not for carrying information between indices. Under
    /// that contract the output is bit-identical at any thread count, even
    /// though worker chunk boundaries move with the worker count.
    pub fn map_indexed_with<S, R, I, F>(&self, n: usize, grain: usize, init: I, f: F) -> Vec<R>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        if n < self.min_items {
            let mut state = init();
            return (0..n).map(|i| f(&mut state, i)).collect();
        }
        let workers = self.threads.min(n / grain.max(1)).max(1);
        if workers < 2 {
            let mut state = init();
            return (0..n).map(|i| f(&mut state, i)).collect();
        }
        let chunk = n.div_ceil(workers);
        let ranges: Vec<std::ops::Range<usize>> = (0..workers)
            .map(|w| (w * chunk).min(n)..((w + 1) * chunk).min(n))
            .filter(|r| !r.is_empty())
            .collect();
        let f = &f;
        let init = &init;
        let mut results: Vec<Vec<R>> = Vec::with_capacity(ranges.len());
        crossbeam::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|r| {
                    let r = r.clone();
                    scope.spawn(move |_| {
                        let mut state = init();
                        r.map(|i| f(&mut state, i)).collect::<Vec<R>>()
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("parallel worker panicked"));
            }
        })
        .expect("crossbeam scope");
        results.into_iter().flatten().collect()
    }

    /// Maps `f` over a slice, returning results in element order. Chunking
    /// semantics are those of [`Executor::map_indexed`].
    pub fn map_slice<'a, T, R, F>(&self, items: &'a [T], grain: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        self.map_indexed(items.len(), grain, |i| f(&items[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order() {
        for threads in [1, 2, 3, 8] {
            let out = Executor::new(threads).map_indexed(100, 1, |i| i * 2);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let baseline = Executor::new(1).map_indexed(1000, 1, |i| (i as f64).sqrt().to_bits());
        for threads in [2, 4, 7] {
            let out = Executor::new(threads).map_indexed(1000, 1, |i| (i as f64).sqrt().to_bits());
            assert_eq!(out, baseline, "threads={threads}");
        }
    }

    #[test]
    fn grain_keeps_small_inputs_inline() {
        // 10 items at grain 100 → one worker, no spawn; result still correct.
        let out = Executor::new(8).map_indexed(10, 100, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out: Vec<usize> = Executor::new(4).map_indexed(0, 1, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = Executor::new(64).map_indexed(3, 1, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn map_slice_borrows() {
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens = Executor::new(2).map_slice(&words, 1, |w| w.len());
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn zero_threads_clamped() {
        assert_eq!(Executor::new(0).threads(), 1);
    }

    #[test]
    fn min_items_forces_inline() {
        // Below the floor the calling thread does all the work (observable
        // via thread-locality of a Cell), above it results stay correct.
        use std::cell::Cell;
        thread_local! { static LOCAL: Cell<usize> = const { Cell::new(0) }; }
        LOCAL.with(|c| c.set(0));
        let ex = Executor::new(4).with_min_items(100);
        let out = ex.map_indexed(50, 1, |i| {
            LOCAL.with(|c| c.set(c.get() + 1));
            i
        });
        assert_eq!(out, (0..50).collect::<Vec<_>>());
        assert_eq!(LOCAL.with(Cell::get), 50, "all 50 items must run inline");
        let out = ex.map_indexed(200, 1, |i| i * 3);
        assert_eq!(out, (0..200).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn em_threads_values_parse_or_reject() {
        assert_eq!(parse_em_threads("4"), Ok(4));
        assert_eq!(parse_em_threads(" 16 "), Ok(16));
        assert!(parse_em_threads("0").is_err(), "zero must be rejected");
        assert!(parse_em_threads("two").is_err(), "non-numeric must be rejected");
        assert!(parse_em_threads("-1").is_err(), "negative must be rejected");
        assert!(parse_em_threads("").is_err(), "empty must be rejected");
    }

    #[test]
    fn override_round_trips() {
        let before = threads();
        set_threads(3);
        assert_eq!(threads(), 3);
        assert_eq!(Executor::current().threads(), 3);
        set_threads(0);
        assert_eq!(threads(), before);
    }
}
