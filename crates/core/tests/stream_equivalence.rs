//! The fused streaming executor is the materialized workflow, bit for bit:
//! same counts, same per-pair probabilities (`f64::to_bits` equality),
//! same final match list — and all of it thread-invariant, checksum
//! included.

use em_core::blocking_plan::{run_blocking, BlockingPlan};
use em_core::labeling::run_labeling;
use em_core::matcher::{build_training_data, train_matcher, MatcherStage, TrainedMatcher};
use em_core::pipeline::standard_rule_descs;
use em_core::preprocess::{project_umetrics, project_usda};
use em_core::stream::StreamMatcher;
use em_core::workflow::EmWorkflow;
use em_datagen::{Oracle, OracleConfig, Scenario, ScenarioConfig};
use em_features::auto_features;
use em_table::Table;

/// Tests that flip the global `em_parallel` thread override must not run
/// concurrently with each other.
static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Small-scenario tables plus a matcher trained with the named learner
/// (forced, not CV-selected, so both the masked tree/forest path and the
/// dense-model path get exercised deterministically).
fn fixture(learner: &str) -> (Table, Table, TrainedMatcher) {
    let scenario = Scenario::generate(ScenarioConfig::small().with_seed(5)).unwrap();
    let u = project_umetrics(&scenario.award_agg, &scenario.employees).unwrap();
    let s = project_usda(&scenario.usda, true).unwrap();
    let candidates = run_blocking(&u, &s, &BlockingPlan::default()).unwrap().consolidated;
    let oracle = Oracle::new(&scenario.truth, OracleConfig::default());
    let (labeled, _) = run_labeling(&u, &s, &candidates, &oracle, &[100, 100], 5).unwrap();
    let stage = MatcherStage::new(1).with_case_insensitive();
    let features = auto_features(&u, &s, &stage.feature_opts);
    let rules = standard_rule_descs().build();
    let (data, imputer) = build_training_data(&u, &s, &features, &labeled, &rules).unwrap();
    let matcher = train_matcher(features, imputer, &data, learner, &stage).unwrap();
    (u, s, matcher)
}

#[test]
fn fused_stream_matches_materialized_workflow_bitwise() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Random Forest exercises the masked extraction + flattened block
    // scorer; Logistic Regression exercises the dense (full-mask) path.
    for learner in ["Random Forest", "Logistic Regression"] {
        let (u, s, matcher) = fixture(learner);
        let descs = standard_rule_descs();
        let plan = BlockingPlan::default();
        let wf = EmWorkflow {
            rules: descs.build(),
            plan: BlockingPlan::default(),
            matcher: &matcher,
            apply_negative: true,
        };
        let r = wf.run(&u, &s).unwrap();
        let probs = matcher.probabilities(&u, &s, &r.candidates).unwrap();

        let sm = StreamMatcher::new(&u, &s, &matcher, &descs, &plan).unwrap();
        em_parallel::set_threads(1);
        let (o1, scored1, matches1) = sm.run_collecting();
        em_parallel::set_threads(4);
        let (o4, scored4, matches4) = sm.run_collecting();
        em_parallel::set_threads(0);

        // Thread invariance: accounting (checksum included), scores, and
        // matches identical at 1 and 4 threads.
        assert_eq!(o1, o4, "[{learner}] outcome depends on thread count");
        assert_eq!(scored1.len(), scored4.len());
        for (a, b) in scored1.iter().zip(scored4.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "[{learner}] score depends on threads");
        }
        assert_eq!(matches1, matches4);

        // The fixture must be non-trivial for the comparison to mean much.
        assert!(o1.candidates > 0, "[{learner}] no candidates streamed");
        assert!(o1.matched > 0, "[{learner}] no matches streamed");

        // Accounting equals the materialized workflow's set sizes.
        assert_eq!(o1.sure, r.sure.len(), "[{learner}] sure count");
        assert_eq!(o1.candidates, r.candidates.len(), "[{learner}] candidate count");
        assert_eq!(o1.predicted, r.predicted.len(), "[{learner}] predicted count");
        assert_eq!(o1.flipped, r.flipped.len(), "[{learner}] flipped count");
        assert_eq!(o1.matched, r.matches.len(), "[{learner}] match count");
        assert_eq!(
            o1.histogram.iter().sum::<u64>(),
            o1.candidates as u64,
            "[{learner}] histogram does not cover every scored candidate"
        );

        // Per-pair probabilities: same pairs in the same (left, right)
        // order, bit-identical scores.
        assert_eq!(scored1.len(), probs.len(), "[{learner}] scored-pair count");
        for ((sp, sv), (mp, mv)) in scored1.iter().zip(probs.iter()) {
            assert_eq!(sp, mp, "[{learner}] scored pair order");
            assert_eq!(
                sv.to_bits(),
                mv.to_bits(),
                "[{learner}] probability mismatch at {sp:?}: {sv} vs {mv}"
            );
        }

        // The final match list is the workflow's, pair for pair.
        assert_eq!(matches1, r.matches.to_vec(), "[{learner}] match list");
    }
}
