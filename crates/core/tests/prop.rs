//! Property-based tests for workflow specs and the label store.

use em_core::labelstore::{LabelRecord, LabelStore, MergePolicy};
use em_core::spec::{NegativeRuleSpec, PositiveRuleSpec, WorkflowSpec};
use em_estimate::Label;
use proptest::prelude::*;

fn attr() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z][A-Za-z0-9]{0,12}").expect("valid regex")
}

fn positive_rule() -> impl Strategy<Value = PositiveRuleSpec> {
    (any::<bool>(), attr(), attr()).prop_map(|(suffix, left, right)| {
        if suffix {
            PositiveRuleSpec::SuffixEquals { left, right }
        } else {
            PositiveRuleSpec::AttrEquals { left, right }
        }
    })
}

fn negative_rule() -> impl Strategy<Value = NegativeRuleSpec> {
    (any::<bool>(), attr(), attr()).prop_map(|(suffix, left, right)| {
        if suffix {
            NegativeRuleSpec::ComparableSuffix { left, right }
        } else {
            NegativeRuleSpec::ComparableAttrs { left, right }
        }
    })
}

fn spec() -> impl Strategy<Value = WorkflowSpec> {
    (
        proptest::string::string_regex("[a-z][a-z0-9-]{0,15}").expect("valid regex"),
        1usize..8,
        prop_oneof![Just(0.3), Just(0.5), Just(0.7), Just(0.85)],
        proptest::collection::vec(positive_rule(), 0..4),
        proptest::collection::vec(negative_rule(), 0..4),
        proptest::sample::select(vec![
            "Decision Tree",
            "Random Forest",
            "SVM",
            "Naive Bayes",
        ]),
        any::<bool>(),
        proptest::collection::vec(attr(), 0..4),
        any::<bool>(),
    )
        .prop_map(
            |(name, k, oc, positive, negative, learner, ci, exclude, neg)| WorkflowSpec {
                name,
                blocking: em_core::blocking_plan::BlockingPlan {
                    overlap_k: k,
                    oc_threshold: oc,
                },
                positive_rules: positive,
                negative_rules: negative,
                learner: learner.to_string(),
                case_insensitive: ci,
                exclude_attrs: exclude,
                apply_negative: neg,
            },
        )
}

fn label() -> impl Strategy<Value = Label> {
    prop_oneof![Just(Label::Yes), Just(Label::No), Just(Label::Unsure)]
}

fn records() -> impl Strategy<Value = Vec<LabelRecord>> {
    proptest::collection::vec(
        (0usize..8, 0usize..8, label(), 0usize..3).prop_map(|(a, c, label, who)| LabelRecord {
            award: format!("W{a}"),
            accession: format!("{}", 100 + c),
            label,
            labeler: format!("labeler-{who}"),
        }),
        0..60,
    )
}

proptest! {
    /// Any well-formed spec round-trips through the text format exactly.
    #[test]
    fn spec_round_trips(s in spec()) {
        let text = s.to_text();
        let back = WorkflowSpec::parse(&text).unwrap();
        prop_assert_eq!(s, back);
    }

    /// The built rule set mirrors the spec's rule counts.
    #[test]
    fn spec_builds_matching_rules(s in spec()) {
        let rules = s.rules();
        prop_assert_eq!(rules.positive.len(), s.positive_rules.len());
        prop_assert_eq!(rules.negative.len(), s.negative_rules.len());
    }

    /// Label-store merge invariants: one merged label per labeled pair;
    /// unanimous pairs keep their label under both policies; the conflict
    /// list contains exactly the pairs with disagreeing votes.
    #[test]
    fn labelstore_merge_laws(recs in records()) {
        let mut store = LabelStore::new();
        for r in recs.clone() {
            store.record(r);
        }
        for policy in [MergePolicy::UnanimousOrUnsure, MergePolicy::Majority] {
            let (merged, conflicts) = store.merge(policy);
            prop_assert_eq!(merged.len(), store.n_pairs());
            for c in &conflicts {
                let mut labels: Vec<Label> = c.votes.iter().map(|(_, l)| *l).collect();
                labels.dedup();
                prop_assert!(c.votes.len() >= 2);
                prop_assert!(
                    c.votes.iter().any(|(_, l)| *l != c.votes[0].1),
                    "conflict without disagreement: {c:?}"
                );
            }
            // Non-conflicting pairs keep the (unanimous) vote.
            let labelers = store.labelers();
            for ((award, acc), label) in &merged {
                let in_conflict = conflicts
                    .iter()
                    .any(|c| &c.award == award && &c.accession == acc);
                if in_conflict {
                    continue;
                }
                let votes: Vec<Label> = labelers
                    .iter()
                    .filter_map(|who| store.get(award, acc, who))
                    .collect();
                prop_assert!(!votes.is_empty());
                for v in votes {
                    prop_assert_eq!(v, *label, "unanimous pair ({}, {}) relabeled", award, acc);
                }
            }
        }
    }

    /// CSV round trip preserves the store for identifier-shaped keys.
    #[test]
    fn labelstore_table_round_trip(recs in records()) {
        let mut store = LabelStore::new();
        for r in recs {
            store.record(r);
        }
        let table = store.to_table();
        let back = LabelStore::from_table(&table).unwrap();
        prop_assert_eq!(store, back);
    }
}
