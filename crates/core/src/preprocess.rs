//! Pre-processing (Section 6): from the seven raw tables to the two aligned
//! tables that get matched.
//!
//! Steps, exactly as the paper runs them:
//!
//! 1. keep `UMETRICSAwardAggMatching`, `UMETRICSEmployeesMatching`, and
//!    `USDAAwardMatching` (the matching document's judgment);
//! 2. validate keys (`UniqueAwardNumber`, `AccessionNumber`) and the
//!    employees foreign key;
//! 3. (the other four tables were checked for shared information and
//!    dropped — see [`shares_columns_with_usda`]);
//! 4. project to matching-relevant columns, align column names, fold the
//!    employees of each award into one `|`-separated `EmployeeName` field,
//!    and prepend a `RecordId`.

use crate::error::CoreError;
use em_table::{DataType, Table, Value};

/// The `|` separator used for concatenated employee names (Section 6,
/// step 4.b).
pub const EMPLOYEE_SEP: &str = "|";

/// Checks whether any column name of `candidate` also appears (exactly) in
/// the USDA table — the paper's step-3 triage of the four leftover UMETRICS
/// tables. (Value-overlap checking then confirmed they share nothing; the
/// generator reproduces that, see the vendor DUNS ranges.)
pub fn shares_columns_with_usda(candidate: &Table, usda: &Table) -> Vec<String> {
    candidate
        .schema()
        .names()
        .into_iter()
        .filter(|n| usda.schema().contains(n))
        .map(str::to_string)
        .collect()
}

/// Builds `UMETRICSProjected(RecordId, AwardNumber, AwardTitle,
/// FirstTransDate, LastTransDate, EmployeeName)` from the award table and
/// the employees table.
pub fn project_umetrics(award_agg: &Table, employees: &Table) -> Result<Table, CoreError> {
    award_agg.check_key("UniqueAwardNumber")?;
    employees.check_foreign_key("UniqueAwardNumber", award_agg, "UniqueAwardNumber")?;

    let projected = award_agg
        .project(&["UniqueAwardNumber", "AwardTitle", "FirstTransDate", "LastTransDate"])?
        .rename_column("UniqueAwardNumber", "AwardNumber")?;

    // One employee list per award, '|'-separated, in employees-table order.
    let by_award = employees.group_concat("UniqueAwardNumber", "FullName", EMPLOYEE_SEP)?;
    let with_names = projected.add_column("EmployeeName", DataType::Str, |r| {
        r.str("AwardNumber")
            .and_then(|k| by_award.get(k))
            .map(|names| Value::Str(names.clone()))
            .unwrap_or(Value::Null)
    })?;

    let mut out = with_names.add_id_column("RecordId")?;
    out.set_name("UMETRICSProjected");
    Ok(out)
}

/// Builds `USDAProjected(RecordId, AwardNumber, AwardTitle, FirstTransDate,
/// LastTransDate, AccessionNumber, EmployeeName[, ProjectNumber])`.
///
/// `include_project_number` is the Section 10 extension: `ProjectNumber`
/// "is not in table USDAProjected. However, it is in USDAAwardMatching and
/// thus can be easily added" once the revised match definition needs it.
pub fn project_usda(usda: &Table, include_project_number: bool) -> Result<Table, CoreError> {
    usda.check_key("AccessionNumber")?;
    let mut cols = vec![
        "AwardNumber",
        "ProjectTitle",
        "ProjectStartDate",
        "ProjectEndDate",
        "AccessionNumber",
        "ProjectDirector",
    ];
    if include_project_number {
        cols.push("ProjectNumber");
    }
    let projected = usda
        .project(&cols)?
        .rename_column("ProjectTitle", "AwardTitle")?
        .rename_column("ProjectStartDate", "FirstTransDate")?
        .rename_column("ProjectEndDate", "LastTransDate")?
        .rename_column("ProjectDirector", "EmployeeName")?;
    let mut out = projected.add_id_column("RecordId")?;
    out.set_name("USDAProjected");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_datagen::{Scenario, ScenarioConfig};

    fn scenario() -> Scenario {
        Scenario::generate(ScenarioConfig::small()).unwrap()
    }

    #[test]
    fn umetrics_projected_shape() {
        let s = scenario();
        let u = project_umetrics(&s.award_agg, &s.employees).unwrap();
        assert_eq!(
            u.schema().names(),
            vec![
                "RecordId",
                "AwardNumber",
                "AwardTitle",
                "FirstTransDate",
                "LastTransDate",
                "EmployeeName"
            ]
        );
        assert_eq!(u.n_rows(), s.award_agg.n_rows());
        u.check_key("RecordId").unwrap();
        u.check_key("AwardNumber").unwrap();
    }

    #[test]
    fn employee_names_concatenated() {
        let s = scenario();
        let u = project_umetrics(&s.award_agg, &s.employees).unwrap();
        let with_names = u
            .iter()
            .filter(|r| r.str("EmployeeName").is_some_and(|e| e.contains(EMPLOYEE_SEP)))
            .count();
        assert!(with_names > 0, "some award should have multiple employees");
    }

    #[test]
    fn usda_projected_shape() {
        let s = scenario();
        let t = project_usda(&s.usda, false).unwrap();
        assert_eq!(
            t.schema().names(),
            vec![
                "RecordId",
                "AwardNumber",
                "AwardTitle",
                "FirstTransDate",
                "LastTransDate",
                "AccessionNumber",
                "EmployeeName"
            ]
        );
        assert_eq!(t.n_rows(), s.usda.n_rows());
    }

    #[test]
    fn usda_projected_with_project_number() {
        let s = scenario();
        let t = project_usda(&s.usda, true).unwrap();
        assert!(t.schema().contains("ProjectNumber"));
        assert_eq!(t.n_cols(), 8);
    }

    #[test]
    fn leftover_tables_share_no_columns_with_usda() {
        let s = scenario();
        for t in [&s.object_codes, &s.org_units, &s.sub_awards, &s.vendors] {
            assert!(
                shares_columns_with_usda(t, &s.usda).is_empty(),
                "{} unexpectedly shares columns",
                t.name()
            );
        }
    }

    #[test]
    fn duplicate_award_number_is_caught() {
        let s = scenario();
        let dup = s.award_agg.union(&s.award_agg).unwrap();
        assert!(project_umetrics(&dup, &s.employees).is_err());
    }
}
