//! A shared, persistent label store — the Section 13 "Support for Easy
//! Collaboration" challenge.
//!
//! In the case study, labeling was spread over a cloud tool that only one
//! person could use at a time, Google Sheets for discussing mismatches, and
//! email. [`LabelStore`] is the library-shaped version: labels are keyed by
//! the business identifiers `(UniqueAwardNumber, AccessionNumber)` (stable
//! across re-projections), carry the labeler's name, persist as plain CSV
//! (the medium both teams actually exchanged), and merge across labelers
//! with explicit conflict surfacing — the Section 8 cross-check as an API.

use crate::error::CoreError;
use crate::labeling::LabeledSet;
use em_blocking::Pair;
use em_estimate::Label;
use em_table::{csv, DataType, Schema, Table, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// One labeler's label for one identifier pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelRecord {
    /// UMETRICS `UniqueAwardNumber`.
    pub award: String,
    /// USDA `AccessionNumber`.
    pub accession: String,
    /// The label given.
    pub label: Label,
    /// Who labeled (e.g. `"umetrics-team"`, `"em-team"`).
    pub labeler: String,
}

/// A conflict between labelers on one pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelConflict {
    /// UMETRICS award number.
    pub award: String,
    /// USDA accession number.
    pub accession: String,
    /// Every labeler's vote.
    pub votes: Vec<(String, Label)>,
}

/// How [`LabelStore::merge`] resolves disagreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Any disagreement resolves to `Unsure` (and is reported) — the
    /// conservative policy the paper's teams effectively used until a
    /// face-to-face discussion settled the pair.
    UnanimousOrUnsure,
    /// Strict majority wins; ties resolve to `Unsure`. `Unsure` votes count
    /// as abstentions.
    Majority,
}

/// A multi-labeler label store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelStore {
    // (award, accession) -> labeler -> label; BTree for stable iteration.
    by_pair: BTreeMap<(String, String), BTreeMap<String, Label>>,
}

fn label_to_str(l: Label) -> &'static str {
    match l {
        Label::Yes => "Yes",
        Label::No => "No",
        Label::Unsure => "Unsure",
    }
}

fn label_from_str(s: &str) -> Option<Label> {
    match s.trim().to_ascii_lowercase().as_str() {
        // `true`/`false` appear when CSV type inference reads an all-Yes/No
        // column back as booleans.
        "yes" | "y" | "match" | "1" | "true" => Some(Label::Yes),
        "no" | "n" | "non-match" | "0" | "false" => Some(Label::No),
        "unsure" | "u" | "?" => Some(Label::Unsure),
        _ => None,
    }
}

impl LabelStore {
    /// Empty store.
    pub fn new() -> LabelStore {
        LabelStore::default()
    }

    /// Records (or replaces) one labeler's label for a pair.
    pub fn record(&mut self, rec: LabelRecord) {
        self.by_pair
            .entry((rec.award, rec.accession))
            .or_default()
            .insert(rec.labeler, rec.label);
    }

    /// Number of distinct pairs with at least one label.
    pub fn n_pairs(&self) -> usize {
        self.by_pair.len()
    }

    /// One labeler's label for a pair, if present.
    pub fn get(&self, award: &str, accession: &str, labeler: &str) -> Option<Label> {
        self.by_pair
            .get(&(award.to_string(), accession.to_string()))
            .and_then(|votes| votes.get(labeler).copied())
    }

    /// Distinct labeler names seen, sorted.
    pub fn labelers(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .by_pair
            .values()
            .flat_map(|votes| votes.keys().cloned())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// The pairs where two named labelers disagree — the Section 8
    /// cross-check ("we labeled the same set … and observed 22 mismatched
    /// labels").
    pub fn cross_check(&self, labeler_a: &str, labeler_b: &str) -> Vec<LabelConflict> {
        let mut out = Vec::new();
        for ((award, accession), votes) in &self.by_pair {
            if let (Some(&la), Some(&lb)) = (votes.get(labeler_a), votes.get(labeler_b)) {
                if la != lb {
                    out.push(LabelConflict {
                        award: award.clone(),
                        accession: accession.clone(),
                        votes: vec![
                            (labeler_a.to_string(), la),
                            (labeler_b.to_string(), lb),
                        ],
                    });
                }
            }
        }
        out
    }

    /// Merges all labelers' votes into one label per pair under `policy`,
    /// returning the merged labels and the conflicts encountered.
    pub fn merge(
        &self,
        policy: MergePolicy,
    ) -> (BTreeMap<(String, String), Label>, Vec<LabelConflict>) {
        let mut merged = BTreeMap::new();
        let mut conflicts = Vec::new();
        for ((award, accession), votes) in &self.by_pair {
            let distinct: Vec<Label> = {
                let mut v: Vec<Label> = votes.values().copied().collect();
                v.dedup();
                let mut uniq = Vec::new();
                for l in v {
                    if !uniq.contains(&l) {
                        uniq.push(l);
                    }
                }
                uniq
            };
            let label = if distinct.len() <= 1 {
                distinct.first().copied().unwrap_or(Label::Unsure)
            } else {
                conflicts.push(LabelConflict {
                    award: award.clone(),
                    accession: accession.clone(),
                    votes: votes.iter().map(|(n, l)| (n.clone(), *l)).collect(),
                });
                match policy {
                    MergePolicy::UnanimousOrUnsure => Label::Unsure,
                    MergePolicy::Majority => {
                        let yes = votes.values().filter(|&&l| l == Label::Yes).count();
                        let no = votes.values().filter(|&&l| l == Label::No).count();
                        match yes.cmp(&no) {
                            std::cmp::Ordering::Greater => Label::Yes,
                            std::cmp::Ordering::Less => Label::No,
                            std::cmp::Ordering::Equal => Label::Unsure,
                        }
                    }
                }
            };
            merged.insert((award.clone(), accession.clone()), label);
        }
        (merged, conflicts)
    }

    /// Serializes the store as a CSV table
    /// (`AwardNumber,AccessionNumber,Label,Labeler`).
    pub fn to_table(&self) -> Table {
        let schema = Schema::of(&[
            ("AwardNumber", DataType::Str),
            ("AccessionNumber", DataType::Str),
            ("Label", DataType::Str),
            ("Labeler", DataType::Str),
        ]);
        let mut t = Table::new("labels", schema);
        for ((award, accession), votes) in &self.by_pair {
            for (labeler, label) in votes {
                // Infallible: the row literal above matches the 4-column
                // Str schema built in this function.
                #[allow(clippy::expect_used)]
                t.push_row(vec![
                    Value::Str(award.clone()),
                    Value::Str(accession.clone()),
                    Value::Str(label_to_str(*label).to_string()),
                    Value::Str(labeler.clone()),
                ])
                .expect("store rows fit the schema");
            }
        }
        t
    }

    /// Loads a store from a table in the [`to_table`](Self::to_table)
    /// layout. Unknown label strings are an error (a mislabeled CSV should
    /// not silently become data).
    pub fn from_table(table: &Table) -> Result<LabelStore, CoreError> {
        let mut store = LabelStore::new();
        for (i, row) in table.iter().enumerate() {
            let field = |name: &str| -> Result<String, CoreError> {
                row.get(name)
                    .map(|v| v.render())
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| {
                        CoreError::Pipeline(format!("label row {i}: missing {name}"))
                    })
            };
            let label_text = field("Label")?;
            let label = label_from_str(&label_text).ok_or_else(|| {
                CoreError::Pipeline(format!("label row {i}: unknown label {label_text:?}"))
            })?;
            store.record(LabelRecord {
                award: field("AwardNumber")?,
                accession: field("AccessionNumber")?,
                label,
                labeler: field("Labeler")?,
            });
        }
        Ok(store)
    }

    /// Writes the store to a CSV file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        csv::write_path(&self.to_table(), path)?;
        Ok(())
    }

    /// Reads a store from a CSV file.
    pub fn load(path: impl AsRef<Path>) -> Result<LabelStore, CoreError> {
        let table = csv::read_path(path)?;
        LabelStore::from_table(&table)
    }

    /// Resolves merged labels onto row pairs of the projected tables,
    /// producing the [`LabeledSet`] the training stage consumes. Pairs
    /// referencing unknown identifiers are skipped (they belong to another
    /// data slice).
    pub fn to_labeled_set(
        &self,
        policy: MergePolicy,
        umetrics: &Table,
        usda: &Table,
    ) -> Result<LabeledSet, CoreError> {
        let award_row: BTreeMap<String, usize> = umetrics
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.get("AwardNumber").map(|v| (v.render(), i)))
            .collect();
        let acc_row: BTreeMap<String, usize> = usda
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.get("AccessionNumber").map(|v| (v.render(), i)))
            .collect();
        let (merged, _) = self.merge(policy);
        let mut out = LabeledSet::new();
        for ((award, accession), label) in merged {
            if let (Some(&l), Some(&r)) = (award_row.get(&award), acc_row.get(&accession)) {
                out.insert(Pair::new(l, r), label);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(award: &str, acc: &str, label: Label, who: &str) -> LabelRecord {
        LabelRecord {
            award: award.to_string(),
            accession: acc.to_string(),
            label,
            labeler: who.to_string(),
        }
    }

    #[test]
    fn record_and_cross_check() {
        let mut s = LabelStore::new();
        s.record(rec("W1", "100", Label::Yes, "experts"));
        s.record(rec("W1", "100", Label::No, "em-team"));
        s.record(rec("W2", "200", Label::Yes, "experts"));
        s.record(rec("W2", "200", Label::Yes, "em-team"));
        let mismatches = s.cross_check("experts", "em-team");
        assert_eq!(mismatches.len(), 1);
        assert_eq!(mismatches[0].award, "W1");
        assert_eq!(s.labelers(), vec!["em-team", "experts"]);
    }

    #[test]
    fn relabeling_replaces() {
        // The paper: "The UMETRICS team updated 4 labels to Yes."
        let mut s = LabelStore::new();
        s.record(rec("W1", "100", Label::No, "experts"));
        s.record(rec("W1", "100", Label::Yes, "experts"));
        assert_eq!(s.get("W1", "100", "experts"), Some(Label::Yes));
        assert_eq!(s.n_pairs(), 1);
    }

    #[test]
    fn merge_unanimous_policy() {
        let mut s = LabelStore::new();
        s.record(rec("W1", "100", Label::Yes, "a"));
        s.record(rec("W1", "100", Label::No, "b"));
        s.record(rec("W2", "200", Label::No, "a"));
        s.record(rec("W2", "200", Label::No, "b"));
        let (merged, conflicts) = s.merge(MergePolicy::UnanimousOrUnsure);
        assert_eq!(merged[&("W1".to_string(), "100".to_string())], Label::Unsure);
        assert_eq!(merged[&("W2".to_string(), "200".to_string())], Label::No);
        assert_eq!(conflicts.len(), 1);
    }

    #[test]
    fn merge_majority_policy() {
        let mut s = LabelStore::new();
        for (who, l) in [("a", Label::Yes), ("b", Label::Yes), ("c", Label::No)] {
            s.record(rec("W1", "100", l, who));
        }
        // Tie with an abstention.
        for (who, l) in [("a", Label::Yes), ("b", Label::No), ("c", Label::Unsure)] {
            s.record(rec("W2", "200", l, who));
        }
        let (merged, conflicts) = s.merge(MergePolicy::Majority);
        assert_eq!(merged[&("W1".to_string(), "100".to_string())], Label::Yes);
        assert_eq!(merged[&("W2".to_string(), "200".to_string())], Label::Unsure);
        assert_eq!(conflicts.len(), 2);
    }

    #[test]
    fn csv_round_trip() {
        let mut s = LabelStore::new();
        s.record(rec("10.200 2008-1-2", "200001", Label::Yes, "experts"));
        s.record(rec("10.203 WIS01040", "200002", Label::Unsure, "em-team"));
        let table = s.to_table();
        let back = LabelStore::from_table(&table).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir()
            .join(format!("em-labelstore-{}.csv", std::process::id()));
        let mut s = LabelStore::new();
        s.record(rec("W1", "100", Label::No, "experts"));
        s.save(&path).unwrap();
        let back = LabelStore::load(&path).unwrap();
        assert_eq!(s, back);
        std::fs::remove_file(&path).ok();
    }

    /// A store CSV that took a round trip through Windows tooling — CRLF
    /// line endings and trailing blank lines — must load identically.
    #[test]
    fn windows_file_round_trips() {
        let path = std::env::temp_dir()
            .join(format!("em-labelstore-crlf-{}.csv", std::process::id()));
        let mut s = LabelStore::new();
        s.record(rec("W1", "100", Label::Yes, "experts"));
        s.record(rec("10.203 WIS01040", "200002", Label::Unsure, "em-team"));
        s.save(&path).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let windows = text.replace('\n', "\r\n") + "\r\n\r\n\r\n";
        std::fs::write(&path, windows).unwrap();

        let back = LabelStore::load(&path).unwrap();
        assert_eq!(s, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_label_text_is_rejected() {
        let t = csv::read_str(
            "labels",
            "AwardNumber,AccessionNumber,Label,Labeler\nW1,100,Maybe,experts\n",
        )
        .unwrap();
        assert!(LabelStore::from_table(&t).is_err());
    }

    #[test]
    fn lenient_label_spellings_accepted() {
        let t = csv::read_str(
            "labels",
            "AwardNumber,AccessionNumber,Label,Labeler\nW1,100,y,a\nW2,200,NO,a\nW3,300,?,a\n",
        )
        .unwrap();
        let s = LabelStore::from_table(&t).unwrap();
        assert_eq!(s.get("W1", "100", "a"), Some(Label::Yes));
        assert_eq!(s.get("W2", "200", "a"), Some(Label::No));
        assert_eq!(s.get("W3", "300", "a"), Some(Label::Unsure));
    }

    #[test]
    fn to_labeled_set_resolves_rows() {
        let u = csv::read_str("u", "AwardNumber\nW1\nW2\n").unwrap();
        let d = csv::read_str("d", "AccessionNumber\n100\n200\n").unwrap();
        let mut s = LabelStore::new();
        s.record(rec("W1", "100", Label::Yes, "a"));
        s.record(rec("W2", "200", Label::No, "a"));
        s.record(rec("W9", "900", Label::Yes, "a")); // other slice: skipped
        let set = s.to_labeled_set(MergePolicy::Majority, &u, &d).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(&Pair::new(0, 0)), Some(Label::Yes));
        assert_eq!(set.get(&Pair::new(1, 1)), Some(Label::No));
    }
}
