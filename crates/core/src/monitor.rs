//! Production accuracy monitoring — the Section 12 challenge the teams were
//! "currently working on": "the new data may be dirty, so we need to
//! monitor the accuracy of the match results. This is typically done by
//! taking a random sample of the predicted matches at regular intervals,
//! manually labeling it, then using the labeled sample to estimate the
//! accuracy" (footnote 11, citing the Chimera production monitor).
//!
//! [`AccuracyMonitor`] wraps a deployed workflow: for each new data slice
//! it runs the workflow, samples the *predicted matches*, obtains expert
//! labels (the oracle stands in for the production labeling rota), and
//! estimates precision with a confidence interval. When the interval's
//! upper bound falls below the configured floor, the slice is flagged for
//! a return "to the development stage".

use crate::blocking_plan::BlockingPlan;
use crate::error::CoreError;
use crate::labeling::label_with_retries;
use crate::matcher::TrainedMatcher;
use crate::resilience::{ResilienceReport, RetryPolicy};
use crate::workflow::EmWorkflow;
use em_blocking::Pair;
use em_datagen::{LabelSource, Oracle};
use em_estimate::{estimate_accuracy, AccuracyEstimate, SampleItem, Z95};
use em_rules::RuleSet;
use em_table::{csv, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Predicted matches sampled per slice.
    pub sample_size: usize,
    /// Alert when the precision interval's *upper* bound drops below this.
    pub precision_floor: f64,
    /// Sampling seed.
    pub seed: u64,
    /// Quarantine-ingest abort threshold for [`AccuracyMonitor::check_slice_csv`]:
    /// a slice file whose malformed-row fraction exceeds this is rejected
    /// rather than monitored. Production slices are expected to be mostly
    /// clean, so the default is stricter than the pipeline's.
    pub max_quarantine_fraction: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            sample_size: 100,
            precision_floor: 0.9,
            seed: 13,
            max_quarantine_fraction: 0.2,
        }
    }
}

/// One slice's health report.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceReport {
    /// Slice label (e.g. the data-file year or university).
    pub slice: String,
    /// Matches the workflow produced on the slice.
    pub n_matches: usize,
    /// Matches sampled and labeled.
    pub n_sampled: usize,
    /// The precision estimate from the labeled sample.
    pub estimate: AccuracyEstimate,
    /// True when the slice breaches the precision floor.
    pub alert: bool,
    /// Faults absorbed while monitoring this slice: labeling-rota faults,
    /// retries, degraded labels, and quarantined ingest rows.
    pub resilience: ResilienceReport,
}

/// A deployed workflow plus monitoring policy.
pub struct AccuracyMonitor<'m> {
    /// The packaged rules.
    pub rules: RuleSet,
    /// The packaged blocking plan.
    pub plan: BlockingPlan,
    /// The trained matcher being monitored.
    pub matcher: &'m TrainedMatcher,
    /// Whether negative rules are applied (the deployed configuration).
    pub apply_negative: bool,
    /// Monitoring policy.
    pub config: MonitorConfig,
}

impl<'m> AccuracyMonitor<'m> {
    /// Runs the deployed workflow on one new slice and estimates precision
    /// from a labeled sample of its predicted matches (reliable rota:
    /// labeling never faults).
    pub fn check_slice(
        &self,
        slice_name: &str,
        umetrics: &Table,
        usda: &Table,
        oracle: &Oracle<'_>,
    ) -> Result<SliceReport, CoreError> {
        self.check_slice_source(slice_name, umetrics, usda, oracle, &RetryPolicy::none())
    }

    /// [`AccuracyMonitor::check_slice`] against a fallible labeling rota:
    /// each labeling call is retried per `retry` (backoff recorded in
    /// virtual milliseconds) and degrades to `Unsure` when retries run out.
    /// Degraded labels land in the estimate's `n_unsure` — the monitor
    /// keeps producing intervals from whatever labels it could get.
    pub fn check_slice_source(
        &self,
        slice_name: &str,
        umetrics: &Table,
        usda: &Table,
        source: &dyn LabelSource,
        retry: &RetryPolicy,
    ) -> Result<SliceReport, CoreError> {
        let wf = EmWorkflow {
            rules: self.rules.clone(),
            plan: self.plan,
            matcher: self.matcher,
            apply_negative: self.apply_negative,
        };
        let result = wf.run(umetrics, usda)?;
        let mut matches: Vec<Pair> = result.matches.to_vec();
        let n_matches = matches.len();

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        matches.shuffle(&mut rng);
        matches.truncate(self.config.sample_size);

        let mut resilience = ResilienceReport::default();
        let mut sample: Vec<SampleItem> = Vec::with_capacity(matches.len());
        for p in &matches {
            let (_, settled) = label_with_retries(
                source,
                umetrics,
                usda,
                *p,
                false,
                retry,
                &mut resilience,
            )?;
            sample.push(SampleItem { predicted: true, label: settled });
        }
        let estimate = estimate_accuracy(&sample, Z95);
        // With every sampled pair predicted, the precision interval is the
        // fraction labeled Yes; an empty sample stays vacuous (no alert).
        let alert = !sample.is_empty() && estimate.precision.hi < self.config.precision_floor;
        Ok(SliceReport {
            slice: slice_name.to_string(),
            n_matches,
            n_sampled: sample.len(),
            estimate,
            alert,
            resilience,
        })
    }

    /// Monitors a slice delivered as raw CSV text (the production path:
    /// "the new data may be dirty"). Both files go through quarantine
    /// ingest — malformed rows are diverted and counted in the report's
    /// resilience ledger rather than failing the slice, unless they exceed
    /// `config.max_quarantine_fraction`.
    pub fn check_slice_csv(
        &self,
        slice_name: &str,
        umetrics_csv: &str,
        usda_csv: &str,
        source: &dyn LabelSource,
        retry: &RetryPolicy,
    ) -> Result<SliceReport, CoreError> {
        let u_out = csv::read_quarantine(
            "UMETRICSProjected",
            umetrics_csv,
            self.config.max_quarantine_fraction,
        )?;
        let s_out = csv::read_quarantine(
            "USDAProjected",
            usda_csv,
            self.config.max_quarantine_fraction,
        )?;
        let mut report =
            self.check_slice_source(slice_name, &u_out.table, &s_out.table, source, retry)?;
        report.resilience.quarantined_rows += u_out.quarantined.len() + s_out.quarantined.len();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking_plan::run_blocking;
    use crate::labeling::run_labeling;
    use crate::matcher::{build_training_data, select_matcher, train_matcher};
    use crate::pipeline::standard_rules;
    use crate::preprocess::{project_umetrics, project_usda};
    use crate::spec::WorkflowSpec;
    use em_datagen::{FlakyConfig, FlakyOracle, OracleConfig, Scenario, ScenarioConfig};
    use em_features::auto_features;

    fn trained_matcher(
        scenario: &Scenario,
        u: &Table,
        s: &Table,
    ) -> TrainedMatcher {
        let candidates = run_blocking(u, s, &BlockingPlan::default()).unwrap().consolidated;
        let oracle = Oracle::new(&scenario.truth, OracleConfig::default());
        let (labeled, _) = run_labeling(u, s, &candidates, &oracle, &[100, 100], 5).unwrap();
        let spec = WorkflowSpec::umetrics_usda();
        let stage = spec.matcher_stage(1);
        let features = auto_features(u, s, &stage.feature_opts);
        let (data, imputer) =
            build_training_data(u, s, &features, &labeled, &spec.rules()).unwrap();
        let ranking = select_matcher(&data, &stage).unwrap();
        train_matcher(features, imputer, &data, &ranking[0].learner, &stage).unwrap()
    }

    #[test]
    fn healthy_slice_passes_dirty_slice_alerts() {
        // Train on one slice.
        let train_scenario = Scenario::generate(ScenarioConfig::small().with_seed(31)).unwrap();
        let u = project_umetrics(&train_scenario.award_agg, &train_scenario.employees).unwrap();
        let s = project_usda(&train_scenario.usda, true).unwrap();
        let matcher = trained_matcher(&train_scenario, &u, &s);
        let monitor = AccuracyMonitor {
            rules: standard_rules(),
            plan: BlockingPlan::default(),
            matcher: &matcher,
            apply_negative: true,
            config: MonitorConfig { precision_floor: 0.8, ..Default::default() },
        };

        // A fresh healthy slice: same generator, new seed.
        let healthy = Scenario::generate(ScenarioConfig::small().with_seed(32)).unwrap();
        let hu = project_umetrics(&healthy.award_agg, &healthy.employees).unwrap();
        let hs = project_usda(&healthy.usda, true).unwrap();
        let healthy_oracle = Oracle::new(&healthy.truth, OracleConfig::default());
        let report = monitor.check_slice("2016", &hu, &hs, &healthy_oracle).unwrap();
        assert!(report.n_matches > 0);
        assert!(!report.alert, "healthy slice flagged: {report:?}");
        assert!(report.estimate.precision.hi >= 0.8);

        // A degraded slice: sibling/garble rates cranked up so titles lie.
        let mut dirty_cfg = ScenarioConfig::small().with_seed(33);
        dirty_cfg.p_sibling_title = 0.85;
        dirty_cfg.p_project_number_present = 0.0; // negative rules blinded
        dirty_cfg.p_federal_award_present = 0.0; // and sure rules too
        dirty_cfg.frac_federal = 0.0;
        let dirty = Scenario::generate(dirty_cfg).unwrap();
        let du = project_umetrics(&dirty.award_agg, &dirty.employees).unwrap();
        let ds = project_usda(&dirty.usda, true).unwrap();
        let dirty_oracle = Oracle::new(&dirty.truth, OracleConfig::default());
        let dirty_report = monitor.check_slice("2017-dirty", &du, &ds, &dirty_oracle).unwrap();
        assert!(
            dirty_report.estimate.precision.mid() < report.estimate.precision.mid(),
            "dirty slice should estimate lower precision ({:?} vs {:?})",
            dirty_report.estimate.precision,
            report.estimate.precision
        );
    }

    #[test]
    fn empty_slice_does_not_alert() {
        let scenario = Scenario::generate(ScenarioConfig::small().with_seed(41)).unwrap();
        let u = project_umetrics(&scenario.award_agg, &scenario.employees).unwrap();
        let s = project_usda(&scenario.usda, true).unwrap();
        let matcher = trained_matcher(&scenario, &u, &s);
        let monitor = AccuracyMonitor {
            rules: standard_rules(),
            plan: BlockingPlan::default(),
            matcher: &matcher,
            apply_negative: true,
            config: MonitorConfig::default(),
        };
        // Slice with no rows → no matches → vacuous estimate, no alert.
        let empty_u = Table::new("u", u.schema().clone());
        let empty_s = Table::new("s", s.schema().clone());
        let oracle = Oracle::new(&scenario.truth, OracleConfig::default());
        let r = monitor.check_slice("empty", &empty_u, &empty_s, &oracle).unwrap();
        assert_eq!(r.n_matches, 0);
        assert!(!r.alert);
        assert!(r.resilience.is_clean());
    }

    #[test]
    fn flaky_rota_and_dirty_csv_slices_stay_monitorable() {
        let scenario = Scenario::generate(ScenarioConfig::small().with_seed(31)).unwrap();
        let u = project_umetrics(&scenario.award_agg, &scenario.employees).unwrap();
        let s = project_usda(&scenario.usda, true).unwrap();
        let matcher = trained_matcher(&scenario, &u, &s);
        let monitor = AccuracyMonitor {
            rules: standard_rules(),
            plan: BlockingPlan::default(),
            matcher: &matcher,
            apply_negative: true,
            config: MonitorConfig::default(),
        };
        let oracle = Oracle::new(&scenario.truth, OracleConfig::default());
        let clean = monitor.check_slice("2018", &u, &s, &oracle).unwrap();
        assert!(clean.resilience.is_clean());

        // A flaky labeling rota with enough retries reproduces the clean
        // numbers exactly, plus a fault ledger.
        let flaky = FlakyOracle::new(
            Oracle::new(&scenario.truth, OracleConfig::default()),
            FlakyConfig { p_unavailable: 0.2, p_timeout: 0.05, ..FlakyConfig::default() },
        );
        let shaky = monitor
            .check_slice_source("2018", &u, &s, &flaky, &RetryPolicy::default())
            .unwrap();
        assert!(shaky.resilience.oracle_faults > 0, "rates this high must fault somewhere");
        assert!(shaky.resilience.total_backoff_ms > 0, "retries must record backoff");
        assert_eq!(shaky.resilience.degraded_labels, 0, "retry budget should absorb all");
        assert_eq!(shaky.estimate, clean.estimate, "absorbed faults must not move the estimate");
        assert_eq!(shaky.alert, clean.alert);

        // The same slice as dirty CSV text: corrupt USDA rows quarantine,
        // and the slice still gets monitored.
        let u_csv = csv::write_str(&u);
        let s_csv = crate::resilience::corrupt_csv(&csv::write_str(&s), 7, 0.05);
        let dirty = monitor
            .check_slice_csv("2018-dirty", &u_csv, &s_csv, &oracle, &RetryPolicy::none())
            .unwrap();
        assert!(dirty.resilience.quarantined_rows > 0);
        assert!(dirty.n_matches > 0);

        // Too dirty, and the slice is rejected outright.
        let strict = AccuracyMonitor {
            config: MonitorConfig { max_quarantine_fraction: 0.0, ..MonitorConfig::default() },
            rules: standard_rules(),
            plan: BlockingPlan::default(),
            matcher: &matcher,
            apply_negative: true,
        };
        assert!(matches!(
            strict.check_slice_csv("2018-dirty", &u_csv, &s_csv, &oracle, &RetryPolicy::none()),
            Err(CoreError::Table(em_table::TableError::QuarantineOverflow { .. }))
        ));
    }
}
