//! Match-multiplicity analysis — the Section 10 "Should We Match at the
//! Cluster Level?" investigation.
//!
//! The UMETRICS team initially insisted matches be one-to-one; the EM team
//! "analyzed the one-to-one, one-to-many, and many-to-one match predictions
//! and shared our analysis … if a problem affects only a small number of
//! matches, then it is not worth spending a lot of effort to solve".
//! [`analyze_multiplicity`] produces exactly that analysis, and
//! [`cluster_matches`] builds the cluster-level view (connected components
//! over the match graph) the team considered and ultimately declined.

use crate::workflow::MatchIds;
use std::collections::{BTreeMap, BTreeSet};

/// Breakdown of a match list by multiplicity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MultiplicityReport {
    /// Matches where both sides appear exactly once (1:1).
    pub one_to_one: usize,
    /// Matches whose award maps to several accessions (1:N, N > 1),
    /// counted as pairs.
    pub one_to_many: usize,
    /// Matches whose accession maps to several awards (M:1, M > 1),
    /// counted as pairs.
    pub many_to_one: usize,
    /// Matches in a many-to-many tangle (both sides repeated).
    pub many_to_many: usize,
    /// Example award numbers with the highest fan-out (up to 3).
    pub example_fanout_awards: Vec<(String, usize)>,
}

impl MultiplicityReport {
    /// Total pairs analyzed.
    pub fn total(&self) -> usize {
        self.one_to_one + self.one_to_many + self.many_to_one + self.many_to_many
    }

    /// Fraction of pairs that are not 1:1 — the number the teams used to
    /// decide the problem "would have an insignificant effect".
    pub fn non_one_to_one_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (t - self.one_to_one) as f64 / t as f64
        }
    }
}

/// Classifies every match pair by the multiplicity of its endpoints.
pub fn analyze_multiplicity(matches: &MatchIds) -> MultiplicityReport {
    let mut award_deg: BTreeMap<&str, usize> = BTreeMap::new();
    let mut acc_deg: BTreeMap<&str, usize> = BTreeMap::new();
    for (a, c) in matches.iter() {
        *award_deg.entry(a).or_insert(0) += 1;
        *acc_deg.entry(c).or_insert(0) += 1;
    }
    let mut report = MultiplicityReport::default();
    for (a, c) in matches.iter() {
        let fan_a = award_deg[a];
        let fan_c = acc_deg[c];
        match (fan_a > 1, fan_c > 1) {
            (false, false) => report.one_to_one += 1,
            (true, false) => report.one_to_many += 1,
            (false, true) => report.many_to_one += 1,
            (true, true) => report.many_to_many += 1,
        }
    }
    let mut fanout: Vec<(String, usize)> = award_deg
        .into_iter()
        .filter(|(_, d)| *d > 1)
        .map(|(a, d)| (a.to_string(), d))
        .collect();
    fanout.sort_by(|x, y| y.1.cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
    fanout.truncate(3);
    report.example_fanout_awards = fanout;
    report
}

/// One cluster-level match: a set of awards matched to a set of accessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMatch {
    /// Awards in the cluster.
    pub awards: BTreeSet<String>,
    /// Accession numbers in the cluster.
    pub accessions: BTreeSet<String>,
}

impl ClusterMatch {
    /// True when the cluster is a plain 1:1 match.
    pub fn is_one_to_one(&self) -> bool {
        self.awards.len() == 1 && self.accessions.len() == 1
    }
}

/// Groups record-level matches into cluster-level matches: connected
/// components of the bipartite match graph. At this level the "matches
/// must be one-to-one" requirement is satisfiable — each component pairs
/// one award-cluster with one accession-cluster (the alternative design
/// the teams discussed before deciding to stay at the record level).
pub fn cluster_matches(matches: &MatchIds) -> Vec<ClusterMatch> {
    // Union-find over string keys (prefixed to keep the two sides distinct).
    let mut parent: BTreeMap<String, String> = BTreeMap::new();
    fn find(parent: &mut BTreeMap<String, String>, k: &str) -> String {
        let p = parent.get(k).cloned().unwrap_or_else(|| k.to_string());
        if p == k {
            return p;
        }
        let root = find(parent, &p);
        parent.insert(k.to_string(), root.clone());
        root
    }
    let union = |parent: &mut BTreeMap<String, String>, a: &str, b: &str| {
        let ra = find(parent, a);
        let rb = find(parent, b);
        if ra != rb {
            parent.insert(ra, rb);
        }
    };
    for (a, c) in matches.iter() {
        let ka = format!("A:{a}");
        let kc = format!("C:{c}");
        parent.entry(ka.clone()).or_insert_with(|| ka.clone());
        parent.entry(kc.clone()).or_insert_with(|| kc.clone());
        union(&mut parent, &ka, &kc);
    }
    let keys: Vec<String> = parent.keys().cloned().collect();
    let mut components: BTreeMap<String, ClusterMatch> = BTreeMap::new();
    for k in keys {
        let root = find(&mut parent, &k);
        let entry = components.entry(root).or_insert_with(|| ClusterMatch {
            awards: BTreeSet::new(),
            accessions: BTreeSet::new(),
        });
        if let Some(a) = k.strip_prefix("A:") {
            entry.awards.insert(a.to_string());
        } else if let Some(c) = k.strip_prefix("C:") {
            entry.accessions.insert(c.to_string());
        }
    }
    components.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::MatchIds;
    use em_blocking::{CandidateSet, Pair};
    use em_table::csv::read_str;

    fn ids(pairs: &[(&str, &str)]) -> MatchIds {
        // Build through from_candidates to exercise the real path.
        let mut u_csv = String::from("AwardNumber\n");
        let mut s_csv = String::from("AccessionNumber\n");
        let mut cands = CandidateSet::new("m");
        let mut awards: Vec<&str> = Vec::new();
        let mut accs: Vec<&str> = Vec::new();
        for (a, c) in pairs {
            if !awards.contains(a) {
                awards.push(a);
                u_csv.push_str(&format!("{a}\n"));
            }
            if !accs.contains(c) {
                accs.push(c);
                s_csv.push_str(&format!("{c}\n"));
            }
            let i = awards.iter().position(|x| x == a).unwrap();
            let j = accs.iter().position(|x| x == c).unwrap();
            cands.add(Pair::new(i, j), "t");
        }
        let u = read_str("u", &u_csv).unwrap();
        let s = read_str("s", &s_csv).unwrap();
        MatchIds::from_candidates(&u, &s, &cands).unwrap()
    }

    #[test]
    fn classifies_multiplicities() {
        let m = ids(&[
            ("W1", "100"),            // 1:1
            ("W2", "200"), ("W2", "201"), // 1:2
            ("W3", "300"), ("W4", "300"), // 2:1
        ]);
        let r = analyze_multiplicity(&m);
        assert_eq!(r.one_to_one, 1);
        assert_eq!(r.one_to_many, 2);
        assert_eq!(r.many_to_one, 2);
        assert_eq!(r.many_to_many, 0);
        assert_eq!(r.total(), 5);
        assert!((r.non_one_to_one_rate() - 0.8).abs() < 1e-9);
        assert_eq!(r.example_fanout_awards, vec![("W2".to_string(), 2)]);
    }

    #[test]
    fn many_to_many_detected() {
        let m = ids(&[("W1", "100"), ("W1", "101"), ("W2", "100")]);
        let r = analyze_multiplicity(&m);
        assert_eq!(r.many_to_many, 1, "W1-100 has fanout on both sides");
        assert_eq!(r.one_to_many, 1);
        assert_eq!(r.many_to_one, 1);
    }

    #[test]
    fn clusters_are_connected_components() {
        let m = ids(&[
            ("W1", "100"),
            ("W2", "200"), ("W2", "201"),
            ("W3", "300"), ("W4", "300"),
        ]);
        let clusters = cluster_matches(&m);
        assert_eq!(clusters.len(), 3);
        let one_to_one = clusters.iter().filter(|c| c.is_one_to_one()).count();
        assert_eq!(one_to_one, 1);
        // The W2 cluster holds one award and two accessions.
        let w2 = clusters.iter().find(|c| c.awards.contains("W2")).unwrap();
        assert_eq!(w2.accessions.len(), 2);
        // The 300 cluster holds two awards and one accession.
        let c300 = clusters.iter().find(|c| c.accessions.contains("300")).unwrap();
        assert_eq!(c300.awards.len(), 2);
    }

    #[test]
    fn chained_matches_merge_into_one_cluster() {
        // W1-100, W2-100, W2-200, W3-200: all connected.
        let m = ids(&[("W1", "100"), ("W2", "100"), ("W2", "200"), ("W3", "200")]);
        let clusters = cluster_matches(&m);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].awards.len(), 3);
        assert_eq!(clusters[0].accessions.len(), 2);
    }

    #[test]
    fn empty_matches_empty_analysis() {
        let m = ids(&[]);
        assert_eq!(analyze_multiplicity(&m).total(), 0);
        assert!(cluster_matches(&m).is_empty());
        assert_eq!(analyze_multiplicity(&m).non_one_to_one_rate(), 0.0);
    }
}
