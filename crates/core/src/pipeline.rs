//! The end-to-end case study (Sections 4–12), orchestrated.
//!
//! [`CaseStudy::run`] replays the whole paper on a generated scenario:
//! understanding the data → blocking (with the footnote-3 accounting and
//! the threshold sweep) → blocking-debugger audit → iterative labeling with
//! the first-round cross-check → leave-one-out label debugging → two-round
//! matcher selection (case-sensitive, then + case-insensitive features) →
//! the Figure 8 initial workflow → the Section 10 complications (revised
//! match definition, extra data) via the Figure 9 patch → Corleone accuracy
//! estimation at 200 and 400 labels, ours vs IRIS → the Figure 10 negative
//! rules. The resulting [`CaseStudyReport`] carries every number the
//! paper's narrative quotes, plus ground-truth scores the paper could not
//! compute (we own the generator).

use crate::analysis::{analyze_multiplicity, cluster_matches, MultiplicityReport};
use crate::blocking_plan::{overlap_threshold_sweep, run_blocking, BlockingPlan};
use crate::checkpoint::Checkpoint;
use crate::error::CoreError;
use crate::labeling::{accession_of, award_of, run_labeling_resilient, LabeledSet, LabelingRound};
use crate::matcher::{build_training_data, debug_labels, select_matcher, train_matcher, MatcherStage};
use crate::preprocess::{project_umetrics, project_usda};
use crate::resilience::{corrupt_csv, FaultPlan, ResilienceReport, RetryPolicy, ServeFaultPlan};
use crate::workflow::{EmWorkflow, MatchIds};
use em_blocking::{debug_blocking, BlockingDebugger, CandidateSet, Pair};
use em_datagen::{FlakyOracle, Oracle, OracleConfig, PairView, Scenario, ScenarioConfig};
use em_estimate::{estimate_accuracy, AccuracyEstimate, Interval, Label, SampleItem, Z95};
use em_rules::{EqualityRule, IrisMatcher, RuleKeyKind, RuleSet, RuleSetDesc};
use em_table::{csv, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::Path;

/// Configuration of a full case-study run.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudyConfig {
    /// Scenario (data) configuration.
    pub scenario: ScenarioConfig,
    /// Labeling-oracle behaviour.
    pub oracle: OracleConfig,
    /// Pipeline seed (sampling, CV, stochastic learners).
    pub seed: u64,
    /// Blocking-plan parameters.
    pub plan: BlockingPlan,
    /// Training-label rounds (paper: 100 + 100 + 100).
    pub label_rounds: Vec<usize>,
    /// Evaluation-label rounds for estimation (paper: 200 + 200).
    pub eval_rounds: Vec<usize>,
    /// Blocking-debugger audit size (paper: top 100).
    pub debugger_top_k: usize,
    /// Retry/backoff policy for fallible labeling calls.
    pub retry: RetryPolicy,
    /// Fault-injection plan (the no-op [`FaultPlan::none`] by default).
    pub faults: FaultPlan,
}

impl CaseStudyConfig {
    /// Paper-scale configuration.
    pub fn paper() -> CaseStudyConfig {
        CaseStudyConfig {
            scenario: ScenarioConfig::paper(),
            oracle: OracleConfig::default(),
            seed: 42,
            plan: BlockingPlan::default(),
            label_rounds: vec![100, 100, 100],
            eval_rounds: vec![200, 200],
            debugger_top_k: 100,
            retry: RetryPolicy::default(),
            faults: FaultPlan::none(),
        }
    }

    /// Small configuration for tests. The scenario seed is chosen so the
    /// downsized data still reproduces the paper's qualitative results
    /// (high blocking recall, IRIS precision ≈ 1, negative rules helping).
    pub fn small() -> CaseStudyConfig {
        CaseStudyConfig {
            scenario: ScenarioConfig::small().with_seed(7),
            label_rounds: vec![60, 40],
            eval_rounds: vec![60, 60],
            debugger_top_k: 30,
            ..CaseStudyConfig::paper()
        }
    }
}

/// One matcher's cross-validation scores.
#[derive(Debug, Clone, PartialEq)]
pub struct MatcherScore {
    /// Learner name.
    pub name: String,
    /// Mean CV precision.
    pub precision: f64,
    /// Mean CV recall.
    pub recall: f64,
    /// Mean CV F1 (the selection criterion).
    pub f1: f64,
}

/// Ground-truth evaluation of one match list.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthScore {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// Missed true matches.
    pub fn_: usize,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
}

/// One Corleone estimate row.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateRow {
    /// Which matcher.
    pub matcher: String,
    /// Labels used.
    pub n_labels: usize,
    /// The estimate.
    pub estimate: AccuracyEstimate,
}

/// Counts from the patched (Figure 9) run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchedCounts {
    /// Sure matches from the original tables (paper: 683).
    pub sure_original: usize,
    /// Sure matches from the extra records (paper: 55).
    pub sure_extra: usize,
    /// Candidate pairs from the original tables after removing sure
    /// matches (paper: 2,556).
    pub candidates_original: usize,
    /// Candidate pairs from the extra records (paper: 1,220).
    pub candidates_extra: usize,
    /// Model matches from the original tables (paper: 399).
    pub predicted_original: usize,
    /// Model matches from the extra records (paper: 0).
    pub predicted_extra: usize,
    /// Total matches (paper: 1,137).
    pub total: usize,
}

/// Everything a full run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudyReport {
    /// Figure 2: `(table name, rows, cols)` for the seven raw tables.
    pub table_summaries: Vec<(String, usize, usize)>,
    /// Section 7: `|C1|`.
    pub c1: usize,
    /// `|C2|` (paper: 2,937).
    pub c2: usize,
    /// `|C3|` (paper: 1,375).
    pub c3: usize,
    /// `|C2 ∩ C3|` (paper: 1,140).
    pub c2_and_c3: usize,
    /// `|C2 − C3|` (paper: 1,797).
    pub c2_only: usize,
    /// `|C3 − C2|` (paper: 235).
    pub c3_only: usize,
    /// `|C1 ∪ C2 ∪ C3|` (paper: 3,177).
    pub consolidated: usize,
    /// Overlap-threshold sweep `(K, |C2(K)|)` (paper: K=1 → 200K, K=7 →
    /// hundreds).
    pub sweep: Vec<(usize, usize)>,
    /// Blocking recall against ground truth (not observable in the paper).
    pub blocking_recall: f64,
    /// Debugger audit: pairs inspected.
    pub debugger_inspected: usize,
    /// Debugger audit: how many of those were true matches (paper: top
    /// pairs "were not matches").
    pub debugger_true_matches: usize,
    /// Section 8 labeling rounds.
    pub label_rounds: Vec<LabelingRound>,
    /// Final training-label counts `(yes, no, unsure)` (paper: 68/200/32).
    pub label_counts: (usize, usize, usize),
    /// Leave-one-out label-debug hits (the D1–D3 lead list).
    pub label_debug_hits: usize,
    /// Section 9 selection, round 1 (case-sensitive features only).
    pub selection_round1: Vec<MatcherScore>,
    /// Split-half mismatches mined with the round-1 winner (what motivated
    /// the case-insensitive features).
    pub mismatches_round1: usize,
    /// Section 9 selection, round 2 (+ case-insensitive features; paper:
    /// decision tree wins at P=97%, R=95%, F1≈95%).
    pub selection_round2: Vec<MatcherScore>,
    /// Figure 8: sure (M1) matches (paper: 210).
    pub initial_sure: usize,
    /// Figure 8: model-predicted matches (paper: 807).
    pub initial_predicted: usize,
    /// Figure 8: total (paper: 1,017).
    pub initial_total: usize,
    /// Section 10: pairs satisfying the new positive rule in `A × B`
    /// (paper: 473).
    pub rule2_in_cartesian: usize,
    /// … of which inside the candidate set `C` (paper: 411).
    pub rule2_in_candidates: usize,
    /// … of which the model already predicted as matches (paper: 397).
    pub rule2_predicted: usize,
    /// Figure 9 patched-run counts.
    pub patched: PatchedCounts,
    /// Section 10's multiplicity analysis of the combined matches (the
    /// "should we match at the cluster level?" numbers).
    pub multiplicity: MultiplicityReport,
    /// Cluster-level view: total clusters and how many are plain 1:1.
    pub clusters: (usize, usize),
    /// Section 11 estimates: ours and IRIS at each cumulative label count.
    pub estimates: Vec<EstimateRow>,
    /// Section 12 estimates for the final (learning + negative rules)
    /// matcher.
    pub final_estimates: Vec<EstimateRow>,
    /// Predictions flipped by the negative rules.
    pub flipped: usize,
    /// Final match count (paper: 845).
    pub final_total: usize,
    /// Ground-truth scores: `(matcher name, score)` for IRIS,
    /// learning-only, and learning + negative rules.
    pub truth_scores: Vec<(String, TruthScore)>,
    /// Ledger of faults absorbed, rows quarantined, and stages resumed
    /// (empty/default on a clean, uninterrupted run).
    pub resilience: ResilienceReport,
}

/// The declarative description of the final workflow's rule set — the
/// single source of truth for both [`standard_rules`] and the serialized
/// form workflow snapshots persist.
pub fn standard_rule_descs() -> RuleSetDesc {
    RuleSetDesc::new()
        .positive(RuleKeyKind::Suffix, "M1", "AwardNumber", "AwardNumber")
        .positive(RuleKeyKind::Suffix, "award=project", "AwardNumber", "ProjectNumber")
        .negative(RuleKeyKind::Suffix, "neg:award", "AwardNumber", "AwardNumber")
        .negative(RuleKeyKind::Suffix, "neg:project", "AwardNumber", "ProjectNumber")
}

/// The standard rule set of the final workflow.
pub fn standard_rules() -> RuleSet {
    standard_rule_descs().build()
}

/// Scores a match list against ground truth. Recall counts every true
/// match whose award exists in the delivered data (initial + extra).
pub fn score_ids(ids: &MatchIds, scenario: &Scenario) -> TruthScore {
    let mut tp = 0usize;
    let mut fp = 0usize;
    for (award, acc) in ids.iter() {
        if scenario.truth.is_match(award, acc) {
            tp += 1;
        } else {
            fp += 1;
        }
    }
    let fn_ = scenario.truth.len() - tp;
    let precision = if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 1.0 } else { tp as f64 / (tp + fn_) as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    TruthScore { tp, fp, fn_, precision, recall, f1 }
}

impl std::fmt::Display for CaseStudyReport {
    /// Renders the run as the narrative summary a teammate would read:
    /// one line per pipeline stage, outcomes first.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "end-to-end entity-matching run")?;
        writeln!(
            f,
            "  data: {} tables; blocking C1={} C2={} C3={} -> |C|={} (recall {:.1}%)",
            self.table_summaries.len(),
            self.c1,
            self.c2,
            self.c3,
            self.consolidated,
            100.0 * self.blocking_recall
        )?;
        let (y, n, u) = self.label_counts;
        writeln!(
            f,
            "  labels: {y} yes / {n} no / {u} unsure over {} rounds; {} LOO debug leads",
            self.label_rounds.len(),
            self.label_debug_hits
        )?;
        if let Some(best) = self.selection_round2.first() {
            writeln!(
                f,
                "  matcher: {} (F1 {:.1}% in 5-fold CV; round-1 winner {})",
                best.name,
                100.0 * best.f1,
                self.selection_round1.first().map(|m| m.name.as_str()).unwrap_or("-")
            )?;
        }
        writeln!(
            f,
            "  matches: {} initial -> {} after patch (+rules) -> {} final ({} flipped by negative rules)",
            self.initial_total, self.patched.total, self.final_total, self.flipped
        )?;
        writeln!(
            f,
            "  multiplicity: {:.1}% of matches not one-to-one across {} clusters",
            100.0 * self.multiplicity.non_one_to_one_rate(),
            self.clusters.0
        )?;
        if !self.resilience.is_clean() {
            let r = &self.resilience;
            writeln!(
                f,
                "  resilience: {} oracle faults ({} retries, {} ms backoff), {} labels degraded, {} rows quarantined, {} stages resumed",
                r.oracle_faults,
                r.oracle_retries,
                r.total_backoff_ms,
                r.degraded_labels,
                r.quarantined_rows,
                r.resumed_stages.len()
            )?;
        }
        for (name, score) in &self.truth_scores {
            writeln!(
                f,
                "  truth[{name}]: P={:.1}% R={:.1}% F1={:.1}%",
                100.0 * score.precision,
                100.0 * score.recall,
                100.0 * score.f1
            )?;
        }
        Ok(())
    }
}

/// The pipeline stages, in execution order. [`FaultPlan::crash_after`]
/// accepts any of these names, and each gets a `<stage>.ckpt` file in a
/// checkpointed run.
pub const STAGES: [&str; 8] = [
    "setup", "blocking", "labeling", "label_debug", "selection", "matching", "estimate", "truth",
];

/// Stage-name prefix of the label-efficient training loops layered on this
/// pipeline (the `em-label` crate): each active-learning round checkpoints
/// under its own stage name so a crash mid-loop resumes from the last
/// completed round.
pub const AL_ROUND_PREFIX: &str = "al_round_";

/// The checkpoint stage name of active-learning round `round` (zero-based,
/// fixed-width so stage files list in round order).
pub fn al_stage_name(round: usize) -> String {
    format!("{AL_ROUND_PREFIX}{round:04}")
}

// ---- Checkpoint (de)serialization helpers. Every decoder returns a
// Checkpoint error naming the offending key/field, never panics. ----

fn field<'a>(rec: &'a [String], i: usize, key: &str) -> Result<&'a str, CoreError> {
    rec.get(i).map(String::as_str).ok_or_else(|| {
        CoreError::Checkpoint(format!("record under {key:?} is missing field {i}"))
    })
}

fn parse_field<T: std::str::FromStr>(rec: &[String], i: usize, key: &str) -> Result<T, CoreError> {
    let raw = field(rec, i, key)?;
    raw.parse::<T>().map_err(|_| {
        CoreError::Checkpoint(format!("field {i} of a {key:?} record holds unparseable {raw:?}"))
    })
}

fn label_text(label: Label) -> &'static str {
    match label {
        Label::Yes => "yes",
        Label::No => "no",
        Label::Unsure => "unsure",
    }
}

fn label_from_text(s: &str) -> Result<Label, CoreError> {
    match s {
        "yes" => Ok(Label::Yes),
        "no" => Ok(Label::No),
        "unsure" => Ok(Label::Unsure),
        other => Err(CoreError::Checkpoint(format!("unknown label {other:?}"))),
    }
}

fn put_pairs(cp: &mut Checkpoint, key: &str, pairs: &[Pair]) {
    let recs: Vec<Vec<String>> =
        pairs.iter().map(|p| vec![p.left.to_string(), p.right.to_string()]).collect();
    cp.put_records(key, &recs);
}

fn get_pairs(cp: &Checkpoint, key: &str) -> Result<Vec<Pair>, CoreError> {
    cp.get_records(key)?
        .iter()
        .map(|r| Ok(Pair::new(parse_field(r, 0, key)?, parse_field(r, 1, key)?)))
        .collect()
}

fn put_ids(cp: &mut Checkpoint, key: &str, ids: &MatchIds) {
    let recs: Vec<Vec<String>> =
        ids.iter().map(|(a, c)| vec![a.to_string(), c.to_string()]).collect();
    cp.put_records(key, &recs);
}

fn get_ids(cp: &Checkpoint, key: &str) -> Result<MatchIds, CoreError> {
    let mut pairs = Vec::new();
    for r in cp.get_records(key)? {
        pairs.push((field(&r, 0, key)?.to_string(), field(&r, 1, key)?.to_string()));
    }
    Ok(MatchIds::from_pairs(pairs))
}

fn put_scores(cp: &mut Checkpoint, key: &str, scores: &[MatcherScore]) {
    let recs: Vec<Vec<String>> = scores
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:?}", s.precision),
                format!("{:?}", s.recall),
                format!("{:?}", s.f1),
            ]
        })
        .collect();
    cp.put_records(key, &recs);
}

fn get_scores(cp: &Checkpoint, key: &str) -> Result<Vec<MatcherScore>, CoreError> {
    cp.get_records(key)?
        .iter()
        .map(|r| {
            Ok(MatcherScore {
                name: field(r, 0, key)?.to_string(),
                precision: parse_field(r, 1, key)?,
                recall: parse_field(r, 2, key)?,
                f1: parse_field(r, 3, key)?,
            })
        })
        .collect()
}

fn put_estimates(cp: &mut Checkpoint, key: &str, rows: &[EstimateRow]) {
    let recs: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.matcher.clone(),
                r.n_labels.to_string(),
                format!("{:?}", r.estimate.precision.lo),
                format!("{:?}", r.estimate.precision.hi),
                format!("{:?}", r.estimate.recall.lo),
                format!("{:?}", r.estimate.recall.hi),
                r.estimate.n_used.to_string(),
                r.estimate.n_predicted.to_string(),
                r.estimate.n_actual.to_string(),
                r.estimate.n_unsure.to_string(),
            ]
        })
        .collect();
    cp.put_records(key, &recs);
}

fn get_estimates(cp: &Checkpoint, key: &str) -> Result<Vec<EstimateRow>, CoreError> {
    cp.get_records(key)?
        .iter()
        .map(|r| {
            Ok(EstimateRow {
                matcher: field(r, 0, key)?.to_string(),
                n_labels: parse_field(r, 1, key)?,
                estimate: AccuracyEstimate {
                    precision: Interval {
                        lo: parse_field(r, 2, key)?,
                        hi: parse_field(r, 3, key)?,
                    },
                    recall: Interval { lo: parse_field(r, 4, key)?, hi: parse_field(r, 5, key)? },
                    n_used: parse_field(r, 6, key)?,
                    n_predicted: parse_field(r, 7, key)?,
                    n_actual: parse_field(r, 8, key)?,
                    n_unsure: parse_field(r, 9, key)?,
                },
            })
        })
        .collect()
}

fn put_rounds(cp: &mut Checkpoint, key: &str, rounds: &[LabelingRound]) {
    let recs: Vec<Vec<String>> = rounds
        .iter()
        .map(|r| {
            vec![
                r.sampled.to_string(),
                r.yes.to_string(),
                r.no.to_string(),
                r.unsure.to_string(),
                r.crosscheck_mismatches.to_string(),
                r.corrections.to_string(),
            ]
        })
        .collect();
    cp.put_records(key, &recs);
}

fn get_rounds(cp: &Checkpoint, key: &str) -> Result<Vec<LabelingRound>, CoreError> {
    cp.get_records(key)?
        .iter()
        .map(|r| {
            Ok(LabelingRound {
                sampled: parse_field(r, 0, key)?,
                yes: parse_field(r, 1, key)?,
                no: parse_field(r, 2, key)?,
                unsure: parse_field(r, 3, key)?,
                crosscheck_mismatches: parse_field(r, 4, key)?,
                corrections: parse_field(r, 5, key)?,
            })
        })
        .collect()
}

fn usize_list(values: &[usize]) -> String {
    values.iter().map(usize::to_string).collect::<Vec<_>>().join(",")
}

fn parse_usize_list(raw: &str) -> Result<Vec<usize>, CoreError> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| CoreError::Checkpoint(format!("bad round size {s:?}")))
        })
        .collect()
}

/// Serializes the full configuration: the `config.ckpt` guard that ties a
/// checkpoint directory to exactly one configuration and lets
/// [`CaseStudy::resume`] reconstruct the runner from the directory alone.
fn config_checkpoint(cfg: &CaseStudyConfig) -> Checkpoint {
    let mut cp = Checkpoint::new();
    let sc = &cfg.scenario;
    cp.put_display("scenario.seed", sc.seed);
    cp.put_display("scenario.n_awards", sc.n_awards);
    cp.put_display("scenario.n_extra_awards", sc.n_extra_awards);
    cp.put_display("scenario.n_usda", sc.n_usda);
    cp.put_display("scenario.n_employees", sc.n_employees);
    cp.put_display("scenario.n_vendors", sc.n_vendors);
    cp.put_display("scenario.n_subawards", sc.n_subawards);
    cp.put_display("scenario.n_object_codes", sc.n_object_codes);
    cp.put_display("scenario.n_org_units", sc.n_org_units);
    cp.put_f64("scenario.frac_federal", sc.frac_federal);
    cp.put_f64("scenario.p_in_usda", sc.p_in_usda);
    cp.put_f64("scenario.p_two_records", sc.p_two_records);
    cp.put_f64("scenario.p_three_records", sc.p_three_records);
    cp.put_f64("scenario.p_federal_award_present", sc.p_federal_award_present);
    cp.put_f64("scenario.p_project_number_present", sc.p_project_number_present);
    cp.put_f64("scenario.p_generic_title", sc.p_generic_title);
    cp.put_f64("scenario.p_title_typo", sc.p_title_typo);
    cp.put_f64("scenario.p_filler_multistate_clone", sc.p_filler_multistate_clone);
    cp.put_f64("scenario.p_sibling_title", sc.p_sibling_title);
    cp.put_f64("scenario.p_wrong_project_number", sc.p_wrong_project_number);
    cp.put_f64("scenario.p_usda_title_garbled", sc.p_usda_title_garbled);
    cp.put_f64("scenario.p_director_missing", sc.p_director_missing);
    cp.put_f64("scenario.p_director_unlisted", sc.p_director_unlisted);
    let oc = &cfg.oracle;
    cp.put_display("oracle.seed", oc.seed);
    cp.put_f64("oracle.p_unsure_generic", oc.p_unsure_generic);
    cp.put_f64("oracle.p_unsure_similar", oc.p_unsure_similar);
    cp.put_f64("oracle.p_initial_miss", oc.p_initial_miss);
    cp.put_f64("oracle.p_initial_waffle", oc.p_initial_waffle);
    cp.put_display("seed", cfg.seed);
    cp.put_display("plan.overlap_k", cfg.plan.overlap_k);
    cp.put_f64("plan.oc_threshold", cfg.plan.oc_threshold);
    cp.put("label_rounds", usize_list(&cfg.label_rounds));
    cp.put("eval_rounds", usize_list(&cfg.eval_rounds));
    cp.put_display("debugger_top_k", cfg.debugger_top_k);
    cp.put_display("retry.max_retries", cfg.retry.max_retries);
    cp.put_display("retry.base_delay_ms", cfg.retry.base_delay_ms);
    cp.put_display("retry.max_delay_ms", cfg.retry.max_delay_ms);
    cp.put_display("retry.jitter_seed", cfg.retry.jitter_seed);
    cp.put_display("faults.seed", cfg.faults.seed);
    cp.put_f64("faults.p_oracle_unavailable", cfg.faults.p_oracle_unavailable);
    cp.put_f64("faults.p_oracle_timeout", cfg.faults.p_oracle_timeout);
    cp.put_display("faults.max_fault_attempts", cfg.faults.max_fault_attempts);
    cp.put_f64("faults.p_corrupt_row", cfg.faults.p_corrupt_row);
    cp.put_f64("faults.max_quarantine_fraction", cfg.faults.max_quarantine_fraction);
    cp.put("faults.crash_after", cfg.faults.crash_after.clone().unwrap_or_default());
    cp.put_f64("faults.serve.p_crash", cfg.faults.serve.p_crash);
    cp.put_f64("faults.serve.p_torn_tail", cfg.faults.serve.p_torn_tail);
    cp.put_f64("faults.serve.p_snapshot_corrupt", cfg.faults.serve.p_snapshot_corrupt);
    cp.put_f64("faults.serve.p_latency_spike", cfg.faults.serve.p_latency_spike);
    cp.put_display("faults.serve.latency_spike_ms", cfg.faults.serve.latency_spike_ms);
    cp.put_f64("faults.serve.p_burst", cfg.faults.serve.p_burst);
    cp.put_display("faults.serve.burst_len", cfg.faults.serve.burst_len);
    cp.put_display("faults.serve.swap_every", cfg.faults.serve.swap_every);
    cp
}

fn config_from_checkpoint(cp: &Checkpoint) -> Result<CaseStudyConfig, CoreError> {
    let scenario = ScenarioConfig {
        seed: cp.get_parsed("scenario.seed")?,
        n_awards: cp.get_parsed("scenario.n_awards")?,
        n_extra_awards: cp.get_parsed("scenario.n_extra_awards")?,
        n_usda: cp.get_parsed("scenario.n_usda")?,
        n_employees: cp.get_parsed("scenario.n_employees")?,
        n_vendors: cp.get_parsed("scenario.n_vendors")?,
        n_subawards: cp.get_parsed("scenario.n_subawards")?,
        n_object_codes: cp.get_parsed("scenario.n_object_codes")?,
        n_org_units: cp.get_parsed("scenario.n_org_units")?,
        frac_federal: cp.get_parsed("scenario.frac_federal")?,
        p_in_usda: cp.get_parsed("scenario.p_in_usda")?,
        p_two_records: cp.get_parsed("scenario.p_two_records")?,
        p_three_records: cp.get_parsed("scenario.p_three_records")?,
        p_federal_award_present: cp.get_parsed("scenario.p_federal_award_present")?,
        p_project_number_present: cp.get_parsed("scenario.p_project_number_present")?,
        p_generic_title: cp.get_parsed("scenario.p_generic_title")?,
        p_title_typo: cp.get_parsed("scenario.p_title_typo")?,
        p_filler_multistate_clone: cp.get_parsed("scenario.p_filler_multistate_clone")?,
        p_sibling_title: cp.get_parsed("scenario.p_sibling_title")?,
        p_wrong_project_number: cp.get_parsed("scenario.p_wrong_project_number")?,
        p_usda_title_garbled: cp.get_parsed("scenario.p_usda_title_garbled")?,
        p_director_missing: cp.get_parsed("scenario.p_director_missing")?,
        p_director_unlisted: cp.get_parsed("scenario.p_director_unlisted")?,
    };
    let oracle = OracleConfig {
        seed: cp.get_parsed("oracle.seed")?,
        p_unsure_generic: cp.get_parsed("oracle.p_unsure_generic")?,
        p_unsure_similar: cp.get_parsed("oracle.p_unsure_similar")?,
        p_initial_miss: cp.get_parsed("oracle.p_initial_miss")?,
        p_initial_waffle: cp.get_parsed("oracle.p_initial_waffle")?,
    };
    let crash_after = cp.get("faults.crash_after")?.to_string();
    Ok(CaseStudyConfig {
        scenario,
        oracle,
        seed: cp.get_parsed("seed")?,
        plan: BlockingPlan {
            overlap_k: cp.get_parsed("plan.overlap_k")?,
            oc_threshold: cp.get_parsed("plan.oc_threshold")?,
        },
        label_rounds: parse_usize_list(cp.get("label_rounds")?)?,
        eval_rounds: parse_usize_list(cp.get("eval_rounds")?)?,
        debugger_top_k: cp.get_parsed("debugger_top_k")?,
        retry: RetryPolicy {
            max_retries: cp.get_parsed("retry.max_retries")?,
            base_delay_ms: cp.get_parsed("retry.base_delay_ms")?,
            max_delay_ms: cp.get_parsed("retry.max_delay_ms")?,
            jitter_seed: cp.get_parsed("retry.jitter_seed")?,
        },
        faults: FaultPlan {
            seed: cp.get_parsed("faults.seed")?,
            p_oracle_unavailable: cp.get_parsed("faults.p_oracle_unavailable")?,
            p_oracle_timeout: cp.get_parsed("faults.p_oracle_timeout")?,
            max_fault_attempts: cp.get_parsed("faults.max_fault_attempts")?,
            p_corrupt_row: cp.get_parsed("faults.p_corrupt_row")?,
            max_quarantine_fraction: cp.get_parsed("faults.max_quarantine_fraction")?,
            crash_after: if crash_after.is_empty() { None } else { Some(crash_after) },
            serve: ServeFaultPlan {
                p_crash: cp.get_parsed("faults.serve.p_crash")?,
                p_torn_tail: cp.get_parsed("faults.serve.p_torn_tail")?,
                p_snapshot_corrupt: cp.get_parsed("faults.serve.p_snapshot_corrupt")?,
                p_latency_spike: cp.get_parsed("faults.serve.p_latency_spike")?,
                latency_spike_ms: cp.get_parsed("faults.serve.latency_spike_ms")?,
                p_burst: cp.get_parsed("faults.serve.p_burst")?,
                burst_len: cp.get_parsed("faults.serve.burst_len")?,
                swap_every: cp.get_parsed("faults.serve.swap_every")?,
            },
        },
    })
}

/// Saves (when checkpointing) and then, if the fault plan says so, crashes —
/// *after* the save, so the injected crash always leaves a resumable
/// directory behind.
fn finish_stage(
    dir: Option<&Path>,
    faults: &FaultPlan,
    stage: &str,
    cp: &Checkpoint,
) -> Result<(), CoreError> {
    if let Some(d) = dir {
        cp.save(d, stage)?;
    }
    if faults.crash_after.as_deref() == Some(stage) {
        return Err(CoreError::InjectedCrash(stage.to_string()));
    }
    Ok(())
}

fn load_stage(dir: Option<&Path>, stage: &str) -> Result<Option<Checkpoint>, CoreError> {
    match dir {
        Some(d) => Checkpoint::load(d, stage),
        None => Ok(None),
    }
}

/// The case study runner.
pub struct CaseStudy {
    cfg: CaseStudyConfig,
}

/// Identifier-level pair catalog used for estimation sampling: which
/// `(award, accession)` pairs exist in the evaluation universe, and the
/// row coordinates to build the oracle's view from.
struct PairCatalog<'t> {
    entries: Vec<(String, String, &'t Table, Pair)>,
}

impl<'t> PairCatalog<'t> {
    fn build(
        universes: &[(&'t Table, &'t Table, Vec<Pair>)],
    ) -> PairCatalog<'t> {
        let mut seen: HashMap<(String, String), usize> = HashMap::new();
        let mut entries = Vec::new();
        for (u, s, pairs) in universes {
            for p in pairs {
                let award = award_of(u, p.left);
                let acc = accession_of(s, p.right);
                let key = (award.clone(), acc.clone());
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(key) {
                    e.insert(entries.len());
                    // The USDA table is shared; store the UMETRICS side.
                    entries.push((award, acc, *u, *p));
                }
            }
        }
        PairCatalog { entries }
    }
}

impl CaseStudy {
    /// Creates a runner.
    pub fn new(cfg: CaseStudyConfig) -> CaseStudy {
        CaseStudy { cfg }
    }

    /// Replays the whole case study uninterrupted (no checkpoints).
    /// Deterministic in the configured seeds — including any injected
    /// faults, which are themselves seeded.
    pub fn run(&self) -> Result<CaseStudyReport, CoreError> {
        self.run_stages(None)
    }

    /// Like [`CaseStudy::run`], checkpointing every stage into `dir`.
    ///
    /// A fresh directory gets a `config.ckpt` guard first; re-running over
    /// a directory written by a *different* configuration is an error.
    /// Stages already checkpointed are loaded instead of recomputed, so a
    /// run killed after any stage picks up where it left off and produces a
    /// report bit-identical (modulo `resilience.resumed_stages`) to an
    /// uninterrupted run.
    pub fn run_checkpointed(&self, dir: &Path) -> Result<CaseStudyReport, CoreError> {
        let mine = config_checkpoint(&self.cfg);
        match Checkpoint::load(dir, "config")? {
            Some(stored) if stored != mine => {
                return Err(CoreError::Checkpoint(format!(
                    "checkpoint directory {dir:?} belongs to a different configuration"
                )))
            }
            Some(_) => {}
            None => mine.save(dir, "config")?,
        }
        self.run_stages(Some(dir))
    }

    /// Resumes a checkpointed run from `dir` alone: the configuration is
    /// reconstructed from the `config.ckpt` guard, completed stages load
    /// from their checkpoints, and the rest recompute.
    pub fn resume(dir: &Path) -> Result<CaseStudyReport, CoreError> {
        let stored = Checkpoint::load(dir, "config")?.ok_or_else(|| {
            CoreError::Checkpoint(format!("no config checkpoint in {dir:?} to resume from"))
        })?;
        let cfg = config_from_checkpoint(&stored)?;
        CaseStudy::new(cfg).run_stages(Some(dir))
    }

    /// The staged runner behind [`CaseStudy::run`] and friends. Each stage
    /// either loads its checkpoint (when `dir` has one) or executes and
    /// saves. The scenario, projections, and oracle are *context*, not a
    /// stage: they are cheap, deterministic, and regenerated every run.
    fn run_stages(&self, dir: Option<&Path>) -> Result<CaseStudyReport, CoreError> {
        let cfg = &self.cfg;
        let mut resilience = ResilienceReport::default();

        // ---- Eager context. ----
        let mut scenario =
            Scenario::generate(cfg.scenario.clone()).map_err(CoreError::Datagen)?;
        if cfg.faults.p_corrupt_row > 0.0 {
            // Round-trip USDA through its CSV form, corrupt it with the
            // seeded corruptor, and re-ingest through quarantine: malformed
            // rows are diverted and recorded, not fatal — unless they
            // exceed the abort threshold.
            let clean = csv::write_str(&scenario.usda);
            let dirty = corrupt_csv(&clean, cfg.faults.seed, cfg.faults.p_corrupt_row);
            let out = csv::read_quarantine(
                scenario.usda.name().to_string(),
                &dirty,
                cfg.faults.max_quarantine_fraction,
            )?;
            resilience.quarantined_rows = out.quarantined.len();
            scenario.usda = out.table;
        }
        let oracle = Oracle::new(&scenario.truth, cfg.oracle);

        // ---- Section 6: pre-processing. ProjectNumber joins later
        // (Section 10), but carrying it from the start simplifies the run;
        // the initial rules simply do not look at it. ----
        let u = project_umetrics(&scenario.award_agg, &scenario.employees)?;
        let empty_emp = Table::new("emp", scenario.employees.schema().clone());
        let u_extra = project_umetrics(&scenario.extra_award_agg, &empty_emp)?;
        let s = project_usda(&scenario.usda, true)?;

        let m1_rules = RuleSet {
            positive: vec![EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber")],
            negative: vec![],
        };

        // Cross-stage carriers: produced by one stage, consumed by later
        // ones — decoded from the producing stage's checkpoint on resume.
        // The candidate set is the exception: too large to checkpoint, it
        // is recomputed lazily (blocking is deterministic) when a later
        // stage needs it and blocking itself was loaded.
        let mut candidates: Option<CandidateSet> = None;
        let labeled_slot: Option<LabeledSet>;
        let combined_slot: Option<MatchIds>;
        let fids_slot: Option<MatchIds>;
        let iris_slot: Option<MatchIds>;
        let universe_orig: Vec<Pair>;
        let universe_patch: Vec<Pair>;
        let mut resumed: Vec<String> = Vec::new();

        // Report fields, deferred-initialized: every stage assigns its
        // fields on both the load and the execute path.
        let table_summaries: Vec<(String, usize, usize)>;
        let c1: usize;
        let c2: usize;
        let c3: usize;
        let c2_and_c3: usize;
        let c2_only: usize;
        let c3_only: usize;
        let consolidated: usize;
        let sweep: Vec<(usize, usize)>;
        let blocking_recall: f64;
        let debugger_inspected: usize;
        let debugger_true_matches: usize;
        let label_rounds: Vec<LabelingRound>;
        let label_debug_hits: usize;
        let selection_round1: Vec<MatcherScore>;
        let mismatches_round1: usize;
        let selection_round2: Vec<MatcherScore>;
        let initial_sure: usize;
        let initial_predicted: usize;
        let initial_total: usize;
        let rule2_in_cartesian: usize;
        let rule2_in_candidates: usize;
        let rule2_predicted: usize;
        let patched: PatchedCounts;
        let multiplicity: MultiplicityReport;
        let clusters: (usize, usize);
        let mut estimates: Vec<EstimateRow> = Vec::new();
        let mut final_estimates: Vec<EstimateRow> = Vec::new();
        let flipped: usize;
        let final_total: usize;
        let truth_scores: Vec<(String, TruthScore)>;

        // ---- Stage: setup — Section 4, understanding the data. ----
        let stage = "setup";
        if let Some(cp) = load_stage(dir, stage)? {
            resumed.push(stage.to_string());
            table_summaries = cp
                .get_records("table_summaries")?
                .iter()
                .map(|r| {
                    Ok((
                        field(r, 0, "table_summaries")?.to_string(),
                        parse_field(r, 1, "table_summaries")?,
                        parse_field(r, 2, "table_summaries")?,
                    ))
                })
                .collect::<Result<_, CoreError>>()?;
        } else {
            table_summaries = scenario
                .raw_tables()
                .iter()
                .map(|t| (t.name().to_string(), t.n_rows(), t.n_cols()))
                .collect();
            let mut cp = Checkpoint::new();
            let recs: Vec<Vec<String>> = table_summaries
                .iter()
                .map(|(n, r, c)| vec![n.clone(), r.to_string(), c.to_string()])
                .collect();
            cp.put_records("table_summaries", &recs);
            finish_stage(dir, &cfg.faults, stage, &cp)?;
        }

        // ---- Stage: blocking — Section 7, with the debugger audit. ----
        let stage = "blocking";
        if let Some(cp) = load_stage(dir, stage)? {
            resumed.push(stage.to_string());
            c1 = cp.get_parsed("c1")?;
            c2 = cp.get_parsed("c2")?;
            c3 = cp.get_parsed("c3")?;
            c2_and_c3 = cp.get_parsed("c2_and_c3")?;
            c2_only = cp.get_parsed("c2_only")?;
            c3_only = cp.get_parsed("c3_only")?;
            consolidated = cp.get_parsed("consolidated")?;
            sweep = cp
                .get_records("sweep")?
                .iter()
                .map(|r| Ok((parse_field(r, 0, "sweep")?, parse_field(r, 1, "sweep")?)))
                .collect::<Result<_, CoreError>>()?;
            blocking_recall = cp.get_parsed("blocking_recall")?;
            debugger_inspected = cp.get_parsed("debugger_inspected")?;
            debugger_true_matches = cp.get_parsed("debugger_true_matches")?;
        } else {
            let blocking = run_blocking(&u, &s, &cfg.plan)?;
            sweep = overlap_threshold_sweep(&u, &s, &[1, 2, 3, 4, 5, 6, 7])?;
            blocking_recall = {
                let ids = MatchIds::from_candidates(&u, &s, &blocking.consolidated)?;
                let initial_truth = scenario.truth.n_matches_initial();
                if initial_truth == 0 {
                    1.0
                } else {
                    let kept = scenario
                        .truth
                        .iter()
                        .filter(|(a, c)| {
                            !scenario.truth.is_extra_award(a) && ids.contains(a, c)
                        })
                        .count();
                    kept as f64 / initial_truth as f64
                }
            };

            // Blocking-debugger audit (MatchCatcher).
            let debug = debug_blocking(
                &BlockingDebugger::new("AwardTitle", "AwardTitle")
                    .with_top_k(cfg.debugger_top_k),
                &u,
                &s,
                &blocking.consolidated,
            )?;
            debugger_inspected = debug.len();
            debugger_true_matches = debug
                .iter()
                .filter(|d| {
                    scenario
                        .truth
                        .is_match(&award_of(&u, d.pair.left), &accession_of(&s, d.pair.right))
                })
                .count();
            c1 = blocking.c1.len();
            c2 = blocking.c2.len();
            c3 = blocking.c3.len();
            c2_and_c3 = blocking.c2_and_c3();
            c2_only = blocking.c2_only();
            c3_only = blocking.c3_only();
            consolidated = blocking.consolidated.len();
            candidates = Some(blocking.consolidated);

            let mut cp = Checkpoint::new();
            cp.put_display("c1", c1);
            cp.put_display("c2", c2);
            cp.put_display("c3", c3);
            cp.put_display("c2_and_c3", c2_and_c3);
            cp.put_display("c2_only", c2_only);
            cp.put_display("c3_only", c3_only);
            cp.put_display("consolidated", consolidated);
            let recs: Vec<Vec<String>> =
                sweep.iter().map(|(k, n)| vec![k.to_string(), n.to_string()]).collect();
            cp.put_records("sweep", &recs);
            cp.put_f64("blocking_recall", blocking_recall);
            cp.put_display("debugger_inspected", debugger_inspected);
            cp.put_display("debugger_true_matches", debugger_true_matches);
            finish_stage(dir, &cfg.faults, stage, &cp)?;
        }

        // ---- Stage: labeling — Section 8, sampling and labeling. When
        // the fault plan gives the oracle non-zero fault rates, labeling
        // goes through the flaky wrapper with retry/backoff, degrading
        // gracefully to Unsure when retries run out. ----
        let stage = "labeling";
        if let Some(cp) = load_stage(dir, stage)? {
            resumed.push(stage.to_string());
            let mut lab = LabeledSet::new();
            for r in cp.get_records("labeled")? {
                lab.insert(
                    Pair::new(parse_field(&r, 0, "labeled")?, parse_field(&r, 1, "labeled")?),
                    label_from_text(field(&r, 2, "labeled")?)?,
                );
            }
            labeled_slot = Some(lab);
            label_rounds = get_rounds(&cp, "rounds")?;
            let ledger = ResilienceReport {
                oracle_faults: cp.get_parsed("oracle_faults")?,
                oracle_retries: cp.get_parsed("oracle_retries")?,
                degraded_labels: cp.get_parsed("degraded_labels")?,
                degraded_pairs: cp
                    .get_records("degraded_pairs")?
                    .iter()
                    .map(|r| {
                        Ok((
                            field(r, 0, "degraded_pairs")?.to_string(),
                            field(r, 1, "degraded_pairs")?.to_string(),
                        ))
                    })
                    .collect::<Result<_, CoreError>>()?,
                total_backoff_ms: cp.get_parsed("total_backoff_ms")?,
                ..ResilienceReport::default()
            };
            resilience.absorb(&ledger);
        } else {
            if candidates.is_none() {
                candidates = Some(run_blocking(&u, &s, &cfg.plan)?.consolidated);
            }
            let cands = candidates
                .as_ref()
                .ok_or_else(|| CoreError::Pipeline("candidate set unavailable".into()))?;
            let oracle_flaky =
                cfg.faults.p_oracle_unavailable > 0.0 || cfg.faults.p_oracle_timeout > 0.0;
            let (lab, rounds, ledger) = if oracle_flaky {
                let flaky = FlakyOracle::new(
                    Oracle::new(&scenario.truth, cfg.oracle),
                    cfg.faults.flaky_config(),
                );
                run_labeling_resilient(
                    &u, &s, cands, &flaky, &cfg.label_rounds, cfg.seed, &cfg.retry,
                )?
            } else {
                run_labeling_resilient(
                    &u,
                    &s,
                    cands,
                    &oracle,
                    &cfg.label_rounds,
                    cfg.seed,
                    &RetryPolicy::none(),
                )?
            };
            let mut cp = Checkpoint::new();
            let recs: Vec<Vec<String>> = lab
                .iter()
                .map(|lp| {
                    vec![
                        lp.pair.left.to_string(),
                        lp.pair.right.to_string(),
                        label_text(lp.label).to_string(),
                    ]
                })
                .collect();
            cp.put_records("labeled", &recs);
            put_rounds(&mut cp, "rounds", &rounds);
            cp.put_display("oracle_faults", ledger.oracle_faults);
            cp.put_display("oracle_retries", ledger.oracle_retries);
            cp.put_display("degraded_labels", ledger.degraded_labels);
            cp.put_display("total_backoff_ms", ledger.total_backoff_ms);
            let recs: Vec<Vec<String>> = ledger
                .degraded_pairs
                .iter()
                .map(|(a, c)| vec![a.clone(), c.clone()])
                .collect();
            cp.put_records("degraded_pairs", &recs);
            label_rounds = rounds;
            resilience.absorb(&ledger);
            labeled_slot = Some(lab);
            finish_stage(dir, &cfg.faults, stage, &cp)?;
        }
        let labeled = labeled_slot
            .as_ref()
            .ok_or_else(|| CoreError::Pipeline("labeled set unavailable".into()))?;
        let label_counts = labeled.counts();

        // ---- Stage: label_debug — leave-one-out label debugging (random
        // forest, as the paper). ----
        let stage = "label_debug";
        if let Some(cp) = load_stage(dir, stage)? {
            resumed.push(stage.to_string());
            label_debug_hits = cp.get_parsed("label_debug_hits")?;
        } else {
            let stage1 = MatcherStage::new(cfg.seed);
            let features1 = em_features::auto_features(&u, &s, &stage1.feature_opts);
            label_debug_hits = debug_labels(
                &u,
                &s,
                &features1,
                labeled,
                &m1_rules,
                &em_ml::forest::RandomForestLearner { seed: cfg.seed, ..Default::default() },
            )?
            .len();
            let mut cp = Checkpoint::new();
            cp.put_display("label_debug_hits", label_debug_hits);
            finish_stage(dir, &cfg.faults, stage, &cp)?;
        }

        // ---- Stage: selection — Section 9, matcher selection, two
        // rounds. The features are recomputed per stage (deterministic), so
        // only the rankings need checkpointing. ----
        let stage = "selection";
        if let Some(cp) = load_stage(dir, stage)? {
            resumed.push(stage.to_string());
            selection_round1 = get_scores(&cp, "selection_round1")?;
            mismatches_round1 = cp.get_parsed("mismatches_round1")?;
            selection_round2 = get_scores(&cp, "selection_round2")?;
        } else {
            let stage1 = MatcherStage::new(cfg.seed);
            let features1 = em_features::auto_features(&u, &s, &stage1.feature_opts);
            let (data1, _imp1) = build_training_data(&u, &s, &features1, labeled, &m1_rules)?;
            let ranking1 = select_matcher(&data1, &stage1)?;
            selection_round1 = ranking1
                .iter()
                .map(|r| MatcherScore {
                    name: r.learner.clone(),
                    precision: r.precision(),
                    recall: r.recall(),
                    f1: r.f1(),
                })
                .collect();
            // Debug the round-1 winner: split-half mismatch mining.
            let top1 = ranking1.first().ok_or_else(|| {
                CoreError::Pipeline("matcher selection produced no ranking".into())
            })?;
            mismatches_round1 = {
                let learners = em_ml::standard_learners(cfg.seed);
                let winner1 =
                    learners.iter().find(|l| l.name() == top1.learner).ok_or_else(|| {
                        CoreError::Pipeline(format!(
                            "round-1 winner {:?} is not a standard learner",
                            top1.learner
                        ))
                    })?;
                em_ml::debug::mine_mismatches(winner1.as_ref(), &data1, cfg.seed)?.len()
            };

            let stage2 = MatcherStage::new(cfg.seed).with_case_insensitive();
            let features2 = em_features::auto_features(&u, &s, &stage2.feature_opts);
            let (data2, _imp2) = build_training_data(&u, &s, &features2, labeled, &m1_rules)?;
            let ranking2 = select_matcher(&data2, &stage2)?;
            selection_round2 = ranking2
                .iter()
                .map(|r| MatcherScore {
                    name: r.learner.clone(),
                    precision: r.precision(),
                    recall: r.recall(),
                    f1: r.f1(),
                })
                .collect();
            let mut cp = Checkpoint::new();
            put_scores(&mut cp, "selection_round1", &selection_round1);
            cp.put_display("mismatches_round1", mismatches_round1);
            put_scores(&mut cp, "selection_round2", &selection_round2);
            finish_stage(dir, &cfg.faults, stage, &cp)?;
        }
        let winner = selection_round2.first().map(|m| m.name.clone());

        // ---- Stage: matching — Figure 8 initial workflow, Section 10
        // revised definition + Figure 9 patch, multiplicity, IRIS, and the
        // Figure 10 negative rules. The matcher is retrained here from the
        // checkpointed labels and winner name (deterministic), so batch
        // resume never needs the model serialized; online serving, which
        // cannot retrain per process, snapshots the same artifacts via
        // [`CaseStudy::train_serving_artifacts`]. ----
        let stage = "matching";
        if let Some(cp) = load_stage(dir, stage)? {
            resumed.push(stage.to_string());
            initial_sure = cp.get_parsed("initial_sure")?;
            initial_predicted = cp.get_parsed("initial_predicted")?;
            initial_total = cp.get_parsed("initial_total")?;
            rule2_in_cartesian = cp.get_parsed("rule2_in_cartesian")?;
            rule2_in_candidates = cp.get_parsed("rule2_in_candidates")?;
            rule2_predicted = cp.get_parsed("rule2_predicted")?;
            patched = PatchedCounts {
                sure_original: cp.get_parsed("patched.sure_original")?,
                sure_extra: cp.get_parsed("patched.sure_extra")?,
                candidates_original: cp.get_parsed("patched.candidates_original")?,
                candidates_extra: cp.get_parsed("patched.candidates_extra")?,
                predicted_original: cp.get_parsed("patched.predicted_original")?,
                predicted_extra: cp.get_parsed("patched.predicted_extra")?,
                total: cp.get_parsed("patched.total")?,
            };
            multiplicity = MultiplicityReport {
                one_to_one: cp.get_parsed("multiplicity.one_to_one")?,
                one_to_many: cp.get_parsed("multiplicity.one_to_many")?,
                many_to_one: cp.get_parsed("multiplicity.many_to_one")?,
                many_to_many: cp.get_parsed("multiplicity.many_to_many")?,
                example_fanout_awards: cp
                    .get_records("multiplicity.fanout")?
                    .iter()
                    .map(|r| {
                        Ok((
                            field(r, 0, "multiplicity.fanout")?.to_string(),
                            parse_field(r, 1, "multiplicity.fanout")?,
                        ))
                    })
                    .collect::<Result<_, CoreError>>()?,
            };
            clusters =
                (cp.get_parsed("clusters.total")?, cp.get_parsed("clusters.one_to_one")?);
            flipped = cp.get_parsed("flipped")?;
            final_total = cp.get_parsed("final_total")?;
            combined_slot = Some(get_ids(&cp, "combined")?);
            fids_slot = Some(get_ids(&cp, "fids")?);
            iris_slot = Some(get_ids(&cp, "iris_ids")?);
            universe_orig = get_pairs(&cp, "universe_orig")?;
            universe_patch = get_pairs(&cp, "universe_patch")?;
        } else {
            let win = winner.as_ref().ok_or_else(|| {
                CoreError::Pipeline("matcher selection produced no winner".into())
            })?;
            let stage2 = MatcherStage::new(cfg.seed).with_case_insensitive();
            let features2 = em_features::auto_features(&u, &s, &stage2.feature_opts);
            let (data2, imp2) = build_training_data(&u, &s, &features2, labeled, &m1_rules)?;
            let matcher = train_matcher(features2, imp2, &data2, win, &stage2)?;

            // ---- Figure 8: the initial workflow (M1 + model). ----
            let initial_wf = EmWorkflow {
                rules: m1_rules.clone(),
                plan: cfg.plan,
                matcher: &matcher,
                apply_negative: false,
            };
            let initial = initial_wf.run(&u, &s)?;
            initial_sure = initial.sure.len();
            initial_predicted = initial.predicted.len();
            initial_total = initial.matches.len();

            // ---- Section 10: the revised match definition. ----
            let rule2 =
                EqualityRule::suffix_equals("award=project", "AwardNumber", "ProjectNumber");
            let rule2_all = rule2.find_all(&u, &s)?;
            rule2_in_cartesian = rule2_all.len();
            rule2_in_candidates =
                rule2_all.iter().filter(|p| initial.candidates.contains(p)).count();
            rule2_predicted =
                rule2_all.iter().filter(|p| initial.predicted.contains(p)).count();

            // ---- Figure 9: patched workflow, full rules + extra data. ----
            let patched_wf = EmWorkflow {
                rules: standard_rules(),
                plan: cfg.plan,
                matcher: &matcher,
                apply_negative: false,
            };
            let (orig, patch) = patched_wf.run_patched(&u, &u_extra, &s)?;
            let ids_orig = MatchIds::from_candidates(&u, &s, &orig.matches)?;
            let ids_patch = MatchIds::from_candidates(&u_extra, &s, &patch.matches)?;
            let combined = ids_orig.union(&ids_patch);
            patched = PatchedCounts {
                sure_original: orig.sure.len(),
                sure_extra: patch.sure.len(),
                candidates_original: orig.candidates.len(),
                candidates_extra: patch.candidates.len(),
                predicted_original: orig.predicted.len(),
                predicted_extra: patch.predicted.len(),
                total: combined.len(),
            };

            // ---- Section 10: the cluster-level question. ----
            multiplicity = analyze_multiplicity(&combined);
            let cluster_list = cluster_matches(&combined);
            clusters = (
                cluster_list.len(),
                cluster_list.iter().filter(|c| c.is_one_to_one()).count(),
            );

            // ---- Section 11 prerequisite: the IRIS baseline. ----
            let iris = IrisMatcher::standard("AwardNumber", "AwardNumber", "ProjectNumber");
            let u_all = {
                let mut t =
                    u.drop_column("RecordId")?.union(&u_extra.drop_column("RecordId")?)?;
                t.set_name("UMETRICSProjectedAll");
                t.add_id_column("RecordId")?
            };
            let iris_ids = MatchIds::from_candidates(&u_all, &s, &iris.predict(&u_all, &s)?)?;

            // ---- Section 12: negative rules (Figure 10). ----
            let final_wf = EmWorkflow { apply_negative: true, ..patched_wf };
            let (forig, fpatch) = final_wf.run_patched(&u, &u_extra, &s)?;
            let fids = MatchIds::from_candidates(&u, &s, &forig.matches)?
                .union(&MatchIds::from_candidates(&u_extra, &s, &fpatch.matches)?);
            flipped = forig.flipped.len() + fpatch.flipped.len();
            final_total = fids.len();
            universe_orig = orig.universe().to_vec();
            universe_patch = patch.universe().to_vec();

            let mut cp = Checkpoint::new();
            cp.put_display("initial_sure", initial_sure);
            cp.put_display("initial_predicted", initial_predicted);
            cp.put_display("initial_total", initial_total);
            cp.put_display("rule2_in_cartesian", rule2_in_cartesian);
            cp.put_display("rule2_in_candidates", rule2_in_candidates);
            cp.put_display("rule2_predicted", rule2_predicted);
            cp.put_display("patched.sure_original", patched.sure_original);
            cp.put_display("patched.sure_extra", patched.sure_extra);
            cp.put_display("patched.candidates_original", patched.candidates_original);
            cp.put_display("patched.candidates_extra", patched.candidates_extra);
            cp.put_display("patched.predicted_original", patched.predicted_original);
            cp.put_display("patched.predicted_extra", patched.predicted_extra);
            cp.put_display("patched.total", patched.total);
            cp.put_display("multiplicity.one_to_one", multiplicity.one_to_one);
            cp.put_display("multiplicity.one_to_many", multiplicity.one_to_many);
            cp.put_display("multiplicity.many_to_one", multiplicity.many_to_one);
            cp.put_display("multiplicity.many_to_many", multiplicity.many_to_many);
            let recs: Vec<Vec<String>> = multiplicity
                .example_fanout_awards
                .iter()
                .map(|(a, n)| vec![a.clone(), n.to_string()])
                .collect();
            cp.put_records("multiplicity.fanout", &recs);
            cp.put_display("clusters.total", clusters.0);
            cp.put_display("clusters.one_to_one", clusters.1);
            cp.put_display("flipped", flipped);
            cp.put_display("final_total", final_total);
            put_ids(&mut cp, "combined", &combined);
            put_ids(&mut cp, "fids", &fids);
            put_ids(&mut cp, "iris_ids", &iris_ids);
            put_pairs(&mut cp, "universe_orig", &universe_orig);
            put_pairs(&mut cp, "universe_patch", &universe_patch);
            combined_slot = Some(combined);
            fids_slot = Some(fids);
            iris_slot = Some(iris_ids);
            finish_stage(dir, &cfg.faults, stage, &cp)?;
        }
        let combined = combined_slot
            .as_ref()
            .ok_or_else(|| CoreError::Pipeline("combined match ids unavailable".into()))?;
        let fids = fids_slot
            .as_ref()
            .ok_or_else(|| CoreError::Pipeline("final match ids unavailable".into()))?;
        let iris_ids = iris_slot
            .as_ref()
            .ok_or_else(|| CoreError::Pipeline("IRIS match ids unavailable".into()))?;

        // ---- Stage: estimate — Section 11/12 Corleone estimation. ----
        let stage = "estimate";
        if let Some(cp) = load_stage(dir, stage)? {
            resumed.push(stage.to_string());
            estimates = get_estimates(&cp, "estimates")?;
            final_estimates = get_estimates(&cp, "final_estimates")?;
        } else {
            let catalog = PairCatalog::build(&[
                (&u, &s, universe_orig.clone()),
                (&u_extra, &s, universe_patch.clone()),
            ]);
            let mut eval_order: Vec<usize> = (0..catalog.entries.len()).collect();
            eval_order.shuffle(&mut StdRng::seed_from_u64(cfg.seed ^ 0x5eed));

            let label_item = |idx: usize, predicted: &MatchIds| -> Result<SampleItem, CoreError> {
                let (award, acc, table, pair) = &catalog.entries[idx];
                let row = table.row(pair.left).ok_or_else(|| {
                    CoreError::Pipeline(format!(
                        "catalog row {} outside {}",
                        pair.left,
                        table.name()
                    ))
                })?;
                let srow = s.row(pair.right).ok_or_else(|| {
                    CoreError::Pipeline(format!("catalog row {} outside USDA", pair.right))
                })?;
                let view = PairView {
                    award_number: award,
                    accession: acc,
                    left_title: row.str("AwardTitle").unwrap_or(""),
                    right_title: srow.str("AwardTitle").unwrap_or(""),
                    right_award_number: srow.str("AwardNumber"),
                    right_project_number: srow.str("ProjectNumber"),
                };
                Ok(SampleItem {
                    predicted: predicted.contains(award, acc),
                    label: oracle.label(&view),
                })
            };

            let mut cumulative = 0usize;
            for &round in &cfg.eval_rounds {
                cumulative = (cumulative + round).min(eval_order.len());
                let sample_idx = &eval_order[..cumulative];
                let ours = sample_idx
                    .iter()
                    .map(|&i| label_item(i, combined))
                    .collect::<Result<Vec<_>, _>>()?;
                let iris_sample = sample_idx
                    .iter()
                    .map(|&i| label_item(i, iris_ids))
                    .collect::<Result<Vec<_>, _>>()?;
                let final_sample = sample_idx
                    .iter()
                    .map(|&i| label_item(i, fids))
                    .collect::<Result<Vec<_>, _>>()?;
                estimates.push(EstimateRow {
                    matcher: "learning".to_string(),
                    n_labels: cumulative,
                    estimate: estimate_accuracy(&ours, Z95),
                });
                estimates.push(EstimateRow {
                    matcher: "IRIS".to_string(),
                    n_labels: cumulative,
                    estimate: estimate_accuracy(&iris_sample, Z95),
                });
                final_estimates.push(EstimateRow {
                    matcher: "learning+rules".to_string(),
                    n_labels: cumulative,
                    estimate: estimate_accuracy(&final_sample, Z95),
                });
            }
            let mut cp = Checkpoint::new();
            put_estimates(&mut cp, "estimates", &estimates);
            put_estimates(&mut cp, "final_estimates", &final_estimates);
            finish_stage(dir, &cfg.faults, stage, &cp)?;
        }

        // ---- Stage: truth — ground-truth scores (generator privilege). ----
        let stage = "truth";
        if let Some(cp) = load_stage(dir, stage)? {
            resumed.push(stage.to_string());
            truth_scores = cp
                .get_records("truth_scores")?
                .iter()
                .map(|r| {
                    Ok((
                        field(r, 0, "truth_scores")?.to_string(),
                        TruthScore {
                            tp: parse_field(r, 1, "truth_scores")?,
                            fp: parse_field(r, 2, "truth_scores")?,
                            fn_: parse_field(r, 3, "truth_scores")?,
                            precision: parse_field(r, 4, "truth_scores")?,
                            recall: parse_field(r, 5, "truth_scores")?,
                            f1: parse_field(r, 6, "truth_scores")?,
                        },
                    ))
                })
                .collect::<Result<_, CoreError>>()?;
        } else {
            truth_scores = vec![
                ("IRIS".to_string(), score_ids(iris_ids, &scenario)),
                ("learning".to_string(), score_ids(combined, &scenario)),
                ("learning+rules".to_string(), score_ids(fids, &scenario)),
            ];
            let mut cp = Checkpoint::new();
            let recs: Vec<Vec<String>> = truth_scores
                .iter()
                .map(|(n, t)| {
                    vec![
                        n.clone(),
                        t.tp.to_string(),
                        t.fp.to_string(),
                        t.fn_.to_string(),
                        format!("{:?}", t.precision),
                        format!("{:?}", t.recall),
                        format!("{:?}", t.f1),
                    ]
                })
                .collect();
            cp.put_records("truth_scores", &recs);
            finish_stage(dir, &cfg.faults, stage, &cp)?;
        }

        resilience.resumed_stages = resumed;

        Ok(CaseStudyReport {
            table_summaries,
            c1,
            c2,
            c3,
            c2_and_c3,
            c2_only,
            c3_only,
            consolidated,
            sweep,
            blocking_recall,
            debugger_inspected,
            debugger_true_matches,
            label_rounds,
            label_counts,
            label_debug_hits,
            selection_round1,
            mismatches_round1,
            selection_round2,
            initial_sure,
            initial_predicted,
            initial_total,
            rule2_in_cartesian,
            rule2_in_candidates,
            rule2_predicted,
            patched,
            multiplicity,
            clusters,
            estimates,
            final_estimates,
            flipped,
            final_total,
            truth_scores,
            resilience,
        })
    }

    /// Runs just the scenario + projection + blocking prefix (used by
    /// benches that do not need the ML stages).
    pub fn prepare_tables(&self) -> Result<(Table, Table, Scenario), CoreError> {
        let scenario =
            Scenario::generate(self.cfg.scenario.clone()).map_err(CoreError::Datagen)?;
        let u = project_umetrics(&scenario.award_agg, &scenario.employees)?;
        let s = project_usda(&scenario.usda, true)?;
        Ok((u, s, scenario))
    }

    /// Trains the serving artifacts an online matching service needs,
    /// replaying exactly the batch pipeline's no-fault training path:
    /// blocking → iterative labeling → round-2 (case-insensitive) matcher
    /// selection → training of the winner. Fault injection is ignored —
    /// a workflow snapshot is always frozen from a clean run.
    pub fn train_serving_artifacts(&self) -> Result<ServingArtifacts, CoreError> {
        let cfg = &self.cfg;
        let scenario =
            Scenario::generate(cfg.scenario.clone()).map_err(CoreError::Datagen)?;
        let oracle = Oracle::new(&scenario.truth, cfg.oracle);
        let u = project_umetrics(&scenario.award_agg, &scenario.employees)?;
        let empty_emp = Table::new("emp", scenario.employees.schema().clone());
        let u_extra = project_umetrics(&scenario.extra_award_agg, &empty_emp)?;
        let s = project_usda(&scenario.usda, true)?;
        let m1_rules = RuleSet {
            positive: vec![EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber")],
            negative: vec![],
        };

        let cands = run_blocking(&u, &s, &cfg.plan)?.consolidated;
        let (labeled, _rounds, _ledger) = run_labeling_resilient(
            &u,
            &s,
            &cands,
            &oracle,
            &cfg.label_rounds,
            cfg.seed,
            &RetryPolicy::none(),
        )?;

        let stage2 = MatcherStage::new(cfg.seed).with_case_insensitive();
        let features2 = em_features::auto_features(&u, &s, &stage2.feature_opts);
        let (data2, imp2) = build_training_data(&u, &s, &features2, &labeled, &m1_rules)?;
        let ranking2 = select_matcher(&data2, &stage2)?;
        let win = ranking2
            .first()
            .map(|r| r.learner.clone())
            .ok_or_else(|| CoreError::Pipeline("matcher selection produced no winner".into()))?;
        let matcher = train_matcher(features2, imp2, &data2, &win, &stage2)?;

        Ok(ServingArtifacts {
            umetrics: u,
            extra_umetrics: u_extra,
            usda: s,
            matcher,
            plan: cfg.plan,
            rule_descs: standard_rule_descs(),
        })
    }
}

/// Everything an online matching service needs, frozen from one training
/// run: the projected tables, the trained matcher, the blocking plan, and
/// the declarative rule set of the final (Figure 10) workflow.
pub struct ServingArtifacts {
    /// Projected initial UMETRICS table (the batch left side).
    pub umetrics: Table,
    /// Projected extra-award UMETRICS table (the Section 10 arrivals the
    /// paper patches in — an online service receives these one at a time).
    pub extra_umetrics: Table,
    /// Projected USDA table (the corpus the service matches against).
    pub usda: Table,
    /// The trained matcher (features, imputer, fitted model).
    pub matcher: crate::matcher::TrainedMatcher,
    /// Blocking-plan parameters.
    pub plan: BlockingPlan,
    /// Declarative final rule set ([`standard_rule_descs`]).
    pub rule_descs: RuleSetDesc,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CaseStudyReport {
        CaseStudy::new(CaseStudyConfig::small()).run().unwrap()
    }

    #[test]
    fn end_to_end_shape_holds() {
        let r = report();

        // Figure 2: seven tables with the configured sizes.
        assert_eq!(r.table_summaries.len(), 7);

        // Blocking algebra consistent.
        assert_eq!(r.c2_and_c3 + r.c2_only, r.c2);
        assert_eq!(r.c2_and_c3 + r.c3_only, r.c3);
        assert!(r.consolidated >= r.c1.max(r.c2).max(r.c3));
        assert!(r.blocking_recall > 0.85, "blocking recall {}", r.blocking_recall);

        // Sweep monotone.
        for w in r.sweep.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }

        // Labeling totals consistent.
        let (yes, no, unsure) = r.label_counts;
        assert_eq!(
            yes + no + unsure,
            r.label_rounds.iter().map(|x| x.sampled).sum::<usize>()
        );
        assert!(yes > 0);

        // Selection: six matchers in both rounds; round-2 winner strong.
        assert_eq!(r.selection_round1.len(), 6);
        assert_eq!(r.selection_round2.len(), 6);
        assert!(r.selection_round2[0].f1 >= 0.7);

        // Figure 8 accounting.
        assert_eq!(r.initial_total, r.initial_sure + r.initial_predicted);

        // Section 10 containment chain: predicted ⊆ in-candidates ⊆ all.
        assert!(r.rule2_predicted <= r.rule2_in_candidates);
        assert!(r.rule2_in_candidates <= r.rule2_in_cartesian);
        assert!(r.rule2_in_cartesian > 0);

        // Patch accounting: total = all four parts (id-level, disjoint).
        assert_eq!(
            r.patched.total,
            r.patched.sure_original
                + r.patched.sure_extra
                + r.patched.predicted_original
                + r.patched.predicted_extra
        );

        // Multiplicity analysis covers every combined match, and clusters
        // can never outnumber matches.
        assert_eq!(r.multiplicity.total(), r.patched.total);
        assert!(r.clusters.0 <= r.patched.total);
        assert!(r.clusters.1 <= r.clusters.0);
        assert!(
            r.multiplicity.one_to_many + r.multiplicity.many_to_many > 0,
            "the generator's annual-report structure must produce 1:N matches"
        );

        // Estimation rows present for both cumulative label counts.
        assert_eq!(r.estimates.len(), 4);
        assert_eq!(r.final_estimates.len(), 2);

        // Final matches exist and negative rules flipped something.
        assert!(r.final_total > 0);
        assert!(r.final_total <= r.patched.total);
    }

    #[test]
    fn headline_result_shape() {
        // The paper's headline: IRIS has (near-)perfect precision but low
        // recall; learning has much higher recall; learning + negative
        // rules recovers precision while keeping recall high.
        let r = report();
        let get = |name: &str| {
            r.truth_scores
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.clone())
                .unwrap()
        };
        let iris = get("IRIS");
        let learning = get("learning");
        let final_ = get("learning+rules");

        assert!(iris.precision > 0.99, "IRIS precision {}", iris.precision);
        assert!(
            learning.recall > iris.recall + 0.1,
            "learning recall {} should beat IRIS {} clearly",
            learning.recall,
            iris.recall
        );
        assert!(
            final_.precision > learning.precision,
            "negative rules must improve precision ({} vs {})",
            final_.precision,
            learning.precision
        );
        assert!(final_.recall > iris.recall, "final recall still beats IRIS");
        assert!(final_.f1 >= learning.f1, "final F1 should not regress");
    }

    #[test]
    fn display_narrative_covers_the_stages() {
        let r = report();
        let text = r.to_string();
        for needle in ["blocking", "labels:", "matcher:", "matches:", "multiplicity", "truth[IRIS]"] {
            assert!(text.contains(needle), "narrative missing {needle:?}:\n{text}");
        }
    }

    #[test]
    fn deterministic_report() {
        let a = CaseStudy::new(CaseStudyConfig::small()).run().unwrap();
        let b = CaseStudy::new(CaseStudyConfig::small()).run().unwrap();
        assert_eq!(a, b, "two clean runs must agree bit-for-bit");
        assert!(a.resilience.is_clean(), "no faults configured, none reported");
    }

    #[test]
    fn config_round_trips_through_checkpoint() {
        let mut cfg = CaseStudyConfig::small();
        cfg.faults = FaultPlan {
            p_corrupt_row: 0.05,
            crash_after: Some("blocking".into()),
            ..FaultPlan::none()
        };
        let cp = config_checkpoint(&cfg);
        let back = config_from_checkpoint(&cp).unwrap();
        assert_eq!(back, cfg);
        // And through the on-disk text form.
        let again =
            config_from_checkpoint(&Checkpoint::from_text(&cp.to_text()).unwrap()).unwrap();
        assert_eq!(again, cfg);
        // No crash_after round-trips to None, not Some("").
        cfg.faults.crash_after = None;
        let back = config_from_checkpoint(&config_checkpoint(&cfg)).unwrap();
        assert_eq!(back.faults.crash_after, None);
    }

    #[test]
    fn checkpointed_rerun_loads_every_stage_and_matches() {
        let dir = std::env::temp_dir().join(format!("em-pipe-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let study = CaseStudy::new(CaseStudyConfig::small());
        let first = study.run_checkpointed(&dir).unwrap();
        assert!(first.resilience.resumed_stages.is_empty());
        for stage in STAGES {
            assert!(
                Checkpoint::path_for(&dir, stage).exists(),
                "stage {stage:?} should have checkpointed"
            );
        }

        // A second run over the same directory restores every stage.
        let mut second = study.run_checkpointed(&dir).unwrap();
        assert_eq!(
            second.resilience.resumed_stages,
            STAGES.iter().map(|s| s.to_string()).collect::<Vec<_>>()
        );
        second.resilience.resumed_stages.clear();
        assert_eq!(second, first, "a fully-resumed run reproduces the report bit-for-bit");

        // Resume from the directory alone (config reconstructed from disk).
        let mut resumed = CaseStudy::resume(&dir).unwrap();
        resumed.resilience.resumed_stages.clear();
        assert_eq!(resumed, first);

        // A different config must refuse the directory.
        let other =
            CaseStudy::new(CaseStudyConfig { seed: 43, ..CaseStudyConfig::small() });
        assert!(matches!(other.run_checkpointed(&dir), Err(CoreError::Checkpoint(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampling_seeds_survive_crash_resume() {
        // Regression: the labeling stage's sampled pairs (a pure function
        // of the pipeline seed) must be identical whether the run completed
        // uninterrupted or crashed right after labeling and resumed — the
        // resumed run restores the labeled set from the checkpoint instead
        // of re-drawing it, so every label-derived number is bit-identical.
        let uninterrupted = CaseStudy::new(CaseStudyConfig::small()).run().unwrap();

        let dir = std::env::temp_dir()
            .join(format!("em-pipe-crash-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = CaseStudyConfig::small();
        cfg.faults =
            FaultPlan { crash_after: Some("labeling".into()), ..FaultPlan::none() };
        let crashed = CaseStudy::new(cfg).run_checkpointed(&dir);
        assert!(matches!(crashed, Err(CoreError::InjectedCrash(_))));

        // Resume from the directory alone: the labeling stage *loads* (its
        // sampled pairs come back from the checkpoint, not a re-draw), so
        // the crash trigger never re-fires and the numbers cannot move.
        let mut resumed = CaseStudy::resume(&dir).unwrap();
        assert_eq!(
            resumed.resilience.resumed_stages,
            vec!["setup".to_string(), "blocking".into(), "labeling".into()]
        );
        resumed.resilience.resumed_stages.clear();
        assert_eq!(resumed.label_rounds, uninterrupted.label_rounds);
        assert_eq!(resumed.label_counts, uninterrupted.label_counts);
        assert_eq!(resumed, uninterrupted, "crash-resume must not move any number");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
