//! The end-to-end case study (Sections 4–12), orchestrated.
//!
//! [`CaseStudy::run`] replays the whole paper on a generated scenario:
//! understanding the data → blocking (with the footnote-3 accounting and
//! the threshold sweep) → blocking-debugger audit → iterative labeling with
//! the first-round cross-check → leave-one-out label debugging → two-round
//! matcher selection (case-sensitive, then + case-insensitive features) →
//! the Figure 8 initial workflow → the Section 10 complications (revised
//! match definition, extra data) via the Figure 9 patch → Corleone accuracy
//! estimation at 200 and 400 labels, ours vs IRIS → the Figure 10 negative
//! rules. The resulting [`CaseStudyReport`] carries every number the
//! paper's narrative quotes, plus ground-truth scores the paper could not
//! compute (we own the generator).

use crate::analysis::{analyze_multiplicity, cluster_matches, MultiplicityReport};
use crate::blocking_plan::{overlap_threshold_sweep, run_blocking, BlockingPlan};
use crate::error::CoreError;
use crate::labeling::{accession_of, award_of, run_labeling, LabelingRound};
use crate::matcher::{build_training_data, debug_labels, select_matcher, train_matcher, MatcherStage};
use crate::preprocess::{project_umetrics, project_usda};
use crate::workflow::{EmWorkflow, MatchIds};
use em_blocking::{debug_blocking, BlockingDebugger, Pair};
use em_datagen::{Oracle, OracleConfig, PairView, Scenario, ScenarioConfig};
use em_estimate::{estimate_accuracy, AccuracyEstimate, SampleItem, Z95};
use em_rules::{EqualityRule, IrisMatcher, NegativeRule, RuleSet};
use em_table::Table;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Configuration of a full case-study run.
#[derive(Debug, Clone)]
pub struct CaseStudyConfig {
    /// Scenario (data) configuration.
    pub scenario: ScenarioConfig,
    /// Labeling-oracle behaviour.
    pub oracle: OracleConfig,
    /// Pipeline seed (sampling, CV, stochastic learners).
    pub seed: u64,
    /// Blocking-plan parameters.
    pub plan: BlockingPlan,
    /// Training-label rounds (paper: 100 + 100 + 100).
    pub label_rounds: Vec<usize>,
    /// Evaluation-label rounds for estimation (paper: 200 + 200).
    pub eval_rounds: Vec<usize>,
    /// Blocking-debugger audit size (paper: top 100).
    pub debugger_top_k: usize,
}

impl CaseStudyConfig {
    /// Paper-scale configuration.
    pub fn paper() -> CaseStudyConfig {
        CaseStudyConfig {
            scenario: ScenarioConfig::paper(),
            oracle: OracleConfig::default(),
            seed: 42,
            plan: BlockingPlan::default(),
            label_rounds: vec![100, 100, 100],
            eval_rounds: vec![200, 200],
            debugger_top_k: 100,
        }
    }

    /// Small configuration for tests.
    pub fn small() -> CaseStudyConfig {
        CaseStudyConfig {
            scenario: ScenarioConfig::small(),
            label_rounds: vec![60, 40],
            eval_rounds: vec![60, 60],
            debugger_top_k: 30,
            ..CaseStudyConfig::paper()
        }
    }
}

/// One matcher's cross-validation scores.
#[derive(Debug, Clone, PartialEq)]
pub struct MatcherScore {
    /// Learner name.
    pub name: String,
    /// Mean CV precision.
    pub precision: f64,
    /// Mean CV recall.
    pub recall: f64,
    /// Mean CV F1 (the selection criterion).
    pub f1: f64,
}

/// Ground-truth evaluation of one match list.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthScore {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// Missed true matches.
    pub fn_: usize,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
}

/// One Corleone estimate row.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateRow {
    /// Which matcher.
    pub matcher: String,
    /// Labels used.
    pub n_labels: usize,
    /// The estimate.
    pub estimate: AccuracyEstimate,
}

/// Counts from the patched (Figure 9) run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchedCounts {
    /// Sure matches from the original tables (paper: 683).
    pub sure_original: usize,
    /// Sure matches from the extra records (paper: 55).
    pub sure_extra: usize,
    /// Candidate pairs from the original tables after removing sure
    /// matches (paper: 2,556).
    pub candidates_original: usize,
    /// Candidate pairs from the extra records (paper: 1,220).
    pub candidates_extra: usize,
    /// Model matches from the original tables (paper: 399).
    pub predicted_original: usize,
    /// Model matches from the extra records (paper: 0).
    pub predicted_extra: usize,
    /// Total matches (paper: 1,137).
    pub total: usize,
}

/// Everything a full run produced.
#[derive(Debug, Clone)]
pub struct CaseStudyReport {
    /// Figure 2: `(table name, rows, cols)` for the seven raw tables.
    pub table_summaries: Vec<(String, usize, usize)>,
    /// Section 7: `|C1|`.
    pub c1: usize,
    /// `|C2|` (paper: 2,937).
    pub c2: usize,
    /// `|C3|` (paper: 1,375).
    pub c3: usize,
    /// `|C2 ∩ C3|` (paper: 1,140).
    pub c2_and_c3: usize,
    /// `|C2 − C3|` (paper: 1,797).
    pub c2_only: usize,
    /// `|C3 − C2|` (paper: 235).
    pub c3_only: usize,
    /// `|C1 ∪ C2 ∪ C3|` (paper: 3,177).
    pub consolidated: usize,
    /// Overlap-threshold sweep `(K, |C2(K)|)` (paper: K=1 → 200K, K=7 →
    /// hundreds).
    pub sweep: Vec<(usize, usize)>,
    /// Blocking recall against ground truth (not observable in the paper).
    pub blocking_recall: f64,
    /// Debugger audit: pairs inspected.
    pub debugger_inspected: usize,
    /// Debugger audit: how many of those were true matches (paper: top
    /// pairs "were not matches").
    pub debugger_true_matches: usize,
    /// Section 8 labeling rounds.
    pub label_rounds: Vec<LabelingRound>,
    /// Final training-label counts `(yes, no, unsure)` (paper: 68/200/32).
    pub label_counts: (usize, usize, usize),
    /// Leave-one-out label-debug hits (the D1–D3 lead list).
    pub label_debug_hits: usize,
    /// Section 9 selection, round 1 (case-sensitive features only).
    pub selection_round1: Vec<MatcherScore>,
    /// Split-half mismatches mined with the round-1 winner (what motivated
    /// the case-insensitive features).
    pub mismatches_round1: usize,
    /// Section 9 selection, round 2 (+ case-insensitive features; paper:
    /// decision tree wins at P=97%, R=95%, F1≈95%).
    pub selection_round2: Vec<MatcherScore>,
    /// Figure 8: sure (M1) matches (paper: 210).
    pub initial_sure: usize,
    /// Figure 8: model-predicted matches (paper: 807).
    pub initial_predicted: usize,
    /// Figure 8: total (paper: 1,017).
    pub initial_total: usize,
    /// Section 10: pairs satisfying the new positive rule in `A × B`
    /// (paper: 473).
    pub rule2_in_cartesian: usize,
    /// … of which inside the candidate set `C` (paper: 411).
    pub rule2_in_candidates: usize,
    /// … of which the model already predicted as matches (paper: 397).
    pub rule2_predicted: usize,
    /// Figure 9 patched-run counts.
    pub patched: PatchedCounts,
    /// Section 10's multiplicity analysis of the combined matches (the
    /// "should we match at the cluster level?" numbers).
    pub multiplicity: MultiplicityReport,
    /// Cluster-level view: total clusters and how many are plain 1:1.
    pub clusters: (usize, usize),
    /// Section 11 estimates: ours and IRIS at each cumulative label count.
    pub estimates: Vec<EstimateRow>,
    /// Section 12 estimates for the final (learning + negative rules)
    /// matcher.
    pub final_estimates: Vec<EstimateRow>,
    /// Predictions flipped by the negative rules.
    pub flipped: usize,
    /// Final match count (paper: 845).
    pub final_total: usize,
    /// Ground-truth scores: `(matcher name, score)` for IRIS,
    /// learning-only, and learning + negative rules.
    pub truth_scores: Vec<(String, TruthScore)>,
}

/// The standard rule set of the final workflow.
pub fn standard_rules() -> RuleSet {
    RuleSet {
        positive: vec![
            EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber"),
            EqualityRule::suffix_equals("award=project", "AwardNumber", "ProjectNumber"),
        ],
        negative: vec![
            NegativeRule::comparable_suffix("neg:award", "AwardNumber", "AwardNumber"),
            NegativeRule::comparable_suffix("neg:project", "AwardNumber", "ProjectNumber"),
        ],
    }
}

/// Scores a match list against ground truth. Recall counts every true
/// match whose award exists in the delivered data (initial + extra).
pub fn score_ids(ids: &MatchIds, scenario: &Scenario) -> TruthScore {
    let mut tp = 0usize;
    let mut fp = 0usize;
    for (award, acc) in ids.iter() {
        if scenario.truth.is_match(award, acc) {
            tp += 1;
        } else {
            fp += 1;
        }
    }
    let fn_ = scenario.truth.len() - tp;
    let precision = if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 1.0 } else { tp as f64 / (tp + fn_) as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    TruthScore { tp, fp, fn_, precision, recall, f1 }
}

impl std::fmt::Display for CaseStudyReport {
    /// Renders the run as the narrative summary a teammate would read:
    /// one line per pipeline stage, outcomes first.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "end-to-end entity-matching run")?;
        writeln!(
            f,
            "  data: {} tables; blocking C1={} C2={} C3={} -> |C|={} (recall {:.1}%)",
            self.table_summaries.len(),
            self.c1,
            self.c2,
            self.c3,
            self.consolidated,
            100.0 * self.blocking_recall
        )?;
        let (y, n, u) = self.label_counts;
        writeln!(
            f,
            "  labels: {y} yes / {n} no / {u} unsure over {} rounds; {} LOO debug leads",
            self.label_rounds.len(),
            self.label_debug_hits
        )?;
        if let Some(best) = self.selection_round2.first() {
            writeln!(
                f,
                "  matcher: {} (F1 {:.1}% in 5-fold CV; round-1 winner {})",
                best.name,
                100.0 * best.f1,
                self.selection_round1.first().map(|m| m.name.as_str()).unwrap_or("-")
            )?;
        }
        writeln!(
            f,
            "  matches: {} initial -> {} after patch (+rules) -> {} final ({} flipped by negative rules)",
            self.initial_total, self.patched.total, self.final_total, self.flipped
        )?;
        writeln!(
            f,
            "  multiplicity: {:.1}% of matches not one-to-one across {} clusters",
            100.0 * self.multiplicity.non_one_to_one_rate(),
            self.clusters.0
        )?;
        for (name, score) in &self.truth_scores {
            writeln!(
                f,
                "  truth[{name}]: P={:.1}% R={:.1}% F1={:.1}%",
                100.0 * score.precision,
                100.0 * score.recall,
                100.0 * score.f1
            )?;
        }
        Ok(())
    }
}

/// The case study runner.
pub struct CaseStudy {
    cfg: CaseStudyConfig,
}

/// Identifier-level pair catalog used for estimation sampling: which
/// `(award, accession)` pairs exist in the evaluation universe, and the
/// row coordinates to build the oracle's view from.
struct PairCatalog<'t> {
    entries: Vec<(String, String, &'t Table, Pair)>,
}

impl<'t> PairCatalog<'t> {
    fn build(
        universes: &[(&'t Table, &'t Table, Vec<Pair>)],
    ) -> PairCatalog<'t> {
        let mut seen: HashMap<(String, String), usize> = HashMap::new();
        let mut entries = Vec::new();
        for (u, s, pairs) in universes {
            for p in pairs {
                let award = award_of(u, p.left);
                let acc = accession_of(s, p.right);
                let key = (award.clone(), acc.clone());
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(key) {
                    e.insert(entries.len());
                    // The USDA table is shared; store the UMETRICS side.
                    entries.push((award, acc, *u, *p));
                }
            }
        }
        PairCatalog { entries }
    }
}

impl CaseStudy {
    /// Creates a runner.
    pub fn new(cfg: CaseStudyConfig) -> CaseStudy {
        CaseStudy { cfg }
    }

    /// Replays the whole case study. Deterministic in the configured seeds.
    pub fn run(&self) -> Result<CaseStudyReport, CoreError> {
        let cfg = &self.cfg;
        let scenario =
            Scenario::generate(cfg.scenario.clone()).map_err(CoreError::Datagen)?;
        let oracle = Oracle::new(&scenario.truth, cfg.oracle);

        // ---- Section 4: understanding the data (Figure 2). ----
        let table_summaries: Vec<(String, usize, usize)> = scenario
            .raw_tables()
            .iter()
            .map(|t| (t.name().to_string(), t.n_rows(), t.n_cols()))
            .collect();

        // ---- Section 6: pre-processing. ProjectNumber joins later
        // (Section 10), but carrying it from the start simplifies the run;
        // the initial rules simply do not look at it. ----
        let u = project_umetrics(&scenario.award_agg, &scenario.employees)?;
        let empty_emp = Table::new("emp", scenario.employees.schema().clone());
        let u_extra = project_umetrics(&scenario.extra_award_agg, &empty_emp)?;
        let s = project_usda(&scenario.usda, true)?;

        // ---- Section 7: blocking. ----
        let blocking = run_blocking(&u, &s, &cfg.plan)?;
        let sweep = overlap_threshold_sweep(&u, &s, &[1, 2, 3, 4, 5, 6, 7])?;
        let blocking_recall = {
            let ids =
                MatchIds::from_candidates(&u, &s, &blocking.consolidated)?;
            let initial_truth = scenario.truth.n_matches_initial();
            if initial_truth == 0 {
                1.0
            } else {
                let kept = scenario
                    .truth
                    .iter()
                    .filter(|(a, c)| !scenario.truth.is_extra_award(a) && ids.contains(a, c))
                    .count();
                kept as f64 / initial_truth as f64
            }
        };

        // Blocking-debugger audit (MatchCatcher).
        let debug = debug_blocking(
            &BlockingDebugger::new("AwardTitle", "AwardTitle")
                .with_top_k(cfg.debugger_top_k),
            &u,
            &s,
            &blocking.consolidated,
        )?;
        let debugger_true_matches = debug
            .iter()
            .filter(|d| {
                scenario
                    .truth
                    .is_match(&award_of(&u, d.pair.left), &accession_of(&s, d.pair.right))
            })
            .count();

        // ---- Section 8: sampling and labeling. ----
        let (labeled, label_rounds) = run_labeling(
            &u,
            &s,
            &blocking.consolidated,
            &oracle,
            &cfg.label_rounds,
            cfg.seed,
        )?;
        let label_counts = labeled.counts();

        // Initial rules: M1 only (the revised definition arrives later).
        let m1_rules = RuleSet {
            positive: vec![EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber")],
            negative: vec![],
        };

        // Label debugging by leave-one-out (random forest, as the paper).
        let stage1 = MatcherStage::new(cfg.seed);
        let features1 = em_features::auto_features(&u, &s, &stage1.feature_opts);
        let label_debug_hits = debug_labels(
            &u,
            &s,
            &features1,
            &labeled,
            &m1_rules,
            &em_ml::forest::RandomForestLearner { seed: cfg.seed, ..Default::default() },
        )?
        .len();

        // ---- Section 9: matcher selection, two rounds. ----
        let (data1, _imp1) = build_training_data(&u, &s, &features1, &labeled, &m1_rules)?;
        let ranking1 = select_matcher(&data1, &stage1)?;
        let selection_round1: Vec<MatcherScore> = ranking1
            .iter()
            .map(|r| MatcherScore {
                name: r.learner.clone(),
                precision: r.precision(),
                recall: r.recall(),
                f1: r.f1(),
            })
            .collect();
        // Debug the round-1 winner: split-half mismatch mining.
        let mismatches_round1 = {
            let learners = em_ml::standard_learners(cfg.seed);
            let winner = learners
                .iter()
                .find(|l| l.name() == ranking1[0].learner)
                .expect("winner is a standard learner");
            em_ml::debug::mine_mismatches(winner.as_ref(), &data1, cfg.seed)?.len()
        };

        let stage2 = MatcherStage::new(cfg.seed).with_case_insensitive();
        let features2 = em_features::auto_features(&u, &s, &stage2.feature_opts);
        let (data2, imp2) = build_training_data(&u, &s, &features2, &labeled, &m1_rules)?;
        let ranking2 = select_matcher(&data2, &stage2)?;
        let selection_round2: Vec<MatcherScore> = ranking2
            .iter()
            .map(|r| MatcherScore {
                name: r.learner.clone(),
                precision: r.precision(),
                recall: r.recall(),
                f1: r.f1(),
            })
            .collect();
        let matcher = train_matcher(
            features2,
            imp2,
            &data2,
            &ranking2[0].learner,
            &stage2,
        )?;

        // ---- Figure 8: the initial workflow (M1 + model). ----
        let initial_wf = EmWorkflow {
            rules: m1_rules.clone(),
            plan: cfg.plan,
            matcher: &matcher,
            apply_negative: false,
        };
        let initial = initial_wf.run(&u, &s)?;

        // ---- Section 10: the revised match definition. ----
        let rule2 = EqualityRule::suffix_equals("award=project", "AwardNumber", "ProjectNumber");
        let rule2_all = rule2.find_all(&u, &s)?;
        let rule2_in_candidates = rule2_all
            .iter()
            .filter(|p| initial.candidates.contains(p))
            .count();
        let rule2_predicted =
            rule2_all.iter().filter(|p| initial.predicted.contains(p)).count();

        // ---- Figure 9: patched workflow with full rules + extra data. ----
        let full_rules = standard_rules();
        let patched_wf = EmWorkflow {
            rules: full_rules.clone(),
            plan: cfg.plan,
            matcher: &matcher,
            apply_negative: false,
        };
        let (orig, patch) = patched_wf.run_patched(&u, &u_extra, &s)?;
        let ids_orig = MatchIds::from_candidates(&u, &s, &orig.matches)?;
        let ids_patch = MatchIds::from_candidates(&u_extra, &s, &patch.matches)?;
        let combined = ids_orig.union(&ids_patch);
        let patched = PatchedCounts {
            sure_original: orig.sure.len(),
            sure_extra: patch.sure.len(),
            candidates_original: orig.candidates.len(),
            candidates_extra: patch.candidates.len(),
            predicted_original: orig.predicted.len(),
            predicted_extra: patch.predicted.len(),
            total: combined.len(),
        };

        // ---- Section 10: the cluster-level question. ----
        let multiplicity = analyze_multiplicity(&combined);
        let cluster_list = cluster_matches(&combined);
        let clusters = (
            cluster_list.len(),
            cluster_list.iter().filter(|c| c.is_one_to_one()).count(),
        );

        // ---- Section 11: Corleone estimation, ours vs IRIS. ----
        let iris = IrisMatcher::standard("AwardNumber", "AwardNumber", "ProjectNumber");
        let u_all = {
            let mut t = u.drop_column("RecordId")?
                .union(&u_extra.drop_column("RecordId")?)?;
            t.set_name("UMETRICSProjectedAll");
            t.add_id_column("RecordId")?
        };
        let iris_ids = MatchIds::from_candidates(&u_all, &s, &iris.predict(&u_all, &s)?)?;

        let catalog = PairCatalog::build(&[
            (&u, &s, orig.universe().to_vec()),
            (&u_extra, &s, patch.universe().to_vec()),
        ]);
        let mut eval_order: Vec<usize> = (0..catalog.entries.len()).collect();
        eval_order.shuffle(&mut StdRng::seed_from_u64(cfg.seed ^ 0x5eed));

        let label_item = |idx: usize, predicted: &MatchIds| -> SampleItem {
            let (award, acc, table, pair) = &catalog.entries[idx];
            let row = table.row(pair.left).expect("catalog rows valid");
            let srow = s.row(pair.right).expect("catalog rows valid");
            let view = PairView {
                award_number: award,
                accession: acc,
                left_title: row.str("AwardTitle").unwrap_or(""),
                right_title: srow.str("AwardTitle").unwrap_or(""),
                right_award_number: srow.str("AwardNumber"),
                right_project_number: srow.str("ProjectNumber"),
            };
            SampleItem { predicted: predicted.contains(award, acc), label: oracle.label(&view) }
        };

        let mut estimates = Vec::new();
        let mut final_estimates = Vec::new();

        // ---- Section 12: negative rules (Figure 10). ----
        let final_wf = EmWorkflow { apply_negative: true, ..patched_wf };
        let (forig, fpatch) = final_wf.run_patched(&u, &u_extra, &s)?;
        let fids = MatchIds::from_candidates(&u, &s, &forig.matches)?
            .union(&MatchIds::from_candidates(&u_extra, &s, &fpatch.matches)?);
        let flipped = forig.flipped.len() + fpatch.flipped.len();

        let mut cumulative = 0usize;
        for &round in &cfg.eval_rounds {
            cumulative = (cumulative + round).min(eval_order.len());
            let sample_idx = &eval_order[..cumulative];
            let ours: Vec<SampleItem> =
                sample_idx.iter().map(|&i| label_item(i, &combined)).collect();
            let iris_sample: Vec<SampleItem> =
                sample_idx.iter().map(|&i| label_item(i, &iris_ids)).collect();
            let final_sample: Vec<SampleItem> =
                sample_idx.iter().map(|&i| label_item(i, &fids)).collect();
            estimates.push(EstimateRow {
                matcher: "learning".to_string(),
                n_labels: cumulative,
                estimate: estimate_accuracy(&ours, Z95),
            });
            estimates.push(EstimateRow {
                matcher: "IRIS".to_string(),
                n_labels: cumulative,
                estimate: estimate_accuracy(&iris_sample, Z95),
            });
            final_estimates.push(EstimateRow {
                matcher: "learning+rules".to_string(),
                n_labels: cumulative,
                estimate: estimate_accuracy(&final_sample, Z95),
            });
        }

        // ---- Ground-truth scores (generator privilege). ----
        let truth_scores = vec![
            ("IRIS".to_string(), score_ids(&iris_ids, &scenario)),
            ("learning".to_string(), score_ids(&combined, &scenario)),
            ("learning+rules".to_string(), score_ids(&fids, &scenario)),
        ];

        Ok(CaseStudyReport {
            table_summaries,
            c1: blocking.c1.len(),
            c2: blocking.c2.len(),
            c3: blocking.c3.len(),
            c2_and_c3: blocking.c2_and_c3(),
            c2_only: blocking.c2_only(),
            c3_only: blocking.c3_only(),
            consolidated: blocking.consolidated.len(),
            sweep,
            blocking_recall,
            debugger_inspected: debug.len(),
            debugger_true_matches,
            label_rounds,
            label_counts,
            label_debug_hits,
            selection_round1,
            mismatches_round1,
            selection_round2,
            initial_sure: initial.sure.len(),
            initial_predicted: initial.predicted.len(),
            initial_total: initial.matches.len(),
            rule2_in_cartesian: rule2_all.len(),
            rule2_in_candidates,
            rule2_predicted,
            patched,
            multiplicity,
            clusters,
            estimates,
            final_estimates,
            flipped,
            final_total: fids.len(),
            truth_scores,
        })
    }

    /// Runs just the scenario + projection + blocking prefix (used by
    /// benches that do not need the ML stages).
    pub fn prepare_tables(&self) -> Result<(Table, Table, Scenario), CoreError> {
        let scenario =
            Scenario::generate(self.cfg.scenario.clone()).map_err(CoreError::Datagen)?;
        let u = project_umetrics(&scenario.award_agg, &scenario.employees)?;
        let s = project_usda(&scenario.usda, true)?;
        Ok((u, s, scenario))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CaseStudyReport {
        CaseStudy::new(CaseStudyConfig::small()).run().unwrap()
    }

    #[test]
    fn end_to_end_shape_holds() {
        let r = report();

        // Figure 2: seven tables with the configured sizes.
        assert_eq!(r.table_summaries.len(), 7);

        // Blocking algebra consistent.
        assert_eq!(r.c2_and_c3 + r.c2_only, r.c2);
        assert_eq!(r.c2_and_c3 + r.c3_only, r.c3);
        assert!(r.consolidated >= r.c1.max(r.c2).max(r.c3));
        assert!(r.blocking_recall > 0.85, "blocking recall {}", r.blocking_recall);

        // Sweep monotone.
        for w in r.sweep.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }

        // Labeling totals consistent.
        let (yes, no, unsure) = r.label_counts;
        assert_eq!(
            yes + no + unsure,
            r.label_rounds.iter().map(|x| x.sampled).sum::<usize>()
        );
        assert!(yes > 0);

        // Selection: six matchers in both rounds; round-2 winner strong.
        assert_eq!(r.selection_round1.len(), 6);
        assert_eq!(r.selection_round2.len(), 6);
        assert!(r.selection_round2[0].f1 >= 0.7);

        // Figure 8 accounting.
        assert_eq!(r.initial_total, r.initial_sure + r.initial_predicted);

        // Section 10 containment chain: predicted ⊆ in-candidates ⊆ all.
        assert!(r.rule2_predicted <= r.rule2_in_candidates);
        assert!(r.rule2_in_candidates <= r.rule2_in_cartesian);
        assert!(r.rule2_in_cartesian > 0);

        // Patch accounting: total = all four parts (id-level, disjoint).
        assert_eq!(
            r.patched.total,
            r.patched.sure_original
                + r.patched.sure_extra
                + r.patched.predicted_original
                + r.patched.predicted_extra
        );

        // Multiplicity analysis covers every combined match, and clusters
        // can never outnumber matches.
        assert_eq!(r.multiplicity.total(), r.patched.total);
        assert!(r.clusters.0 <= r.patched.total);
        assert!(r.clusters.1 <= r.clusters.0);
        assert!(
            r.multiplicity.one_to_many + r.multiplicity.many_to_many > 0,
            "the generator's annual-report structure must produce 1:N matches"
        );

        // Estimation rows present for both cumulative label counts.
        assert_eq!(r.estimates.len(), 4);
        assert_eq!(r.final_estimates.len(), 2);

        // Final matches exist and negative rules flipped something.
        assert!(r.final_total > 0);
        assert!(r.final_total <= r.patched.total);
    }

    #[test]
    fn headline_result_shape() {
        // The paper's headline: IRIS has (near-)perfect precision but low
        // recall; learning has much higher recall; learning + negative
        // rules recovers precision while keeping recall high.
        let r = report();
        let get = |name: &str| {
            r.truth_scores
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.clone())
                .unwrap()
        };
        let iris = get("IRIS");
        let learning = get("learning");
        let final_ = get("learning+rules");

        assert!(iris.precision > 0.99, "IRIS precision {}", iris.precision);
        assert!(
            learning.recall > iris.recall + 0.1,
            "learning recall {} should beat IRIS {} clearly",
            learning.recall,
            iris.recall
        );
        assert!(
            final_.precision > learning.precision,
            "negative rules must improve precision ({} vs {})",
            final_.precision,
            learning.precision
        );
        assert!(final_.recall > iris.recall, "final recall still beats IRIS");
        assert!(final_.f1 >= learning.f1, "final F1 should not regress");
    }

    #[test]
    fn display_narrative_covers_the_stages() {
        let r = report();
        let text = r.to_string();
        for needle in ["blocking", "labels:", "matcher:", "matches:", "multiplicity", "truth[IRIS]"] {
            assert!(text.contains(needle), "narrative missing {needle:?}:\n{text}");
        }
    }

    #[test]
    fn deterministic_report() {
        let a = CaseStudy::new(CaseStudyConfig::small()).run().unwrap();
        let b = CaseStudy::new(CaseStudyConfig::small()).run().unwrap();
        assert_eq!(a.consolidated, b.consolidated);
        assert_eq!(a.label_counts, b.label_counts);
        assert_eq!(a.final_total, b.final_total);
        assert_eq!(a.patched, b.patched);
    }
}
