//! Fault injection, retry policy, and the resilience ledger.
//!
//! The paper's pipeline ran against unreliable inputs and an unreliable
//! labeling workflow (a single-user cloud tool, spreadsheets, email). This
//! module makes those failure modes *first-class and reproducible*:
//!
//! - [`FaultPlan`] — a seeded description of which faults to inject where
//!   (oracle unavailability/timeouts, corrupted CSV rows, a crash after a
//!   named pipeline stage). The same plan always injects the same faults.
//! - [`RetryPolicy`] — capped exponential backoff with seeded jitter. The
//!   backoff is *recorded*, never slept: delays are accounted in virtual
//!   milliseconds so tests stay fast and deterministic.
//! - [`ResilienceReport`] — the ledger of everything that went wrong and
//!   was absorbed: faults seen, retries spent, labels degraded to `Unsure`,
//!   rows quarantined, stages resumed from checkpoint.
//! - [`corrupt_csv`] — the deterministic CSV corruptor the fault plan uses
//!   to dirty the USDA input before ingest.

use em_datagen::FlakyConfig;
use std::hash::{Hash, Hasher};

/// A seeded, declarative description of the faults to inject into a run.
///
/// All injection is a pure function of `seed` and the item identity, so two
/// runs under the same plan observe byte-identical fault sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault draw (independent of the pipeline seed).
    pub seed: u64,
    /// P(the labeling oracle is unavailable) per attempt.
    pub p_oracle_unavailable: f64,
    /// P(a labeling call times out) per attempt.
    pub p_oracle_timeout: f64,
    /// Attempts at or beyond this index never fault (bounds the worst case).
    pub max_fault_attempts: u32,
    /// P(a USDA CSV data row is corrupted before ingest).
    pub p_corrupt_row: f64,
    /// Quarantine-ingest abort threshold: the run fails when more than this
    /// fraction of rows is diverted (see
    /// [`em_table::csv::read_quarantine`]).
    pub max_quarantine_fraction: f64,
    /// Crash (with [`crate::CoreError::InjectedCrash`]) right after this
    /// named stage finishes and checkpoints — exercises resume.
    pub crash_after: Option<String>,
    /// Serve-tier fault kinds (WAL crashes, snapshot corruption, latency
    /// spikes, arrival bursts) consumed by `em-serve`'s chaos harness.
    pub serve: ServeFaultPlan,
}

/// Seeded serve-tier fault kinds, injected by the `em-serve` chaos
/// harness. All draws are pure functions of the owning [`FaultPlan`]'s
/// seed and the event identity, so the same plan always injects the same
/// fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeFaultPlan {
    /// P(the service crashes right after appending a WAL record).
    pub p_crash: f64,
    /// P(a crash additionally tears the tail of the WAL mid-record).
    pub p_torn_tail: f64,
    /// P(a candidate snapshot artifact is corrupted mid-swap, before the
    /// swap proposal reads it).
    pub p_snapshot_corrupt: f64,
    /// P(a drain tick is delayed by [`ServeFaultPlan::latency_spike_ms`]).
    pub p_latency_spike: f64,
    /// Virtual milliseconds a latency spike adds to a drain tick.
    pub latency_spike_ms: u64,
    /// P(an arrival slot becomes a burst of simultaneous arrivals).
    pub p_burst: f64,
    /// Arrivals per burst (all at the same virtual instant).
    pub burst_len: u32,
    /// Propose a snapshot hot-swap every N drain ticks (0 = never).
    pub swap_every: u32,
}

impl ServeFaultPlan {
    /// The no-faults serve plan: no crashes, no corruption, no spikes, no
    /// bursts, no swaps.
    pub fn none() -> ServeFaultPlan {
        ServeFaultPlan {
            p_crash: 0.0,
            p_torn_tail: 0.0,
            p_snapshot_corrupt: 0.0,
            p_latency_spike: 0.0,
            latency_spike_ms: 0,
            p_burst: 0.0,
            burst_len: 0,
            swap_every: 0,
        }
    }

    /// Whether this serve plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.p_crash > 0.0
            || self.p_snapshot_corrupt > 0.0
            || self.p_latency_spike > 0.0
            || self.p_burst > 0.0
            || self.swap_every > 0
    }
}

impl Default for ServeFaultPlan {
    fn default() -> Self {
        ServeFaultPlan::none()
    }
}

impl FaultPlan {
    /// The no-faults plan: every probability zero, no crash.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            p_oracle_unavailable: 0.0,
            p_oracle_timeout: 0.0,
            max_fault_attempts: 8,
            p_corrupt_row: 0.0,
            max_quarantine_fraction: 0.5,
            crash_after: None,
            serve: ServeFaultPlan::none(),
        }
    }

    /// Whether this plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.p_oracle_unavailable > 0.0
            || self.p_oracle_timeout > 0.0
            || self.p_corrupt_row > 0.0
            || self.crash_after.is_some()
            || self.serve.is_active()
    }

    /// The oracle-side fault rates, as the datagen wrapper wants them.
    pub fn flaky_config(&self) -> FlakyConfig {
        FlakyConfig {
            seed: self.seed,
            p_unavailable: self.p_oracle_unavailable,
            p_timeout: self.p_oracle_timeout,
            max_fault_attempts: self.max_fault_attempts,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Deterministic draw in `[0, 1)` keyed by `(seed, key, channel)` — the
/// shared primitive behind every fault decision (oracle faults, CSV
/// corruption, retry jitter, and the serve-tier chaos schedule), public so
/// the serve chaos harness draws from the same well-mixed stream.
pub fn fault_draw(seed: u64, key: &str, channel: u32) -> f64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut h);
    key.hash(&mut h);
    channel.hash(&mut h);
    (h.finish() >> 11) as f64 / (1u64 << 53) as f64
}

/// Retry with capped exponential backoff and seeded jitter.
///
/// Delays are virtual: [`RetryPolicy::backoff_ms`] *computes* the wait a
/// production system would sleep, and callers record it in the
/// [`ResilienceReport`] instead of sleeping, keeping runs fast while the
/// accounting stays realistic and reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts total).
    pub max_retries: u32,
    /// Backoff before retry 0, in virtual milliseconds.
    pub base_delay_ms: u64,
    /// Ceiling on any single backoff, in virtual milliseconds.
    pub max_delay_ms: u64,
    /// Seed for the jitter term.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// The never-retry policy with zero backoff.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0, base_delay_ms: 0, max_delay_ms: 0, jitter_seed: 0 }
    }

    /// The virtual backoff before retry `attempt` (zero-based) of the work
    /// item identified by `key`: `min(max, base · 2^attempt)` plus up to
    /// 25% seeded jitter. Deterministic in `(jitter_seed, key, attempt)`.
    pub fn backoff_ms(&self, key: &str, attempt: u32) -> u64 {
        if self.base_delay_ms == 0 {
            return 0;
        }
        let exp = self.base_delay_ms.saturating_mul(1u64 << attempt.min(32));
        let capped = exp.min(self.max_delay_ms.max(self.base_delay_ms));
        let jitter_frac = fault_draw(self.jitter_seed, key, 7 + attempt);
        capped + ((capped as f64) * 0.25 * jitter_frac) as u64
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 5, base_delay_ms: 100, max_delay_ms: 5_000, jitter_seed: 0x3e77 }
    }
}

/// The ledger of absorbed failures for one run (or one monitored slice).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Transient oracle faults observed (across all attempts).
    pub oracle_faults: usize,
    /// Retries actually performed after faults.
    pub oracle_retries: usize,
    /// Pairs whose labeling exhausted retries and degraded to `Unsure`.
    pub degraded_labels: usize,
    /// The degraded pairs, as `(UniqueAwardNumber, AccessionNumber)`.
    pub degraded_pairs: Vec<(String, String)>,
    /// Total virtual backoff accounted, in milliseconds.
    pub total_backoff_ms: u64,
    /// Malformed CSV rows diverted into quarantine during ingest.
    pub quarantined_rows: usize,
    /// Stages whose outputs were restored from checkpoint instead of
    /// recomputed (empty on an uninterrupted run).
    pub resumed_stages: Vec<String>,
}

impl ResilienceReport {
    /// Whether anything at all was absorbed.
    pub fn is_clean(&self) -> bool {
        *self == ResilienceReport::default()
    }

    /// Folds another ledger into this one (resumed stages concatenate).
    pub fn absorb(&mut self, other: &ResilienceReport) {
        self.oracle_faults += other.oracle_faults;
        self.oracle_retries += other.oracle_retries;
        self.degraded_labels += other.degraded_labels;
        self.degraded_pairs.extend(other.degraded_pairs.iter().cloned());
        self.total_backoff_ms += other.total_backoff_ms;
        self.quarantined_rows += other.quarantined_rows;
        self.resumed_stages.extend(other.resumed_stages.iter().cloned());
    }
}

/// Fault channels for [`corrupt_csv`], offset past the oracle channels.
const CH_CORRUPT: u32 = 201;
const CH_CORRUPT_KIND: u32 = 202;

/// Deterministically corrupts a fraction of a CSV file's data rows.
///
/// Each data row (never the header) is independently corrupted with
/// probability `p`, keyed by `(seed, row text, row index)`. Corruptions are
/// chosen so a corrupt row never swallows its neighbours under quote-parity
/// record splitting (quote counts stay even per line):
///
/// 1. drop the last field → ragged row;
/// 2. inject a doubled quote mid-field → "quote inside unquoted field";
/// 3. append a spurious extra field → ragged row.
pub fn corrupt_csv(text: &str, seed: u64, p: f64) -> String {
    if p <= 0.0 {
        return text.to_string();
    }
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 || line.is_empty() {
            out.push(line.to_string());
            continue;
        }
        let key = format!("{i}:{line}");
        if fault_draw(seed, &key, CH_CORRUPT) >= p {
            out.push(line.to_string());
            continue;
        }
        let kind = (fault_draw(seed, &key, CH_CORRUPT_KIND) * 3.0) as u32;
        let corrupted = match kind {
            // Drop the last field — but only when the truncation keeps the
            // line non-empty with even quote parity. Cutting inside a
            // quoted field would leave an open quote that swallows the
            // next row, and an empty line would be skipped on ingest;
            // either way a neighbouring record could silently vanish.
            0 => match line.rfind(',') {
                Some(pos)
                    if pos > 0 && line[..pos].matches('"').count() % 2 == 0 =>
                {
                    line[..pos].to_string()
                }
                _ => format!("{line},spurious"),
            },
            1 => {
                let mid = line.len() / 2;
                // Split at a char boundary near the middle.
                let mid = (mid..line.len()).find(|&b| line.is_char_boundary(b)).unwrap_or(0);
                format!("{}\"\"{}", &line[..mid], &line[mid..])
            }
            _ => format!("{line},spurious"),
        };
        out.push(corrupted);
    }
    let mut s = out.join("\n");
    if text.ends_with('\n') {
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_table::csv;

    #[test]
    fn fault_plan_none_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan { p_corrupt_row: 0.1, ..FaultPlan::none() }.is_active());
        assert!(
            FaultPlan { crash_after: Some("blocking".into()), ..FaultPlan::none() }.is_active()
        );
    }

    #[test]
    fn serve_fault_plan_activity_propagates() {
        assert!(!ServeFaultPlan::none().is_active());
        let serve = ServeFaultPlan { p_crash: 0.1, ..ServeFaultPlan::none() };
        assert!(serve.is_active());
        assert!(FaultPlan { serve, ..FaultPlan::none() }.is_active());
        assert!(
            FaultPlan {
                serve: ServeFaultPlan { swap_every: 4, ..ServeFaultPlan::none() },
                ..FaultPlan::none()
            }
            .is_active(),
            "swap cadence alone makes the plan active"
        );
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy::default();
        let b0 = p.backoff_ms("pair-1", 0);
        let b1 = p.backoff_ms("pair-1", 1);
        let b5 = p.backoff_ms("pair-1", 5);
        assert!(b0 >= p.base_delay_ms, "jitter only adds: {b0}");
        assert!(b1 > b0, "backoff grows: {b0} -> {b1}");
        assert!(
            b5 <= p.max_delay_ms + p.max_delay_ms / 4,
            "cap plus max jitter bounds the delay: {b5}"
        );
        assert_eq!(b0, p.backoff_ms("pair-1", 0), "deterministic");
        assert_ne!(
            p.backoff_ms("pair-1", 0),
            p.backoff_ms("pair-2", 0),
            "different keys draw different jitter (with these seeds)"
        );
        assert_eq!(RetryPolicy::none().backoff_ms("x", 3), 0);
    }

    #[test]
    fn backoff_survives_huge_attempt_numbers() {
        let p = RetryPolicy::default();
        // 2^40 would overflow the shift budget without the cap.
        assert!(p.backoff_ms("k", 40) <= p.max_delay_ms + p.max_delay_ms / 4);
    }

    #[test]
    fn report_absorb_adds_up() {
        let mut a = ResilienceReport {
            oracle_faults: 2,
            quarantined_rows: 1,
            resumed_stages: vec!["blocking".into()],
            ..Default::default()
        };
        let b = ResilienceReport {
            oracle_faults: 3,
            degraded_labels: 1,
            degraded_pairs: vec![("W1".into(), "100".into())],
            total_backoff_ms: 250,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.oracle_faults, 5);
        assert_eq!(a.degraded_labels, 1);
        assert_eq!(a.degraded_pairs.len(), 1);
        assert_eq!(a.total_backoff_ms, 250);
        assert_eq!(a.quarantined_rows, 1);
        assert_eq!(a.resumed_stages, vec!["blocking".to_string()]);
        assert!(!a.is_clean());
        assert!(ResilienceReport::default().is_clean());
    }

    #[test]
    fn corrupt_csv_is_deterministic_and_quarantinable() {
        let mut src = String::from("a,b,c\n");
        for i in 0..200 {
            src.push_str(&format!("{i},x{i},y{i}\n"));
        }
        let dirty = corrupt_csv(&src, 99, 0.2);
        assert_eq!(dirty, corrupt_csv(&src, 99, 0.2), "same seed, same corruption");
        assert_ne!(dirty, src, "p=0.2 over 200 rows corrupts something");
        assert_eq!(corrupt_csv(&src, 99, 0.0), src, "p=0 is the identity");

        // Every corruption is recoverable row-by-row: quarantine ingest
        // keeps all clean rows and diverts exactly the corrupted ones.
        let out = csv::read_quarantine("t", &dirty, 1.0).unwrap();
        assert!(!out.quarantined.is_empty());
        assert_eq!(out.total_rows(), 200, "no row vanishes or merges");
        let clean = csv::read_str("t", &src).unwrap();
        assert_eq!(out.table.n_rows() + out.quarantined.len(), clean.n_rows());
    }

    #[test]
    fn corrupt_csv_never_touches_the_header() {
        let src = "a,b\n1,2\n";
        let dirty = corrupt_csv(src, 1, 1.0);
        assert!(dirty.starts_with("a,b\n"));
        assert_ne!(dirty, src);
    }
}
