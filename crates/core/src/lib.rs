//! # em-core — the end-to-end entity-matching pipeline
//!
//! The paper's contribution is not a new matching algorithm but the
//! *process*: how an EM team takes two raw administrative datasets all the
//! way to a deployed match list, around dirty data, an evolving match
//! definition, expert labeling, and mid-project complications. This crate
//! is that process as a library:
//!
//! | Paper | Module |
//! |---|---|
//! | §4 understanding the data | [`em_table::profile`] + [`pipeline`] |
//! | §6 pre-processing | [`preprocess`] |
//! | §7 blocking + debugger | [`blocking_plan`] |
//! | §8 sampling, labeling, label debugging | [`labeling`], [`matcher::debug_labels`] |
//! | §9 matcher selection, training, debugging | [`matcher`] |
//! | Figures 8–10 workflows + patching | [`workflow`] |
//! | §10–§12 complications, estimation, rules | [`pipeline`] |
//!
//! The one-call entry point is [`pipeline::CaseStudy`]:
//!
//! ```
//! use em_core::pipeline::{CaseStudy, CaseStudyConfig};
//!
//! let report = CaseStudy::new(CaseStudyConfig::small()).run().unwrap();
//! assert_eq!(report.table_summaries.len(), 7); // Figure 2
//! assert!(report.final_total > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod analysis;
pub mod blocking_plan;
pub mod checkpoint;
pub mod error;
pub mod guide;
pub mod labeling;
pub mod labelstore;
pub mod matcher;
pub mod monitor;
pub mod pipeline;
pub mod preprocess;
pub mod resilience;
pub mod spec;
pub mod stream;
pub mod workflow;

pub use blocking_plan::{run_blocking, BlockingOutcome, BlockingPlan};
pub use error::CoreError;
pub use guide::{how_to_guide, GuideProgress, GuideStep};
pub use labeling::{LabeledPair, LabeledSet, LabelingRound};
pub use labelstore::{LabelConflict, LabelRecord, LabelStore, MergePolicy};
pub use matcher::{MatcherStage, TrainedMatcher};
pub use pipeline::{
    al_stage_name, standard_rule_descs, standard_rules, CaseStudy, CaseStudyConfig,
    CaseStudyReport, ServingArtifacts, AL_ROUND_PREFIX, STAGES,
};
pub use preprocess::{project_umetrics, project_usda};
pub use analysis::{analyze_multiplicity, cluster_matches, MultiplicityReport};
pub use monitor::{AccuracyMonitor, MonitorConfig, SliceReport};
pub use resilience::{corrupt_csv, fault_draw, FaultPlan, ResilienceReport, RetryPolicy, ServeFaultPlan};
pub use spec::WorkflowSpec;
pub use stream::{derive_feature_mask, StreamMatcher, StreamOutcome, HIST_BINS, STREAM_CHUNK};
pub use workflow::{EmWorkflow, MatchIds, WorkflowResult};
