//! Workflow packaging — the Section 12 "next steps" challenge: "the
//! UMETRICS team wanted us to package the matcher so that they could move
//! it into the UMETRICS repository to do matching for other data slices …
//! we need to find out how to represent it effectively."
//!
//! A [`WorkflowSpec`] is a declarative, serializable description of the
//! final EM workflow (Figure 10): blocking parameters, positive and
//! negative rules, the selected learner, and feature options. It
//! round-trips through a line-oriented text format (no external
//! dependencies) and instantiates into the live [`RuleSet`] /
//! [`MatcherStage`] objects, so a workflow developed against one data slice
//! can be checked in, reviewed, and re-run against the next slice.

use crate::blocking_plan::BlockingPlan;
use crate::matcher::MatcherStage;
use em_features::FeatureOptions;
use em_rules::{EqualityRule, NegativeRule, RuleSet};
use std::fmt;

/// A declarative positive-rule description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PositiveRuleSpec {
    /// `suffix_equals left right`: M1-style suffix equality.
    SuffixEquals {
        /// Left attribute (suffix-extracted).
        left: String,
        /// Right attribute (compared verbatim).
        right: String,
    },
    /// `attr_equals left right`: plain attribute equality.
    AttrEquals {
        /// Left attribute.
        left: String,
        /// Right attribute.
        right: String,
    },
}

/// A declarative negative-rule description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NegativeRuleSpec {
    /// `comparable_suffix left right`: comparable-but-different between the
    /// left attribute's award suffix and the right attribute.
    ComparableSuffix {
        /// Left attribute (suffix-extracted).
        left: String,
        /// Right attribute.
        right: String,
    },
    /// `comparable_attrs left right`: comparable-but-different attributes.
    ComparableAttrs {
        /// Left attribute.
        left: String,
        /// Right attribute.
        right: String,
    },
}

/// A packaged EM workflow.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowSpec {
    /// Workflow name.
    pub name: String,
    /// Blocking parameters.
    pub blocking: BlockingPlan,
    /// Sure-match rules, applied before learning.
    pub positive_rules: Vec<PositiveRuleSpec>,
    /// Flip rules, applied to model predictions.
    pub negative_rules: Vec<NegativeRuleSpec>,
    /// The learner that won selection (by display name).
    pub learner: String,
    /// Whether case-insensitive feature variants are generated.
    pub case_insensitive: bool,
    /// Attributes excluded from feature generation.
    pub exclude_attrs: Vec<String>,
    /// Whether the negative rules are applied (Figure 10 vs Figure 9).
    pub apply_negative: bool,
}

impl WorkflowSpec {
    /// The final case-study workflow, as deployed.
    pub fn umetrics_usda() -> WorkflowSpec {
        WorkflowSpec {
            name: "umetrics-usda".to_string(),
            blocking: BlockingPlan::default(),
            positive_rules: vec![
                PositiveRuleSpec::SuffixEquals {
                    left: "AwardNumber".into(),
                    right: "AwardNumber".into(),
                },
                PositiveRuleSpec::SuffixEquals {
                    left: "AwardNumber".into(),
                    right: "ProjectNumber".into(),
                },
            ],
            negative_rules: vec![
                NegativeRuleSpec::ComparableSuffix {
                    left: "AwardNumber".into(),
                    right: "AwardNumber".into(),
                },
                NegativeRuleSpec::ComparableSuffix {
                    left: "AwardNumber".into(),
                    right: "ProjectNumber".into(),
                },
            ],
            learner: "Decision Tree".to_string(),
            case_insensitive: true,
            exclude_attrs: vec!["RecordId".into(), "AccessionNumber".into()],
            apply_negative: true,
        }
    }

    /// Builds the live rule set.
    pub fn rules(&self) -> RuleSet {
        let positive = self
            .positive_rules
            .iter()
            .map(|r| match r {
                PositiveRuleSpec::SuffixEquals { left, right } => EqualityRule::suffix_equals(
                    format!("suffix_equals({left},{right})"),
                    left,
                    right,
                ),
                PositiveRuleSpec::AttrEquals { left, right } => EqualityRule::attr_equals(
                    format!("attr_equals({left},{right})"),
                    left,
                    right,
                ),
            })
            .collect();
        let negative = self
            .negative_rules
            .iter()
            .map(|r| match r {
                NegativeRuleSpec::ComparableSuffix { left, right } => {
                    NegativeRule::comparable_suffix(
                        format!("comparable_suffix({left},{right})"),
                        left,
                        right,
                    )
                }
                NegativeRuleSpec::ComparableAttrs { left, right } => {
                    NegativeRule::comparable_attrs(
                        format!("comparable_attrs({left},{right})"),
                        left,
                        right,
                    )
                }
            })
            .collect();
        RuleSet { positive, negative }
    }

    /// Builds the matcher stage (feature options + CV settings) this spec
    /// trains with.
    pub fn matcher_stage(&self, seed: u64) -> MatcherStage {
        let mut opts = FeatureOptions::excluding(
            &self.exclude_attrs.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        if self.case_insensitive {
            opts = opts.with_case_insensitive();
        }
        MatcherStage { feature_opts: opts, cv_folds: 5, seed }
    }

    /// Serializes to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("workflow {}\n", self.name));
        out.push_str(&format!("blocking.overlap_k = {}\n", self.blocking.overlap_k));
        out.push_str(&format!("blocking.oc_threshold = {}\n", self.blocking.oc_threshold));
        for r in &self.positive_rules {
            let line = match r {
                PositiveRuleSpec::SuffixEquals { left, right } => {
                    format!("rule.positive = suffix_equals {left} {right}")
                }
                PositiveRuleSpec::AttrEquals { left, right } => {
                    format!("rule.positive = attr_equals {left} {right}")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        for r in &self.negative_rules {
            let line = match r {
                NegativeRuleSpec::ComparableSuffix { left, right } => {
                    format!("rule.negative = comparable_suffix {left} {right}")
                }
                NegativeRuleSpec::ComparableAttrs { left, right } => {
                    format!("rule.negative = comparable_attrs {left} {right}")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&format!("matcher.learner = {}\n", self.learner));
        out.push_str(&format!("matcher.case_insensitive = {}\n", self.case_insensitive));
        out.push_str(&format!("matcher.exclude = {}\n", self.exclude_attrs.join(",")));
        out.push_str(&format!("apply_negative = {}\n", self.apply_negative));
        out
    }

    /// Parses the text format produced by [`to_text`](Self::to_text).
    pub fn parse(text: &str) -> Result<WorkflowSpec, SpecError> {
        let mut name = None;
        let mut spec = WorkflowSpec {
            name: String::new(),
            blocking: BlockingPlan::default(),
            positive_rules: Vec::new(),
            negative_rules: Vec::new(),
            learner: String::new(),
            case_insensitive: false,
            exclude_attrs: Vec::new(),
            apply_negative: false,
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: &str| SpecError { line: lineno + 1, message: msg.to_string() };
            if let Some(n) = line.strip_prefix("workflow ") {
                name = Some(n.trim().to_string());
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| err("expected `key = value`"))?;
            match key {
                "blocking.overlap_k" => {
                    spec.blocking.overlap_k =
                        value.parse().map_err(|_| err("overlap_k must be an integer"))?;
                }
                "blocking.oc_threshold" => {
                    spec.blocking.oc_threshold =
                        value.parse().map_err(|_| err("oc_threshold must be a float"))?;
                }
                "rule.positive" | "rule.negative" => {
                    let mut parts = value.split_whitespace();
                    let kind = parts.next().ok_or_else(|| err("missing rule kind"))?;
                    let left = parts
                        .next()
                        .ok_or_else(|| err("missing left attribute"))?
                        .to_string();
                    let right = parts
                        .next()
                        .ok_or_else(|| err("missing right attribute"))?
                        .to_string();
                    match (key, kind) {
                        ("rule.positive", "suffix_equals") => spec
                            .positive_rules
                            .push(PositiveRuleSpec::SuffixEquals { left, right }),
                        ("rule.positive", "attr_equals") => spec
                            .positive_rules
                            .push(PositiveRuleSpec::AttrEquals { left, right }),
                        ("rule.negative", "comparable_suffix") => spec
                            .negative_rules
                            .push(NegativeRuleSpec::ComparableSuffix { left, right }),
                        ("rule.negative", "comparable_attrs") => spec
                            .negative_rules
                            .push(NegativeRuleSpec::ComparableAttrs { left, right }),
                        _ => return Err(err("unknown rule kind")),
                    }
                }
                "matcher.learner" => spec.learner = value.to_string(),
                "matcher.case_insensitive" => {
                    spec.case_insensitive =
                        value.parse().map_err(|_| err("expected true/false"))?;
                }
                "matcher.exclude" => {
                    spec.exclude_attrs = value
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect();
                }
                "apply_negative" => {
                    spec.apply_negative =
                        value.parse().map_err(|_| err("expected true/false"))?;
                }
                other => {
                    return Err(SpecError {
                        line: lineno + 1,
                        message: format!("unknown key {other:?}"),
                    })
                }
            }
        }
        spec.name = name.ok_or(SpecError {
            line: 0,
            message: "missing `workflow <name>` header".to_string(),
        })?;
        if spec.learner.is_empty() {
            return Err(SpecError { line: 0, message: "missing matcher.learner".to_string() });
        }
        Ok(spec)
    }
}

/// A parse error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line (0 for whole-document errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workflow spec error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let spec = WorkflowSpec::umetrics_usda();
        let text = spec.to_text();
        let back = WorkflowSpec::parse(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn parse_tolerates_comments_and_blanks() {
        let text = "# deployed 2016-03\nworkflow x\n\nmatcher.learner = SVM\n";
        let spec = WorkflowSpec::parse(text).unwrap();
        assert_eq!(spec.name, "x");
        assert_eq!(spec.learner, "SVM");
        assert!(spec.positive_rules.is_empty());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "workflow x\nblocking.overlap_k = lots\n";
        let err = WorkflowSpec::parse(text).unwrap_err();
        assert_eq!(err.line, 2);
        let err = WorkflowSpec::parse("matcher.learner = SVM\n").unwrap_err();
        assert!(err.message.contains("workflow"));
        let err = WorkflowSpec::parse("workflow x\nbogus.key = 1\n").unwrap_err();
        assert!(err.message.contains("bogus.key"));
        let err = WorkflowSpec::parse("workflow x\nrule.positive = teleport A B\n").unwrap_err();
        assert!(err.message.contains("rule kind"));
    }

    #[test]
    fn missing_learner_is_rejected() {
        assert!(WorkflowSpec::parse("workflow x\n").is_err());
    }

    #[test]
    fn builds_live_rules() {
        let spec = WorkflowSpec::umetrics_usda();
        let rules = spec.rules();
        assert_eq!(rules.positive.len(), 2);
        assert_eq!(rules.negative.len(), 2);
        assert!(rules.positive[0].name().contains("suffix_equals"));
    }

    #[test]
    fn matcher_stage_reflects_options() {
        let spec = WorkflowSpec::umetrics_usda();
        let stage = spec.matcher_stage(7);
        assert!(stage.feature_opts.case_insensitive);
        assert!(stage.feature_opts.exclude.contains(&"RecordId".to_string()));
        assert_eq!(stage.cv_folds, 5);
    }
}
