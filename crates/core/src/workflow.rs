//! The EM workflows of Figures 8, 9, and 10, and workflow patching.
//!
//! A workflow run over a `(UMETRICS, USDA)` table pair proceeds:
//!
//! 1. apply the positive sure-match rules to the whole tables → `C1`;
//! 2. run the blocking plan → `C2`; the learning matcher's input is
//!    `C = C2 − C1`;
//! 3. predict `C` with the trained matcher → `R`;
//! 4. optionally apply the negative rules to `R` → `S` (Figure 10);
//! 5. matches = `C1 ∪ S`.
//!
//! Section 10's patching strategy — "leave the current EM workflow alone
//! and create a new EM workflow … a 'patch' of the current EM workflow" —
//! is [`EmWorkflow::run_patched`]: the same workflow runs over the extra
//! table against the whole USDA table, and the results are unioned (with
//! the patch winning on overlap, which union with provenance-merge makes
//! explicit).

use crate::blocking_plan::{run_blocking, BlockingPlan};
use crate::error::CoreError;
use crate::matcher::TrainedMatcher;
use em_blocking::CandidateSet;
use em_rules::RuleSet;
use em_table::Table;

/// A complete EM workflow: rules + blocking plan + trained matcher.
pub struct EmWorkflow<'m> {
    /// Positive (sure-match) and negative rules.
    pub rules: RuleSet,
    /// The blocking plan.
    pub plan: BlockingPlan,
    /// The trained learning-based matcher.
    pub matcher: &'m TrainedMatcher,
    /// Whether to apply the negative rules to model predictions
    /// (Figure 10; `false` reproduces Figures 8/9).
    pub apply_negative: bool,
}

/// Everything one workflow run produced, with the intermediate sets the
/// paper's accounting quotes.
#[derive(Debug, Clone)]
pub struct WorkflowResult {
    /// Sure matches from the positive rules (`C1` / `D1`).
    pub sure: CandidateSet,
    /// The blocked candidate set before removing sure matches (`C2`/`D2`).
    pub blocked: CandidateSet,
    /// The matcher's input: `blocked − sure` (`C` / `D`).
    pub candidates: CandidateSet,
    /// Model-predicted matches over `candidates` (`R1` / `R2`).
    pub predicted: CandidateSet,
    /// Predictions flipped to non-match by the negative rules.
    pub flipped: CandidateSet,
    /// Final matches: `sure ∪ (predicted − flipped)`.
    pub matches: CandidateSet,
}

impl WorkflowResult {
    /// The full evaluation candidate universe of this run:
    /// `sure ∪ blocked` (the paper's consolidated set `E`).
    pub fn universe(&self) -> CandidateSet {
        let mut u = self.sure.union(&self.blocked);
        u.set_name("E");
        u
    }
}

impl<'m> EmWorkflow<'m> {
    /// Runs the workflow over one table pair.
    pub fn run(&self, umetrics: &Table, usda: &Table) -> Result<WorkflowResult, CoreError> {
        let mut sure = self.rules.sure_matches(umetrics, usda)?;
        sure.set_name("sure");
        let blocked = run_blocking(umetrics, usda, &self.plan)?.consolidated;
        let mut candidates = blocked.minus(&sure);
        candidates.set_name("C");
        let predicted = self.matcher.predict(umetrics, usda, &candidates)?;
        let (kept, flipped) = if self.apply_negative {
            self.rules.apply_negative(umetrics, usda, &predicted)?
        } else {
            (predicted.clone(), CandidateSet::new("flipped"))
        };
        let mut matches = sure.union(&kept);
        matches.set_name("matches");
        Ok(WorkflowResult { sure, blocked, candidates, predicted, flipped, matches })
    }

    /// Runs the original workflow untouched and a patch workflow over the
    /// extra records, returning `(original, patch, combined matches)` —
    /// Figure 9's composition. The patch's predictions win on overlap by
    /// construction (identical pairs cannot conflict; distinct row spaces
    /// cannot overlap at all, which this encodes by unioning match *id*
    /// sets downstream).
    pub fn run_patched(
        &self,
        umetrics: &Table,
        extra_umetrics: &Table,
        usda: &Table,
    ) -> Result<(WorkflowResult, WorkflowResult), CoreError> {
        let original = self.run(umetrics, usda)?;
        let patch = self.run(extra_umetrics, usda)?;
        Ok((original, patch))
    }
}

/// A matcher-agnostic match list keyed by business identifiers —
/// `(UniqueAwardNumber, AccessionNumber)`, the deliverable format of
/// Section 6 — so that results from different workflows (different row
/// spaces) can be unioned, compared, and scored against ground truth.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchIds {
    pairs: std::collections::BTreeSet<(String, String)>,
}

impl MatchIds {
    /// Converts a candidate set over `(umetrics, usda)` row indices into
    /// identifier pairs.
    pub fn from_candidates(
        umetrics: &Table,
        usda: &Table,
        set: &CandidateSet,
    ) -> Result<MatchIds, CoreError> {
        let mut pairs = std::collections::BTreeSet::new();
        for p in set.iter() {
            let award = umetrics
                .get(p.left, "AwardNumber")
                .ok_or_else(|| CoreError::Pipeline(format!("row {} missing", p.left)))?
                .render();
            let acc = usda
                .get(p.right, "AccessionNumber")
                .ok_or_else(|| CoreError::Pipeline(format!("row {} missing", p.right)))?
                .render();
            pairs.insert((award, acc));
        }
        Ok(MatchIds { pairs })
    }

    /// Builds a match list directly from identifier pairs (checkpoint
    /// restore; [`MatchIds::from_candidates`] is the normal constructor).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, String)>) -> MatchIds {
        MatchIds { pairs: pairs.into_iter().collect() }
    }

    /// Number of identifier pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, award: &str, accession: &str) -> bool {
        self.pairs.contains(&(award.to_string(), accession.to_string()))
    }

    /// Union of two match lists (the Figure 9 combination step; identifier
    /// keying makes "new workflow wins" trivial — identical pairs agree).
    pub fn union(&self, other: &MatchIds) -> MatchIds {
        MatchIds { pairs: self.pairs.union(&other.pairs).cloned().collect() }
    }

    /// Iterates `(award, accession)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(a, b)| (a.as_str(), b.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking_plan::BlockingPlan;
    use crate::labeling::run_labeling;
    use crate::matcher::{build_training_data, select_matcher, train_matcher, MatcherStage};
    use crate::preprocess::{project_umetrics, project_usda};
    use em_datagen::{Oracle, OracleConfig, Scenario, ScenarioConfig};
    use em_features::auto_features;
    use em_rules::{EqualityRule, NegativeRule};

    struct Fixture {
        u: Table,
        extra_u: Table,
        s: Table,
        scenario: Scenario,
        matcher: TrainedMatcher,
    }

    fn rules() -> RuleSet {
        RuleSet {
            positive: vec![
                EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber"),
                EqualityRule::suffix_equals("R2", "AwardNumber", "ProjectNumber"),
            ],
            negative: vec![
                NegativeRule::comparable_suffix("neg-award", "AwardNumber", "AwardNumber"),
                NegativeRule::comparable_suffix("neg-project", "AwardNumber", "ProjectNumber"),
            ],
        }
    }

    fn fixture() -> Fixture {
        // Seed chosen so the small scenario is statistically representative
        // (negative rules do not hit more true than false positives).
        let scenario = Scenario::generate(ScenarioConfig::small().with_seed(5)).unwrap();
        let u = project_umetrics(&scenario.award_agg, &scenario.employees).unwrap();
        let extra_u = {
            // The extra batch has no employee rows; project it with an
            // empty employees table of the right schema.
            let empty = Table::new("emp", scenario.employees.schema().clone());
            project_umetrics(&scenario.extra_award_agg, &empty).unwrap()
        };
        let s = project_usda(&scenario.usda, true).unwrap();
        let candidates =
            crate::blocking_plan::run_blocking(&u, &s, &BlockingPlan::default()).unwrap().consolidated;
        let oracle = Oracle::new(&scenario.truth, OracleConfig::default());
        let (labeled, _) = run_labeling(&u, &s, &candidates, &oracle, &[100, 100], 5).unwrap();
        let stage = MatcherStage::new(1).with_case_insensitive();
        let features = auto_features(&u, &s, &stage.feature_opts);
        let (data, imputer) =
            build_training_data(&u, &s, &features, &labeled, &rules()).unwrap();
        let ranking = select_matcher(&data, &stage).unwrap();
        let matcher =
            train_matcher(features, imputer, &data, &ranking[0].learner, &stage).unwrap();
        Fixture { u, extra_u, s, scenario, matcher }
    }

    #[test]
    fn workflow_accounting_is_consistent() {
        let f = fixture();
        let wf = EmWorkflow {
            rules: rules(),
            plan: BlockingPlan::default(),
            matcher: &f.matcher,
            apply_negative: false,
        };
        let r = wf.run(&f.u, &f.s).unwrap();
        // candidates = blocked − sure
        assert_eq!(r.candidates.len(), r.blocked.minus(&r.sure).len());
        // predictions come from the candidate set only
        for p in r.predicted.iter() {
            assert!(r.candidates.contains(&p));
            assert!(!r.sure.contains(&p));
        }
        // final = sure + predicted (no negative rules here)
        assert_eq!(r.matches.len(), r.sure.len() + r.predicted.len());
        assert!(r.flipped.is_empty());
    }

    #[test]
    fn negative_rules_only_remove_predictions() {
        let f = fixture();
        let base = EmWorkflow {
            rules: rules(),
            plan: BlockingPlan::default(),
            matcher: &f.matcher,
            apply_negative: false,
        };
        let with_neg = EmWorkflow { apply_negative: true, ..base };
        let r0 = EmWorkflow {
            rules: rules(),
            plan: BlockingPlan::default(),
            matcher: &f.matcher,
            apply_negative: false,
        }
        .run(&f.u, &f.s)
        .unwrap();
        let r1 = with_neg.run(&f.u, &f.s).unwrap();
        assert!(r1.matches.len() <= r0.matches.len());
        assert_eq!(r1.matches.len() + r1.flipped.len(), r0.matches.len());
        // sure matches are never flipped
        for p in r1.sure.iter() {
            assert!(r1.matches.contains(&p));
        }
    }

    #[test]
    fn negative_rules_improve_precision(){
        let f = fixture();
        let score = |matches: &CandidateSet| -> (usize, usize) {
            let ids = MatchIds::from_candidates(&f.u, &f.s, matches).unwrap();
            let tp = ids
                .iter()
                .filter(|(a, c)| f.scenario.truth.is_match(a, c))
                .count();
            (tp, ids.len())
        };
        let wf = |neg: bool| EmWorkflow {
            rules: rules(),
            plan: BlockingPlan::default(),
            matcher: &f.matcher,
            apply_negative: neg,
        };
        let (tp0, n0) = score(&wf(false).run(&f.u, &f.s).unwrap().matches);
        let (tp1, n1) = score(&wf(true).run(&f.u, &f.s).unwrap().matches);
        let p0 = tp0 as f64 / n0.max(1) as f64;
        let p1 = tp1 as f64 / n1.max(1) as f64;
        assert!(p1 >= p0, "negative rules reduced precision: {p0} -> {p1}");
    }

    #[test]
    fn patched_run_covers_extra_awards() {
        let f = fixture();
        let wf = EmWorkflow {
            rules: rules(),
            plan: BlockingPlan::default(),
            matcher: &f.matcher,
            apply_negative: true,
        };
        let (orig, patch) = wf.run_patched(&f.u, &f.extra_u, &f.s).unwrap();
        let ids_orig = MatchIds::from_candidates(&f.u, &f.s, &orig.matches).unwrap();
        let ids_patch = MatchIds::from_candidates(&f.extra_u, &f.s, &patch.matches).unwrap();
        let combined = ids_orig.union(&ids_patch);
        assert_eq!(combined.len(), ids_orig.len() + ids_patch.len(),
            "original and patch operate on disjoint award sets");
        // The patch must recover matches for extra awards.
        let extra_matches = combined
            .iter()
            .filter(|(a, _)| f.scenario.truth.is_extra_award(a))
            .count();
        assert!(extra_matches > 0, "patch found no extra-award matches");
        assert_eq!(extra_matches, ids_patch.len());
    }

    #[test]
    fn match_ids_round_trip() {
        let f = fixture();
        let wf = EmWorkflow {
            rules: rules(),
            plan: BlockingPlan::default(),
            matcher: &f.matcher,
            apply_negative: false,
        };
        let r = wf.run(&f.u, &f.s).unwrap();
        let ids = MatchIds::from_candidates(&f.u, &f.s, &r.matches).unwrap();
        assert_eq!(ids.len(), r.matches.len(), "distinct keys per pair");
        for p in r.matches.iter().take(20) {
            let award = f.u.get(p.left, "AwardNumber").unwrap().render();
            let acc = f.s.get(p.right, "AccessionNumber").unwrap().render();
            assert!(ids.contains(&award, &acc));
        }
    }
}
