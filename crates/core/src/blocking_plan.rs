//! The Section 7 blocking plan: three blocking schemes whose union is the
//! consolidated candidate set.
//!
//! 1. **C1** — attribute equivalence on the M1 key: extract the suffix of
//!    the UMETRICS `AwardNumber` into a temporary column, AE-block it
//!    against the USDA `AwardNumber`, drop the temporary column.
//! 2. **C2** — token overlap on `AwardTitle` with threshold `K = 3` (the
//!    paper settled on 3 after sweeping 1 and 7).
//! 3. **C3** — overlap coefficient on `AwardTitle` with threshold 0.7, to
//!    rescue similar titles shorter than `K` tokens.
//!
//! `C = C1 ∪ C2 ∪ C3`, with the footnote-3 accounting preserved.

use crate::error::CoreError;
use em_blocking::{AttrEquivalenceBlocker, Blocker, CandidateSet, OverlapBlocker, SetSimBlocker};
use em_rules::award::award_suffix;
use em_table::{DataType, Table, Value};
use em_text::TokenCache;
use std::sync::Arc;

/// Parameters of the blocking plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingPlan {
    /// Overlap-blocker threshold (paper: 3).
    pub overlap_k: usize,
    /// Overlap-coefficient threshold (paper: 0.7).
    pub oc_threshold: f64,
}

impl Default for BlockingPlan {
    fn default() -> Self {
        BlockingPlan { overlap_k: 3, oc_threshold: 0.7 }
    }
}

impl BlockingPlan {
    /// The `C2 ∪ C3` union predicate as a single join spec: one postings
    /// walk admits a pair if overlap-`K` *or* the overlap coefficient
    /// passes. The streaming scaling harness counts the title-join
    /// candidates under this spec without materializing either set.
    pub fn union_spec(&self) -> em_blocking::JoinSpec {
        em_blocking::JoinSpec::union(
            self.overlap_k,
            em_blocking::SetMeasure::OverlapCoefficient,
            self.oc_threshold,
        )
    }
}

/// The plan's outputs, with the per-scheme sets kept for the footnote-3
/// accounting.
#[derive(Debug, Clone)]
pub struct BlockingOutcome {
    /// Pairs admitted by the M1 attribute-equivalence scheme.
    pub c1: CandidateSet,
    /// Pairs admitted by the overlap blocker.
    pub c2: CandidateSet,
    /// Pairs admitted by the overlap-coefficient blocker.
    pub c3: CandidateSet,
    /// The consolidated candidate set `C1 ∪ C2 ∪ C3`.
    pub consolidated: CandidateSet,
}

impl BlockingOutcome {
    /// `|C2 ∩ C3|` — the paper reports 1,140.
    pub fn c2_and_c3(&self) -> usize {
        self.c2.intersect(&self.c3).len()
    }
    /// `|C2 − C3|` — the paper reports 1,797.
    pub fn c2_only(&self) -> usize {
        self.c2.minus(&self.c3).len()
    }
    /// `|C3 − C2|` — the paper reports 235.
    pub fn c3_only(&self) -> usize {
        self.c3.minus(&self.c2).len()
    }
}

/// The temporary column used for the C1 scheme (removed afterwards, as in
/// the paper).
const TEMP_COL: &str = "TempAwardNumber";

/// Runs the C1 attribute-equivalence scheme alone: suffix-extract the M1
/// key into a temporary column, AE-block it against the USDA
/// `AwardNumber`, drop the column (pair indices are row indices, so they
/// remain valid after the drop). Shared by [`run_blocking`] and the
/// streaming scaling harness, which combines it with a [`join`]-engine
/// count of `C2 ∪ C3` instead of materialized candidate sets.
///
/// [`join`]: em_blocking::join
pub fn c1_scheme(umetrics: &Table, usda: &Table) -> Result<CandidateSet, CoreError> {
    let with_temp = umetrics.add_column(TEMP_COL, DataType::Str, |r| {
        r.str("AwardNumber").and_then(award_suffix).map(Value::from).into()
    })?;
    let ae = AttrEquivalenceBlocker::new(TEMP_COL, "AwardNumber");
    let mut c1 = ae.block(&with_temp, usda)?;
    c1.set_name("C1");
    let _restored = with_temp.drop_column(TEMP_COL)?; // paper step: remove temp
    Ok(c1)
}

/// Runs the blocking plan over the projected tables.
pub fn run_blocking(
    umetrics: &Table,
    usda: &Table,
    plan: &BlockingPlan,
) -> Result<BlockingOutcome, CoreError> {
    let c1 = c1_scheme(umetrics, usda)?;

    // C2 and C3 block on the same column, so they share one tokenization
    // pass and one postings index: `block_specs` tokenizes AwardTitle once,
    // builds the join index once, and runs both predicates over it.
    let cache = TokenCache::for_blocking();
    let overlap = OverlapBlocker::new("AwardTitle", "AwardTitle", plan.overlap_k);
    let oc = SetSimBlocker::overlap_coefficient("AwardTitle", "AwardTitle", plan.oc_threshold);
    let mut sets = em_blocking::block_specs(
        &cache,
        umetrics,
        "AwardTitle",
        usda,
        "AwardTitle",
        &[(overlap.join_spec()?, overlap.name()), (oc.join_spec()?, oc.name())],
    )?;
    let mut c3 = sets.pop().ok_or_else(|| CoreError::Pipeline("missing C3".to_string()))?;
    let mut c2 = sets.pop().ok_or_else(|| CoreError::Pipeline("missing C2".to_string()))?;
    c2.set_name("C2");
    c3.set_name("C3");

    let mut consolidated = c1.union(&c2).union(&c3);
    consolidated.set_name("C");
    Ok(BlockingOutcome { c1, c2, c3, consolidated })
}

/// The Section 7 threshold sweep: candidate-set size for each overlap
/// threshold (the paper swept K = 1 → 200K pairs and K = 7 → a few
/// hundred before settling on 3).
pub fn overlap_threshold_sweep(
    umetrics: &Table,
    usda: &Table,
    thresholds: &[usize],
) -> Result<Vec<(usize, usize)>, CoreError> {
    // One cache across the sweep: the column tokenizes once, each K only
    // re-probes the interned ids.
    let cache = Arc::new(TokenCache::for_blocking());
    let mut out = Vec::with_capacity(thresholds.len());
    for &k in thresholds {
        let blocker = OverlapBlocker::new("AwardTitle", "AwardTitle", k)
            .with_cache(Arc::clone(&cache));
        out.push((k, blocker.block(umetrics, usda)?.len()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{project_umetrics, project_usda};
    use em_datagen::{Scenario, ScenarioConfig};

    fn projected() -> (Table, Table, Scenario) {
        let s = Scenario::generate(ScenarioConfig::small()).unwrap();
        let u = project_umetrics(&s.award_agg, &s.employees).unwrap();
        let d = project_usda(&s.usda, false).unwrap();
        (u, d, s)
    }

    #[test]
    fn consolidated_is_the_union() {
        let (u, d, _) = projected();
        let out = run_blocking(&u, &d, &BlockingPlan::default()).unwrap();
        assert_eq!(
            out.consolidated.len(),
            out.c1.union(&out.c2).union(&out.c3).len()
        );
        for p in out.c1.iter().chain(out.c2.iter()).chain(out.c3.iter()) {
            assert!(out.consolidated.contains(&p));
        }
    }

    #[test]
    fn c1_pairs_satisfy_m1() {
        let (u, d, _) = projected();
        let out = run_blocking(&u, &d, &BlockingPlan::default()).unwrap();
        assert!(!out.c1.is_empty(), "federal awards must produce M1 pairs");
        for p in out.c1.iter() {
            let suffix = u
                .get(p.left, "AwardNumber")
                .and_then(|v| v.as_str())
                .and_then(award_suffix)
                .unwrap();
            let usda_num = d.get(p.right, "AwardNumber").unwrap().render();
            assert_eq!(suffix, usda_num);
        }
    }

    #[test]
    fn footnote3_structure_holds() {
        // C2 and C3 overlap heavily but neither subsumes the other.
        let (u, d, _) = projected();
        let out = run_blocking(&u, &d, &BlockingPlan::default()).unwrap();
        assert!(out.c2_and_c3() > 0, "C2 ∩ C3 empty");
        assert!(out.c2_only() > 0, "C2 − C3 empty");
        assert!(out.c3_only() > 0, "C3 − C2 empty");
    }

    #[test]
    fn blocking_keeps_most_true_matches() {
        let (u, d, s) = projected();
        let out = run_blocking(&u, &d, &BlockingPlan::default()).unwrap();
        // Build (award, accession) set of the candidate pairs.
        let mut kept = 0usize;
        let mut total = 0usize;
        let pairs: std::collections::HashSet<(String, String)> = out
            .consolidated
            .iter()
            .map(|p| {
                (
                    u.get(p.left, "AwardNumber").unwrap().render(),
                    d.get(p.right, "AccessionNumber").unwrap().render(),
                )
            })
            .collect();
        for (award, acc) in s.truth.iter() {
            if s.truth.is_extra_award(award) {
                continue; // not in the initial batch
            }
            total += 1;
            if pairs.contains(&(award.to_string(), acc.to_string())) {
                kept += 1;
            }
        }
        assert!(total > 0);
        let recall = kept as f64 / total as f64;
        assert!(recall > 0.9, "blocking recall {recall} too low ({kept}/{total})");
    }

    #[test]
    fn sweep_is_monotone_decreasing() {
        let (u, d, _) = projected();
        let sweep = overlap_threshold_sweep(&u, &d, &[1, 3, 7]).unwrap();
        assert_eq!(sweep.len(), 3);
        assert!(sweep[0].1 >= sweep[1].1);
        assert!(sweep[1].1 >= sweep[2].1);
        assert!(sweep[0].1 > sweep[2].1, "K=1 must admit more than K=7");
    }

    #[test]
    fn temp_column_not_leaked() {
        let (u, d, _) = projected();
        run_blocking(&u, &d, &BlockingPlan::default()).unwrap();
        assert!(!u.schema().contains(TEMP_COL));
    }
}
