//! Unified error type for the end-to-end pipeline.

use std::fmt;

/// Errors raised anywhere in the EM pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Table-layer failure.
    Table(em_table::TableError),
    /// Blocking failure.
    Block(em_blocking::BlockError),
    /// Rule failure.
    Rule(em_rules::RuleError),
    /// ML failure.
    Ml(em_ml::MlError),
    /// Data-generation failure.
    Datagen(String),
    /// A pipeline-stage invariant was violated.
    Pipeline(String),
    /// A checkpoint could not be read or parsed.
    Checkpoint(String),
    /// A fault plan deliberately crashed the run after the named stage
    /// (the stage's checkpoint was written first, so the run is resumable).
    InjectedCrash(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Table(e) => write!(f, "table: {e}"),
            CoreError::Block(e) => write!(f, "blocking: {e}"),
            CoreError::Rule(e) => write!(f, "rules: {e}"),
            CoreError::Ml(e) => write!(f, "ml: {e}"),
            CoreError::Datagen(m) => write!(f, "datagen: {m}"),
            CoreError::Pipeline(m) => write!(f, "pipeline: {m}"),
            CoreError::Checkpoint(m) => write!(f, "checkpoint: {m}"),
            CoreError::InjectedCrash(stage) => {
                write!(f, "injected crash after stage {stage:?} (resumable)")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<em_table::TableError> for CoreError {
    fn from(e: em_table::TableError) -> Self {
        CoreError::Table(e)
    }
}
impl From<em_blocking::BlockError> for CoreError {
    fn from(e: em_blocking::BlockError) -> Self {
        CoreError::Block(e)
    }
}
impl From<em_rules::RuleError> for CoreError {
    fn from(e: em_rules::RuleError) -> Self {
        CoreError::Rule(e)
    }
}
impl From<em_ml::MlError> for CoreError {
    fn from(e: em_ml::MlError) -> Self {
        CoreError::Ml(e)
    }
}
