//! Text-serialized stage checkpoints for crash/resume.
//!
//! Each pipeline stage writes its outputs as one `key = value` text file
//! (the same human-auditable idiom as [`crate::spec`]), atomically
//! (temp-file + rename), into a checkpoint directory. A resumed run loads
//! the files that exist, verifies the stored config matches, and recomputes
//! only from the first missing stage.
//!
//! Values are single-line escaped strings; multi-record payloads (labeled
//! pairs, match-id sets) encode one record per escaped line with
//! tab-separated fields. Floats are written with `{:?}`, which Rust
//! guarantees round-trips through `parse::<f64>()` exactly — checkpointed
//! and recomputed numbers are bit-identical, not merely close.

use crate::error::CoreError;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File extension of a stage checkpoint.
const EXT: &str = "ckpt";

/// An ordered `key = value` bag for one stage's outputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Checkpoint {
    entries: BTreeMap<String, String>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, CoreError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            other => {
                return Err(CoreError::Checkpoint(format!(
                    "bad escape \\{} in checkpoint value",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

impl Checkpoint {
    /// An empty checkpoint.
    pub fn new() -> Checkpoint {
        Checkpoint::default()
    }

    /// Stores a string value under `key`.
    pub fn put(&mut self, key: &str, value: impl AsRef<str>) {
        self.entries.insert(key.to_string(), value.as_ref().to_string());
    }

    /// Stores any `Display` value (integers, bools).
    pub fn put_display(&mut self, key: &str, value: impl std::fmt::Display) {
        self.put(key, value.to_string());
    }

    /// Stores a float via `{:?}` so it round-trips bit-exactly.
    pub fn put_f64(&mut self, key: &str, value: f64) {
        self.put(key, format!("{value:?}"));
    }

    /// Stores a list of records, each a slice of tab-joined fields.
    /// Fields must not contain tabs (escaping handles newlines).
    pub fn put_records(&mut self, key: &str, records: &[Vec<String>]) {
        let text =
            records.iter().map(|r| r.join("\t")).collect::<Vec<_>>().join("\n");
        self.put(key, text);
    }

    /// The raw string under `key`, or a checkpoint error naming it.
    pub fn get(&self, key: &str) -> Result<&str, CoreError> {
        self.entries
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CoreError::Checkpoint(format!("missing key {key:?}")))
    }

    /// Parses the value under `key` with `FromStr`.
    pub fn get_parsed<T>(&self, key: &str) -> Result<T, CoreError>
    where
        T: std::str::FromStr,
    {
        let raw = self.get(key)?;
        raw.parse::<T>().map_err(|_| {
            CoreError::Checkpoint(format!("key {key:?} holds unparseable value {raw:?}"))
        })
    }

    /// The records stored by [`Checkpoint::put_records`], split back into
    /// fields. An empty value decodes as zero records.
    pub fn get_records(&self, key: &str) -> Result<Vec<Vec<String>>, CoreError> {
        let raw = self.get(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        Ok(raw
            .split('\n')
            .map(|line| line.split('\t').map(String::from).collect())
            .collect())
    }

    /// Serializes to `key = value` text (escaped, sorted by key).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.entries {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&escape(v));
            out.push('\n');
        }
        out
    }

    /// Parses `key = value` text back into a checkpoint.
    pub fn from_text(text: &str) -> Result<Checkpoint, CoreError> {
        let mut entries = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let (k, v) = line.split_once(" = ").ok_or_else(|| {
                CoreError::Checkpoint(format!("line {}: expected `key = value`", i + 1))
            })?;
            entries.insert(k.to_string(), unescape(v)?);
        }
        Ok(Checkpoint { entries })
    }

    /// The checkpoint file path for a stage.
    pub fn path_for(dir: &Path, stage: &str) -> PathBuf {
        dir.join(format!("{stage}.{EXT}"))
    }

    /// Writes this checkpoint for `stage` atomically: the full text goes to
    /// a temp file first, then a rename makes it visible — a crash mid-write
    /// leaves either the old checkpoint or none, never a torn one.
    pub fn save(&self, dir: &Path, stage: &str) -> Result<(), CoreError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| CoreError::Checkpoint(format!("create {dir:?}: {e}")))?;
        let final_path = Self::path_for(dir, stage);
        let tmp_path = dir.join(format!("{stage}.{EXT}.tmp"));
        std::fs::write(&tmp_path, self.to_text())
            .map_err(|e| CoreError::Checkpoint(format!("write {tmp_path:?}: {e}")))?;
        std::fs::rename(&tmp_path, &final_path)
            .map_err(|e| CoreError::Checkpoint(format!("rename to {final_path:?}: {e}")))?;
        Ok(())
    }

    /// Loads the checkpoint for `stage`, `None` when the file does not
    /// exist (the stage has not completed).
    pub fn load(dir: &Path, stage: &str) -> Result<Option<Checkpoint>, CoreError> {
        let path = Self::path_for(dir, stage);
        match std::fs::read_to_string(&path) {
            Ok(text) => Ok(Some(Checkpoint::from_text(&text)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(CoreError::Checkpoint(format!("read {path:?}: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("em-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn text_round_trip_preserves_everything() {
        let mut cp = Checkpoint::new();
        cp.put("plain", "hello world");
        cp.put("tricky", "line1\nline2\ttabbed\\slashed\r");
        cp.put_display("count", 42usize);
        cp.put_f64("pi", std::f64::consts::PI);
        cp.put_f64("tiny", 1e-300);
        cp.put_records(
            "pairs",
            &[vec!["10.200 W1".into(), "100".into()], vec!["10.203 X2".into(), "200".into()]],
        );
        let back = Checkpoint::from_text(&cp.to_text()).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.get("tricky").unwrap(), "line1\nline2\ttabbed\\slashed\r");
        assert_eq!(back.get_parsed::<usize>("count").unwrap(), 42);
        let pi: f64 = back.get_parsed("pi").unwrap();
        assert_eq!(pi.to_bits(), std::f64::consts::PI.to_bits(), "bit-exact float round-trip");
        let tiny: f64 = back.get_parsed("tiny").unwrap();
        assert_eq!(tiny.to_bits(), 1e-300f64.to_bits());
        assert_eq!(back.get_records("pairs").unwrap().len(), 2);
        assert_eq!(back.get_records("pairs").unwrap()[0][0], "10.200 W1");
    }

    #[test]
    fn empty_records_round_trip() {
        let mut cp = Checkpoint::new();
        cp.put_records("none", &[]);
        let back = Checkpoint::from_text(&cp.to_text()).unwrap();
        assert!(back.get_records("none").unwrap().is_empty());
    }

    #[test]
    fn missing_key_and_bad_value_are_named_errors() {
        let cp = Checkpoint::new();
        let err = cp.get("absent").unwrap_err();
        assert!(err.to_string().contains("absent"), "{err}");
        let mut cp = Checkpoint::new();
        cp.put("n", "not-a-number");
        assert!(cp.get_parsed::<usize>("n").is_err());
        assert!(Checkpoint::from_text("no separator here\n").is_err());
    }

    #[test]
    fn save_load_cycle_and_missing_stage() {
        let dir = tmpdir("saveload");
        let mut cp = Checkpoint::new();
        cp.put("k", "v");
        cp.save(&dir, "blocking").unwrap();
        let loaded = Checkpoint::load(&dir, "blocking").unwrap().unwrap();
        assert_eq!(loaded, cp);
        assert!(Checkpoint::load(&dir, "labeling").unwrap().is_none());
        // Overwrite is atomic-replace, not append.
        let mut cp2 = Checkpoint::new();
        cp2.put("k", "v2");
        cp2.save(&dir, "blocking").unwrap();
        assert_eq!(
            Checkpoint::load(&dir, "blocking").unwrap().unwrap().get("k").unwrap(),
            "v2"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
