//! Fused streaming match executor: blocking → features → scoring → rules
//! without materializing the candidate set.
//!
//! The batch path ([`EmWorkflow::run`](crate::workflow::EmWorkflow::run))
//! materializes three full intermediates — the consolidated candidate set,
//! the feature matrix, and the prediction vector — before a single match
//! emerges. At corpus scale (x64–x256) the candidate set alone dominates
//! memory. [`StreamMatcher`] fuses the stages instead: each left row's
//! candidates come straight off the [`join`] index probe, flow through
//! masked batch feature extraction into a reusable SoA block, get mean
//! imputed and forest-scored in place, and only the above-threshold
//! survivors (minus negative-rule flips, plus the rule-driven sure
//! matches) are counted into the streamed accounting. Nothing
//! proportional to the candidate count is ever resident.
//!
//! **Bit identity.** The stream is not an approximation: every stage
//! reuses the exact batch kernels, so counts, per-pair probabilities, and
//! the final match set equal the materialized workflow bit for bit.
//! Candidate equality holds because the join-spec union is proptested
//! equal to `C2 ∪ C3` in `em-blocking` and `C1`/sure sets come from the
//! same code paths ([`c1_scheme`], [`RuleSet::sure_matches`]); feature
//! equality because [`BatchExtractor`] is pinned bit-equal to
//! `extract_vectors` in `em-features` and dead (masked) slots are imputed
//! to the same column means the batch path imputes; score equality
//! because [`BlockScorer`] flattens the fitted model without reordering
//! its float accumulation.
//!
//! **Thread invariance.** Left rows are processed in fixed
//! [`STREAM_CHUNK`]-row chunks — the chunk grid is the parallel index
//! space, so each chunk's result is a pure function of its index — and
//! chunk results merge in chunk order. Output is bit-identical at any
//! thread count, including the chunk-chained FNV checksum, which absorbs
//! per-chunk digests exactly like [`em_blocking::join_stats`] does.
//!
//! [`join`]: em_blocking::JoinIndex

use crate::blocking_plan::{c1_scheme, BlockingPlan};
use crate::error::CoreError;
use crate::matcher::TrainedMatcher;
use em_blocking::{fnv_u64, CandidateSet, JoinIndex, JoinScratch, JoinSpec, Pair, FNV_OFFSET};
use em_features::{BatchExtractor, BatchScratch, FeatureMask, FeatureSet, SharedWordColumns};
use em_ml::dataset::Imputer;
use em_ml::{BlockScorer, FittedModel};
use em_parallel::Executor;
use em_rules::{RuleSet, RuleSetDesc};
use em_table::Table;
use em_text::{TokenCache, TokenCorpus};

/// Left rows per parallel chunk. Fixed (not derived from the thread
/// count) so the chunk grid — and therefore every per-chunk digest — is
/// identical at any parallelism.
pub const STREAM_CHUNK: usize = 1024;

/// Candidate pairs extracted + scored per SoA slab. Bounds the feature
/// block at `SCORE_SLAB × n_live_features` doubles per worker regardless
/// of how many candidates a chunk emits.
pub const SCORE_SLAB: usize = 4096;

/// Score histogram resolution: bin `b` covers `[b/20, (b+1)/20)`.
pub const HIST_BINS: usize = 20;

/// The model decision threshold (`predict` = `predict_proba >= 0.5`).
const MATCH_THRESHOLD: f64 = 0.5;

/// The blocking column both join schemes read (fixed by the case study's
/// plan, as in [`run_blocking`](crate::blocking_plan::run_blocking)).
const BLOCK_COL: &str = "AwardTitle";

/// Streamed accounting for one fused match run — everything the batch
/// workflow reports, without the sets themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Left (UMETRICS) rows driven through the stream.
    pub left_rows: usize,
    /// Right (USDA) rows probed against.
    pub right_rows: usize,
    /// Rule-driven sure matches (`C1`-rule union), counted once up front.
    pub sure: usize,
    /// Candidates scored: `|blocked − sure|` summed over left rows.
    pub candidates: usize,
    /// Candidates the model scored at or above the threshold.
    pub predicted: usize,
    /// Predictions the negative rules flipped to non-match.
    pub flipped: usize,
    /// Final matches: `sure ∪ (predicted − flipped)`.
    pub matched: usize,
    /// Chunk-chained FNV-1a digest of the final match stream in
    /// `(left, right)` order — [`em_blocking::JoinStats`]-style: each
    /// chunk hashes its own matches from [`FNV_OFFSET`], and the chain
    /// absorbs chunk digests in chunk order.
    pub checksum: u64,
    /// Score histogram over all scored candidates ([`HIST_BINS`] bins of
    /// width `1/HIST_BINS`; the last bin also catches `p = 1.0`).
    pub histogram: [u64; HIST_BINS],
}

/// A frozen workflow fused into a streaming executor over one table pair.
///
/// Construction does all sizable work that is *not* proportional to the
/// candidate count: tokenize the blocking column once into shared corpora
/// (reused by both the join probes and the word-level set features),
/// build the join index, derive the model+rule feature mask, build the
/// masked [`BatchExtractor`], flatten the fitted model into a
/// [`BlockScorer`], and materialize the two *small* per-left-row
/// adjacencies (C1 scheme, rule sure matches) as CSR. [`run`] then
/// streams the unbounded part.
///
/// [`run`]: StreamMatcher::run
pub struct StreamMatcher<'a> {
    u: &'a Table,
    s: &'a Table,
    imputer: &'a Imputer,
    rules: RuleSet,
    scorer: BlockScorer,
    extractor: BatchExtractor,
    join: JoinIndex,
    left_corpus: TokenCorpus,
    spec: JoinSpec,
    c1: Csr,
    sure: Csr,
    mask: FeatureMask,
    n_features: usize,
}

/// Per-left-row sorted adjacency (compressed sparse rows over right-row
/// ids) for the two small materialized sets.
struct Csr {
    starts: Vec<usize>,
    rows: Vec<u32>,
}

/// Per-worker reusable state: join probe scratch, the row-merge buffers,
/// the pending pair slab with its SoA feature block, and the extraction
/// memos.
struct StreamScratch {
    probe: JoinScratch,
    hits: Vec<u32>,
    blocked: Vec<u32>,
    candidates: Vec<u32>,
    pending: Vec<(u32, u32)>,
    block: Vec<f64>,
    scores: Vec<f64>,
    kept: Vec<(u32, u32)>,
    batch: BatchScratch,
}

/// One chunk's accounting; merged in chunk order by the fold.
#[derive(Default)]
struct ChunkResult {
    candidates: usize,
    predicted: usize,
    flipped: usize,
    matched: usize,
    digest: u64,
    histogram: [u64; HIST_BINS],
    scored: Vec<(Pair, f64)>,
    matches: Vec<Pair>,
}

impl Csr {
    /// The sorted right-row ids adjacent to left row `i`.
    #[inline]
    fn row(&self, i: usize) -> &[u32] {
        &self.rows[self.starts[i]..self.starts[i + 1]]
    }
}

/// Sorted-set union of two ascending id slices into `out`.
fn merge_union(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut x, mut y) = (0usize, 0usize);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => {
                out.push(a[x]);
                x += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[y]);
                y += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[x]);
                x += 1;
                y += 1;
            }
        }
    }
    out.extend_from_slice(&a[x..]);
    out.extend_from_slice(&b[y..]);
}

/// Sorted-set difference `a − b` of two ascending id slices into `out`.
fn merge_difference(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let mut y = 0usize;
    for &v in a {
        while y < b.len() && b[y] < v {
            y += 1;
        }
        if b.get(y) != Some(&v) {
            out.push(v);
        }
    }
}

impl StreamMatcher<'_> {
    /// Streams one [`STREAM_CHUNK`] of left rows: probe, merge, extract,
    /// impute, score, apply negative rules, digest. Pure function of the
    /// chunk index (given the frozen matcher), which is what makes the
    /// chunk-ordered fold thread-invariant.
    fn run_chunk(&self, c: usize, ws: &mut StreamScratch, collect: bool) -> ChunkResult {
        let lo = c * STREAM_CHUNK;
        let hi = ((c + 1) * STREAM_CHUNK).min(self.u.n_rows());
        let mut res = ChunkResult { digest: FNV_OFFSET, ..ChunkResult::default() };
        ws.pending.clear();
        ws.kept.clear();
        for i in lo..hi {
            // blocked(i) = C1(i) ∪ join-probe(i); candidates = blocked − sure.
            self.join.probe_into(self.left_corpus.row(i), &self.spec, &mut ws.probe, &mut ws.hits);
            merge_union(self.c1.row(i), &ws.hits, &mut ws.blocked);
            merge_difference(&ws.blocked, self.sure.row(i), &mut ws.candidates);
            res.candidates += ws.candidates.len();
            ws.pending.extend(ws.candidates.iter().map(|&j| (i as u32, j)));
            if ws.pending.len() >= SCORE_SLAB {
                self.flush_pending(ws, &mut res, collect);
            }
        }
        self.flush_pending(ws, &mut res, collect);
        // Digest the chunk's final matches — sure ∪ kept, merged per left
        // row in (left, right) order. The two streams are disjoint (kept ⊆
        // blocked − sure) and each is sorted, so this is a plain merge.
        let mut k = 0usize;
        for i in lo..hi {
            let sure_row = self.sure.row(i);
            let start = k;
            while k < ws.kept.len() && ws.kept[k].0 == i as u32 {
                k += 1;
            }
            let kept_row = &ws.kept[start..k];
            let (mut x, mut y) = (0usize, 0usize);
            while x < sure_row.len() || y < kept_row.len() {
                let j = match (sure_row.get(x), kept_row.get(y)) {
                    (Some(&a), Some(&(_, b))) => {
                        if a < b {
                            x += 1;
                            a
                        } else {
                            y += 1;
                            b
                        }
                    }
                    (Some(&a), None) => {
                        x += 1;
                        a
                    }
                    (None, Some(&(_, b))) => {
                        y += 1;
                        b
                    }
                    (None, None) => break,
                };
                res.digest = fnv_u64(fnv_u64(res.digest, i as u64), u64::from(j));
                res.matched += 1;
                if collect {
                    res.matches.push(Pair::new(i, j as usize));
                }
            }
        }
        res
    }

    /// Extracts, imputes, and scores the pending slab, folding verdicts
    /// into `res` and surviving matches into the worker's `kept` list.
    fn flush_pending(&self, ws: &mut StreamScratch, res: &mut ChunkResult, collect: bool) {
        let nf = self.n_features;
        let StreamScratch { pending, block, scores, batch, kept, .. } = ws;
        for slab in pending.chunks(SCORE_SLAB) {
            let n = slab.len();
            for (row, &(i, j)) in block.chunks_exact_mut(nf).zip(slab.iter()) {
                self.extractor.extract_into(self.u, self.s, Pair::new(i as usize, j as usize), batch, row);
                self.imputer.transform_row(row);
            }
            self.scorer.score_block(&block[..n * nf], nf, &mut scores[..n]);
            for (&(i, j), &p) in slab.iter().zip(scores.iter()) {
                let bin = ((p * HIST_BINS as f64) as usize).min(HIST_BINS - 1);
                res.histogram[bin] += 1;
                if collect {
                    res.scored.push((Pair::new(i as usize, j as usize), p));
                }
                if p >= MATCH_THRESHOLD {
                    res.predicted += 1;
                    let neg = match (self.u.row(i as usize), self.s.row(j as usize)) {
                        (Some(ra), Some(rb)) => self.rules.any_negative_fires(ra, rb),
                        _ => false,
                    };
                    if neg {
                        res.flipped += 1;
                    } else {
                        kept.push((i, j));
                    }
                }
            }
        }
        pending.clear();
    }
}

// ---- scratch construction (allocations are confined below this line) ----

impl<'a> StreamMatcher<'a> {
    /// Fuses a frozen workflow (tables + trained matcher + rules + plan)
    /// into a streaming executor. See the type docs for what construction
    /// materializes; errors surface schema problems (missing blocking /
    /// rule columns) and degenerate models (empty feature set).
    pub fn new(
        umetrics: &'a Table,
        usda: &'a Table,
        matcher: &'a TrainedMatcher,
        rule_descs: &RuleSetDesc,
        plan: &BlockingPlan,
    ) -> Result<StreamMatcher<'a>, CoreError> {
        if matcher.features.is_empty() {
            return Err(CoreError::Pipeline("streaming matcher needs a non-empty feature set".to_string()));
        }
        umetrics.schema().require(BLOCK_COL)?;
        usda.schema().require(BLOCK_COL)?;
        let rules = rule_descs.build();
        let sure = Csr::from_set(&rules.sure_matches(umetrics, usda)?, umetrics.n_rows());
        let c1 = Csr::from_set(&c1_scheme(umetrics, usda)?, umetrics.n_rows());
        let mask = derive_feature_mask(&matcher.features, &matcher.model, rule_descs);
        // One tokenization pass per column feeds both the join probes and
        // the word-level set features (shared-corpus satellite): ids are
        // interned once, and the extractor keeps only Arc clones.
        let cache = TokenCache::for_blocking();
        let left_corpus =
            TokenCorpus::from_column(&cache, umetrics.iter().map(|r| r.str(BLOCK_COL)));
        let right_corpus = TokenCorpus::from_column(&cache, usda.iter().map(|r| r.str(BLOCK_COL)));
        let join = JoinIndex::build(right_corpus);
        let extractor = BatchExtractor::new(
            &matcher.features,
            umetrics,
            usda,
            &mask,
            Some(SharedWordColumns {
                left_attr: BLOCK_COL,
                right_attr: BLOCK_COL,
                left: &left_corpus,
                right: join.right(),
            }),
        )?;
        Ok(StreamMatcher {
            u: umetrics,
            s: usda,
            imputer: &matcher.imputer,
            rules,
            scorer: matcher.model.block_scorer(),
            n_features: matcher.features.len(),
            extractor,
            join,
            left_corpus,
            spec: plan.union_spec(),
            c1,
            sure,
            mask,
        })
    }

    /// The derived feature mask (model splits ∪ rule attributes).
    pub fn mask(&self) -> &FeatureMask {
        &self.mask
    }

    /// Runs the fused stream, returning only the accounting — memory
    /// stays bounded by `workers × (scratch + slab)` regardless of how
    /// many candidates the blocking admits.
    pub fn run(&self) -> StreamOutcome {
        self.run_inner(false).0
    }

    /// [`run`](StreamMatcher::run), additionally collecting every scored
    /// `(pair, probability)` and the final match list, both in
    /// `(left, right)` order — the equivalence tests' hook for bit-exact
    /// comparison against the materialized workflow. Memory is
    /// proportional to the candidate count again, so this is for tests
    /// and small factors, not the scaling path.
    pub fn run_collecting(&self) -> (StreamOutcome, Vec<(Pair, f64)>, Vec<Pair>) {
        self.run_inner(true)
    }

    /// Chunked parallel drive + chunk-ordered merge.
    fn run_inner(&self, collect: bool) -> (StreamOutcome, Vec<(Pair, f64)>, Vec<Pair>) {
        let n_left = self.u.n_rows();
        let chunks = n_left.div_ceil(STREAM_CHUNK);
        let results = Executor::current().map_indexed_with(
            chunks,
            1,
            || StreamScratch::for_matcher(self),
            |ws, c| self.run_chunk(c, ws, collect),
        );
        let mut out = StreamOutcome {
            left_rows: n_left,
            right_rows: self.s.n_rows(),
            sure: self.sure.rows.len(),
            candidates: 0,
            predicted: 0,
            flipped: 0,
            matched: 0,
            checksum: FNV_OFFSET,
            histogram: [0; HIST_BINS],
        };
        let mut scored = Vec::new();
        let mut matches = Vec::new();
        for r in results {
            out.candidates += r.candidates;
            out.predicted += r.predicted;
            out.flipped += r.flipped;
            out.matched += r.matched;
            out.checksum = fnv_u64(out.checksum, r.digest);
            for (h, c) in out.histogram.iter_mut().zip(r.histogram.iter()) {
                *h += c;
            }
            scored.extend(r.scored);
            matches.extend(r.matches);
        }
        (out, scored, matches)
    }
}

impl Csr {
    /// Builds the adjacency from a materialized candidate set;
    /// [`CandidateSet::iter`] yields `(left, right)` order, so each row's
    /// ids land sorted.
    fn from_set(set: &CandidateSet, n_left: usize) -> Csr {
        let mut starts = vec![0usize; n_left + 1];
        for p in set.iter() {
            starts[p.left + 1] += 1;
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        let mut rows = vec![0u32; set.len()];
        let mut next = starts.clone();
        for p in set.iter() {
            rows[next[p.left]] = p.right as u32;
            next[p.left] += 1;
        }
        Csr { starts, rows }
    }
}

impl StreamScratch {
    /// Scratch sized for one worker of `m`'s stream.
    fn for_matcher(m: &StreamMatcher<'_>) -> StreamScratch {
        StreamScratch {
            probe: JoinScratch::for_index(&m.join),
            hits: Vec::new(),
            blocked: Vec::new(),
            candidates: Vec::new(),
            pending: Vec::with_capacity(SCORE_SLAB),
            block: vec![0.0; SCORE_SLAB * m.n_features],
            scores: vec![0.0; SCORE_SLAB],
            kept: Vec::new(),
            batch: BatchScratch::new(),
        }
    }
}

/// Derives the streaming/serving [`FeatureMask`] from a frozen workflow:
/// a feature stays live when the fitted model can read it (a split in
/// some tree of the forest) **or** its attribute pair is referenced by a
/// rule predicate. Models that read every feature densely (linear, bayes
/// — [`FittedModel::referenced_features`] returns `None`) keep the full
/// plan, preserving batch semantics exactly. (Moved here from `em-serve`,
/// which re-exports it, so the batch and serve tiers share one
/// definition.)
pub fn derive_feature_mask(
    features: &FeatureSet,
    model: &FittedModel,
    rules: &RuleSetDesc,
) -> FeatureMask {
    match model.referenced_features() {
        None => FeatureMask::full(features.len()),
        Some(mut live) => {
            for (left, right) in rules.referenced_attr_pairs() {
                for (k, f) in features.features.iter().enumerate() {
                    if f.left_attr == left && f.right_attr == right {
                        live.insert(k);
                    }
                }
            }
            FeatureMask::from_live_indices(features.len(), live)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn set_from(pairs: &[(usize, usize)]) -> CandidateSet {
        let mut s = CandidateSet::new("t");
        for &(l, r) in pairs {
            s.add(Pair::new(l, r), "t");
        }
        s
    }

    fn sorted_set(v: Vec<u32>) -> (BTreeSet<u32>, Vec<u32>) {
        let set: BTreeSet<u32> = v.into_iter().collect();
        let flat = set.iter().copied().collect();
        (set, flat)
    }

    proptest! {
        #[test]
        fn merge_union_matches_btreeset(
            a in proptest::collection::vec(0u32..64, 0..24),
            b in proptest::collection::vec(0u32..64, 0..24),
        ) {
            let (aset, av) = sorted_set(a);
            let (bset, bv) = sorted_set(b);
            let mut out = Vec::new();
            merge_union(&av, &bv, &mut out);
            let want: Vec<u32> = aset.union(&bset).copied().collect();
            prop_assert_eq!(out, want);
        }

        #[test]
        fn merge_difference_matches_btreeset(
            a in proptest::collection::vec(0u32..64, 0..24),
            b in proptest::collection::vec(0u32..64, 0..24),
        ) {
            let (aset, av) = sorted_set(a);
            let (bset, bv) = sorted_set(b);
            let mut out = Vec::new();
            merge_difference(&av, &bv, &mut out);
            let want: Vec<u32> = aset.difference(&bset).copied().collect();
            prop_assert_eq!(out, want);
        }

        #[test]
        fn csr_groups_candidate_sets_by_left_row(
            raw in proptest::collection::vec((0usize..20, 0usize..40), 0..60),
        ) {
            let pairs: BTreeSet<(usize, usize)> = raw.into_iter().collect();
            let list: Vec<(usize, usize)> = pairs.iter().copied().collect();
            let set = set_from(&list);
            let csr = Csr::from_set(&set, 20);
            let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
            for i in 0..20 {
                let row = csr.row(i);
                // sorted, deduplicated within each left row
                prop_assert!(row.windows(2).all(|w| w[0] < w[1]));
                for &j in row {
                    seen.insert((i, j as usize));
                }
            }
            prop_assert_eq!(seen, pairs);
        }
    }
}
