//! The how-to guide — Section 13's first challenge: "it is critical to have
//! some how-to guides that tell both teams how to conduct this
//! conversation, what to do first, what to do second, and so on."
//!
//! [`how_to_guide`] is the case study's process, encoded: the canonical
//! step sequence with, for each step, what to do, which API runs it, and
//! which paper section motivates it. [`GuideProgress`] is the checklist the
//! teams keep: mark steps done (or revisited — the "zig-zag" the paper
//! stresses), render the current state, and ask what to do next.

use std::fmt;

/// One step of the end-to-end EM process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuideStep {
    /// Stable identifier (kebab-case).
    pub id: &'static str,
    /// Imperative title.
    pub title: &'static str,
    /// What the step entails, in one or two sentences.
    pub what: &'static str,
    /// The API that runs it.
    pub api: &'static str,
    /// Paper section it mirrors.
    pub section: &'static str,
}

/// The canonical guide, in execution order.
pub fn how_to_guide() -> Vec<GuideStep> {
    vec![
        GuideStep {
            id: "understand-data",
            title: "Understand the data",
            what: "Browse sample rows; profile every table (missing, unique, mean/median); \
                   infer entities and key/foreign-key relationships.",
            api: "em_table::profile::profile_table, Table::check_key/check_foreign_key",
            section: "Section 4",
        },
        GuideStep {
            id: "match-definition",
            title: "Converge on a match definition",
            what: "Obtain the matching document; extract precise positive rules (M1); flag \
                   the imprecise instructions (M2/M3) for iterative refinement with the \
                   domain experts.",
            api: "em_rules::EqualityRule, em_rules::pattern",
            section: "Section 5",
        },
        GuideStep {
            id: "preprocess",
            title: "Pre-process into two aligned tables",
            what: "Select the matching-relevant tables, validate keys, project and rename \
                   columns, fold one-to-many attributes, add record ids.",
            api: "em_core::preprocess::{project_umetrics, project_usda}",
            section: "Section 6",
        },
        GuideStep {
            id: "block",
            title: "Block",
            what: "Cover every positive rule with an equivalence scheme, add token-overlap \
                   and overlap-coefficient schemes for the fuzzy definition, sweep thresholds, \
                   union the candidate sets.",
            api: "em_core::blocking_plan::run_blocking",
            section: "Section 7",
        },
        GuideStep {
            id: "debug-blocking",
            title: "Audit what blocking excluded",
            what: "Rank the most match-like excluded pairs; eyeball the top of the list; \
                   freeze blocking only when it contains no true matches.",
            api: "em_blocking::debug_blocking",
            section: "Section 7 / MatchCatcher [23]",
        },
        GuideStep {
            id: "label",
            title: "Sample and label iteratively",
            what: "Label in small rounds until enough positives accumulate; cross-check the \
                   first round between teams; settle disagreements face to face.",
            api: "em_core::labeling::run_labeling, em_core::labelstore::LabelStore",
            section: "Section 8",
        },
        GuideStep {
            id: "debug-labels",
            title: "Debug the labels",
            what: "Leave-one-out predict every labeled pair; bring the disagreements back to \
                   the experts as discrepancy classes.",
            api: "em_core::matcher::debug_labels",
            section: "Section 8",
        },
        GuideStep {
            id: "select-matcher",
            title: "Select and debug a matcher",
            what: "Cross-validate the standard learners; mine mismatches with the winner; \
                   extend the feature set (e.g. case-insensitive variants) and re-select.",
            api: "em_core::matcher::{select_matcher, train_matcher}, em_ml::debug",
            section: "Section 9",
        },
        GuideStep {
            id: "run-workflow",
            title: "Run the workflow and review with the experts",
            what: "Sure-match rules first, model on the remainder; deliver identifier pairs; \
                   expect the review to change the match definition or the data.",
            api: "em_core::workflow::EmWorkflow",
            section: "Sections 9-10",
        },
        GuideStep {
            id: "patch",
            title: "Patch, don't redo",
            what: "Fold new rules and late-arriving data in as patch workflows over the \
                   untouched original; union by identifier.",
            api: "EmWorkflow::run_patched, em_core::analysis",
            section: "Section 10",
        },
        GuideStep {
            id: "estimate",
            title: "Estimate accuracy",
            what: "Label a random sample of the candidate universe; estimate precision and \
                   recall with intervals; compare against the incumbent matcher; grow the \
                   sample until the intervals are tight enough to act on.",
            api: "em_estimate::estimate_accuracy",
            section: "Section 11",
        },
        GuideStep {
            id: "repair-precision",
            title: "Repair precision with rules, then package",
            what: "Solicit negative rules from the experts; apply them to the model output; \
                   package the workflow as a spec and monitor it per slice in production.",
            api: "em_rules::NegativeRule, em_core::{spec, monitor}",
            section: "Section 12",
        },
    ]
}

/// Progress through the guide. Steps may be revisited — the paper's
/// "zig-zag" — which the history records.
#[derive(Debug, Clone, Default)]
pub struct GuideProgress {
    completed: Vec<&'static str>,
    history: Vec<String>,
}

impl GuideProgress {
    /// Fresh progress: nothing done.
    pub fn new() -> GuideProgress {
        GuideProgress::default()
    }

    /// Marks a step complete (idempotent) with a note for the history.
    /// Unknown ids are rejected so typos do not silently pass.
    pub fn complete(&mut self, id: &str, note: &str) -> Result<(), String> {
        let step = how_to_guide()
            .into_iter()
            .find(|s| s.id == id)
            .ok_or_else(|| format!("unknown guide step {id:?}"))?;
        if !self.completed.contains(&step.id) {
            self.completed.push(step.id);
        }
        self.history.push(format!("{}: {}", step.id, note));
        Ok(())
    }

    /// Re-opens a completed step (a revision arrived — new data, new rule).
    pub fn revisit(&mut self, id: &str, reason: &str) -> Result<(), String> {
        let pos = self
            .completed
            .iter()
            .position(|s| *s == id)
            .ok_or_else(|| format!("step {id:?} is not complete"))?;
        self.completed.remove(pos);
        self.history.push(format!("{id}: REOPENED — {reason}"));
        Ok(())
    }

    /// True when the step is currently complete.
    pub fn is_complete(&self, id: &str) -> bool {
        self.completed.contains(&id)
    }

    /// The first incomplete step, in guide order (what to do next).
    pub fn next_step(&self) -> Option<GuideStep> {
        how_to_guide().into_iter().find(|s| !self.is_complete(s.id))
    }

    /// The append-only activity log.
    pub fn history(&self) -> &[String] {
        &self.history
    }
}

impl fmt::Display for GuideProgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in how_to_guide() {
            let mark = if self.is_complete(step.id) { "x" } else { " " };
            writeln!(f, "[{mark}] {:<18} {} ({})", step.id, step.title, step.section)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guide_is_ordered_and_unique() {
        let steps = how_to_guide();
        assert_eq!(steps.len(), 12);
        let mut ids: Vec<&str> = steps.iter().map(|s| s.id).collect();
        assert_eq!(ids[0], "understand-data");
        assert_eq!(*ids.last().unwrap(), "repair-precision");
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), steps.len(), "duplicate step ids");
    }

    #[test]
    fn progress_walks_the_guide() {
        let mut p = GuideProgress::new();
        assert_eq!(p.next_step().unwrap().id, "understand-data");
        p.complete("understand-data", "profiled all seven tables").unwrap();
        assert_eq!(p.next_step().unwrap().id, "match-definition");
        assert!(p.is_complete("understand-data"));
    }

    #[test]
    fn zig_zag_reopens_steps() {
        let mut p = GuideProgress::new();
        p.complete("block", "C = C1∪C2∪C3").unwrap();
        p.revisit("block", "new positive rule arrived").unwrap();
        assert!(!p.is_complete("block"));
        assert!(p.history().iter().any(|h| h.contains("REOPENED")));
        assert!(p.revisit("block", "twice").is_err(), "cannot reopen an open step");
    }

    #[test]
    fn unknown_step_rejected() {
        let mut p = GuideProgress::new();
        assert!(p.complete("teleport", "x").is_err());
    }

    #[test]
    fn completing_everything_exhausts_the_guide() {
        let mut p = GuideProgress::new();
        for s in how_to_guide() {
            p.complete(s.id, "done").unwrap();
        }
        assert!(p.next_step().is_none());
        let rendered = p.to_string();
        assert!(!rendered.contains("[ ]"));
    }

    #[test]
    fn display_lists_every_step() {
        let p = GuideProgress::new();
        let s = p.to_string();
        for step in how_to_guide() {
            assert!(s.contains(step.id), "missing {}", step.id);
        }
    }
}
