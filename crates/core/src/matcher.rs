//! The matching stage (Section 9): feature preparation, matcher selection
//! by five-fold cross-validation, training, prediction, and the two
//! debugging passes (label debugging via leave-one-out, matcher debugging
//! via split-half mismatch mining).

use crate::error::CoreError;
use crate::labeling::LabeledSet;
use em_blocking::{CandidateSet, Pair};
use em_estimate::Label;
use em_features::{extract_vectors, FeatureOptions, FeatureSet};
use em_ml::cv::{cross_validate, leave_one_out_predictions, CvResult};
use em_ml::dataset::{impute_mean, Dataset, Imputer};
use em_ml::model::{Learner, Model};
use em_parallel::Executor;
use em_rules::RuleSet;
use em_table::Table;

/// Minimum feature rows per thread for batch prediction.
const PREDICT_GRAIN: usize = 64;

/// Configuration of the matching stage.
#[derive(Debug, Clone)]
pub struct MatcherStage {
    /// Feature-generation options (Section 9 round 2 turns
    /// `case_insensitive` on).
    pub feature_opts: FeatureOptions,
    /// Cross-validation folds (paper: 5).
    pub cv_folds: usize,
    /// Seed for CV shuffles and stochastic learners.
    pub seed: u64,
}

impl MatcherStage {
    /// The paper's defaults (5-fold CV, ids excluded from features).
    pub fn new(seed: u64) -> MatcherStage {
        MatcherStage {
            feature_opts: FeatureOptions::excluding(&["RecordId", "AccessionNumber"]),
            cv_folds: 5,
            seed,
        }
    }

    /// Enables case-insensitive feature variants (the Section 9 fix).
    pub fn with_case_insensitive(mut self) -> MatcherStage {
        self.feature_opts = self.feature_opts.clone().with_case_insensitive();
        self
    }
}

/// A matcher ready to predict: features, the imputer fitted on training
/// data, and the trained model.
pub struct TrainedMatcher {
    /// The generated feature set.
    pub features: FeatureSet,
    /// Mean imputer fitted on the training matrix.
    pub imputer: Imputer,
    /// The trained model, in its concrete serializable form so workflow
    /// snapshots can persist it.
    pub model: em_ml::FittedModel,
    /// Which learner won selection.
    pub learner_name: String,
    /// Normalized Gini feature importances, when the winning learner is
    /// tree-based (the PyMatcher debugger's "which features matter" view).
    pub feature_importance: Option<Vec<f64>>,
}

/// Builds the training dataset from labeled pairs, excluding `Unsure`
/// labels and pairs any positive rule already decides ("removed the unsure
/// and sure matches … from the labeled data"). Missing values are imputed
/// in place; the fitted imputer is returned for prediction-time use.
pub fn build_training_data(
    umetrics: &Table,
    usda: &Table,
    features: &FeatureSet,
    labeled: &LabeledSet,
    sure_rules: &RuleSet,
) -> Result<(Dataset, Imputer), CoreError> {
    let mut pairs = Vec::new();
    let mut labels = Vec::new();
    for lp in labeled.iter() {
        let Some(as_bool) = lp.label.as_bool() else {
            continue; // Unsure
        };
        let (Some(u), Some(s)) = (umetrics.row(lp.pair.left), usda.row(lp.pair.right)) else {
            return Err(CoreError::Pipeline(format!(
                "labeled pair ({}, {}) out of range",
                lp.pair.left, lp.pair.right
            )));
        };
        if sure_rules.any_positive_fires(u, s) {
            continue; // sure matches are handled by rules, not learning
        }
        pairs.push(lp.pair);
        labels.push(as_bool);
    }
    let x = extract_vectors(features, umetrics, usda, &pairs)?;
    let mut data = Dataset::new(features.names(), x, labels)?;
    let imputer = impute_mean(&mut data);
    Ok((data, imputer))
}

/// Cross-validates the six standard learners on the training data and
/// returns the ranking (best first) — the Section 9 bake-off.
pub fn select_matcher(
    data: &Dataset,
    stage: &MatcherStage,
) -> Result<Vec<CvResult>, CoreError> {
    let learners = em_ml::standard_learners(stage.seed);
    let mut rows: Vec<CvResult> = learners
        .iter()
        .map(|l| cross_validate(l.as_ref(), data, stage.cv_folds, stage.seed))
        .collect::<Result<_, _>>()?;
    rows.sort_by(|a, b| {
        b.f1()
            .partial_cmp(&a.f1())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.learner.cmp(&b.learner))
    });
    Ok(rows)
}

/// Trains the named learner (one of the standard six) on the full training
/// data, packaging features + imputer + model for prediction.
pub fn train_matcher(
    features: FeatureSet,
    imputer: Imputer,
    data: &Dataset,
    learner_name: &str,
    stage: &MatcherStage,
) -> Result<TrainedMatcher, CoreError> {
    let learners = em_ml::standard_learners(stage.seed);
    let learner = learners
        .iter()
        .find(|l| l.name() == learner_name)
        .ok_or_else(|| CoreError::Pipeline(format!("unknown learner {learner_name:?}")))?;
    let model = learner.fit_model(data)?;
    // Tree-based winners expose Gini importances for the debugging view.
    let feature_importance = match learner_name {
        "Decision Tree" => Some(
            em_ml::tree::DecisionTreeLearner::default()
                .fit_tree(data)?
                .feature_importance(data.n_features()),
        ),
        "Random Forest" => Some(
            em_ml::forest::RandomForestLearner { seed: stage.seed, ..Default::default() }
                .fit_forest(data)?
                .feature_importance(data.n_features()),
        ),
        _ => None,
    };
    Ok(TrainedMatcher {
        features,
        imputer,
        model,
        learner_name: learner_name.to_string(),
        feature_importance,
    })
}

impl TrainedMatcher {
    /// The `k` most important features with their normalized importances,
    /// when the winning learner exposes them.
    pub fn top_features(&self, k: usize) -> Option<Vec<(String, f64)>> {
        let imp = self.feature_importance.as_ref()?;
        let mut ranked: Vec<(String, f64)> = self
            .features
            .names()
            .into_iter()
            .zip(imp.iter().copied())
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        Some(ranked)
    }

    /// Predicts matches among `pairs`, returning the predicted-match set
    /// (provenance `model:<learner>`).
    pub fn predict(
        &self,
        umetrics: &Table,
        usda: &Table,
        pairs: &CandidateSet,
    ) -> Result<CandidateSet, CoreError> {
        let list: Vec<Pair> = pairs.to_vec();
        let mut x = extract_vectors(&self.features, umetrics, usda, &list)?;
        self.imputer.transform(&mut x);
        let tag = format!("model:{}", self.learner_name);
        // Rows predict independently; ordered merge keeps the set identical
        // to the sequential loop at any thread count.
        let verdicts = Executor::current()
            .map_slice(&x, PREDICT_GRAIN, |row| self.model.predict(row));
        let mut out = CandidateSet::new("predicted");
        for (pair, hit) in list.iter().zip(verdicts) {
            if hit {
                out.add(*pair, &tag);
            }
        }
        Ok(out)
    }

    /// Match probabilities for every pair of a candidate set, in set order.
    pub fn probabilities(
        &self,
        umetrics: &Table,
        usda: &Table,
        pairs: &CandidateSet,
    ) -> Result<Vec<(Pair, f64)>, CoreError> {
        let list: Vec<Pair> = pairs.to_vec();
        let mut x = extract_vectors(&self.features, umetrics, usda, &list)?;
        self.imputer.transform(&mut x);
        let probas = Executor::current()
            .map_slice(&x, PREDICT_GRAIN, |row| self.model.predict_proba(row));
        Ok(list.into_iter().zip(probas).collect())
    }

    /// Match probability for one pair.
    pub fn proba(
        &self,
        umetrics: &Table,
        usda: &Table,
        pair: Pair,
    ) -> Result<f64, CoreError> {
        let mut x = extract_vectors(&self.features, umetrics, usda, &[pair])?;
        self.imputer.transform(&mut x);
        Ok(self.model.predict_proba(&x[0]))
    }
}

/// One label-debugging lead: a labeled pair whose held-out prediction
/// disagrees with its label (Section 8's leave-one-out pass).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelDebugHit {
    /// The labeled pair.
    pub pair: Pair,
    /// The held-out model prediction.
    pub predicted: bool,
    /// The expert label it contradicts.
    pub labeled: Label,
}

/// Runs leave-one-out label debugging with the given learner over the
/// training data built by [`build_training_data`]'s exclusion semantics.
pub fn debug_labels(
    umetrics: &Table,
    usda: &Table,
    features: &FeatureSet,
    labeled: &LabeledSet,
    sure_rules: &RuleSet,
    learner: &dyn Learner,
) -> Result<Vec<LabelDebugHit>, CoreError> {
    let mut pairs = Vec::new();
    let mut labels = Vec::new();
    for lp in labeled.iter() {
        let Some(as_bool) = lp.label.as_bool() else { continue };
        let (Some(u), Some(s)) = (umetrics.row(lp.pair.left), usda.row(lp.pair.right)) else {
            continue;
        };
        if sure_rules.any_positive_fires(u, s) {
            continue;
        }
        pairs.push((lp.pair, lp.label));
        labels.push(as_bool);
    }
    let x = extract_vectors(features, umetrics, usda, &pairs.iter().map(|(p, _)| *p).collect::<Vec<_>>())?;
    let mut data = Dataset::new(features.names(), x, labels)?;
    let _ = impute_mean(&mut data);
    let preds = leave_one_out_predictions(learner, &data)?;
    Ok(pairs
        .iter()
        .zip(preds)
        .filter(|((_, label), pred)| label.as_bool() != Some(*pred))
        .map(|((pair, label), pred)| LabelDebugHit { pair: *pair, predicted: pred, labeled: *label })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking_plan::{run_blocking, BlockingPlan};
    use crate::labeling::run_labeling;
    use crate::preprocess::{project_umetrics, project_usda};
    use em_datagen::{Oracle, OracleConfig, Scenario, ScenarioConfig};
    use em_features::auto_features;
    use em_rules::EqualityRule;

    struct Fixture {
        u: Table,
        s: Table,
        scenario: Scenario,
        candidates: CandidateSet,
        labeled: LabeledSet,
        rules: RuleSet,
    }

    fn fixture() -> Fixture {
        // Seed chosen so the small scenario is statistically representative
        // (the case-insensitive feature set wins, as at paper scale).
        let scenario = Scenario::generate(ScenarioConfig::small().with_seed(23)).unwrap();
        let u = project_umetrics(&scenario.award_agg, &scenario.employees).unwrap();
        let s = project_usda(&scenario.usda, false).unwrap();
        let candidates = run_blocking(&u, &s, &BlockingPlan::default()).unwrap().consolidated;
        let oracle = Oracle::new(&scenario.truth, OracleConfig::default());
        let (labeled, _) =
            run_labeling(&u, &s, &candidates, &oracle, &[100, 100], 5).unwrap();
        let rules = RuleSet {
            positive: vec![EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber")],
            negative: vec![],
        };
        Fixture { u, s, scenario, candidates, labeled, rules }
    }

    #[test]
    fn training_data_excludes_unsure_and_sure() {
        let f = fixture();
        let stage = MatcherStage::new(1).with_case_insensitive();
        let features = auto_features(&f.u, &f.s, &stage.feature_opts);
        let (data, _) =
            build_training_data(&f.u, &f.s, &features, &f.labeled, &f.rules).unwrap();
        let (yes, no, unsure) = f.labeled.counts();
        assert!(data.len() <= yes + no, "unsure pairs must be dropped");
        assert!(unsure > 0 || data.len() == yes + no);
        data.check_finite().unwrap();
        assert!(data.n_positive() > 0, "need positive examples to train");
    }

    #[test]
    fn selection_ranks_and_winner_is_strong() {
        let f = fixture();
        let stage = MatcherStage::new(1).with_case_insensitive();
        let features = auto_features(&f.u, &f.s, &stage.feature_opts);
        let (data, _) =
            build_training_data(&f.u, &f.s, &features, &f.labeled, &f.rules).unwrap();
        let ranking = select_matcher(&data, &stage).unwrap();
        assert_eq!(ranking.len(), 6);
        for w in ranking.windows(2) {
            assert!(w[0].f1() >= w[1].f1());
        }
        assert!(ranking[0].f1() > 0.7, "best F1 = {}", ranking[0].f1());
    }

    #[test]
    fn case_insensitive_features_beat_case_sensitive() {
        // The Section 9 story: UMETRICS titles are uppercase, USDA titles
        // title-case, so the case-insensitive feature set must outperform.
        let f = fixture();
        let cs_stage = MatcherStage::new(1);
        let ci_stage = MatcherStage::new(1).with_case_insensitive();
        let mut f1s = Vec::new();
        for stage in [&cs_stage, &ci_stage] {
            let features = auto_features(&f.u, &f.s, &stage.feature_opts);
            let (data, _) =
                build_training_data(&f.u, &f.s, &features, &f.labeled, &f.rules).unwrap();
            f1s.push(select_matcher(&data, stage).unwrap()[0].f1());
        }
        assert!(
            f1s[1] >= f1s[0],
            "case-insensitive ({}) should not lose to case-sensitive ({})",
            f1s[1],
            f1s[0]
        );
    }

    #[test]
    fn trained_matcher_predicts_candidates() {
        let f = fixture();
        let stage = MatcherStage::new(1).with_case_insensitive();
        let features = auto_features(&f.u, &f.s, &stage.feature_opts);
        let (data, imputer) =
            build_training_data(&f.u, &f.s, &features, &f.labeled, &f.rules).unwrap();
        let ranking = select_matcher(&data, &stage).unwrap();
        let matcher =
            train_matcher(features, imputer, &data, &ranking[0].learner, &stage).unwrap();
        let predicted = matcher.predict(&f.u, &f.s, &f.candidates).unwrap();
        assert!(!predicted.is_empty());
        assert!(predicted.len() < f.candidates.len());
        // Predictions should be mostly true matches.
        let mut tp = 0usize;
        for p in predicted.iter() {
            let award = f.u.get(p.left, "AwardNumber").unwrap().render();
            let acc = f.s.get(p.right, "AccessionNumber").unwrap().render();
            if f.scenario.truth.is_match(&award, &acc) {
                tp += 1;
            }
        }
        let precision = tp as f64 / predicted.len() as f64;
        assert!(precision > 0.5, "model precision {precision} too low");
    }

    #[test]
    fn unknown_learner_rejected() {
        let f = fixture();
        let stage = MatcherStage::new(1);
        let features = auto_features(&f.u, &f.s, &stage.feature_opts);
        let (data, imputer) =
            build_training_data(&f.u, &f.s, &features, &f.labeled, &f.rules).unwrap();
        assert!(train_matcher(features, imputer, &data, "Oracle", &stage).is_err());
    }

    #[test]
    fn label_debug_finds_planted_error() {
        let f = fixture();
        let stage = MatcherStage::new(1).with_case_insensitive();
        let features = auto_features(&f.u, &f.s, &stage.feature_opts);
        // Plant a wrong label on a labeled Yes pair not covered by M1.
        let mut labeled = f.labeled.clone();
        let victim = labeled
            .iter()
            .find(|lp| {
                lp.label == Label::Yes
                    && !f.rules.any_positive_fires(
                        f.u.row(lp.pair.left).unwrap(),
                        f.s.row(lp.pair.right).unwrap(),
                    )
            })
            .map(|lp| lp.pair);
        let Some(victim) = victim else {
            return; // no eligible victim under this seed; other seeds cover it
        };
        labeled.insert(victim, Label::No);
        let hits = debug_labels(
            &f.u,
            &f.s,
            &features,
            &labeled,
            &f.rules,
            &em_ml::tree::DecisionTreeLearner::default(),
        )
        .unwrap();
        assert!(
            hits.iter().any(|h| h.pair == victim && h.predicted),
            "planted bad label not flagged"
        );
    }
}
