//! Sampling and labeling (Section 8): iterative sampling from the candidate
//! set, simulated expert labeling with a first-round cross-check, and the
//! bookkeeping of label counts per round.

use crate::error::CoreError;
use crate::resilience::{ResilienceReport, RetryPolicy};
use em_blocking::{CandidateSet, Pair};
use em_datagen::{LabelSource, Oracle, PairView};
use em_estimate::Label;
use em_table::Table;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// One labeled candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledPair {
    /// The candidate pair (row indices into the projected tables).
    pub pair: Pair,
    /// The expert label.
    pub label: Label,
}

/// An accumulating set of labeled pairs (pair-keyed; relabeling replaces).
#[derive(Debug, Clone, Default)]
pub struct LabeledSet {
    by_pair: HashMap<Pair, Label>,
    order: Vec<Pair>,
}

impl LabeledSet {
    /// Empty set.
    pub fn new() -> LabeledSet {
        LabeledSet::default()
    }

    /// Adds or replaces a label.
    pub fn insert(&mut self, pair: Pair, label: Label) {
        if self.by_pair.insert(pair, label).is_none() {
            self.order.push(pair);
        }
    }

    /// The label of a pair, if labeled.
    pub fn get(&self, pair: &Pair) -> Option<Label> {
        self.by_pair.get(pair).copied()
    }

    /// True when the pair has been labeled.
    pub fn contains(&self, pair: &Pair) -> bool {
        self.by_pair.contains_key(pair)
    }

    /// Number of labeled pairs.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates labeled pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = LabeledPair> + '_ {
        self.order.iter().map(move |p| LabeledPair { pair: *p, label: self.by_pair[p] })
    }

    /// `(yes, no, unsure)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for p in self.order.iter() {
            match self.by_pair[p] {
                Label::Yes => c.0 += 1,
                Label::No => c.1 += 1,
                Label::Unsure => c.2 += 1,
            }
        }
        c
    }
}

/// What one labeling round produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelingRound {
    /// Pairs sampled and labeled this round.
    pub sampled: usize,
    /// Yes labels this round (after any cross-check correction).
    pub yes: usize,
    /// No labels this round.
    pub no: usize,
    /// Unsure labels this round.
    pub unsure: usize,
    /// First round only: labels that disagreed with the EM team's own pass
    /// (the paper found 22).
    pub crosscheck_mismatches: usize,
    /// First round only: labels the experts corrected after discussion
    /// (the paper: 4 updated to Yes).
    pub corrections: usize,
}

/// Renders the accession number of a USDA row (int-typed in the raw data).
pub fn accession_of(usda: &Table, row: usize) -> String {
    usda.get(row, "AccessionNumber").map(|v| v.render()).unwrap_or_default()
}

/// Renders the award number of a UMETRICS row.
pub fn award_of(umetrics: &Table, row: usize) -> String {
    umetrics.get(row, "AwardNumber").map(|v| v.render()).unwrap_or_default()
}

/// Samples `n` not-yet-labeled pairs from the candidate set,
/// deterministically in `seed`.
///
/// Pairs already present in `already` are never re-offered, and the pool is
/// deduplicated in first-occurrence order, so a candidate stream that
/// repeats a pair (or a caller that samples round after round against an
/// accumulating [`LabeledSet`]) can never charge the same pair twice. On a
/// duplicate-free pool the selection is unchanged.
pub fn sample_unlabeled(
    candidates: &CandidateSet,
    already: &LabeledSet,
    n: usize,
    seed: u64,
) -> Vec<Pair> {
    let mut seen = std::collections::HashSet::new();
    let mut pool: Vec<Pair> = candidates
        .iter()
        .filter(|p| !already.contains(p) && seen.insert(*p))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    pool.shuffle(&mut rng);
    pool.truncate(n);
    pool.sort(); // deterministic presentation order
    pool
}

/// Labels one pair through a [`LabelSource`], retrying transient faults per
/// the [`RetryPolicy`] (backoff is *recorded* in virtual milliseconds, not
/// slept). When retries are exhausted the labeling degrades gracefully: the
/// pair is labeled `Unsure` — the safe "don't know" of this domain — and
/// the degradation is recorded in the [`ResilienceReport`].
pub(crate) fn label_with_retries(
    source: &dyn LabelSource,
    umetrics: &Table,
    usda: &Table,
    pair: Pair,
    first_round: bool,
    retry: &RetryPolicy,
    resilience: &mut ResilienceReport,
) -> Result<(Label, Label), CoreError> {
    let u = umetrics
        .row(pair.left)
        .ok_or_else(|| CoreError::Pipeline(format!("pair row {} outside UMETRICS", pair.left)))?;
    let s = usda
        .row(pair.right)
        .ok_or_else(|| CoreError::Pipeline(format!("pair row {} outside USDA", pair.right)))?;
    let accession = accession_of(usda, pair.right);
    let view = PairView {
        award_number: u.str("AwardNumber").unwrap_or(""),
        accession: &accession,
        left_title: u.str("AwardTitle").unwrap_or(""),
        right_title: s.str("AwardTitle").unwrap_or(""),
        right_award_number: s.str("AwardNumber"),
        right_project_number: s.str("ProjectNumber"),
    };
    let backoff_key = format!("{}/{}", view.award_number, accession);
    let mut attempt = 0u32;
    loop {
        match source.try_label(&view, first_round, attempt) {
            Ok(labels) => return Ok(labels),
            Err(_fault) => {
                resilience.oracle_faults += 1;
                if attempt >= retry.max_retries {
                    resilience.degraded_labels += 1;
                    resilience
                        .degraded_pairs
                        .push((view.award_number.to_string(), accession.clone()));
                    return Ok((Label::Unsure, Label::Unsure));
                }
                resilience.oracle_retries += 1;
                resilience.total_backoff_ms += retry.backoff_ms(&backoff_key, attempt);
                attempt += 1;
            }
        }
    }
}

/// Runs the Section 8 labeling loop: one round per entry of `round_sizes`.
///
/// The first round reproduces the cross-check: the experts label with their
/// mistake-prone first pass, the EM team's own pass (the settled labels)
/// is compared, mismatches are discussed, and the settled labels win.
/// Later rounds use settled labels directly (the experts have converged on
/// the match definition).
pub fn run_labeling(
    umetrics: &Table,
    usda: &Table,
    candidates: &CandidateSet,
    oracle: &Oracle<'_>,
    round_sizes: &[usize],
    seed: u64,
) -> Result<(LabeledSet, Vec<LabelingRound>), CoreError> {
    let (labeled, rounds, _res) = run_labeling_resilient(
        umetrics,
        usda,
        candidates,
        oracle,
        round_sizes,
        seed,
        &RetryPolicy::none(),
    )?;
    Ok((labeled, rounds))
}

/// [`run_labeling`] against a fallible [`LabelSource`]: every labeling call
/// is retried per `retry` and degrades to `Unsure` when retries run out.
/// The third return value is the ledger of faults, retries, virtual backoff,
/// and degraded pairs. With an infallible source (the plain [`Oracle`]) the
/// ledger stays empty and the labels are identical to [`run_labeling`]'s.
pub fn run_labeling_resilient(
    umetrics: &Table,
    usda: &Table,
    candidates: &CandidateSet,
    source: &dyn LabelSource,
    round_sizes: &[usize],
    seed: u64,
    retry: &RetryPolicy,
) -> Result<(LabeledSet, Vec<LabelingRound>, ResilienceReport), CoreError> {
    let mut labeled = LabeledSet::new();
    let mut rounds = Vec::with_capacity(round_sizes.len());
    let mut resilience = ResilienceReport::default();
    for (round_idx, &n) in round_sizes.iter().enumerate() {
        let first_round = round_idx == 0;
        let pairs = sample_unlabeled(candidates, &labeled, n, seed.wrapping_add(round_idx as u64));
        let mut mismatches = 0usize;
        let mut corrections = 0usize;
        let (mut yes, mut no, mut unsure) = (0usize, 0usize, 0usize);
        for pair in pairs.iter().copied() {
            let (first, settled) = label_with_retries(
                source,
                umetrics,
                usda,
                pair,
                first_round,
                retry,
                &mut resilience,
            )?;
            if first != settled {
                mismatches += 1;
                if settled == Label::Yes {
                    corrections += 1;
                }
            }
            // After the cross-check discussion the settled label stands.
            labeled.insert(pair, settled);
            match settled {
                Label::Yes => yes += 1,
                Label::No => no += 1,
                Label::Unsure => unsure += 1,
            }
        }
        rounds.push(LabelingRound {
            sampled: pairs.len(),
            yes,
            no,
            unsure,
            crosscheck_mismatches: if first_round { mismatches } else { 0 },
            corrections: if first_round { corrections } else { 0 },
        });
    }
    Ok((labeled, rounds, resilience))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking_plan::{run_blocking, BlockingPlan};
    use crate::preprocess::{project_umetrics, project_usda};
    use em_datagen::{OracleConfig, Scenario, ScenarioConfig};

    struct Fixture {
        u: Table,
        s: Table,
        scenario: Scenario,
        candidates: CandidateSet,
    }

    fn fixture() -> Fixture {
        let scenario = Scenario::generate(ScenarioConfig::small()).unwrap();
        let u = project_umetrics(&scenario.award_agg, &scenario.employees).unwrap();
        let s = project_usda(&scenario.usda, false).unwrap();
        let candidates = run_blocking(&u, &s, &BlockingPlan::default()).unwrap().consolidated;
        Fixture { u, s, scenario, candidates }
    }

    #[test]
    fn labeled_set_counts_and_replace() {
        let mut ls = LabeledSet::new();
        ls.insert(Pair::new(0, 0), Label::Yes);
        ls.insert(Pair::new(0, 1), Label::No);
        ls.insert(Pair::new(0, 2), Label::Unsure);
        assert_eq!(ls.counts(), (1, 1, 1));
        ls.insert(Pair::new(0, 0), Label::No); // relabel
        assert_eq!(ls.counts(), (0, 2, 1));
        assert_eq!(ls.len(), 3);
    }

    #[test]
    fn sampling_avoids_already_labeled() {
        let f = fixture();
        let mut labeled = LabeledSet::new();
        let first = sample_unlabeled(&f.candidates, &labeled, 20, 1);
        for p in &first {
            labeled.insert(*p, Label::No);
        }
        let second = sample_unlabeled(&f.candidates, &labeled, 20, 2);
        for p in &second {
            assert!(!first.contains(p), "resampled an already-labeled pair");
        }
    }

    #[test]
    fn sampling_never_reoffers_prior_rounds() {
        // Drain the candidate set round by round against one accumulating
        // LabeledSet: no pair may ever be offered twice, and the rounds
        // must partition exactly the candidate pairs.
        let f = fixture();
        let mut labeled = LabeledSet::new();
        let mut offered = std::collections::HashSet::new();
        let mut round = 0u64;
        loop {
            let batch = sample_unlabeled(&f.candidates, &labeled, 25, 1000 + round);
            if batch.is_empty() {
                break;
            }
            for p in &batch {
                assert!(offered.insert(*p), "pair {p:?} re-offered in round {round}");
                labeled.insert(*p, Label::No);
            }
            round += 1;
        }
        assert_eq!(offered.len(), f.candidates.len(), "rounds must cover every candidate once");
    }

    #[test]
    fn sampling_deterministic() {
        let f = fixture();
        let e = LabeledSet::new();
        assert_eq!(
            sample_unlabeled(&f.candidates, &e, 30, 9),
            sample_unlabeled(&f.candidates, &e, 30, 9)
        );
    }

    #[test]
    fn rounds_accumulate_and_report() {
        let f = fixture();
        let oracle = Oracle::new(&f.scenario.truth, OracleConfig::default());
        let (labeled, rounds) =
            run_labeling(&f.u, &f.s, &f.candidates, &oracle, &[40, 30, 30], 7).unwrap();
        assert_eq!(rounds.len(), 3);
        assert_eq!(labeled.len(), rounds.iter().map(|r| r.sampled).sum::<usize>());
        let (yes, no, unsure) = labeled.counts();
        assert_eq!(yes, rounds.iter().map(|r| r.yes).sum::<usize>());
        assert_eq!(no, rounds.iter().map(|r| r.no).sum::<usize>());
        assert_eq!(unsure, rounds.iter().map(|r| r.unsure).sum::<usize>());
        assert!(yes > 0, "sampling the candidate set should find positives");
        // cross-check only happens in round one
        assert!(rounds[1].crosscheck_mismatches == 0 && rounds[2].crosscheck_mismatches == 0);
    }

    #[test]
    fn flaky_source_with_retries_matches_the_clean_run() {
        use em_datagen::{FlakyConfig, FlakyOracle};
        let f = fixture();
        let oracle = Oracle::new(&f.scenario.truth, OracleConfig::default());
        let (clean, clean_rounds) =
            run_labeling(&f.u, &f.s, &f.candidates, &oracle, &[40, 30], 7).unwrap();
        // Fault rates low enough that the default retry budget always wins.
        let flaky = FlakyOracle::new(
            oracle.clone(),
            FlakyConfig { p_unavailable: 0.2, p_timeout: 0.1, ..Default::default() },
        );
        let (labeled, rounds, res) = run_labeling_resilient(
            &f.u,
            &f.s,
            &f.candidates,
            &flaky,
            &[40, 30],
            7,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(res.oracle_faults > 0, "these rates must exercise the retry path");
        assert_eq!(res.oracle_faults, res.oracle_retries, "no degradation expected");
        assert_eq!(res.degraded_labels, 0);
        assert!(res.total_backoff_ms > 0);
        assert_eq!(rounds, clean_rounds, "retries must not change any label");
        assert_eq!(labeled.len(), clean.len());
        for lp in clean.iter() {
            assert_eq!(labeled.get(&lp.pair), Some(lp.label));
        }
    }

    #[test]
    fn exhausted_retries_degrade_to_unsure() {
        use em_datagen::{FlakyConfig, FlakyOracle};
        let f = fixture();
        let oracle = Oracle::new(&f.scenario.truth, OracleConfig::default());
        // Always faulting, never retrying: every pair degrades.
        let flaky = FlakyOracle::new(
            oracle,
            FlakyConfig {
                p_unavailable: 1.0,
                p_timeout: 1.0,
                max_fault_attempts: u32::MAX,
                ..Default::default()
            },
        );
        let (labeled, rounds, res) = run_labeling_resilient(
            &f.u,
            &f.s,
            &f.candidates,
            &flaky,
            &[25],
            7,
            &RetryPolicy::none(),
        )
        .unwrap();
        assert_eq!(res.degraded_labels, 25);
        assert_eq!(res.degraded_pairs.len(), 25);
        assert_eq!(rounds[0].unsure, 25, "degraded pairs are labeled Unsure");
        let (yes, no, unsure) = labeled.counts();
        assert_eq!((yes, no, unsure), (0, 0, 25));
    }

    #[test]
    fn resilient_runs_are_deterministic_under_faults() {
        use em_datagen::{FlakyConfig, FlakyOracle};
        let f = fixture();
        let oracle = Oracle::new(&f.scenario.truth, OracleConfig::default());
        let flaky = FlakyOracle::new(
            oracle,
            FlakyConfig { p_unavailable: 0.4, p_timeout: 0.2, ..Default::default() },
        );
        let run = || {
            run_labeling_resilient(
                &f.u,
                &f.s,
                &f.candidates,
                &flaky,
                &[30, 20],
                7,
                &RetryPolicy::default(),
            )
            .unwrap()
        };
        let (l1, r1, res1) = run();
        let (l2, r2, res2) = run();
        assert_eq!(r1, r2);
        assert_eq!(res1, res2, "fault ledger must be reproducible");
        assert_eq!(l1.len(), l2.len());
        for lp in l1.iter() {
            assert_eq!(l2.get(&lp.pair), Some(lp.label));
        }
    }

    #[test]
    fn labels_agree_with_truth_for_clear_pairs() {
        let f = fixture();
        let oracle = Oracle::new(&f.scenario.truth, OracleConfig::default());
        let (labeled, _) = run_labeling(&f.u, &f.s, &f.candidates, &oracle, &[80], 3).unwrap();
        for lp in labeled.iter() {
            let award = award_of(&f.u, lp.pair.left);
            let acc = accession_of(&f.s, lp.pair.right);
            let truth = f.scenario.truth.is_match(&award, &acc);
            match lp.label {
                Label::Yes => assert!(truth, "Yes label on a non-match ({award}, {acc})"),
                Label::No => assert!(!truth, "No label on a true match ({award}, {acc})"),
                Label::Unsure => {}
            }
        }
    }
}
