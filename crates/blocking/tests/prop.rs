//! Property-based tests: blockers agree with their pair-level semantics on
//! random tables, and candidate-set algebra obeys set laws.

use em_blocking::blockers::{Blocker, OverlapBlocker, SetSimBlocker};
use em_blocking::{CandidateSet, Pair};
use em_table::{Schema, Table, Value};
use proptest::prelude::*;

fn title() -> impl Strategy<Value = String> {
    // Small vocabulary so overlaps actually occur.
    proptest::collection::vec(
        proptest::sample::select(vec![
            "corn", "fungicide", "guidelines", "lab", "supplies", "maize", "gene", "study",
        ]),
        0..6,
    )
    .prop_map(|ws| ws.join(" "))
}

fn table(rows: Vec<String>) -> Table {
    Table::from_rows(
        "t",
        Schema::of_strings(&["Title"]),
        rows.into_iter().map(|s| vec![Value::Str(s)]).collect(),
    )
    .unwrap()
}

fn pairs() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..8, 0usize..8), 0..20)
}

fn cset(name: &str, ps: &[(usize, usize)]) -> CandidateSet {
    CandidateSet::from_pairs(name, ps.iter().map(|&(l, r)| Pair::new(l, r)), "src")
}

proptest! {
    /// Index-based overlap blocking equals the Cartesian scan with
    /// `accepts`, with and without the prefix filter.
    #[test]
    fn overlap_block_equals_cartesian(
        la in proptest::collection::vec(title(), 1..8),
        lb in proptest::collection::vec(title(), 1..8),
        k in 1usize..4,
        filter in any::<bool>(),
    ) {
        let (a, b) = (table(la), table(lb));
        let mut blocker = OverlapBlocker::new("Title", "Title", k);
        blocker.use_prefix_filter = filter;
        let fast = blocker.block(&a, &b).unwrap();
        for i in 0..a.n_rows() {
            for j in 0..b.n_rows() {
                let acc = blocker.accepts(a.row(i).unwrap(), b.row(j).unwrap()).unwrap();
                prop_assert_eq!(acc, fast.contains(&Pair::new(i, j)), "({}, {}) K={}", i, j, k);
            }
        }
    }

    /// Overlap-coefficient blocking equals the Cartesian scan.
    #[test]
    fn oc_block_equals_cartesian(
        la in proptest::collection::vec(title(), 1..8),
        lb in proptest::collection::vec(title(), 1..8),
        t in prop_oneof![Just(0.3), Just(0.5), Just(0.7), Just(1.0)],
    ) {
        let (a, b) = (table(la), table(lb));
        let blocker = SetSimBlocker::overlap_coefficient("Title", "Title", t);
        let fast = blocker.block(&a, &b).unwrap();
        for i in 0..a.n_rows() {
            for j in 0..b.n_rows() {
                let acc = blocker.accepts(a.row(i).unwrap(), b.row(j).unwrap()).unwrap();
                prop_assert_eq!(acc, fast.contains(&Pair::new(i, j)));
            }
        }
    }

    /// Candidate-set algebra: inclusion–exclusion, difference laws,
    /// idempotence, commutativity of union/intersection on pair sets.
    #[test]
    fn candidate_algebra_laws(pa in pairs(), pb in pairs()) {
        let a = cset("a", &pa);
        let b = cset("b", &pb);
        let u = a.union(&b);
        let i = a.intersect(&b);
        prop_assert_eq!(u.len() + i.len(), a.len() + b.len());
        prop_assert_eq!(a.minus(&b).len() + i.len(), a.len());
        prop_assert_eq!(u.to_vec(), b.union(&a).to_vec());
        prop_assert_eq!(i.to_vec(), b.intersect(&a).to_vec());
        prop_assert_eq!(a.union(&a).to_vec(), a.to_vec());
        prop_assert_eq!(a.intersect(&a).to_vec(), a.to_vec());
        prop_assert!(a.minus(&a).is_empty());
        // A = (A − B) ∪ (A ∩ B)
        prop_assert_eq!(a.minus(&b).union(&i).to_vec(), a.to_vec());
    }
}
