//! Property tests for [`em_blocking::IncrementalIndex`]: under ANY
//! interleaving of inserts, removes, and upserts, probing the index yields
//! exactly the candidate rows that from-scratch batch blocking produces over
//! a table of the surviving rows.

use em_blocking::blockers::{Blocker, OverlapBlocker, SetSimBlocker};
use em_blocking::{IncrementalIndex, ProbeScratch, SetMeasure};
use em_table::{Schema, Table, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One mutation of the evolving corpus.
#[derive(Debug, Clone)]
enum Op {
    Insert(usize, Option<String>),
    Remove(usize),
    Upsert(usize, Option<String>),
}

fn title() -> impl Strategy<Value = Option<String>> {
    // Small vocabulary so overlaps actually occur; None exercises null text.
    prop_oneof![
        Just(None),
        proptest::collection::vec(
            proptest::sample::select(vec![
                "corn", "fungicide", "guidelines", "lab", "supplies", "maize", "gene", "study",
            ]),
            0..6,
        )
        .prop_map(|ws| Some(ws.join(" "))),
    ]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..10, title()).prop_map(|(k, t)| Op::Insert(k, t)),
        (0usize..10).prop_map(Op::Remove),
        (0usize..10, title()).prop_map(|(k, t)| Op::Upsert(k, t)),
    ]
}

/// Applies the ops to both the index and a plain map (the reference model
/// of the surviving corpus).
fn run_ops(ops: &[Op]) -> (IncrementalIndex, BTreeMap<usize, Option<String>>) {
    let mut idx = IncrementalIndex::new();
    let mut model: BTreeMap<usize, Option<String>> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Insert(k, t) => {
                let inserted = idx.insert(*k, t.as_deref());
                assert_eq!(inserted, !model.contains_key(k));
                model.entry(*k).or_insert_with(|| t.clone());
            }
            Op::Remove(k) => {
                let removed = idx.remove(*k);
                assert_eq!(removed, model.remove(k).is_some());
            }
            Op::Upsert(k, t) => {
                idx.upsert(*k, t.as_deref());
                model.insert(*k, t.clone());
            }
        }
    }
    (idx, model)
}

/// The surviving rows as a table (row position → key mapping returned
/// alongside), for from-scratch batch blocking.
fn model_table(model: &BTreeMap<usize, Option<String>>) -> (Table, Vec<usize>) {
    let keys: Vec<usize> = model.keys().copied().collect();
    let table = Table::from_rows(
        "corpus",
        Schema::of_strings(&["Title"]),
        keys.iter()
            .map(|k| vec![model[k].clone().map_or(Value::Null, Value::Str)])
            .collect(),
    )
    .unwrap();
    (table, keys)
}

fn probe_table(text: &Option<String>) -> Table {
    Table::from_rows(
        "probe",
        Schema::of_strings(&["Title"]),
        vec![vec![text.clone().map_or(Value::Null, Value::Str)]],
    )
    .unwrap()
}

proptest! {
    /// Overlap probing after any edit interleaving equals from-scratch
    /// `OverlapBlocker::block` with the probe as a one-row left table.
    #[test]
    fn overlap_probe_equals_from_scratch_blocking(
        ops in proptest::collection::vec(op(), 0..25),
        probe in title(),
        k in 1usize..4,
    ) {
        let (idx, model) = run_ops(&ops);
        let (corpus, keys) = model_table(&model);
        let left = probe_table(&probe);
        let batch = OverlapBlocker::new("Title", "Title", k).block(&left, &corpus).unwrap();
        let expected: Vec<usize> = batch.iter().map(|p| keys[p.right]).collect();
        prop_assert_eq!(idx.probe_overlap(probe.as_deref(), k), expected);
    }

    /// Set-similarity probing equals from-scratch `SetSimBlocker::block`
    /// for both measures across thresholds.
    #[test]
    fn set_sim_probe_equals_from_scratch_blocking(
        ops in proptest::collection::vec(op(), 0..25),
        probe in title(),
        t in prop_oneof![Just(0.3), Just(0.5), Just(0.7), Just(1.0)],
        jaccard in any::<bool>(),
    ) {
        let (idx, model) = run_ops(&ops);
        let (corpus, keys) = model_table(&model);
        let left = probe_table(&probe);
        let (blocker, measure) = if jaccard {
            (SetSimBlocker::jaccard("Title", "Title", t), SetMeasure::Jaccard)
        } else {
            (
                SetSimBlocker::overlap_coefficient("Title", "Title", t),
                SetMeasure::OverlapCoefficient,
            )
        };
        let batch = blocker.block(&left, &corpus).unwrap();
        let expected: Vec<usize> = batch.iter().map(|p| keys[p.right]).collect();
        prop_assert_eq!(idx.probe_set_sim(probe.as_deref(), measure, t), expected);
    }

    /// The filtered postings probes (length + frequency-ordered prefix
    /// filters over size-bucketed postings) return exactly the candidate set
    /// of the unfiltered full scan, for both probe kinds, across thresholds
    /// — including under a single reused [`ProbeScratch`].
    #[test]
    fn filtered_probes_equal_unfiltered_scan(
        ops in proptest::collection::vec(op(), 0..25),
        probes in proptest::collection::vec(title(), 1..4),
        k in 1usize..5,
        t in prop_oneof![Just(0.3), Just(0.5), Just(0.7), Just(1.0)],
        jaccard in any::<bool>(),
    ) {
        let (idx, _) = run_ops(&ops);
        let measure = if jaccard { SetMeasure::Jaccard } else { SetMeasure::OverlapCoefficient };
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::new();
        // Consecutive probes share one scratch: stale state would show up
        // as a mismatch on the second or third probe.
        for probe in &probes {
            idx.probe_overlap_into(probe.as_deref(), k, &mut scratch, &mut out);
            prop_assert_eq!(&out, &idx.probe_overlap_scan(probe.as_deref(), k));
            idx.probe_set_sim_into(probe.as_deref(), measure, t, &mut scratch, &mut out);
            prop_assert_eq!(&out, &idx.probe_set_sim_scan(probe.as_deref(), measure, t));
        }
    }

    /// The single-walk union probe equals the union of the two individual
    /// probes (the serve path replaces its two C2/C3 walks with one).
    #[test]
    fn union_probe_equals_union_of_individual_probes(
        ops in proptest::collection::vec(op(), 0..25),
        probe in title(),
        k in 1usize..4,
        t in prop_oneof![Just(0.3), Just(0.5), Just(0.7), Just(1.0)],
        jaccard in any::<bool>(),
    ) {
        let (idx, _) = run_ops(&ops);
        let measure = if jaccard { SetMeasure::Jaccard } else { SetMeasure::OverlapCoefficient };
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::new();
        idx.probe_union_into(probe.as_deref(), k, measure, t, &mut scratch, &mut out);
        let mut expected = idx.probe_overlap(probe.as_deref(), k);
        expected.extend(idx.probe_set_sim(probe.as_deref(), measure, t));
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(out, expected);
    }

    /// An index rebuilt from the surviving rows is observationally equal to
    /// the incrementally-maintained one.
    #[test]
    fn incremental_index_equals_rebuilt_index(
        ops in proptest::collection::vec(op(), 0..25),
        probe in title(),
        k in 1usize..4,
    ) {
        let (idx, model) = run_ops(&ops);
        let mut rebuilt = IncrementalIndex::new();
        for (key, text) in &model {
            rebuilt.insert(*key, text.as_deref());
        }
        prop_assert_eq!(idx.len(), rebuilt.len());
        prop_assert_eq!(
            idx.probe_overlap(probe.as_deref(), k),
            rebuilt.probe_overlap(probe.as_deref(), k)
        );
    }
}
