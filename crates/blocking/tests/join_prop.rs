//! Property-based tests for the batch set-similarity join: the filtered,
//! index-based table path must equal the naive pairwise scan **bit for
//! bit** over random corpora — unicode titles, empty and degenerate token
//! sets (punctuation-only cells tokenize to nothing), and thresholds that
//! sit exactly on float boundaries such as `1/3` and `2/3`.

use em_blocking::blockers::{block_pairwise, Blocker, OverlapBlocker, SetSimBlocker};
use em_table::{Schema, Table, Value};
use proptest::prelude::*;

/// Random award-title strings over a small vocabulary so overlaps occur,
/// salted with multi-byte scripts, digits, punctuation-only tokens (which
/// normalize away), and whitespace padding.
fn title() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::sample::select(vec![
            "corn", "fungicide", "guidelines", "café", "σίτος", "玉米", "研究", "ipm", "42",
            "x1b", "--", "!!", "",
        ]),
        0..7,
    )
    .prop_map(|ws| ws.join(" "))
}

fn table(rows: Vec<String>) -> Table {
    Table::from_rows(
        "t",
        Schema::of_strings(&["Title"]),
        rows.into_iter().map(|s| vec![Value::Str(s)]).collect(),
    )
    .unwrap()
}

/// Thresholds chosen to land on exact float boundaries of small-set
/// similarities: `k/min(|A|,|B|)` and `k/|A∪B|` values hit `1/3`, `1/2`,
/// `2/3`, … dead on, so any filter that diverges from the pairwise
/// predicate by one ULP fails here.
fn threshold() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.25),
        Just(1.0 / 3.0),
        Just(0.5),
        Just(2.0 / 3.0),
        Just(0.7),
        Just(0.75),
        Just(1.0),
    ]
}

proptest! {
    /// The join-engine overlap blocker equals the pairwise Cartesian scan.
    #[test]
    fn overlap_join_equals_pairwise(
        la in proptest::collection::vec(title(), 0..9),
        lb in proptest::collection::vec(title(), 0..9),
        k in 1usize..5,
    ) {
        let (a, b) = (table(la), table(lb));
        let blocker = OverlapBlocker::new("Title", "Title", k);
        let joined = blocker.block(&a, &b).unwrap();
        let scanned = block_pairwise(&blocker, &a, &b).unwrap();
        prop_assert_eq!(joined.to_vec(), scanned.to_vec(), "K={}", k);
    }

    /// The join-engine set-similarity blocker equals the pairwise scan for
    /// both measures at boundary thresholds.
    #[test]
    fn set_sim_join_equals_pairwise(
        la in proptest::collection::vec(title(), 0..9),
        lb in proptest::collection::vec(title(), 0..9),
        jaccard in any::<bool>(),
        t in threshold(),
    ) {
        let (a, b) = (table(la), table(lb));
        let blocker = if jaccard {
            SetSimBlocker::jaccard("Title", "Title", t)
        } else {
            SetSimBlocker::overlap_coefficient("Title", "Title", t)
        };
        let joined = blocker.block(&a, &b).unwrap();
        let scanned = block_pairwise(&blocker, &a, &b).unwrap();
        prop_assert_eq!(joined.to_vec(), scanned.to_vec(), "jaccard={} t={}", jaccard, t);
    }

    /// Running both predicates through one shared index (the plan-level
    /// `block_specs` path) changes nothing about either output.
    #[test]
    fn block_specs_equals_individual_blocks(
        la in proptest::collection::vec(title(), 0..9),
        lb in proptest::collection::vec(title(), 0..9),
        k in 1usize..4,
        t in threshold(),
    ) {
        let (a, b) = (table(la), table(lb));
        let overlap = OverlapBlocker::new("Title", "Title", k);
        let oc = SetSimBlocker::overlap_coefficient("Title", "Title", t);
        let cache = em_text::TokenCache::for_blocking();
        let sets = em_blocking::block_specs(
            &cache,
            &a,
            "Title",
            &b,
            "Title",
            &[
                (overlap.join_spec().unwrap(), overlap.name()),
                (oc.join_spec().unwrap(), oc.name()),
            ],
        )
        .unwrap();
        prop_assert_eq!(sets[0].to_vec(), overlap.block(&a, &b).unwrap().to_vec());
        prop_assert_eq!(sets[1].to_vec(), oc.block(&a, &b).unwrap().to_vec());
    }
}
