//! Batch set-similarity join: the corpus-scale engine behind the token
//! blockers.
//!
//! [`OverlapBlocker`](crate::OverlapBlocker) and
//! [`SetSimBlocker`](crate::SetSimBlocker) used to probe a plain inverted
//! index with a per-row `HashMap` counter — O(total postings touched) hash
//! traffic per left row, and the slowest batch stage at x4. This module is
//! the batch analogue of the serve tier's
//! [`IncrementalIndex`](crate::IncrementalIndex) filtered probes: postings
//! over the **right** table are built once, bucketed by row token count and
//! walked in ascending document-frequency order, so two classic filters
//! prune almost all of that traffic:
//!
//! - **Length filter**: a posting run whose row size `lb` can never satisfy
//!   the predicate (e.g. `lb < k` for overlap-`k`) is skipped outright.
//! - **Prefix filter**: query tokens are walked rarest-first. A row first
//!   encountered at filtered-walk position `p` shares at most `lq - p`
//!   query tokens (`lq` = query tokens that occur in the right corpus at
//!   all), so late walk positions stop admitting new rows from runs whose
//!   upper bound fails.
//!
//! The walk keeps an **exact** shared-token count for every admitted row
//! (dense epoch-stamped arrays, O(1) per posting visit), then the final
//! filter evaluates the same [`JoinSpec::admits`] predicate on those
//! counts. Because `admits` is monotone nondecreasing in the intersection
//! size and the admission bound is a true upper bound that only shrinks as
//! the walk advances, a row skipped by either filter provably fails the
//! exact predicate, and a row admitted anywhere was tracked from its first
//! shared token — filtered output equals the unfiltered nested-loop scan
//! **exactly**, float boundaries included (pinned by
//! `tests/join_prop.rs`).
//!
//! Layout is columnar throughout: postings are one flat `u64` arena
//! (`size << 32 | row`, so a per-token slice sorts by size then row with a
//! plain integer sort) indexed by a token-offset table, and the right
//! corpus rides along as the [`TokenCorpus`] id arena verification merges
//! run over. Probes reuse a [`JoinScratch`] whose epoch-stamped `seen`
//! array dedups admissions without clearing; the steady-state probe loop
//! performs no heap allocation (gated by the purity grep in
//! `scripts/check.sh`).
//!
//! Table-scale drivers fan left rows out over
//! [`em_parallel::Executor::map_indexed_with`] — scratch per worker,
//! output a pure function of the row index, so candidate sets are
//! bit-identical at any thread count. [`join_stats`] is the streaming
//! variant for x64–x256 scale benchmarking: it folds per-row results into
//! counts and an order-chained checksum over **fixed-size** row chunks
//! ([`JOIN_CHUNK`], independent of the thread count), never materializing
//! the candidate set.

use crate::blockers::SetMeasure;
use em_parallel::Executor;
use em_text::intern::TokenCorpus;

/// Minimum left rows per probing thread in the table-scale drivers.
const JOIN_GRAIN: usize = 64;

/// The predicate(s) a join admits pairs under. Mirrors the batch blockers
/// bit for bit: the overlap arm compares integer counts, the set-similarity
/// arm evaluates the identical [`SetMeasure::score`] f64 expression.
#[derive(Debug, Clone, Copy)]
pub struct JoinSpec {
    /// Admit pairs sharing at least `k` distinct tokens.
    overlap_k: Option<usize>,
    /// Admit pairs whose set-similarity reaches the threshold.
    set_sim: Option<(SetMeasure, f64)>,
}

impl JoinSpec {
    /// Overlap-`k` predicate ([`crate::OverlapBlocker`] semantics).
    pub fn overlap(k: usize) -> JoinSpec {
        JoinSpec { overlap_k: Some(k), set_sim: None }
    }

    /// Set-similarity predicate ([`crate::SetSimBlocker`] semantics).
    pub fn set_sim(measure: SetMeasure, threshold: f64) -> JoinSpec {
        JoinSpec { overlap_k: None, set_sim: Some((measure, threshold)) }
    }

    /// Union predicate: overlap-`k` **or** set-similarity — one postings
    /// walk for a `C2 ∪ C3`-style consolidated plan.
    pub fn union(k: usize, measure: SetMeasure, threshold: f64) -> JoinSpec {
        JoinSpec { overlap_k: Some(k), set_sim: Some((measure, threshold)) }
    }

    /// True when a pair with `inter` shared tokens (of `la` query / `lb`
    /// row tokens) satisfies at least one predicate. This is the *exact*
    /// final filter; admission bounds call it with an upper bound on
    /// `inter`, which is conservative because both predicates are monotone
    /// nondecreasing in `inter`.
    pub fn admits(&self, inter: usize, la: usize, lb: usize) -> bool {
        if let Some(k) = self.overlap_k {
            if inter >= k {
                return true;
            }
        }
        if let Some((measure, threshold)) = self.set_sim {
            if measure.score(inter, la, lb) >= threshold {
                return true;
            }
        }
        false
    }
}

/// Df-ordered, size-bucketed postings over one tokenized column of the
/// right table, built once per join. Owns the right [`TokenCorpus`] so
/// verification merges always run against the rows the postings describe.
#[derive(Debug, Clone)]
pub struct JoinIndex {
    /// Token id → number of right rows containing it (ids are distinct per
    /// row, so this is a document frequency).
    df: Vec<u32>,
    /// Token id → postings range: token `t` owns
    /// `postings[starts[t] as usize..starts[t + 1] as usize]`.
    starts: Vec<u32>,
    /// Packed `(row token count << 32) | row index`, sorted ascending per
    /// token — i.e. by (size, row), which is what the length filter walks.
    postings: Vec<u64>,
    /// The indexed corpus; `postings` row indices point into it.
    right: TokenCorpus,
}

impl JoinIndex {
    /// Streams `query` (sorted distinct token ids of one left row) through
    /// the postings, collecting into `out` (ascending row order) exactly
    /// the right rows the unfiltered scan admits under `spec`. `out` and
    /// `scratch` are caller-owned so a warmed-up probe loop allocates
    /// nothing.
    pub fn probe_into(
        &self,
        query: &[u32],
        spec: &JoinSpec,
        scratch: &mut JoinScratch,
        out: &mut Vec<u32>,
    ) {
        self.probe_multi_into(
            query,
            std::slice::from_ref(spec),
            scratch,
            std::slice::from_mut(out),
        );
    }

    /// Fused multi-predicate probe: **one** postings walk answers every
    /// spec in `specs`, writing each spec's admissions to the matching
    /// entry of `outs`. The walk admits a run when *any* spec could accept
    /// it (the union predicate), so the exact counts cover every row any
    /// spec needs; the per-spec final filters then apply each exact
    /// predicate independently — each `outs[s]` equals a standalone
    /// [`JoinIndex::probe_into`] under `specs[s]` bit for bit. This is how
    /// a C2 ∪ C3-style plan shares the dominant walk cost across blockers.
    pub fn probe_multi_into(
        &self,
        query: &[u32],
        specs: &[JoinSpec],
        scratch: &mut JoinScratch,
        outs: &mut [Vec<u32>],
    ) {
        debug_assert_eq!(specs.len(), outs.len());
        for out in outs.iter_mut() {
            out.clear();
        }
        let la = query.len();
        if la == 0 {
            // No postings to walk: rows sharing zero tokens are never
            // admitted by either predicate's postings semantics.
            return;
        }
        scratch.epoch += 1;
        let epoch = scratch.epoch;
        scratch.order.clear();
        scratch.touched.clear();
        for &t in query {
            let df = self.df.get(t as usize).copied().unwrap_or(0);
            if df > 0 {
                scratch.order.push((df, t));
            }
        }
        // Prefix filter order: rarest token first, id tie break. Query
        // tokens absent from the right corpus are dropped up front, which
        // *tightens* the positional bound: a row first seen at position
        // `p` of this filtered order shares none of the `p` earlier (or
        // any dropped) query tokens, so at most `lq - p` remain.
        scratch.order.sort_unstable();
        let lq = scratch.order.len();
        for p in 0..lq {
            let (_, token) = scratch.order[p];
            let s = self.starts[token as usize] as usize;
            let e = self.starts[token as usize + 1] as usize;
            let remaining = lq - p;
            // Postings sort by (size, row), so the filters resolve once per
            // size run; a fully-skipped run is *jumped* with a binary
            // search for the next size instead of walked entry by entry.
            //
            // Counts stay exact under the prefix filter because the
            // admission bound is antitone in `p`: if a row's first
            // containing run failed admission, every later bound for that
            // row is smaller still, so the row can never be admitted with
            // missed increments — a row is either tracked from its first
            // containing token or provably fails the predicate.
            let slice = &self.postings[s..e];
            let mut i = 0;
            while i < slice.len() {
                let size = slice[i] >> 32;
                let run_end = i + slice[i..].partition_point(|&q| q >> 32 == size);
                let lb = size as usize;
                if specs.iter().any(|spec| spec.admits(remaining.min(lb), la, lb)) {
                    // Admitting run: first sight epoch-stamps the row into
                    // `touched`; every sight counts one shared token.
                    for &packed in &slice[i..run_end] {
                        let row = packed as u32;
                        if scratch.seen[row as usize] == epoch {
                            scratch.counts[row as usize] += 1;
                        } else {
                            scratch.seen[row as usize] = epoch;
                            scratch.counts[row as usize] = 1;
                            scratch.touched.push(row);
                        }
                    }
                } else if specs.iter().any(|spec| spec.admits(la.min(lb), la, lb)) {
                    // Prefix filter: too late to admit new rows of this
                    // size, but earlier admissions keep accumulating.
                    for &packed in &slice[i..run_end] {
                        let row = packed as u32;
                        if scratch.seen[row as usize] == epoch {
                            scratch.counts[row as usize] += 1;
                        }
                    }
                }
                // Length filter: a size failing even at full intersection
                // admits nothing and counts toward nothing — jumped.
                i = run_end;
            }
        }
        // Final filter: counts are exact intersection sizes for every
        // tracked row, so this is the unfiltered predicate verbatim —
        // applied per spec, since a row tracked for one predicate's sake
        // may fail another's.
        for &row in &scratch.touched {
            let inter = scratch.counts[row as usize] as usize;
            let lb = self.right.row(row as usize).len();
            for (spec, out) in specs.iter().zip(outs.iter_mut()) {
                if spec.admits(inter, la, lb) {
                    out.push(row);
                }
            }
        }
        for out in outs.iter_mut() {
            out.sort_unstable();
        }
    }

    // ---- scratch construction and index building (cold path) ------------

    /// Builds the index over the tokenized right column. Two counting
    /// passes fill the flat postings arena, then each per-token slice is
    /// sorted — packed values order by (size, row) natively.
    pub fn build(right: TokenCorpus) -> JoinIndex {
        let width = right.max_id().map_or(0, |m| m as usize + 1);
        let mut df = vec![0u32; width];
        for (_, ids) in right.iter() {
            for &t in ids {
                df[t as usize] += 1;
            }
        }
        // Offsets are u32 like the corpus arena's: a 4G-token corpus is two
        // orders of magnitude past the x256 target.
        let mut starts = vec![0u32; width + 1];
        for t in 0..width {
            starts[t + 1] = starts[t] + df[t];
        }
        let mut cursor = starts.clone();
        let mut postings = vec![0u64; right.n_tokens_total()];
        for (j, ids) in right.iter() {
            let packed_base = (ids.len() as u64) << 32;
            for &t in ids {
                postings[cursor[t as usize] as usize] = packed_base | j as u64;
                cursor[t as usize] += 1;
            }
        }
        for t in 0..width {
            postings[starts[t] as usize..starts[t + 1] as usize].sort_unstable();
        }
        JoinIndex { df, starts, postings, right }
    }

    /// The indexed right corpus.
    pub fn right(&self) -> &TokenCorpus {
        &self.right
    }

    /// Number of indexed right rows.
    pub fn len(&self) -> usize {
        self.right.len()
    }

    /// True when the indexed corpus has no rows.
    pub fn is_empty(&self) -> bool {
        self.right.is_empty()
    }

    /// Probe without caller-owned buffers (tests/one-shot use).
    pub fn probe(&self, query: &[u32], spec: &JoinSpec) -> Vec<u32> {
        let mut scratch = JoinScratch::for_index(self);
        let mut out = Vec::new();
        self.probe_into(query, spec, &mut scratch, &mut out);
        out
    }
}

/// Reusable probe buffers for one worker thread. The `seen` array is
/// epoch-stamped: bumping `epoch` invalidates every stamp (and thereby
/// every count) at once, so probes never pay an O(rows) clear.
#[derive(Debug)]
pub struct JoinScratch {
    /// Per right row, the epoch it was last admitted in.
    seen: Vec<u64>,
    /// Per right row, shared-token count — valid only while
    /// `seen[row] == epoch`.
    counts: Vec<u32>,
    /// Current probe epoch (strictly increasing, one per probe).
    epoch: u64,
    /// Query tokens as (document frequency, token id), sorted ascending.
    order: Vec<(u32, u32)>,
    /// Rows admitted by the current probe, in admission order.
    touched: Vec<u32>,
}

impl JoinScratch {
    /// Scratch sized for `index` (the `seen`/`counts` arrays span its rows).
    pub fn for_index(index: &JoinIndex) -> JoinScratch {
        JoinScratch {
            seen: vec![0; index.len()],
            counts: vec![0; index.len()],
            epoch: 0,
            order: Vec::new(),
            touched: Vec::new(),
        }
    }
}

/// Fixed row-chunk width of [`join_stats`]'s checksum fold. Independent of
/// the thread count on purpose: per-chunk digests combine in chunk order,
/// so the stats are bit-identical however the chunks land on workers.
pub const JOIN_CHUNK: usize = 1024;

/// Streaming join summary: candidate count, an order-sensitive checksum of
/// the full pair stream, and how many pairs a caller-supplied predicate
/// (e.g. "already in C1") matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinStats {
    /// Total admitted pairs.
    pub pairs: u64,
    /// FNV-1a over every admitted `(left, right)` pair, folded per
    /// [`JOIN_CHUNK`] then chained in chunk order.
    pub checksum: u64,
    /// Pairs for which the caller's predicate returned true.
    pub flagged: u64,
}

/// FNV-1a 64-bit offset basis. Seed for both per-chunk digests and the
/// chunk-order chain; public so downstream streaming executors (the fused
/// match path in `em-core`) can reproduce [`join_stats`]-compatible
/// checksums over their own pair streams.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one `u64` into an FNV-1a hash state byte-wise (little-endian).
/// The checksum primitive behind [`JoinStats::checksum`]: chunk digests
/// start from [`FNV_OFFSET`] and absorb `left` then `right` per pair; the
/// final chain starts from [`FNV_OFFSET`] and absorbs digests in chunk
/// order.
pub fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Joins every left row against the index, returning the admitted right
/// rows per left row (ascending within each row). Fans out over left-row
/// chunks with per-worker scratch; the per-row result is a pure function
/// of the row index, so output is bit-identical at any thread count.
pub fn join_pairs(left: &TokenCorpus, index: &JoinIndex, spec: &JoinSpec) -> Vec<Vec<u32>> {
    Executor::current().map_indexed_with(
        left.len(),
        JOIN_GRAIN,
        || JoinScratch::for_index(index),
        |scratch, i| {
            let mut out = Vec::new();
            index.probe_into(left.row(i), spec, scratch, &mut out);
            out
        },
    )
}

/// Fused multi-spec variant of [`join_pairs`]: one postings walk per left
/// row answers every spec, returning `result[spec][left_row] -> admitted
/// right rows`. Each `result[s]` is bit-identical to
/// `join_pairs(left, index, &specs[s])`; the walk cost — the dominant term
/// — is paid once instead of once per spec.
pub fn join_pairs_multi(
    left: &TokenCorpus,
    index: &JoinIndex,
    specs: &[JoinSpec],
) -> Vec<Vec<Vec<u32>>> {
    let per_row: Vec<Vec<Vec<u32>>> = Executor::current().map_indexed_with(
        left.len(),
        JOIN_GRAIN,
        || JoinScratch::for_index(index),
        |scratch, i| {
            let mut outs: Vec<Vec<u32>> = specs.iter().map(|_| Vec::new()).collect();
            index.probe_multi_into(left.row(i), specs, scratch, &mut outs);
            outs
        },
    );
    // Transpose row-major results to spec-major without cloning row lists.
    let mut by_spec: Vec<Vec<Vec<u32>>> =
        specs.iter().map(|_| Vec::with_capacity(per_row.len())).collect();
    for outs in per_row {
        for (s, out) in outs.into_iter().enumerate() {
            by_spec[s].push(out);
        }
    }
    by_spec
}

/// Streaming variant of [`join_pairs`] for corpus-scale benchmarking:
/// counts and checksums the candidate stream without materializing it.
/// `flag(left_row, right_row)` is evaluated on every admitted pair — the
/// scaling harness passes a C1-membership test so `|C1 ∪ join|` falls out
/// of the counts by inclusion–exclusion.
pub fn join_stats<F>(left: &TokenCorpus, index: &JoinIndex, spec: &JoinSpec, flag: F) -> JoinStats
where
    F: Fn(usize, usize) -> bool + Sync,
{
    let n = left.len();
    let chunks = n.div_ceil(JOIN_CHUNK);
    let per_chunk: Vec<(u64, u64, u64)> = Executor::current().map_indexed_with(
        chunks,
        1,
        || (JoinScratch::for_index(index), Vec::new()),
        |(scratch, out), c| {
            let (mut pairs, mut digest, mut flagged) = (0u64, FNV_OFFSET, 0u64);
            for i in c * JOIN_CHUNK..((c + 1) * JOIN_CHUNK).min(n) {
                index.probe_into(left.row(i), spec, scratch, out);
                pairs += out.len() as u64;
                for &j in out.iter() {
                    digest = fnv_u64(fnv_u64(digest, i as u64), u64::from(j));
                    if flag(i, j as usize) {
                        flagged += 1;
                    }
                }
            }
            (pairs, digest, flagged)
        },
    );
    let mut stats = JoinStats { pairs: 0, checksum: FNV_OFFSET, flagged: 0 };
    for (pairs, digest, flagged) in per_chunk {
        stats.pairs += pairs;
        stats.checksum = fnv_u64(stats.checksum, digest);
        stats.flagged += flagged;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_text::intern::{overlap_size_sorted, TokenCache};

    fn corpus(texts: &[&str]) -> TokenCorpus {
        corpus_with(&TokenCache::for_blocking(), texts)
    }

    fn corpus_with(cache: &TokenCache, texts: &[&str]) -> TokenCorpus {
        TokenCorpus::from_column(
            cache,
            texts.iter().map(|t| if t.is_empty() { None } else { Some(*t) }),
        )
    }

    /// Unfiltered reference: scan every right row with the exact predicate.
    fn scan(left: &TokenCorpus, right: &TokenCorpus, spec: &JoinSpec) -> Vec<Vec<u32>> {
        left.iter()
            .map(|(_, q)| {
                right
                    .iter()
                    .filter(|(_, r)| {
                        let inter = overlap_size_sorted(q, r);
                        inter > 0 && spec.admits(inter, q.len(), r.len())
                    })
                    .map(|(j, _)| j as u32)
                    .collect()
            })
            .collect()
    }

    fn sample() -> (TokenCorpus, TokenCorpus) {
        let cache = TokenCache::for_blocking();
        let l = corpus_with(
            &cache,
            &[
                "development of ipm based corn fungicide guidelines",
                "swamp dodder applied ecology and management",
                "lab supplies",
                "",
                "corn",
            ],
        );
        let r = corpus_with(
            &cache,
            &[
                "Development of IPM-Based Corn Fungicide Guidelines",
                "swamp dodder ecology in carrot production",
                "Lab Supplies",
                "unrelated title entirely different words",
                "",
            ],
        );
        (l, r)
    }

    #[test]
    fn overlap_join_matches_scan() {
        let (l, r) = sample();
        let index = JoinIndex::build(r.clone());
        for k in 1..=5 {
            let spec = JoinSpec::overlap(k);
            assert_eq!(join_pairs(&l, &index, &spec), scan(&l, &r, &spec), "k={k}");
        }
    }

    #[test]
    fn set_sim_join_matches_scan() {
        let (l, r) = sample();
        let index = JoinIndex::build(r.clone());
        for measure in [SetMeasure::OverlapCoefficient, SetMeasure::Jaccard] {
            for threshold in [0.01, 0.5, 0.7, 1.0] {
                let spec = JoinSpec::set_sim(measure, threshold);
                assert_eq!(
                    join_pairs(&l, &index, &spec),
                    scan(&l, &r, &spec),
                    "{measure:?} t={threshold}"
                );
            }
        }
    }

    #[test]
    fn union_join_is_union_of_joins() {
        let (l, r) = sample();
        let index = JoinIndex::build(r);
        let u = join_pairs(&l, &index, &JoinSpec::union(3, SetMeasure::OverlapCoefficient, 0.7));
        let a = join_pairs(&l, &index, &JoinSpec::overlap(3));
        let b = join_pairs(&l, &index, &JoinSpec::set_sim(SetMeasure::OverlapCoefficient, 0.7));
        for i in 0..u.len() {
            let mut expect = a[i].clone();
            expect.extend_from_slice(&b[i]);
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(u[i], expect, "row {i}");
        }
    }

    #[test]
    fn multi_spec_join_matches_per_spec_joins() {
        // The fused walk admits under the union of bounds; each output must
        // still equal its standalone join exactly — including specs that
        // admit nothing on their own.
        let (l, r) = sample();
        let index = JoinIndex::build(r);
        let specs = [
            JoinSpec::overlap(3),
            JoinSpec::set_sim(SetMeasure::OverlapCoefficient, 0.7),
            JoinSpec::overlap(100),
        ];
        let fused = join_pairs_multi(&l, &index, &specs);
        assert_eq!(fused.len(), specs.len());
        for (s, spec) in specs.iter().enumerate() {
            assert_eq!(fused[s], join_pairs(&l, &index, spec), "spec {s}");
        }
    }

    #[test]
    fn scratch_reuse_is_probe_independent() {
        let (l, r) = sample();
        let index = JoinIndex::build(r);
        let spec = JoinSpec::overlap(2);
        let mut scratch = JoinScratch::for_index(&index);
        let mut out = Vec::new();
        let mut fresh = Vec::new();
        // Probe every left row twice through one scratch; each result must
        // equal a fresh-scratch probe (no stale epochs or counts).
        for _ in 0..2 {
            for (i, q) in l.iter() {
                index.probe_into(q, &spec, &mut scratch, &mut out);
                index.probe_into(q, &spec, &mut JoinScratch::for_index(&index), &mut fresh);
                assert_eq!(out, fresh, "row {i}");
            }
        }
    }

    #[test]
    fn join_is_thread_count_invariant() {
        let (l, r) = sample();
        let index = JoinIndex::build(r);
        let spec = JoinSpec::union(2, SetMeasure::Jaccard, 0.4);
        em_parallel::set_threads(1);
        let one = join_pairs(&l, &index, &spec);
        let stats_one = join_stats(&l, &index, &spec, |_, _| false);
        em_parallel::set_threads(4);
        let four = join_pairs(&l, &index, &spec);
        let stats_four = join_stats(&l, &index, &spec, |_, _| false);
        em_parallel::set_threads(0);
        assert_eq!(one, four);
        assert_eq!(stats_one, stats_four);
    }

    #[test]
    fn stats_agree_with_pairs() {
        let (l, r) = sample();
        let index = JoinIndex::build(r);
        let spec = JoinSpec::union(3, SetMeasure::OverlapCoefficient, 0.7);
        let pairs = join_pairs(&l, &index, &spec);
        let total: u64 = pairs.iter().map(|p| p.len() as u64).sum();
        let stats = join_stats(&l, &index, &spec, |i, _| i == 0);
        assert_eq!(stats.pairs, total);
        assert_eq!(stats.flagged, pairs[0].len() as u64);
        // The checksum is a function of the exact pair stream.
        let mut digest = FNV_OFFSET;
        for (i, js) in pairs.iter().enumerate() {
            for &j in js {
                digest = fnv_u64(fnv_u64(digest, i as u64), u64::from(j));
            }
        }
        assert_eq!(stats.checksum, fnv_u64(FNV_OFFSET, digest), "single chunk chains once");
    }

    #[test]
    fn empty_sides_are_empty_joins() {
        let empty = corpus(&[]);
        let (l, r) = sample();
        let index = JoinIndex::build(r);
        assert!(join_pairs(&empty, &index, &JoinSpec::overlap(1)).is_empty());
        let empty_index = JoinIndex::build(empty);
        assert!(empty_index.is_empty());
        for js in join_pairs(&l, &empty_index, &JoinSpec::overlap(1)) {
            assert!(js.is_empty());
        }
    }

    #[test]
    fn left_only_tokens_are_ignored() {
        // Left tokenized first: its ids exceed anything in the right
        // corpus, exercising the df bounds check.
        let cache = TokenCache::for_blocking();
        let l = corpus_with(&cache, &["zig zag zog corn"]);
        let r = corpus_with(&cache, &["corn maze", "zag only here"]);
        let index = JoinIndex::build(r.clone());
        let spec = JoinSpec::overlap(1);
        assert_eq!(join_pairs(&l, &index, &spec), scan(&l, &r, &spec));
    }
}
