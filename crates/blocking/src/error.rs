//! Error type for blocking operations.

use em_table::TableError;
use std::fmt;

/// Errors raised while blocking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// Underlying table error (missing column, …).
    Table(TableError),
    /// A parameter was out of range (zero threshold, empty attribute list…).
    BadParameter(String),
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::Table(e) => write!(f, "table error: {e}"),
            BlockError::BadParameter(m) => write!(f, "bad parameter: {m}"),
        }
    }
}

impl std::error::Error for BlockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlockError::Table(e) => Some(e),
            BlockError::BadParameter(_) => None,
        }
    }
}

impl From<TableError> for BlockError {
    fn from(e: TableError) -> Self {
        BlockError::Table(e)
    }
}
