//! Blocking debugger — the MatchCatcher \[23\] step of Section 7.
//!
//! Given the two input tables and the consolidated candidate set `C`, the
//! debugger surfaces record pairs that are **not** in `C` but look like
//! matches, ranked by decreasing likelihood. The user eyeballs the top of
//! the list: if it contains no true matches, blocking probably "has not
//! killed off many true matches" and can be frozen.

use crate::candidate::{CandidateSet, Pair};
use crate::error::BlockError;
use em_table::Table;
use em_text::seq::jaro_winkler;
use em_text::set::jaccard;
use em_text::tokenize::{AlphanumericTokenizer, Tokenizer};
use em_text::Normalizer;
use std::collections::{HashMap, HashSet};

/// A potentially missed match surfaced by the debugger.
#[derive(Debug, Clone, PartialEq)]
pub struct DebugPair {
    /// The pair of row indices.
    pub pair: Pair,
    /// Likelihood score in `[0, 1]` (higher = more match-like).
    pub score: f64,
}

/// Configuration for [`debug_blocking`].
#[derive(Debug, Clone)]
pub struct BlockingDebugger {
    /// `(left attribute, right attribute)` pairs to compare.
    pub attrs: Vec<(String, String)>,
    /// How many top pairs to return.
    pub top_k: usize,
    /// Normalization before comparison.
    pub normalizer: Normalizer,
}

impl BlockingDebugger {
    /// Debugger over one attribute pair with the paper's top-100 audit size.
    pub fn new(left_attr: impl Into<String>, right_attr: impl Into<String>) -> Self {
        BlockingDebugger {
            attrs: vec![(left_attr.into(), right_attr.into())],
            top_k: 100,
            normalizer: Normalizer::for_blocking(),
        }
    }

    /// Adds another attribute pair to compare.
    pub fn with_attrs(mut self, left_attr: impl Into<String>, right_attr: impl Into<String>) -> Self {
        self.attrs.push((left_attr.into(), right_attr.into()));
        self
    }

    /// Sets the number of returned pairs.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }
}

/// Scores one pair of normalized strings: the better of token Jaccard and
/// Jaro-Winkler (tokens catch word reorderings, JW catches short strings).
fn pair_score(a: &str, b: &str) -> f64 {
    let ta = AlphanumericTokenizer.tokenize(a);
    let tb = AlphanumericTokenizer.tokenize(b);
    if ta.is_empty() && tb.is_empty() {
        return 0.0; // two missing values carry no evidence of a match
    }
    jaccard(&ta, &tb).max(jaro_winkler(a, b))
}

/// Runs the debugger: returns the `top_k` most match-like pairs that are in
/// `A × B` but **not** in `candidates`, ranked by decreasing score (ties
/// broken by pair order for determinism).
///
/// Pairs sharing no word token in any compared attribute are skipped — they
/// cannot outrank pairs that do, and skipping them is what makes the
/// debugger "fast" in the paper's sense (inverted-index candidate
/// generation rather than a Cartesian scan).
pub fn debug_blocking(
    config: &BlockingDebugger,
    a: &Table,
    b: &Table,
    candidates: &CandidateSet,
) -> Result<Vec<DebugPair>, BlockError> {
    if config.attrs.is_empty() {
        return Err(BlockError::BadParameter("debugger needs >= 1 attribute pair".to_string()));
    }
    for (la, ra) in &config.attrs {
        a.schema().require(la)?;
        b.schema().require(ra)?;
    }

    // Normalized attribute texts.
    let norm = |t: &Table, attr: &str| -> Vec<String> {
        t.iter()
            .map(|r| r.str(attr).map(|s| config.normalizer.apply(s)).unwrap_or_default())
            .collect()
    };

    let mut survivors: HashSet<Pair> = HashSet::new();
    let mut texts: Vec<(Vec<String>, Vec<String>)> = Vec::with_capacity(config.attrs.len());
    for (la, ra) in &config.attrs {
        let left = norm(a, la);
        let right = norm(b, ra);
        // Inverted index on right tokens for this attribute.
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (j, text) in right.iter().enumerate() {
            for tok in AlphanumericTokenizer.tokenize(text) {
                index.entry(tok).or_default().push(j);
            }
        }
        for (i, text) in left.iter().enumerate() {
            let mut seen: HashSet<usize> = HashSet::new();
            for tok in AlphanumericTokenizer.tokenize(text) {
                if let Some(js) = index.get(&tok) {
                    seen.extend(js.iter().copied());
                }
            }
            for j in seen {
                let p = Pair::new(i, j);
                if !candidates.contains(&p) {
                    survivors.insert(p);
                }
            }
        }
        texts.push((left, right));
    }

    let mut scored: Vec<DebugPair> = survivors
        .into_iter()
        .map(|pair| {
            let score = texts
                .iter()
                .map(|(l, r)| pair_score(&l[pair.left], &r[pair.right]))
                .sum::<f64>()
                / texts.len() as f64;
            DebugPair { pair, score }
        })
        .collect();
    scored.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.pair.cmp(&y.pair))
    });
    scored.truncate(config.top_k);
    Ok(scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockers::{Blocker, OverlapBlocker};
    use em_table::csv::read_str;

    fn tables() -> (Table, Table) {
        let a = read_str(
            "A",
            "Title\n\
             Corn Fungicide Guidelines for the North Central States\n\
             Lab Supplies\n\
             Maize Gene Silencing\n",
        )
        .unwrap();
        let b = read_str(
            "B",
            "Title\n\
             Corn Fungicide Guidelines North Central\n\
             LAB SUPPLIES\n\
             Completely Different Research Topic\n",
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn surfaces_missed_match() {
        let (a, b) = tables();
        // Overlap K=3 blocks (0,0) in but misses the short (1,1) pair.
        let c = OverlapBlocker::new("Title", "Title", 3).block(&a, &b).unwrap();
        assert!(!c.contains(&Pair::new(1, 1)));
        let dbg = debug_blocking(&BlockingDebugger::new("Title", "Title"), &a, &b, &c).unwrap();
        assert_eq!(dbg[0].pair, Pair::new(1, 1), "missed 'lab supplies' pair should rank first");
        assert!(dbg[0].score > 0.9);
    }

    #[test]
    fn excludes_candidate_pairs() {
        let (a, b) = tables();
        let c = OverlapBlocker::new("Title", "Title", 1).block(&a, &b).unwrap();
        let dbg = debug_blocking(&BlockingDebugger::new("Title", "Title"), &a, &b, &c).unwrap();
        for d in &dbg {
            assert!(!c.contains(&d.pair));
        }
    }

    #[test]
    fn scores_descend() {
        let (a, b) = tables();
        let c = CandidateSet::new("empty");
        let dbg = debug_blocking(&BlockingDebugger::new("Title", "Title"), &a, &b, &c).unwrap();
        for w in dbg.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn top_k_truncates() {
        let (a, b) = tables();
        let c = CandidateSet::new("empty");
        let dbg = debug_blocking(
            &BlockingDebugger::new("Title", "Title").with_top_k(1),
            &a,
            &b,
            &c,
        )
        .unwrap();
        assert_eq!(dbg.len(), 1);
    }

    #[test]
    fn no_attrs_is_error() {
        let (a, b) = tables();
        let cfg = BlockingDebugger {
            attrs: vec![],
            top_k: 10,
            normalizer: Normalizer::for_blocking(),
        };
        assert!(debug_blocking(&cfg, &a, &b, &CandidateSet::new("c")).is_err());
    }

    #[test]
    fn multiple_attr_pairs_average() {
        let a = read_str("A", "T,N\nLab Supplies,W1\n").unwrap();
        let b = read_str("B", "T,N\nLab Supplies,W1\nLab Supplies,XX\n").unwrap();
        let cfg = BlockingDebugger::new("T", "T").with_attrs("N", "N");
        let dbg = debug_blocking(&cfg, &a, &b, &CandidateSet::new("c")).unwrap();
        // The pair agreeing on both attributes must outrank the other.
        assert_eq!(dbg[0].pair, Pair::new(0, 0));
        assert!(dbg[0].score > dbg[1].score);
    }
}
