//! An incremental inverted token index for online blocking.
//!
//! Batch blocking ([`OverlapBlocker`](crate::OverlapBlocker) /
//! [`SetSimBlocker`](crate::SetSimBlocker)) rebuilds its inverted index from
//! scratch on every call. An online matching service cannot afford that: the
//! indexed corpus changes one record at a time. [`IncrementalIndex`]
//! maintains the same token → rows postings under single-record
//! [`insert`](IncrementalIndex::insert) / [`remove`](IncrementalIndex::remove)
//! / [`upsert`](IncrementalIndex::upsert), and its probes reproduce the
//! batch blockers' arithmetic exactly: overlap counts are identical integer
//! counts, and set-similarity scores call the very same
//! [`SetMeasure::score`](crate::SetMeasure) f64 expression. A property test
//! (`tests/incremental_prop.rs`) pins probe results to from-scratch blocking
//! over the surviving rows under arbitrary interleavings of edits.
//!
//! # Filtered probes
//!
//! Postings are bucketed by indexed-row token count (`token id → |B| → keys`),
//! which enables two classic set-similarity filters *during* the postings
//! walk instead of scoring every row that shares a token:
//!
//! - **Length filter**: a bucket whose row size `|B|` can never satisfy the
//!   probe's threshold (e.g. `|B| < k` for overlap-`k`, or a size for which
//!   even a full intersection scores below a set-sim threshold) is skipped
//!   outright.
//! - **Prefix filter**: query tokens are walked in ascending document
//!   frequency order. A row first encountered at query position `p` can share
//!   at most `|A| - p` tokens with the probe, so once that upper bound drops
//!   below what the threshold requires for a bucket, the walk stops
//!   *admitting* new rows from that bucket and only increments counts of rows
//!   already seen. Rare tokens come first, so most admissions happen against
//!   short postings lists.
//!
//! Both filters only prune rows whose final score provably fails the exact
//! predicate: admission bounds and the final filter evaluate the *same*
//! [`JoinSpec::admits`](crate::JoinSpec::admits) predicate — shared with
//! the batch join of [`crate::join`], whose [`SetMeasure::score`] arm is
//! monotone in the intersection size — so no float-boundary case can
//! diverge from the unfiltered scan. The probes also come in `_into`
//! variants that reuse a caller-owned [`ProbeScratch`] so a steady-state
//! serving loop performs no allocations.

use crate::blockers::SetMeasure;
use crate::join::JoinSpec;
use em_text::intern::{overlap_size_sorted, TokenCache, TokenIds};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Reusable buffers for [`IncrementalIndex`] probes. The maps and vectors
/// retain their capacity across probes (they are `clear()`ed, not dropped),
/// so a warmed-up serving loop probes without allocating.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    /// Row key → (indexed row length `|B|`, shared-token count so far).
    counts: HashMap<usize, (usize, usize)>,
    /// Query tokens ordered by ascending document frequency.
    order: Vec<(usize, u32)>,
}

impl ProbeScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> ProbeScratch {
        ProbeScratch::default()
    }
}

/// Inverted token index over one text column of an evolving record corpus.
///
/// Rows are addressed by caller-chosen `usize` keys (e.g. row indices of a
/// backing table). Tokenization and normalization run through a shared
/// [`TokenCache`], so an index can reuse the cache of the batch blockers it
/// mirrors.
#[derive(Debug, Clone)]
pub struct IncrementalIndex {
    cache: Arc<TokenCache>,
    /// Key → distinct sorted token ids of that row's indexed text.
    rows: BTreeMap<usize, TokenIds>,
    /// Token id → row token count `|B|` → keys of rows of that size
    /// containing the token. `BTreeSet` keeps postings ordered, so probe
    /// output is deterministic irrespective of edit history; the size
    /// bucketing powers the length filter.
    postings: HashMap<u32, BTreeMap<u32, BTreeSet<usize>>>,
}

impl IncrementalIndex {
    /// An empty index with the paper's blocking normalization
    /// ([`TokenCache::for_blocking`]).
    pub fn new() -> IncrementalIndex {
        IncrementalIndex::with_cache(Arc::new(TokenCache::for_blocking()))
    }

    /// An empty index sharing an existing token cache (so ids agree with
    /// other users of the cache).
    pub fn with_cache(cache: Arc<TokenCache>) -> IncrementalIndex {
        IncrementalIndex { cache, rows: BTreeMap::new(), postings: HashMap::new() }
    }

    /// The shared token cache.
    pub fn cache(&self) -> &Arc<TokenCache> {
        &self.cache
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True when `key` is currently indexed.
    pub fn contains_key(&self, key: usize) -> bool {
        self.rows.contains_key(&key)
    }

    /// Indexes `text` under `key`. Returns `false` (and leaves the index
    /// unchanged) if the key is already present — use
    /// [`upsert`](IncrementalIndex::upsert) to replace.
    pub fn insert(&mut self, key: usize, text: Option<&str>) -> bool {
        if self.rows.contains_key(&key) {
            return false;
        }
        let ids = self.cache.token_ids(text);
        let size = ids.len() as u32;
        for &t in ids.iter() {
            self.postings.entry(t).or_default().entry(size).or_default().insert(key);
        }
        self.rows.insert(key, ids);
        true
    }

    /// Removes `key` from the index. Returns `false` if it was not present.
    pub fn remove(&mut self, key: usize) -> bool {
        let Some(ids) = self.rows.remove(&key) else {
            return false;
        };
        let size = ids.len() as u32;
        for t in ids.iter() {
            if let Some(buckets) = self.postings.get_mut(t) {
                if let Some(set) = buckets.get_mut(&size) {
                    set.remove(&key);
                    if set.is_empty() {
                        buckets.remove(&size);
                    }
                }
                if buckets.is_empty() {
                    self.postings.remove(t);
                }
            }
        }
        true
    }

    /// Replaces (or creates) the row under `key`.
    pub fn upsert(&mut self, key: usize, text: Option<&str>) {
        self.remove(key);
        self.insert(key, text);
    }

    /// Document frequency of a token: how many indexed rows contain it.
    fn doc_freq(&self, token: u32) -> usize {
        self.postings.get(&token).map_or(0, |b| b.values().map(BTreeSet::len).sum())
    }

    /// Filtered postings walk shared by all probes. Admits into `out`
    /// (ascending key order) every row satisfying `spec` — exactly the rows
    /// the unfiltered scan admits, with length/prefix filters pruning rows
    /// that provably cannot pass.
    fn probe_filtered_into(
        &self,
        query: &TokenIds,
        spec: JoinSpec,
        scratch: &mut ProbeScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        scratch.counts.clear();
        scratch.order.clear();
        let la = query.len();
        if la == 0 {
            // No postings to walk: rows sharing zero tokens are never
            // admitted by either predicate's postings semantics.
            return;
        }
        // Prefix filter: rarest tokens first, so new-row admissions scan the
        // shortest postings lists. Any order yields the same counts; ties
        // break on token id for determinism of the walk (not of the result).
        scratch.order.extend(query.iter().map(|&t| (self.doc_freq(t), t)));
        scratch.order.sort_unstable();
        for p in 0..la {
            let (_, token) = scratch.order[p];
            let Some(buckets) = self.postings.get(&token) else { continue };
            // A row first seen at query position `p` shares at most
            // `la - p` query tokens (and never more than its own size).
            let remaining = la - p;
            for (&size, keys) in buckets {
                let lb = size as usize;
                // Length filter: even a full intersection of this bucket's
                // rows cannot pass → the bucket never produces candidates.
                if !spec.admits(remaining.min(lb).min(la), la, lb) {
                    if !spec.admits(la.min(lb), la, lb) {
                        // Unadmittable at any position: nothing of this size
                        // is ever inserted, so nothing needs incrementing.
                        continue;
                    }
                    // Prefix filter: too late to admit new rows of this
                    // size, but rows admitted earlier still need counting.
                    for key in keys {
                        if let Some((_, count)) = scratch.counts.get_mut(key) {
                            *count += 1;
                        }
                    }
                    continue;
                }
                for &key in keys {
                    let entry = scratch.counts.entry(key).or_insert((lb, 0));
                    entry.1 += 1;
                }
            }
        }
        out.extend(
            scratch
                .counts
                .iter()
                .filter(|&(_, &(lb, count))| spec.admits(count, la, lb))
                .map(|(&key, _)| key),
        );
        out.sort_unstable();
    }

    /// Keys of rows sharing at least `k` distinct tokens with `text`, in
    /// ascending key order — [`OverlapBlocker`](crate::OverlapBlocker)
    /// semantics for one probe record.
    pub fn probe_overlap(&self, text: Option<&str>, k: usize) -> Vec<usize> {
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::new();
        self.probe_overlap_into(text, k, &mut scratch, &mut out);
        out
    }

    /// [`probe_overlap`](IncrementalIndex::probe_overlap) into reusable
    /// buffers: `out` receives the keys, `scratch` is reused across probes.
    pub fn probe_overlap_into(
        &self,
        text: Option<&str>,
        k: usize,
        scratch: &mut ProbeScratch,
        out: &mut Vec<usize>,
    ) {
        let query = self.cache.token_ids(text);
        let spec = JoinSpec::overlap(k);
        self.probe_filtered_into(&query, spec, scratch, out);
    }

    /// Keys of rows whose set-similarity with `text` reaches `threshold`,
    /// in ascending key order — [`SetSimBlocker`](crate::SetSimBlocker)
    /// semantics for one probe record (empty probe text admits nothing; the
    /// score is the identical f64 expression the batch blocker evaluates).
    pub fn probe_set_sim(
        &self,
        text: Option<&str>,
        measure: SetMeasure,
        threshold: f64,
    ) -> Vec<usize> {
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::new();
        self.probe_set_sim_into(text, measure, threshold, &mut scratch, &mut out);
        out
    }

    /// [`probe_set_sim`](IncrementalIndex::probe_set_sim) into reusable
    /// buffers.
    pub fn probe_set_sim_into(
        &self,
        text: Option<&str>,
        measure: SetMeasure,
        threshold: f64,
        scratch: &mut ProbeScratch,
        out: &mut Vec<usize>,
    ) {
        let query = self.cache.token_ids(text);
        let spec = JoinSpec::set_sim(measure, threshold);
        self.probe_filtered_into(&query, spec, scratch, out);
    }

    /// Union probe: keys of rows sharing at least `k` distinct tokens with
    /// `text` **or** whose set-similarity reaches `threshold`, in ascending
    /// key order. One postings walk replaces the two walks of
    /// [`probe_overlap`](IncrementalIndex::probe_overlap) +
    /// [`probe_set_sim`](IncrementalIndex::probe_set_sim); the result equals
    /// the union of the two (pinned by `tests/incremental_prop.rs`).
    pub fn probe_union_into(
        &self,
        text: Option<&str>,
        k: usize,
        measure: SetMeasure,
        threshold: f64,
        scratch: &mut ProbeScratch,
        out: &mut Vec<usize>,
    ) {
        let query = self.cache.token_ids(text);
        let spec = JoinSpec::union(k, measure, threshold);
        self.probe_filtered_into(&query, spec, scratch, out);
    }

    /// Reference probe, for differential testing: recomputes each overlap
    /// with [`overlap_size_sorted`] over the stored id lists instead of the
    /// postings walk.
    pub fn probe_overlap_scan(&self, text: Option<&str>, k: usize) -> Vec<usize> {
        let query = self.cache.token_ids(text);
        self.rows
            .iter()
            .filter(|(_, ids)| overlap_size_sorted(&query, ids) >= k)
            .map(|(&key, _)| key)
            .collect()
    }

    /// Reference set-sim probe, for differential testing: scores every
    /// stored row with the exact [`SetMeasure::score`] expression over a
    /// full linear-merge intersection (rows sharing zero tokens are skipped,
    /// matching the postings-walk semantics; an empty probe admits nothing).
    pub fn probe_set_sim_scan(
        &self,
        text: Option<&str>,
        measure: SetMeasure,
        threshold: f64,
    ) -> Vec<usize> {
        let query = self.cache.token_ids(text);
        if query.is_empty() {
            return Vec::new();
        }
        self.rows
            .iter()
            .filter(|(_, ids)| {
                let inter = overlap_size_sorted(&query, ids);
                inter > 0 && measure.score(inter, query.len(), ids.len()) >= threshold
            })
            .map(|(&key, _)| key)
            .collect()
    }
}

impl Default for IncrementalIndex {
    fn default() -> Self {
        IncrementalIndex::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IncrementalIndex {
        let mut idx = IncrementalIndex::new();
        idx.insert(0, Some("Development of Corn Fungicide Guidelines"));
        idx.insert(1, Some("Swamp Dodder Applied Ecology and Management"));
        idx.insert(2, Some("Lab Supplies"));
        idx.insert(3, None);
        idx
    }

    #[test]
    fn insert_probe_overlap_counts_distinct_shared_tokens() {
        let idx = sample();
        assert_eq!(idx.probe_overlap(Some("corn fungicide guidelines"), 3), vec![0]);
        assert_eq!(idx.probe_overlap(Some("corn fungicide guidelines"), 4), Vec::<usize>::new());
        // Normalization lowercases: case differences do not matter.
        assert_eq!(idx.probe_overlap(Some("LAB SUPPLIES"), 2), vec![2]);
    }

    #[test]
    fn remove_unindexes_row() {
        let mut idx = sample();
        assert!(idx.remove(0));
        assert!(!idx.remove(0));
        assert!(idx.probe_overlap(Some("corn fungicide guidelines"), 1).is_empty());
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn upsert_replaces_tokens() {
        let mut idx = sample();
        idx.upsert(2, Some("Maize Genetics"));
        assert!(idx.probe_overlap(Some("lab supplies"), 1).is_empty());
        assert_eq!(idx.probe_overlap(Some("maize genetics"), 2), vec![2]);
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn insert_refuses_duplicate_keys() {
        let mut idx = sample();
        assert!(!idx.insert(2, Some("Something Else")));
        assert_eq!(idx.probe_overlap(Some("lab supplies"), 2), vec![2]);
    }

    #[test]
    fn null_text_rows_never_match() {
        let idx = sample();
        for k in 1..3 {
            assert!(!idx.probe_overlap(Some("anything at all"), k).contains(&3));
        }
        assert!(idx.probe_set_sim(Some("anything"), SetMeasure::OverlapCoefficient, 0.1).is_empty());
    }

    #[test]
    fn set_sim_probe_matches_measure_semantics() {
        let idx = sample();
        // "lab supplies" vs "Lab Supplies": inter 2, min 2 → oc = 1.0.
        assert_eq!(
            idx.probe_set_sim(Some("lab supplies"), SetMeasure::OverlapCoefficient, 0.7),
            vec![2]
        );
        // Jaccard 2/2 = 1.0 as well.
        assert_eq!(idx.probe_set_sim(Some("supplies lab"), SetMeasure::Jaccard, 0.99), vec![2]);
        // Empty probe admits nothing.
        assert!(idx.probe_set_sim(None, SetMeasure::Jaccard, 0.01).is_empty());
        assert!(idx.probe_set_sim(Some("  "), SetMeasure::Jaccard, 0.01).is_empty());
    }

    #[test]
    fn postings_probe_agrees_with_scan_probe() {
        let mut idx = sample();
        idx.insert(7, Some("corn genetics lab"));
        idx.remove(1);
        for k in 1..=4 {
            for probe in [Some("corn fungicide lab supplies"), Some("swamp dodder"), None] {
                assert_eq!(idx.probe_overlap(probe, k), idx.probe_overlap_scan(probe, k));
            }
        }
    }

    #[test]
    fn set_sim_probe_agrees_with_scan_probe() {
        let mut idx = sample();
        idx.insert(7, Some("corn genetics lab"));
        idx.insert(8, Some("corn"));
        for threshold in [0.01, 0.3, 0.5, 0.99] {
            for measure in [SetMeasure::OverlapCoefficient, SetMeasure::Jaccard] {
                for probe in [Some("corn fungicide lab supplies"), Some("corn"), None] {
                    assert_eq!(
                        idx.probe_set_sim(probe, measure, threshold),
                        idx.probe_set_sim_scan(probe, measure, threshold),
                        "measure={measure:?} threshold={threshold} probe={probe:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn union_probe_equals_union_of_probes() {
        let idx = sample();
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::new();
        for probe in [Some("corn fungicide lab supplies development"), Some("corn"), None] {
            idx.probe_union_into(probe, 3, SetMeasure::OverlapCoefficient, 0.7, &mut scratch, &mut out);
            let mut expect = idx.probe_overlap(probe, 3);
            expect.extend(idx.probe_set_sim(probe, SetMeasure::OverlapCoefficient, 0.7));
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(out, expect, "probe={probe:?}");
        }
    }

    #[test]
    fn scratch_reuse_is_probe_independent() {
        let idx = sample();
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::new();
        // A big probe warms the buffers; a later unrelated probe must not
        // see stale counts.
        idx.probe_overlap_into(Some("corn fungicide guidelines development of"), 1, &mut scratch, &mut out);
        assert!(!out.is_empty());
        idx.probe_overlap_into(Some("swamp dodder"), 2, &mut scratch, &mut out);
        assert_eq!(out, vec![1]);
        idx.probe_overlap_into(None, 1, &mut scratch, &mut out);
        assert!(out.is_empty());
    }
}
