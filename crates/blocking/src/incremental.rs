//! An incremental inverted token index for online blocking.
//!
//! Batch blocking ([`OverlapBlocker`](crate::OverlapBlocker) /
//! [`SetSimBlocker`](crate::SetSimBlocker)) rebuilds its inverted index from
//! scratch on every call. An online matching service cannot afford that: the
//! indexed corpus changes one record at a time. [`IncrementalIndex`]
//! maintains the same token → rows postings under single-record
//! [`insert`](IncrementalIndex::insert) / [`remove`](IncrementalIndex::remove)
//! / [`upsert`](IncrementalIndex::upsert), and its probes reproduce the
//! batch blockers' arithmetic exactly: overlap counts are identical integer
//! counts, and set-similarity scores call the very same
//! [`SetMeasure::score`](crate::SetMeasure) f64 expression. A property test
//! (`tests/incremental_prop.rs`) pins probe results to from-scratch blocking
//! over the surviving rows under arbitrary interleavings of edits.

use crate::blockers::SetMeasure;
use em_text::intern::{overlap_size_sorted, TokenCache, TokenIds};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Inverted token index over one text column of an evolving record corpus.
///
/// Rows are addressed by caller-chosen `usize` keys (e.g. row indices of a
/// backing table). Tokenization and normalization run through a shared
/// [`TokenCache`], so an index can reuse the cache of the batch blockers it
/// mirrors.
#[derive(Debug, Clone)]
pub struct IncrementalIndex {
    cache: Arc<TokenCache>,
    /// Key → distinct sorted token ids of that row's indexed text.
    rows: BTreeMap<usize, TokenIds>,
    /// Token id → keys of rows containing the token. `BTreeSet` keeps
    /// postings ordered, so probe output is deterministic irrespective of
    /// edit history.
    postings: HashMap<u32, BTreeSet<usize>>,
}

impl IncrementalIndex {
    /// An empty index with the paper's blocking normalization
    /// ([`TokenCache::for_blocking`]).
    pub fn new() -> IncrementalIndex {
        IncrementalIndex::with_cache(Arc::new(TokenCache::for_blocking()))
    }

    /// An empty index sharing an existing token cache (so ids agree with
    /// other users of the cache).
    pub fn with_cache(cache: Arc<TokenCache>) -> IncrementalIndex {
        IncrementalIndex { cache, rows: BTreeMap::new(), postings: HashMap::new() }
    }

    /// The shared token cache.
    pub fn cache(&self) -> &Arc<TokenCache> {
        &self.cache
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True when `key` is currently indexed.
    pub fn contains_key(&self, key: usize) -> bool {
        self.rows.contains_key(&key)
    }

    /// Indexes `text` under `key`. Returns `false` (and leaves the index
    /// unchanged) if the key is already present — use
    /// [`upsert`](IncrementalIndex::upsert) to replace.
    pub fn insert(&mut self, key: usize, text: Option<&str>) -> bool {
        if self.rows.contains_key(&key) {
            return false;
        }
        let ids = self.cache.token_ids(text);
        for &t in ids.iter() {
            self.postings.entry(t).or_default().insert(key);
        }
        self.rows.insert(key, ids);
        true
    }

    /// Removes `key` from the index. Returns `false` if it was not present.
    pub fn remove(&mut self, key: usize) -> bool {
        let Some(ids) = self.rows.remove(&key) else {
            return false;
        };
        for t in ids.iter() {
            if let Some(set) = self.postings.get_mut(t) {
                set.remove(&key);
                if set.is_empty() {
                    self.postings.remove(t);
                }
            }
        }
        true
    }

    /// Replaces (or creates) the row under `key`.
    pub fn upsert(&mut self, key: usize, text: Option<&str>) {
        self.remove(key);
        self.insert(key, text);
    }

    /// Counts shared distinct tokens per indexed row, exactly as the batch
    /// overlap/set-sim blockers do over their inverted index: only rows
    /// sharing at least one token appear.
    fn overlap_counts(&self, query: &TokenIds) -> HashMap<usize, usize> {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for t in query.iter() {
            if let Some(keys) = self.postings.get(t) {
                for &k in keys {
                    *counts.entry(k).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// Keys of rows sharing at least `k` distinct tokens with `text`, in
    /// ascending key order — [`OverlapBlocker`](crate::OverlapBlocker)
    /// semantics for one probe record.
    pub fn probe_overlap(&self, text: Option<&str>, k: usize) -> Vec<usize> {
        let query = self.cache.token_ids(text);
        let mut keys: Vec<usize> = self
            .overlap_counts(&query)
            .into_iter()
            .filter(|&(_, c)| c >= k)
            .map(|(key, _)| key)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Keys of rows whose set-similarity with `text` reaches `threshold`,
    /// in ascending key order — [`SetSimBlocker`](crate::SetSimBlocker)
    /// semantics for one probe record (empty probe text admits nothing; the
    /// score is the identical f64 expression the batch blocker evaluates).
    pub fn probe_set_sim(
        &self,
        text: Option<&str>,
        measure: SetMeasure,
        threshold: f64,
    ) -> Vec<usize> {
        let query = self.cache.token_ids(text);
        if query.is_empty() {
            return Vec::new();
        }
        let mut keys: Vec<usize> = self
            .overlap_counts(&query)
            .into_iter()
            .filter(|&(key, inter)| {
                measure.score(inter, query.len(), self.rows[&key].len()) >= threshold
            })
            .map(|(key, _)| key)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Reference probe, for differential testing: recomputes each overlap
    /// with [`overlap_size_sorted`] over the stored id lists instead of the
    /// postings walk.
    pub fn probe_overlap_scan(&self, text: Option<&str>, k: usize) -> Vec<usize> {
        let query = self.cache.token_ids(text);
        self.rows
            .iter()
            .filter(|(_, ids)| overlap_size_sorted(&query, ids) >= k)
            .map(|(&key, _)| key)
            .collect()
    }
}

impl Default for IncrementalIndex {
    fn default() -> Self {
        IncrementalIndex::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IncrementalIndex {
        let mut idx = IncrementalIndex::new();
        idx.insert(0, Some("Development of Corn Fungicide Guidelines"));
        idx.insert(1, Some("Swamp Dodder Applied Ecology and Management"));
        idx.insert(2, Some("Lab Supplies"));
        idx.insert(3, None);
        idx
    }

    #[test]
    fn insert_probe_overlap_counts_distinct_shared_tokens() {
        let idx = sample();
        assert_eq!(idx.probe_overlap(Some("corn fungicide guidelines"), 3), vec![0]);
        assert_eq!(idx.probe_overlap(Some("corn fungicide guidelines"), 4), Vec::<usize>::new());
        // Normalization lowercases: case differences do not matter.
        assert_eq!(idx.probe_overlap(Some("LAB SUPPLIES"), 2), vec![2]);
    }

    #[test]
    fn remove_unindexes_row() {
        let mut idx = sample();
        assert!(idx.remove(0));
        assert!(!idx.remove(0));
        assert!(idx.probe_overlap(Some("corn fungicide guidelines"), 1).is_empty());
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn upsert_replaces_tokens() {
        let mut idx = sample();
        idx.upsert(2, Some("Maize Genetics"));
        assert!(idx.probe_overlap(Some("lab supplies"), 1).is_empty());
        assert_eq!(idx.probe_overlap(Some("maize genetics"), 2), vec![2]);
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn insert_refuses_duplicate_keys() {
        let mut idx = sample();
        assert!(!idx.insert(2, Some("Something Else")));
        assert_eq!(idx.probe_overlap(Some("lab supplies"), 2), vec![2]);
    }

    #[test]
    fn null_text_rows_never_match() {
        let idx = sample();
        for k in 1..3 {
            assert!(!idx.probe_overlap(Some("anything at all"), k).contains(&3));
        }
        assert!(idx.probe_set_sim(Some("anything"), SetMeasure::OverlapCoefficient, 0.1).is_empty());
    }

    #[test]
    fn set_sim_probe_matches_measure_semantics() {
        let idx = sample();
        // "lab supplies" vs "Lab Supplies": inter 2, min 2 → oc = 1.0.
        assert_eq!(
            idx.probe_set_sim(Some("lab supplies"), SetMeasure::OverlapCoefficient, 0.7),
            vec![2]
        );
        // Jaccard 2/2 = 1.0 as well.
        assert_eq!(idx.probe_set_sim(Some("supplies lab"), SetMeasure::Jaccard, 0.99), vec![2]);
        // Empty probe admits nothing.
        assert!(idx.probe_set_sim(None, SetMeasure::Jaccard, 0.01).is_empty());
        assert!(idx.probe_set_sim(Some("  "), SetMeasure::Jaccard, 0.01).is_empty());
    }

    #[test]
    fn postings_probe_agrees_with_scan_probe() {
        let mut idx = sample();
        idx.insert(7, Some("corn genetics lab"));
        idx.remove(1);
        for k in 1..=4 {
            for probe in [Some("corn fungicide lab supplies"), Some("swamp dodder"), None] {
                assert_eq!(idx.probe_overlap(probe, k), idx.probe_overlap_scan(probe, k));
            }
        }
    }
}
