//! The blockers of Section 7: attribute equivalence, token overlap,
//! overlap coefficient — plus a Jaccard blocker (used in the paper's
//! footnote 2 to audit short titles) and a black-box predicate blocker.
//!
//! Every blocker exposes both table-level [`Blocker::block`] (efficient,
//! index-based where possible) and pair-level [`Blocker::accepts`] (used to
//! re-check single pairs and to filter an existing candidate set with
//! [`Blocker::block_candidates`], PyMatcher's `block_candset`).
//!
//! The token blockers run on the shared performance layer: each attribute
//! is tokenized **once** into interned `u32` id lists through a memoizing
//! [`TokenCache`] (shareable across blockers, so a whole blocking plan
//! tokenizes each column a single time), and table-level blocking runs the
//! batch set-similarity join of [`crate::join`] — df-ordered, size-bucketed
//! postings over the right column, prefix + length filtered probes, exact
//! verification — fanned out over left-row chunks on
//! [`em_parallel::Executor`]. Candidate sets are ordered maps and every
//! probe is a pure function of its row index, so output is bit-identical at
//! any thread count.
//!
//! # Which blockers take which path
//!
//! [`OverlapBlocker`] and [`SetSimBlocker`] block tables through the join
//! engine; [`AttrEquivalenceBlocker`] is a hash join. Only
//! [`BlackboxBlocker`] — an opaque user predicate, with nothing to index —
//! scans the Cartesian product, via the shared [`block_pairwise`] helper
//! that also backs the [`Blocker::block`] trait default. Keeping the
//! pairwise path in exactly one named function means an indexed blocker
//! can't silently regress to it: the fast paths never call
//! `block_pairwise`, and the debugger/tests that *want* exhaustive
//! semantics call it by name.

use crate::candidate::{CandidateSet, Pair};
use crate::error::BlockError;
use crate::join::{join_pairs_multi, JoinIndex, JoinSpec};
use em_parallel::Executor;
use em_table::{RowRef, Table};
use em_text::intern::{overlap_size_sorted, TokenCache, TokenCorpus, TokenIds};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Minimum candidate pairs per thread in `block_candidates`.
const PAIR_GRAIN: usize = 256;

/// A blocking scheme over two tables.
pub trait Blocker {
    /// Short, stable name used as the provenance tag of admitted pairs.
    fn name(&self) -> String;

    /// Pair-level semantics: would this blocker admit `(a, b)`?
    fn accepts(&self, a: RowRef<'_>, b: RowRef<'_>) -> Result<bool, BlockError>;

    /// Blocks two whole tables. The default scans the Cartesian product
    /// through [`block_pairwise`]; index-based blockers override it.
    fn block(&self, a: &Table, b: &Table) -> Result<CandidateSet, BlockError> {
        block_pairwise(self, a, b)
    }

    /// Filters an existing candidate set down to the pairs this blocker
    /// also admits (sequential blocker composition).
    fn block_candidates(
        &self,
        a: &Table,
        b: &Table,
        candidates: &CandidateSet,
    ) -> Result<CandidateSet, BlockError> {
        let mut out = CandidateSet::new(self.name());
        let tag = self.name();
        for pair in candidates.iter() {
            let (ra, rb) = rows(a, b, pair)?;
            if self.accepts(ra, rb)? {
                out.add(pair, &tag);
            }
        }
        Ok(out)
    }
}

/// Exhaustive O(|A|·|B|) blocking: every pair through
/// [`Blocker::accepts`]. This is the *only* Cartesian-product scan in the
/// crate — the fallback for blockers with nothing to index
/// ([`BlackboxBlocker`], and any [`Blocker`] that doesn't override
/// [`Blocker::block`]) and the reference the join-backed paths are
/// differential-tested against (`tests/join_prop.rs`).
pub fn block_pairwise<B: Blocker + ?Sized>(
    blocker: &B,
    a: &Table,
    b: &Table,
) -> Result<CandidateSet, BlockError> {
    let tag = blocker.name();
    let mut out = CandidateSet::new(tag.clone());
    for (i, ra) in a.iter().enumerate() {
        for (j, rb) in b.iter().enumerate() {
            if blocker.accepts(ra, rb)? {
                out.add(Pair::new(i, j), &tag);
            }
        }
    }
    Ok(out)
}

fn rows<'t>(a: &'t Table, b: &'t Table, pair: Pair) -> Result<(RowRef<'t>, RowRef<'t>), BlockError> {
    let ra = a.row(pair.left).ok_or_else(|| {
        BlockError::BadParameter(format!("pair references row {} past table A", pair.left))
    })?;
    let rb = b.row(pair.right).ok_or_else(|| {
        BlockError::BadParameter(format!("pair references row {} past table B", pair.right))
    })?;
    Ok((ra, rb))
}

/// Attribute-equivalence blocker: admit `(a, b)` iff the (non-null) blocking
/// attributes agree exactly. Table-level blocking is a hash join.
#[derive(Debug, Clone)]
pub struct AttrEquivalenceBlocker {
    /// Blocking attribute in the left table.
    pub left_attr: String,
    /// Blocking attribute in the right table.
    pub right_attr: String,
}

impl AttrEquivalenceBlocker {
    /// Creates the blocker.
    pub fn new(left_attr: impl Into<String>, right_attr: impl Into<String>) -> Self {
        AttrEquivalenceBlocker { left_attr: left_attr.into(), right_attr: right_attr.into() }
    }
}

impl Blocker for AttrEquivalenceBlocker {
    fn name(&self) -> String {
        format!("ae({}={})", self.left_attr, self.right_attr)
    }

    fn accepts(&self, a: RowRef<'_>, b: RowRef<'_>) -> Result<bool, BlockError> {
        let va = a
            .get(&self.left_attr)
            .ok_or_else(|| BlockError::Table(em_table::TableError::NoSuchColumn(self.left_attr.clone())))?;
        let vb = b
            .get(&self.right_attr)
            .ok_or_else(|| BlockError::Table(em_table::TableError::NoSuchColumn(self.right_attr.clone())))?;
        Ok(!va.is_null() && !vb.is_null() && va.dedup_key() == vb.dedup_key())
    }

    fn block(&self, a: &Table, b: &Table) -> Result<CandidateSet, BlockError> {
        a.schema().require(&self.left_attr)?;
        b.schema().require(&self.right_attr)?;
        let tag = self.name();
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (j, rb) in b.iter().enumerate() {
            let Some(v) = rb.get(&self.right_attr) else { continue };
            if !v.is_null() {
                index.entry(v.dedup_key()).or_default().push(j);
            }
        }
        let mut out = CandidateSet::new(tag.clone());
        for (i, ra) in a.iter().enumerate() {
            let Some(v) = ra.get(&self.left_attr) else { continue };
            if v.is_null() {
                continue;
            }
            if let Some(js) = index.get(&v.dedup_key()) {
                for &j in js {
                    out.add(Pair::new(i, j), &tag);
                }
            }
        }
        Ok(out)
    }
}

/// Tokenizes the blocking column of each table through the shared cache.
/// The pass is sequential so id assignment stays deterministic.
fn tokenize_columns(
    cache: &TokenCache,
    a: &Table,
    left_attr: &str,
    b: &Table,
    right_attr: &str,
) -> (TokenCorpus, TokenCorpus) {
    let left = TokenCorpus::from_column(cache, a.iter().map(|r| r.str(left_attr)));
    let right = TokenCorpus::from_column(cache, b.iter().map(|r| r.str(right_attr)));
    (left, right)
}

/// Blocks several join predicates over one column pair, sharing a single
/// tokenization pass and postings index across all of them. This is the
/// plan-level entry point: `run_blocking`'s C2 (overlap) and C3 (overlap
/// coefficient) both block `AwardTitle`, so running them through one call
/// halves the corpus work. Each `(spec, tag)` yields one candidate set
/// (in input order) whose pairs carry `tag` as provenance.
///
/// Callers are responsible for spec validation (the blockers validate
/// before delegating here; see [`OverlapBlocker::join_spec`] and
/// [`SetSimBlocker::join_spec`]).
pub fn block_specs(
    cache: &TokenCache,
    a: &Table,
    left_attr: &str,
    b: &Table,
    right_attr: &str,
    specs: &[(JoinSpec, String)],
) -> Result<Vec<CandidateSet>, BlockError> {
    a.schema().require(left_attr)?;
    b.schema().require(right_attr)?;
    let (left, right) = tokenize_columns(cache, a, left_attr, b, right_attr);
    let index = JoinIndex::build(right);
    let only_specs: Vec<JoinSpec> = specs.iter().map(|(spec, _)| *spec).collect();
    let by_spec = join_pairs_multi(&left, &index, &only_specs);
    let mut sets = Vec::with_capacity(specs.len());
    for ((_, tag), accepted) in specs.iter().zip(by_spec) {
        let mut out = CandidateSet::new(tag.clone());
        for (i, js) in accepted.iter().enumerate() {
            for &j in js {
                out.add(Pair::new(i, j as usize), tag);
            }
        }
        sets.push(out);
    }
    Ok(sets)
}

/// Runs the batch join and folds the per-left-row admissions into a
/// candidate set — the table-level path of a single token blocker.
fn block_via_join(
    cache: &TokenCache,
    a: &Table,
    left_attr: &str,
    b: &Table,
    right_attr: &str,
    spec: &JoinSpec,
    tag: &str,
) -> Result<CandidateSet, BlockError> {
    let mut sets =
        block_specs(cache, a, left_attr, b, right_attr, &[(*spec, tag.to_string())])?;
    sets.pop().ok_or_else(|| BlockError::BadParameter("empty spec list".to_string()))
}

/// Side-specific memo of token ids for the rows a candidate set touches.
type SideTokens = HashMap<usize, TokenIds>;

/// Memoized token-id lookups for the rows a candidate set touches, so the
/// parallel verification pass reads without locking the cache.
fn pair_tokens(
    cache: &TokenCache,
    a: &Table,
    left_attr: &str,
    b: &Table,
    right_attr: &str,
    list: &[Pair],
) -> Result<(SideTokens, SideTokens), BlockError> {
    let mut left = SideTokens::new();
    let mut right = SideTokens::new();
    for p in list {
        let (ra, rb) = rows(a, b, *p)?;
        left.entry(p.left).or_insert_with(|| cache.token_ids(ra.str(left_attr)));
        right.entry(p.right).or_insert_with(|| cache.token_ids(rb.str(right_attr)));
    }
    Ok((left, right))
}

/// Token-overlap blocker: admit `(a, b)` iff the blocking attributes share
/// at least `threshold` distinct word tokens (Section 7, step 2; the paper
/// used threshold 3 after sweeping 1 and 7).
///
/// Table-level blocking runs the [`crate::join`] engine — the "string
/// filtering techniques" of footnote 4 (prefix + length filters over
/// df-ordered postings) with exact verification, so the result equals the
/// unfiltered scan bit for bit.
#[derive(Debug, Clone)]
pub struct OverlapBlocker {
    /// Blocking attribute in the left table.
    pub left_attr: String,
    /// Blocking attribute in the right table.
    pub right_attr: String,
    /// Minimum number of shared distinct tokens (≥ 1).
    pub threshold: usize,
    /// Retained for API compatibility; the join engine always applies
    /// prefix + length filtering, so this flag no longer changes the
    /// execution path (and never changed results).
    pub use_prefix_filter: bool,
    cache: Arc<TokenCache>,
    validated: OnceLock<Result<(), String>>,
}

impl OverlapBlocker {
    /// Overlap blocker with the paper's normalization.
    pub fn new(
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
        threshold: usize,
    ) -> Self {
        OverlapBlocker {
            left_attr: left_attr.into(),
            right_attr: right_attr.into(),
            threshold,
            use_prefix_filter: false,
            cache: Arc::new(TokenCache::for_blocking()),
            validated: OnceLock::new(),
        }
    }

    /// Historical builder for the opt-in prefix-filter path; kept so
    /// existing call sites compile. The join engine filters always.
    pub fn with_prefix_filter(mut self) -> Self {
        self.use_prefix_filter = true;
        self
    }

    /// This blocker's join predicate, validated — for plan-level batching
    /// through [`block_specs`].
    pub fn join_spec(&self) -> Result<JoinSpec, BlockError> {
        self.ensure_valid()?;
        Ok(JoinSpec::overlap(self.threshold))
    }

    /// Shares a token cache with other blockers (builder style), so one
    /// blocking plan tokenizes each column once. The cache's normalizer
    /// replaces this blocker's default.
    pub fn with_cache(mut self, cache: Arc<TokenCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Parameter validation, memoized on first use.
    fn ensure_valid(&self) -> Result<(), BlockError> {
        self.validated
            .get_or_init(|| {
                if self.threshold == 0 {
                    Err("overlap threshold must be >= 1".to_string())
                } else {
                    Ok(())
                }
            })
            .clone()
            .map_err(BlockError::BadParameter)
    }
}

impl Blocker for OverlapBlocker {
    fn name(&self) -> String {
        format!("overlap({},{},K={})", self.left_attr, self.right_attr, self.threshold)
    }

    fn accepts(&self, a: RowRef<'_>, b: RowRef<'_>) -> Result<bool, BlockError> {
        self.ensure_valid()?;
        require_attr(a, &self.left_attr)?;
        require_attr(b, &self.right_attr)?;
        let ta = self.cache.token_ids(a.str(&self.left_attr));
        let tb = self.cache.token_ids(b.str(&self.right_attr));
        Ok(overlap_size_sorted(&ta, &tb) >= self.threshold)
    }

    fn block(&self, a: &Table, b: &Table) -> Result<CandidateSet, BlockError> {
        let spec = self.join_spec()?;
        block_via_join(&self.cache, a, &self.left_attr, b, &self.right_attr, &spec, &self.name())
    }

    fn block_candidates(
        &self,
        a: &Table,
        b: &Table,
        candidates: &CandidateSet,
    ) -> Result<CandidateSet, BlockError> {
        self.ensure_valid()?;
        a.schema().require(&self.left_attr)?;
        b.schema().require(&self.right_attr)?;
        let list: Vec<Pair> = candidates.to_vec();
        let (lt, rt) =
            pair_tokens(&self.cache, a, &self.left_attr, b, &self.right_attr, &list)?;
        let k = self.threshold;
        let flags = Executor::current().map_slice(&list, PAIR_GRAIN, |p| {
            overlap_size_sorted(&lt[&p.left], &rt[&p.right]) >= k
        });
        let tag = self.name();
        let mut out = CandidateSet::new(tag.clone());
        for (pair, ok) in list.iter().zip(flags) {
            if ok {
                out.add(*pair, &tag);
            }
        }
        Ok(out)
    }
}

fn require_attr(r: RowRef<'_>, attr: &str) -> Result<(), BlockError> {
    if r.schema().contains(attr) {
        Ok(())
    } else {
        Err(BlockError::Table(em_table::TableError::NoSuchColumn(attr.to_string())))
    }
}

/// Set-similarity blocker over word tokens: admit `(a, b)` iff
/// `measure(tokens_a, tokens_b) >= threshold`. Backs both the
/// overlap-coefficient blocker (Section 7, step 3; threshold 0.7) and the
/// Jaccard blocker of footnote 2.
#[derive(Debug, Clone)]
pub struct SetSimBlocker {
    /// Blocking attribute in the left table.
    pub left_attr: String,
    /// Blocking attribute in the right table.
    pub right_attr: String,
    /// Which set measure to threshold.
    pub measure: SetMeasure,
    /// Admission threshold in `(0, 1]`.
    pub threshold: f64,
    cache: Arc<TokenCache>,
    validated: OnceLock<Result<(), String>>,
}

/// The set measure a [`SetSimBlocker`] thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetMeasure {
    /// `|A∩B| / min(|A|,|B|)`.
    OverlapCoefficient,
    /// `|A∩B| / |A∪B|`.
    Jaccard,
}

impl SetMeasure {
    /// The measure's value from intersection and set sizes — shared with
    /// [`crate::incremental::IncrementalIndex`] so index probes reproduce
    /// blocker arithmetic bit for bit.
    pub(crate) fn score(self, inter: usize, na: usize, nb: usize) -> f64 {
        match self {
            SetMeasure::OverlapCoefficient => inter as f64 / na.min(nb) as f64,
            SetMeasure::Jaccard => inter as f64 / (na + nb - inter) as f64,
        }
    }
}

impl SetSimBlocker {
    /// The paper's overlap-coefficient blocker (threshold 0.7 over
    /// normalized word tokens).
    pub fn overlap_coefficient(
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
        threshold: f64,
    ) -> Self {
        SetSimBlocker {
            left_attr: left_attr.into(),
            right_attr: right_attr.into(),
            measure: SetMeasure::OverlapCoefficient,
            threshold,
            cache: Arc::new(TokenCache::for_blocking()),
            validated: OnceLock::new(),
        }
    }

    /// Jaccard blocker over word tokens.
    pub fn jaccard(
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
        threshold: f64,
    ) -> Self {
        SetSimBlocker {
            left_attr: left_attr.into(),
            right_attr: right_attr.into(),
            measure: SetMeasure::Jaccard,
            threshold,
            cache: Arc::new(TokenCache::for_blocking()),
            validated: OnceLock::new(),
        }
    }

    /// Shares a token cache with other blockers (builder style).
    pub fn with_cache(mut self, cache: Arc<TokenCache>) -> Self {
        self.cache = cache;
        self
    }

    /// This blocker's join predicate, validated — for plan-level batching
    /// through [`block_specs`].
    pub fn join_spec(&self) -> Result<JoinSpec, BlockError> {
        self.ensure_valid()?;
        Ok(JoinSpec::set_sim(self.measure, self.threshold))
    }

    /// Parameter validation, memoized on first use.
    fn ensure_valid(&self) -> Result<(), BlockError> {
        self.validated
            .get_or_init(|| {
                if self.threshold > 0.0 && self.threshold <= 1.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "set-similarity threshold must be in (0, 1], got {}",
                        self.threshold
                    ))
                }
            })
            .clone()
            .map_err(BlockError::BadParameter)
    }
}

impl Blocker for SetSimBlocker {
    fn name(&self) -> String {
        let m = match self.measure {
            SetMeasure::OverlapCoefficient => "oc",
            SetMeasure::Jaccard => "jac",
        };
        format!("{m}({},{},t={})", self.left_attr, self.right_attr, self.threshold)
    }

    fn accepts(&self, a: RowRef<'_>, b: RowRef<'_>) -> Result<bool, BlockError> {
        self.ensure_valid()?;
        require_attr(a, &self.left_attr)?;
        require_attr(b, &self.right_attr)?;
        let ta = self.cache.token_ids(a.str(&self.left_attr));
        let tb = self.cache.token_ids(b.str(&self.right_attr));
        if ta.is_empty() || tb.is_empty() {
            return Ok(false); // missing titles cannot be admitted by similarity
        }
        let inter = overlap_size_sorted(&ta, &tb);
        Ok(self.measure.score(inter, ta.len(), tb.len()) >= self.threshold)
    }

    fn block(&self, a: &Table, b: &Table) -> Result<CandidateSet, BlockError> {
        let spec = self.join_spec()?;
        block_via_join(&self.cache, a, &self.left_attr, b, &self.right_attr, &spec, &self.name())
    }

    fn block_candidates(
        &self,
        a: &Table,
        b: &Table,
        candidates: &CandidateSet,
    ) -> Result<CandidateSet, BlockError> {
        self.ensure_valid()?;
        a.schema().require(&self.left_attr)?;
        b.schema().require(&self.right_attr)?;
        let list: Vec<Pair> = candidates.to_vec();
        let (lt, rt) =
            pair_tokens(&self.cache, a, &self.left_attr, b, &self.right_attr, &list)?;
        let threshold = self.threshold;
        let measure = self.measure;
        let flags = Executor::current().map_slice(&list, PAIR_GRAIN, |p| {
            let (ta, tb) = (&lt[&p.left], &rt[&p.right]);
            if ta.is_empty() || tb.is_empty() {
                return false;
            }
            measure.score(overlap_size_sorted(ta, tb), ta.len(), tb.len()) >= threshold
        });
        let tag = self.name();
        let mut out = CandidateSet::new(tag.clone());
        for (pair, ok) in list.iter().zip(flags) {
            if ok {
                out.add(*pair, &tag);
            }
        }
        Ok(out)
    }
}

/// Black-box blocker: admit `(a, b)` iff a user predicate says so. This is
/// how ad-hoc rules (like M1's suffix-equality pre-check) enter the blocking
/// pipeline.
pub struct BlackboxBlocker<F> {
    label: String,
    predicate: F,
}

impl<F> BlackboxBlocker<F>
where
    F: Fn(RowRef<'_>, RowRef<'_>) -> bool,
{
    /// Wraps a predicate with a provenance label.
    pub fn new(label: impl Into<String>, predicate: F) -> Self {
        BlackboxBlocker { label: label.into(), predicate }
    }
}

impl<F> Blocker for BlackboxBlocker<F>
where
    F: Fn(RowRef<'_>, RowRef<'_>) -> bool,
{
    fn name(&self) -> String {
        self.label.clone()
    }

    fn accepts(&self, a: RowRef<'_>, b: RowRef<'_>) -> Result<bool, BlockError> {
        Ok((self.predicate)(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_table::csv::read_str;

    fn left() -> Table {
        read_str(
            "A",
            "AwardNumber,AwardTitle\n\
             2008-34103-19449,DEVELOPMENT OF IPM-BASED CORN FUNGICIDE GUIDELINES\n\
             WIS01040,SWAMP DODDER APPLIED ECOLOGY AND MANAGEMENT\n\
             WIS04059,Lab Supplies\n\
             ,Genetic Organization of Maize R Genes\n",
        )
        .unwrap()
    }

    fn right() -> Table {
        read_str(
            "B",
            "AwardNumber,AwardTitle\n\
             2008-34103-19449,Development of IPM-Based Corn Fungicide Guidelines\n\
             ,Swamp Dodder Applied Ecology and Management in Carrot Production\n\
             WIS99999,Lab Supplies\n\
             ,Unrelated Title Entirely Different Words\n",
        )
        .unwrap()
    }

    #[test]
    fn ae_blocker_joins_on_equality() {
        let b = AttrEquivalenceBlocker::new("AwardNumber", "AwardNumber");
        let c = b.block(&left(), &right()).unwrap();
        assert_eq!(c.len(), 1);
        assert!(c.contains(&Pair::new(0, 0)));
    }

    #[test]
    fn ae_blocker_skips_nulls() {
        let a = read_str("A", "K\n\n\n").unwrap();
        let b2 = read_str("B", "K\n\n\n").unwrap();
        let c = AttrEquivalenceBlocker::new("K", "K").block(&a, &b2).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn ae_accepts_matches_block() {
        let (a, b) = (left(), right());
        let blocker = AttrEquivalenceBlocker::new("AwardNumber", "AwardNumber");
        let c = blocker.block(&a, &b).unwrap();
        for i in 0..a.n_rows() {
            for j in 0..b.n_rows() {
                let acc =
                    blocker.accepts(a.row(i).unwrap(), b.row(j).unwrap()).unwrap();
                assert_eq!(acc, c.contains(&Pair::new(i, j)), "({i},{j})");
            }
        }
    }

    #[test]
    fn overlap_blocker_thresholds_shared_tokens() {
        let b = OverlapBlocker::new("AwardTitle", "AwardTitle", 3);
        let c = b.block(&left(), &right()).unwrap();
        assert!(c.contains(&Pair::new(0, 0)), "fungicide titles share >= 3 tokens");
        assert!(c.contains(&Pair::new(1, 1)), "dodder titles share >= 3 tokens");
        assert!(!c.contains(&Pair::new(2, 2)), "'lab supplies' shares only 2 tokens");
        assert!(!c.contains(&Pair::new(0, 3)));
    }

    #[test]
    fn overlap_blocker_filter_matches_unfiltered() {
        let (a, b) = (left(), right());
        for k in 1..=4 {
            let fast = OverlapBlocker::new("AwardTitle", "AwardTitle", k).with_prefix_filter();
            let slow = OverlapBlocker::new("AwardTitle", "AwardTitle", k);
            let cf = fast.block(&a, &b).unwrap();
            let cs = slow.block(&a, &b).unwrap();
            assert_eq!(cf.to_vec(), cs.to_vec(), "K={k}");
        }
    }

    #[test]
    fn overlap_blocker_case_insensitive_via_normalizer() {
        // Same title, different case: must be admitted (normalizer lowercases).
        let b = OverlapBlocker::new("AwardTitle", "AwardTitle", 3);
        let c = b.block(&left(), &right()).unwrap();
        assert!(c.contains(&Pair::new(0, 0)));
    }

    #[test]
    fn overlap_rejects_zero_threshold() {
        let b = OverlapBlocker::new("AwardTitle", "AwardTitle", 0);
        assert!(b.block(&left(), &right()).is_err());
        // accepts must reject too (validated once, still surfaced per call).
        let (a, t) = (left(), right());
        assert!(b.accepts(a.row(0).unwrap(), t.row(0).unwrap()).is_err());
    }

    #[test]
    fn oc_blocker_admits_short_titles() {
        // "Lab Supplies" vs "Lab Supplies": 2 shared / min 2 = 1.0 ≥ 0.7,
        // exactly the case the overlap blocker with K=3 misses.
        let b = SetSimBlocker::overlap_coefficient("AwardTitle", "AwardTitle", 0.7);
        let c = b.block(&left(), &right()).unwrap();
        assert!(c.contains(&Pair::new(2, 2)));
        assert!(!c.contains(&Pair::new(3, 3)));
    }

    #[test]
    fn oc_blocker_accepts_agrees_with_block() {
        let (a, b) = (left(), right());
        let blocker = SetSimBlocker::overlap_coefficient("AwardTitle", "AwardTitle", 0.7);
        let c = blocker.block(&a, &b).unwrap();
        for i in 0..a.n_rows() {
            for j in 0..b.n_rows() {
                let acc =
                    blocker.accepts(a.row(i).unwrap(), b.row(j).unwrap()).unwrap();
                assert_eq!(acc, c.contains(&Pair::new(i, j)), "({i},{j})");
            }
        }
    }

    #[test]
    fn jaccard_blocker_thresholds() {
        let b = SetSimBlocker::jaccard("AwardTitle", "AwardTitle", 0.5);
        let c = b.block(&left(), &right()).unwrap();
        assert!(c.contains(&Pair::new(2, 2)));
        assert!(!c.contains(&Pair::new(1, 3)));
    }

    #[test]
    fn setsim_threshold_validation() {
        for t in [0.0, -0.5, 1.5] {
            let b = SetSimBlocker::jaccard("AwardTitle", "AwardTitle", t);
            assert!(b.block(&left(), &right()).is_err(), "t={t}");
        }
    }

    #[test]
    fn blackbox_blocker_runs_predicate() {
        let blocker = BlackboxBlocker::new("same-prefix", |a: RowRef<'_>, b: RowRef<'_>| {
            match (a.str("AwardNumber"), b.str("AwardNumber")) {
                (Some(x), Some(y)) => x.get(..3) == y.get(..3),
                _ => false,
            }
        });
        let c = blocker.block(&left(), &right()).unwrap();
        assert!(c.contains(&Pair::new(0, 0)));
        assert!(c.contains(&Pair::new(1, 2))); // WIS vs WIS
        assert!(c.contains(&Pair::new(2, 2)));
    }

    #[test]
    fn block_candidates_composes() {
        let (a, b) = (left(), right());
        let wide = OverlapBlocker::new("AwardTitle", "AwardTitle", 1).block(&a, &b).unwrap();
        let narrow = OverlapBlocker::new("AwardTitle", "AwardTitle", 3);
        let refined = narrow.block_candidates(&a, &b, &wide).unwrap();
        let direct = narrow.block(&a, &b).unwrap();
        assert_eq!(refined.to_vec(), direct.to_vec());
    }

    #[test]
    fn setsim_block_candidates_composes() {
        let (a, b) = (left(), right());
        let wide = OverlapBlocker::new("AwardTitle", "AwardTitle", 1).block(&a, &b).unwrap();
        let oc = SetSimBlocker::overlap_coefficient("AwardTitle", "AwardTitle", 0.7);
        let refined = oc.block_candidates(&a, &b, &wide).unwrap();
        for p in refined.iter() {
            assert!(oc.accepts(a.row(p.left).unwrap(), b.row(p.right).unwrap()).unwrap());
        }
        // Every directly-blocked pair that survives the wide set appears.
        let direct = oc.block(&a, &b).unwrap();
        for p in direct.iter() {
            if wide.contains(&p) {
                assert!(refined.contains(&p));
            }
        }
    }

    #[test]
    fn shared_cache_reproduces_unshared_results() {
        let (a, b) = (left(), right());
        let cache = Arc::new(TokenCache::for_blocking());
        let shared2 = OverlapBlocker::new("AwardTitle", "AwardTitle", 3)
            .with_cache(Arc::clone(&cache));
        let shared3 = SetSimBlocker::overlap_coefficient("AwardTitle", "AwardTitle", 0.7)
            .with_cache(Arc::clone(&cache));
        let own2 = OverlapBlocker::new("AwardTitle", "AwardTitle", 3);
        let own3 = SetSimBlocker::overlap_coefficient("AwardTitle", "AwardTitle", 0.7);
        assert_eq!(shared2.block(&a, &b).unwrap().to_vec(), own2.block(&a, &b).unwrap().to_vec());
        assert_eq!(shared3.block(&a, &b).unwrap().to_vec(), own3.block(&a, &b).unwrap().to_vec());
    }

    #[test]
    fn block_is_thread_count_invariant() {
        let (a, b) = (left(), right());
        let blocker = OverlapBlocker::new("AwardTitle", "AwardTitle", 2);
        let baseline = Executor::new(1); // document the executor is in play
        assert_eq!(baseline.threads(), 1);
        let c1 = blocker.block(&a, &b).unwrap();
        em_parallel::set_threads(4);
        let c4 = blocker.block(&a, &b).unwrap();
        em_parallel::set_threads(0);
        assert_eq!(c1.to_vec(), c4.to_vec());
    }

    #[test]
    fn missing_column_is_reported() {
        let b = OverlapBlocker::new("Nope", "AwardTitle", 2);
        assert!(matches!(b.block(&left(), &right()), Err(BlockError::Table(_))));
    }
}
