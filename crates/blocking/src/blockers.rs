//! The blockers of Section 7: attribute equivalence, token overlap,
//! overlap coefficient — plus a Jaccard blocker (used in the paper's
//! footnote 2 to audit short titles) and a black-box predicate blocker.
//!
//! Every blocker exposes both table-level [`Blocker::block`] (efficient,
//! index-based where possible) and pair-level [`Blocker::accepts`] (used to
//! re-check single pairs and to filter an existing candidate set with
//! [`Blocker::block_candidates`], PyMatcher's `block_candset`).

use crate::candidate::{CandidateSet, Pair};
use crate::error::BlockError;
use em_table::{RowRef, Table};
use em_text::tokenize::{AlphanumericTokenizer, Tokenizer};
use em_text::Normalizer;
use std::collections::{HashMap, HashSet};

/// A blocking scheme over two tables.
pub trait Blocker {
    /// Short, stable name used as the provenance tag of admitted pairs.
    fn name(&self) -> String;

    /// Pair-level semantics: would this blocker admit `(a, b)`?
    fn accepts(&self, a: RowRef<'_>, b: RowRef<'_>) -> Result<bool, BlockError>;

    /// Blocks two whole tables. The default scans the Cartesian product
    /// with [`accepts`](Self::accepts); index-based blockers override it.
    fn block(&self, a: &Table, b: &Table) -> Result<CandidateSet, BlockError> {
        let mut out = CandidateSet::new(self.name());
        let tag = self.name();
        for (i, ra) in a.iter().enumerate() {
            for (j, rb) in b.iter().enumerate() {
                if self.accepts(ra, rb)? {
                    out.add(Pair::new(i, j), &tag);
                }
            }
        }
        Ok(out)
    }

    /// Filters an existing candidate set down to the pairs this blocker
    /// also admits (sequential blocker composition).
    fn block_candidates(
        &self,
        a: &Table,
        b: &Table,
        candidates: &CandidateSet,
    ) -> Result<CandidateSet, BlockError> {
        let mut out = CandidateSet::new(self.name());
        let tag = self.name();
        for pair in candidates.iter() {
            let (ra, rb) = rows(a, b, pair)?;
            if self.accepts(ra, rb)? {
                out.add(pair, &tag);
            }
        }
        Ok(out)
    }
}

fn rows<'t>(a: &'t Table, b: &'t Table, pair: Pair) -> Result<(RowRef<'t>, RowRef<'t>), BlockError> {
    let ra = a.row(pair.left).ok_or_else(|| {
        BlockError::BadParameter(format!("pair references row {} past table A", pair.left))
    })?;
    let rb = b.row(pair.right).ok_or_else(|| {
        BlockError::BadParameter(format!("pair references row {} past table B", pair.right))
    })?;
    Ok((ra, rb))
}

/// Attribute-equivalence blocker: admit `(a, b)` iff the (non-null) blocking
/// attributes agree exactly. Table-level blocking is a hash join.
#[derive(Debug, Clone)]
pub struct AttrEquivalenceBlocker {
    /// Blocking attribute in the left table.
    pub left_attr: String,
    /// Blocking attribute in the right table.
    pub right_attr: String,
}

impl AttrEquivalenceBlocker {
    /// Creates the blocker.
    pub fn new(left_attr: impl Into<String>, right_attr: impl Into<String>) -> Self {
        AttrEquivalenceBlocker { left_attr: left_attr.into(), right_attr: right_attr.into() }
    }
}

impl Blocker for AttrEquivalenceBlocker {
    fn name(&self) -> String {
        format!("ae({}={})", self.left_attr, self.right_attr)
    }

    fn accepts(&self, a: RowRef<'_>, b: RowRef<'_>) -> Result<bool, BlockError> {
        let va = a
            .get(&self.left_attr)
            .ok_or_else(|| BlockError::Table(em_table::TableError::NoSuchColumn(self.left_attr.clone())))?;
        let vb = b
            .get(&self.right_attr)
            .ok_or_else(|| BlockError::Table(em_table::TableError::NoSuchColumn(self.right_attr.clone())))?;
        Ok(!va.is_null() && !vb.is_null() && va.dedup_key() == vb.dedup_key())
    }

    fn block(&self, a: &Table, b: &Table) -> Result<CandidateSet, BlockError> {
        a.schema().require(&self.left_attr)?;
        b.schema().require(&self.right_attr)?;
        let tag = self.name();
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (j, rb) in b.iter().enumerate() {
            let Some(v) = rb.get(&self.right_attr) else { continue };
            if !v.is_null() {
                index.entry(v.dedup_key()).or_default().push(j);
            }
        }
        let mut out = CandidateSet::new(tag.clone());
        for (i, ra) in a.iter().enumerate() {
            let Some(v) = ra.get(&self.left_attr) else { continue };
            if v.is_null() {
                continue;
            }
            if let Some(js) = index.get(&v.dedup_key()) {
                for &j in js {
                    out.add(Pair::new(i, j), &tag);
                }
            }
        }
        Ok(out)
    }
}

/// Shared tokenization used by the token blockers: normalize then word
/// tokenize, returning the *distinct* token set.
fn distinct_tokens(text: Option<&str>, normalizer: &Normalizer) -> Vec<String> {
    let Some(text) = text else { return Vec::new() };
    let toks = AlphanumericTokenizer.tokenize(&normalizer.apply(text));
    let mut seen = HashSet::with_capacity(toks.len());
    toks.into_iter().filter(|t| seen.insert(t.clone())).collect()
}

/// Orders tokens by ascending global frequency (rarest first), lexical tie
/// break — the canonical order prefix filtering requires. Keys borrow from
/// the token lists, so no strings are copied.
fn canonical_ranks<'a>(token_lists: &[&'a [String]]) -> HashMap<&'a str, usize> {
    let mut freq: HashMap<&str, usize> = HashMap::new();
    for list in token_lists {
        for t in *list {
            *freq.entry(t).or_insert(0) += 1;
        }
    }
    let mut order: Vec<(&str, usize)> = freq.into_iter().collect();
    order.sort_unstable_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
    order.into_iter().enumerate().map(|(rank, (tok, _))| (tok, rank)).collect()
}

/// Token-overlap blocker: admit `(a, b)` iff the blocking attributes share
/// at least `threshold` distinct word tokens (Section 7, step 2; the paper
/// used threshold 3 after sweeping 1 and 7).
///
/// Table-level blocking uses an inverted index; with
/// `use_prefix_filter = true` only each record's canonical prefix
/// (`n − K + 1` rarest tokens) is indexed/probed, then survivors are
/// verified exactly — the "string filtering techniques" of footnote 4.
#[derive(Debug, Clone)]
pub struct OverlapBlocker {
    /// Blocking attribute in the left table.
    pub left_attr: String,
    /// Blocking attribute in the right table.
    pub right_attr: String,
    /// Minimum number of shared distinct tokens (≥ 1).
    pub threshold: usize,
    /// Normalization applied before tokenizing.
    pub normalizer: Normalizer,
    /// Enable prefix filtering.
    pub use_prefix_filter: bool,
}

impl OverlapBlocker {
    /// Overlap blocker with the paper's normalization. Prefix filtering is
    /// off by default: at low thresholds over short titles the canonical
    /// prefix covers almost every token, so the filter generates nearly as
    /// many candidates as the plain inverted index while paying an extra
    /// verification pass (measured in `bench_blocking`; see EXPERIMENTS.md
    /// ablation A-3). Enable it for high thresholds on long token lists.
    pub fn new(
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
        threshold: usize,
    ) -> Self {
        OverlapBlocker {
            left_attr: left_attr.into(),
            right_attr: right_attr.into(),
            threshold,
            normalizer: Normalizer::for_blocking(),
            use_prefix_filter: false,
        }
    }

    /// Enables canonical prefix filtering (builder style).
    pub fn with_prefix_filter(mut self) -> Self {
        self.use_prefix_filter = true;
        self
    }

    fn check_params(&self) -> Result<(), BlockError> {
        if self.threshold == 0 {
            return Err(BlockError::BadParameter(
                "overlap threshold must be >= 1".to_string(),
            ));
        }
        Ok(())
    }
}

impl Blocker for OverlapBlocker {
    fn name(&self) -> String {
        format!("overlap({},{},K={})", self.left_attr, self.right_attr, self.threshold)
    }

    fn accepts(&self, a: RowRef<'_>, b: RowRef<'_>) -> Result<bool, BlockError> {
        self.check_params()?;
        require_attr(a, &self.left_attr)?;
        require_attr(b, &self.right_attr)?;
        let ta = distinct_tokens(a.str(&self.left_attr), &self.normalizer);
        let tb = distinct_tokens(b.str(&self.right_attr), &self.normalizer);
        Ok(em_text::set::overlap_size(&ta, &tb) >= self.threshold)
    }

    fn block(&self, a: &Table, b: &Table) -> Result<CandidateSet, BlockError> {
        self.check_params()?;
        a.schema().require(&self.left_attr)?;
        b.schema().require(&self.right_attr)?;
        let tag = self.name();
        let k = self.threshold;

        let left_tokens: Vec<Vec<String>> = a
            .iter()
            .map(|r| distinct_tokens(r.str(&self.left_attr), &self.normalizer))
            .collect();
        let right_tokens: Vec<Vec<String>> = b
            .iter()
            .map(|r| distinct_tokens(r.str(&self.right_attr), &self.normalizer))
            .collect();

        let mut out = CandidateSet::new(tag.clone());
        if self.use_prefix_filter {
            // Canonical order: rarest token first. Ranks borrow from the
            // token lists; records are re-ordered in place as index lists.
            let all: Vec<&[String]> = left_tokens
                .iter()
                .map(Vec::as_slice)
                .chain(right_tokens.iter().map(Vec::as_slice))
                .collect();
            let ranks = canonical_ranks(&all);
            fn sorted_refs<'t>(
                toks: &'t [String],
                ranks: &HashMap<&str, usize>,
            ) -> Vec<&'t str> {
                let mut v: Vec<&str> = toks.iter().map(String::as_str).collect();
                v.sort_unstable_by_key(|t| ranks[*t]);
                v
            }

            // Right side: pre-sorted token refs, prefix index, and hash
            // sets for O(1) verification probes.
            let right_sets: Vec<HashSet<&str>> = right_tokens
                .iter()
                .map(|toks| toks.iter().map(String::as_str).collect())
                .collect();
            let mut index: HashMap<&str, Vec<usize>> = HashMap::new();
            for (j, toks) in right_tokens.iter().enumerate() {
                if toks.len() < k {
                    continue; // cannot reach K distinct shared tokens
                }
                let sorted = sorted_refs(toks, &ranks);
                for t in &sorted[..sorted.len() - k + 1] {
                    index.entry(t).or_default().push(j);
                }
            }
            for (i, toks) in left_tokens.iter().enumerate() {
                if toks.len() < k {
                    continue;
                }
                let sorted = sorted_refs(toks, &ranks);
                let mut seen: HashSet<usize> = HashSet::new();
                for t in &sorted[..sorted.len() - k + 1] {
                    if let Some(js) = index.get(t) {
                        seen.extend(js.iter().copied());
                    }
                }
                for j in seen {
                    // Verify: count left tokens present in the right set.
                    let overlap =
                        toks.iter().filter(|t| right_sets[j].contains(t.as_str())).count();
                    if overlap >= k {
                        out.add(Pair::new(i, j), &tag);
                    }
                }
            }
        } else {
            // Exact counting over a full inverted index: since token lists
            // are distinct per record, per-pair counts equal the overlap.
            let mut index: HashMap<&str, Vec<usize>> = HashMap::new();
            for (j, toks) in right_tokens.iter().enumerate() {
                for t in toks {
                    index.entry(t).or_default().push(j);
                }
            }
            for (i, toks) in left_tokens.iter().enumerate() {
                let mut counts: HashMap<usize, usize> = HashMap::new();
                for t in toks {
                    if let Some(js) = index.get(t.as_str()) {
                        for &j in js {
                            *counts.entry(j).or_insert(0) += 1;
                        }
                    }
                }
                for (j, c) in counts {
                    if c >= k {
                        out.add(Pair::new(i, j), &tag);
                    }
                }
            }
        }
        Ok(out)
    }
}

fn require_attr(r: RowRef<'_>, attr: &str) -> Result<(), BlockError> {
    if r.schema().contains(attr) {
        Ok(())
    } else {
        Err(BlockError::Table(em_table::TableError::NoSuchColumn(attr.to_string())))
    }
}

/// Set-similarity blocker over word tokens: admit `(a, b)` iff
/// `measure(tokens_a, tokens_b) >= threshold`. Backs both the
/// overlap-coefficient blocker (Section 7, step 3; threshold 0.7) and the
/// Jaccard blocker of footnote 2.
#[derive(Debug, Clone)]
pub struct SetSimBlocker {
    /// Blocking attribute in the left table.
    pub left_attr: String,
    /// Blocking attribute in the right table.
    pub right_attr: String,
    /// Which set measure to threshold.
    pub measure: SetMeasure,
    /// Admission threshold in `(0, 1]`.
    pub threshold: f64,
    /// Normalization applied before tokenizing.
    pub normalizer: Normalizer,
}

/// The set measure a [`SetSimBlocker`] thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetMeasure {
    /// `|A∩B| / min(|A|,|B|)`.
    OverlapCoefficient,
    /// `|A∩B| / |A∪B|`.
    Jaccard,
}

impl SetSimBlocker {
    /// The paper's overlap-coefficient blocker (threshold 0.7 over
    /// normalized word tokens).
    pub fn overlap_coefficient(
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
        threshold: f64,
    ) -> Self {
        SetSimBlocker {
            left_attr: left_attr.into(),
            right_attr: right_attr.into(),
            measure: SetMeasure::OverlapCoefficient,
            threshold,
            normalizer: Normalizer::for_blocking(),
        }
    }

    /// Jaccard blocker over word tokens.
    pub fn jaccard(
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
        threshold: f64,
    ) -> Self {
        SetSimBlocker {
            left_attr: left_attr.into(),
            right_attr: right_attr.into(),
            measure: SetMeasure::Jaccard,
            threshold,
            normalizer: Normalizer::for_blocking(),
        }
    }

    fn check_params(&self) -> Result<(), BlockError> {
        if !(self.threshold > 0.0 && self.threshold <= 1.0) {
            return Err(BlockError::BadParameter(format!(
                "set-similarity threshold must be in (0, 1], got {}",
                self.threshold
            )));
        }
        Ok(())
    }

    fn score(&self, ta: &[String], tb: &[String]) -> f64 {
        match self.measure {
            SetMeasure::OverlapCoefficient => em_text::set::overlap_coefficient(ta, tb),
            SetMeasure::Jaccard => em_text::set::jaccard(ta, tb),
        }
    }
}

impl Blocker for SetSimBlocker {
    fn name(&self) -> String {
        let m = match self.measure {
            SetMeasure::OverlapCoefficient => "oc",
            SetMeasure::Jaccard => "jac",
        };
        format!("{m}({},{},t={})", self.left_attr, self.right_attr, self.threshold)
    }

    fn accepts(&self, a: RowRef<'_>, b: RowRef<'_>) -> Result<bool, BlockError> {
        self.check_params()?;
        require_attr(a, &self.left_attr)?;
        require_attr(b, &self.right_attr)?;
        let ta = distinct_tokens(a.str(&self.left_attr), &self.normalizer);
        let tb = distinct_tokens(b.str(&self.right_attr), &self.normalizer);
        if ta.is_empty() || tb.is_empty() {
            return Ok(false); // missing titles cannot be admitted by similarity
        }
        Ok(self.score(&ta, &tb) >= self.threshold)
    }

    fn block(&self, a: &Table, b: &Table) -> Result<CandidateSet, BlockError> {
        self.check_params()?;
        a.schema().require(&self.left_attr)?;
        b.schema().require(&self.right_attr)?;
        let tag = self.name();
        let left_tokens: Vec<Vec<String>> = a
            .iter()
            .map(|r| distinct_tokens(r.str(&self.left_attr), &self.normalizer))
            .collect();
        let right_tokens: Vec<Vec<String>> = b
            .iter()
            .map(|r| distinct_tokens(r.str(&self.right_attr), &self.normalizer))
            .collect();
        let mut index: HashMap<&str, Vec<usize>> = HashMap::new();
        for (j, toks) in right_tokens.iter().enumerate() {
            for t in toks {
                index.entry(t).or_default().push(j);
            }
        }
        let mut out = CandidateSet::new(tag.clone());
        for (i, toks) in left_tokens.iter().enumerate() {
            if toks.is_empty() {
                continue;
            }
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for t in toks {
                if let Some(js) = index.get(t.as_str()) {
                    for &j in js {
                        *counts.entry(j).or_insert(0) += 1;
                    }
                }
            }
            for (j, inter) in counts {
                let (na, nb) = (toks.len(), right_tokens[j].len());
                let score = match self.measure {
                    SetMeasure::OverlapCoefficient => inter as f64 / na.min(nb) as f64,
                    SetMeasure::Jaccard => inter as f64 / (na + nb - inter) as f64,
                };
                if score >= self.threshold {
                    out.add(Pair::new(i, j), &tag);
                }
            }
        }
        Ok(out)
    }
}

/// Black-box blocker: admit `(a, b)` iff a user predicate says so. This is
/// how ad-hoc rules (like M1's suffix-equality pre-check) enter the blocking
/// pipeline.
pub struct BlackboxBlocker<F> {
    label: String,
    predicate: F,
}

impl<F> BlackboxBlocker<F>
where
    F: Fn(RowRef<'_>, RowRef<'_>) -> bool,
{
    /// Wraps a predicate with a provenance label.
    pub fn new(label: impl Into<String>, predicate: F) -> Self {
        BlackboxBlocker { label: label.into(), predicate }
    }
}

impl<F> Blocker for BlackboxBlocker<F>
where
    F: Fn(RowRef<'_>, RowRef<'_>) -> bool,
{
    fn name(&self) -> String {
        self.label.clone()
    }

    fn accepts(&self, a: RowRef<'_>, b: RowRef<'_>) -> Result<bool, BlockError> {
        Ok((self.predicate)(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_table::csv::read_str;

    fn left() -> Table {
        read_str(
            "A",
            "AwardNumber,AwardTitle\n\
             2008-34103-19449,DEVELOPMENT OF IPM-BASED CORN FUNGICIDE GUIDELINES\n\
             WIS01040,SWAMP DODDER APPLIED ECOLOGY AND MANAGEMENT\n\
             WIS04059,Lab Supplies\n\
             ,Genetic Organization of Maize R Genes\n",
        )
        .unwrap()
    }

    fn right() -> Table {
        read_str(
            "B",
            "AwardNumber,AwardTitle\n\
             2008-34103-19449,Development of IPM-Based Corn Fungicide Guidelines\n\
             ,Swamp Dodder Applied Ecology and Management in Carrot Production\n\
             WIS99999,Lab Supplies\n\
             ,Unrelated Title Entirely Different Words\n",
        )
        .unwrap()
    }

    #[test]
    fn ae_blocker_joins_on_equality() {
        let b = AttrEquivalenceBlocker::new("AwardNumber", "AwardNumber");
        let c = b.block(&left(), &right()).unwrap();
        assert_eq!(c.len(), 1);
        assert!(c.contains(&Pair::new(0, 0)));
    }

    #[test]
    fn ae_blocker_skips_nulls() {
        let a = read_str("A", "K\n\n\n").unwrap();
        let b2 = read_str("B", "K\n\n\n").unwrap();
        let c = AttrEquivalenceBlocker::new("K", "K").block(&a, &b2).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn ae_accepts_matches_block() {
        let (a, b) = (left(), right());
        let blocker = AttrEquivalenceBlocker::new("AwardNumber", "AwardNumber");
        let c = blocker.block(&a, &b).unwrap();
        for i in 0..a.n_rows() {
            for j in 0..b.n_rows() {
                let acc =
                    blocker.accepts(a.row(i).unwrap(), b.row(j).unwrap()).unwrap();
                assert_eq!(acc, c.contains(&Pair::new(i, j)), "({i},{j})");
            }
        }
    }

    #[test]
    fn overlap_blocker_thresholds_shared_tokens() {
        let b = OverlapBlocker::new("AwardTitle", "AwardTitle", 3);
        let c = b.block(&left(), &right()).unwrap();
        assert!(c.contains(&Pair::new(0, 0)), "fungicide titles share >= 3 tokens");
        assert!(c.contains(&Pair::new(1, 1)), "dodder titles share >= 3 tokens");
        assert!(!c.contains(&Pair::new(2, 2)), "'lab supplies' shares only 2 tokens");
        assert!(!c.contains(&Pair::new(0, 3)));
    }

    #[test]
    fn overlap_blocker_filter_matches_unfiltered() {
        let (a, b) = (left(), right());
        for k in 1..=4 {
            let fast = OverlapBlocker::new("AwardTitle", "AwardTitle", k).with_prefix_filter();
            let slow = OverlapBlocker::new("AwardTitle", "AwardTitle", k);
            let cf = fast.block(&a, &b).unwrap();
            let cs = slow.block(&a, &b).unwrap();
            assert_eq!(cf.to_vec(), cs.to_vec(), "K={k}");
        }
    }

    #[test]
    fn overlap_blocker_case_insensitive_via_normalizer() {
        // Same title, different case: must be admitted (normalizer lowercases).
        let b = OverlapBlocker::new("AwardTitle", "AwardTitle", 3);
        let c = b.block(&left(), &right()).unwrap();
        assert!(c.contains(&Pair::new(0, 0)));
    }

    #[test]
    fn overlap_rejects_zero_threshold() {
        let b = OverlapBlocker::new("AwardTitle", "AwardTitle", 0);
        assert!(b.block(&left(), &right()).is_err());
    }

    #[test]
    fn oc_blocker_admits_short_titles() {
        // "Lab Supplies" vs "Lab Supplies": 2 shared / min 2 = 1.0 ≥ 0.7,
        // exactly the case the overlap blocker with K=3 misses.
        let b = SetSimBlocker::overlap_coefficient("AwardTitle", "AwardTitle", 0.7);
        let c = b.block(&left(), &right()).unwrap();
        assert!(c.contains(&Pair::new(2, 2)));
        assert!(!c.contains(&Pair::new(3, 3)));
    }

    #[test]
    fn oc_blocker_accepts_agrees_with_block() {
        let (a, b) = (left(), right());
        let blocker = SetSimBlocker::overlap_coefficient("AwardTitle", "AwardTitle", 0.7);
        let c = blocker.block(&a, &b).unwrap();
        for i in 0..a.n_rows() {
            for j in 0..b.n_rows() {
                let acc =
                    blocker.accepts(a.row(i).unwrap(), b.row(j).unwrap()).unwrap();
                assert_eq!(acc, c.contains(&Pair::new(i, j)), "({i},{j})");
            }
        }
    }

    #[test]
    fn jaccard_blocker_thresholds() {
        let b = SetSimBlocker::jaccard("AwardTitle", "AwardTitle", 0.5);
        let c = b.block(&left(), &right()).unwrap();
        assert!(c.contains(&Pair::new(2, 2)));
        assert!(!c.contains(&Pair::new(1, 3)));
    }

    #[test]
    fn setsim_threshold_validation() {
        for t in [0.0, -0.5, 1.5] {
            let b = SetSimBlocker::jaccard("AwardTitle", "AwardTitle", t);
            assert!(b.block(&left(), &right()).is_err(), "t={t}");
        }
    }

    #[test]
    fn blackbox_blocker_runs_predicate() {
        let blocker = BlackboxBlocker::new("same-prefix", |a: RowRef<'_>, b: RowRef<'_>| {
            match (a.str("AwardNumber"), b.str("AwardNumber")) {
                (Some(x), Some(y)) => x.get(..3) == y.get(..3),
                _ => false,
            }
        });
        let c = blocker.block(&left(), &right()).unwrap();
        assert!(c.contains(&Pair::new(0, 0)));
        assert!(c.contains(&Pair::new(1, 2))); // WIS vs WIS
        assert!(c.contains(&Pair::new(2, 2)));
    }

    #[test]
    fn block_candidates_composes() {
        let (a, b) = (left(), right());
        let wide = OverlapBlocker::new("AwardTitle", "AwardTitle", 1).block(&a, &b).unwrap();
        let narrow = OverlapBlocker::new("AwardTitle", "AwardTitle", 3);
        let refined = narrow.block_candidates(&a, &b, &wide).unwrap();
        let direct = narrow.block(&a, &b).unwrap();
        assert_eq!(refined.to_vec(), direct.to_vec());
    }

    #[test]
    fn missing_column_is_reported() {
        let b = OverlapBlocker::new("Nope", "AwardTitle", 2);
        assert!(matches!(b.block(&left(), &right()), Err(BlockError::Table(_))));
    }
}
