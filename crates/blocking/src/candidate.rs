//! Candidate sets: pairs of record indices that survive blocking, with
//! provenance recording *which* blocker or rule admitted each pair.
//!
//! Section 7 manipulates candidate sets as first-class values — `C1 ∪ C2 ∪
//! C3`, `C2 ∩ C3`, `C2 − C3`, `C2 − C1` — and Section 10's workflow patching
//! subtracts sure matches from candidate sets. [`CandidateSet`] supports
//! exactly that algebra, keeping pairs deduplicated and provenance merged.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// A pair of row indices: `left` into table A, `right` into table B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pair {
    /// Row index into the left table.
    pub left: usize,
    /// Row index into the right table.
    pub right: usize,
}

impl Pair {
    /// Creates a pair.
    pub fn new(left: usize, right: usize) -> Pair {
        Pair { left, right }
    }
}

/// An ordered, deduplicated set of candidate pairs with provenance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CandidateSet {
    name: String,
    pairs: BTreeMap<Pair, Vec<String>>,
}

impl CandidateSet {
    /// An empty candidate set.
    pub fn new(name: impl Into<String>) -> CandidateSet {
        CandidateSet { name: name.into(), pairs: BTreeMap::new() }
    }

    /// Builds a set from pairs, all attributed to `source`.
    pub fn from_pairs(
        name: impl Into<String>,
        pairs: impl IntoIterator<Item = Pair>,
        source: &str,
    ) -> CandidateSet {
        let mut c = CandidateSet::new(name);
        for p in pairs {
            c.add(p, source);
        }
        c
    }

    /// The set's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the set.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a pair with a provenance tag; duplicate (pair, tag) insertions
    /// are collapsed.
    pub fn add(&mut self, pair: Pair, source: &str) {
        match self.pairs.entry(pair) {
            Entry::Vacant(e) => {
                e.insert(vec![source.to_string()]);
            }
            Entry::Occupied(mut e) => {
                if !e.get().iter().any(|s| s == source) {
                    e.get_mut().push(source.to_string());
                }
            }
        }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, pair: &Pair) -> bool {
        self.pairs.contains_key(pair)
    }

    /// Iterates pairs in `(left, right)` order.
    pub fn iter(&self) -> impl Iterator<Item = Pair> + '_ {
        self.pairs.keys().copied()
    }

    /// The provenance tags of a pair, if present.
    pub fn provenance(&self, pair: &Pair) -> Option<&[String]> {
        self.pairs.get(pair).map(Vec::as_slice)
    }

    /// Union: pairs from either set, provenance merged.
    pub fn union(&self, other: &CandidateSet) -> CandidateSet {
        let mut out = self.clone();
        out.name = format!("{}∪{}", self.name, other.name);
        for (pair, sources) in &other.pairs {
            for s in sources {
                out.add(*pair, s);
            }
        }
        out
    }

    /// Intersection: pairs present in both, provenance merged from both.
    pub fn intersect(&self, other: &CandidateSet) -> CandidateSet {
        let mut out = CandidateSet::new(format!("{}∩{}", self.name, other.name));
        for (pair, sources) in &self.pairs {
            if let Some(other_sources) = other.pairs.get(pair) {
                for s in sources.iter().chain(other_sources) {
                    out.add(*pair, s);
                }
            }
        }
        out
    }

    /// Difference: pairs of `self` not in `other` (provenance kept).
    pub fn minus(&self, other: &CandidateSet) -> CandidateSet {
        let mut out = CandidateSet::new(format!("{}−{}", self.name, other.name));
        for (pair, sources) in &self.pairs {
            if !other.pairs.contains_key(pair) {
                for s in sources {
                    out.add(*pair, s);
                }
            }
        }
        out
    }

    /// The pairs as a plain vector.
    pub fn to_vec(&self) -> Vec<Pair> {
        self.pairs.keys().copied().collect()
    }
}

impl FromIterator<Pair> for CandidateSet {
    fn from_iter<T: IntoIterator<Item = Pair>>(iter: T) -> Self {
        CandidateSet::from_pairs("candidates", iter, "iter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(name: &str, pairs: &[(usize, usize)], src: &str) -> CandidateSet {
        CandidateSet::from_pairs(name, pairs.iter().map(|&(l, r)| Pair::new(l, r)), src)
    }

    #[test]
    fn add_dedups_pairs_and_sources() {
        let mut c = CandidateSet::new("c");
        c.add(Pair::new(1, 2), "ae");
        c.add(Pair::new(1, 2), "ae");
        c.add(Pair::new(1, 2), "overlap");
        assert_eq!(c.len(), 1);
        assert_eq!(c.provenance(&Pair::new(1, 2)).unwrap(), &["ae", "overlap"]);
    }

    #[test]
    fn union_matches_paper_algebra() {
        // Mirrors footnote 3: |C2|=3, |C3|=2, |C2∩C3|=1 → |C2∪C3|=4.
        let c2 = set("C2", &[(0, 0), (0, 1), (1, 1)], "overlap");
        let c3 = set("C3", &[(1, 1), (2, 2)], "oc");
        let u = c2.union(&c3);
        assert_eq!(u.len(), 4);
        assert_eq!(c2.intersect(&c3).len(), 1);
        assert_eq!(c2.minus(&c3).len(), 2);
        assert_eq!(c3.minus(&c2).len(), 1);
        // inclusion–exclusion
        assert_eq!(u.len(), c2.len() + c3.len() - c2.intersect(&c3).len());
    }

    #[test]
    fn union_merges_provenance() {
        let a = set("a", &[(5, 5)], "ae");
        let b = set("b", &[(5, 5)], "rule");
        let u = a.union(&b);
        assert_eq!(u.provenance(&Pair::new(5, 5)).unwrap(), &["ae", "rule"]);
    }

    #[test]
    fn minus_keeps_provenance() {
        let a = set("a", &[(1, 1), (2, 2)], "x");
        let b = set("b", &[(2, 2)], "y");
        let d = a.minus(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&Pair::new(1, 1)));
        assert_eq!(d.provenance(&Pair::new(1, 1)).unwrap(), &["x"]);
    }

    #[test]
    fn iter_is_ordered() {
        let c = set("c", &[(2, 0), (0, 5), (0, 1)], "s");
        let v = c.to_vec();
        assert_eq!(v, vec![Pair::new(0, 1), Pair::new(0, 5), Pair::new(2, 0)]);
    }

    #[test]
    fn empty_behaviour() {
        let e = CandidateSet::new("e");
        assert!(e.is_empty());
        let a = set("a", &[(1, 1)], "s");
        assert_eq!(a.union(&e).len(), 1);
        assert_eq!(a.intersect(&e).len(), 0);
        assert_eq!(a.minus(&e).len(), 1);
    }
}
