//! # em-blocking — blockers, candidate-set algebra, and the blocking debugger
//!
//! The blocking stage of the EM pipeline (Section 7 of the case study):
//!
//! - [`candidate::CandidateSet`]: deduplicated pairs with provenance, plus
//!   the union / intersection / difference algebra the paper's candidate-set
//!   accounting uses (`C = C1 ∪ C2 ∪ C3`, `C − sure matches`, …).
//! - [`blockers`]: attribute equivalence (hash join), token overlap,
//!   overlap-coefficient and Jaccard set-similarity blockers (all three
//!   token blockers run on the [`join`] engine), and a black-box predicate
//!   blocker.
//! - [`join`]: the batch set-similarity join — df-ordered, size-bucketed
//!   postings with prefix + length filtering and exact verification, the
//!   corpus-scale path behind the token blockers.
//! - [`debugger`]: a MatchCatcher-style audit that ranks the most
//!   match-like pairs *excluded* by blocking.
//!
//! ```
//! use em_blocking::blockers::{Blocker, OverlapBlocker};
//! use em_table::csv::read_str;
//!
//! let a = read_str("A", "Title\nCorn Fungicide Guidelines For States\n").unwrap();
//! let b = read_str("B", "Title\ncorn fungicide guidelines\n").unwrap();
//! let c = OverlapBlocker::new("Title", "Title", 3).block(&a, &b).unwrap();
//! assert_eq!(c.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod blockers;
pub mod candidate;
pub mod debugger;
pub mod error;
pub mod incremental;
pub mod join;

pub use blockers::{
    block_pairwise, block_specs, AttrEquivalenceBlocker, BlackboxBlocker, Blocker, OverlapBlocker,
    SetMeasure, SetSimBlocker,
};
pub use candidate::{CandidateSet, Pair};
pub use debugger::{debug_blocking, BlockingDebugger, DebugPair};
pub use error::BlockError;
pub use incremental::{IncrementalIndex, ProbeScratch};
pub use join::{
    fnv_u64, join_pairs, join_pairs_multi, join_stats, JoinIndex, JoinScratch, JoinSpec,
    JoinStats, FNV_OFFSET, JOIN_CHUNK,
};
