//! Sharded serving equivalence: a [`ShardedMatchService`] partitioning
//! the corpus across N shards is bit-identical to the single-instance
//! [`MatchService`] — pinned on the case study's 496 extra-record trace
//! at shard counts {1, 2, 4} × executor thread counts {1, 4}, and
//! property-tested over arbitrary interleavings of corpus pushes and
//! arrival matches at every shard count 1..=4.

use em_core::pipeline::{CaseStudy, CaseStudyConfig};
use em_datagen::ScenarioConfig;
use em_serve::testkit::{arrivals, push_variant, snapshot};
use em_serve::{MatchService, ShardedMatchService, WorkflowSnapshot};
use em_table::Value;
use proptest::prelude::*;

/// The committed bench seed (`reproduce --seed 20190326`).
const SEED: u64 = 20190326;

/// Full bit-identity between two per-row outcomes: the match ids and
/// every stage count (wall-clock timings excluded — they are
/// observability, not semantics).
macro_rules! assert_outcomes_eq {
    ($got:expr, $want:expr, $ctx:expr) => {{
        let (g, w) = (&$got, &$want);
        assert_eq!(g.ids, w.ids, "{}: match ids diverged", $ctx);
        assert_eq!(
            (g.n_blocked, g.n_sure, g.n_candidates, g.n_predicted, g.n_flipped, g.degraded),
            (w.n_blocked, w.n_sure, w.n_candidates, w.n_predicted, w.n_flipped, w.degraded),
            "{}: stage counts diverged",
            $ctx
        );
    }};
}

/// The 496 extra UMETRICS records of Section 10, served against the
/// paper-scale scenario's frozen workflow: sharded scatter/gather must
/// reproduce the single-instance batch outcome row for row, id for id,
/// count for count — at every shard count and thread count.
#[test]
fn sharded_496_trace_is_bit_identical_across_shards_and_threads() {
    // Paper-scale scenario (496 extra awards), small-config labeling
    // budget — the same shape as the committed `--scaling-match` setup.
    let mut cs_cfg = CaseStudyConfig::small();
    cs_cfg.scenario = ScenarioConfig::scaled(1.0).with_seed(SEED);
    let artifacts = CaseStudy::new(cs_cfg).train_serving_artifacts().expect("training");
    let extra = &artifacts.extra_umetrics;
    assert_eq!(extra.n_rows(), 496, "the pinned extra-record trace drifted");

    let snap = WorkflowSnapshot::from_artifacts(&artifacts);
    let single = MatchService::from_snapshot(snap.clone()).expect("single service");
    let reference = single.match_batch(extra).expect("single-instance batch");

    for threads in [1usize, 4] {
        em_parallel::set_threads(threads);
        for shards in [1usize, 2, 4] {
            let sharded =
                ShardedMatchService::from_snapshot(snap.clone(), shards).expect("sharded service");
            let got = sharded.match_batch(extra).expect("sharded batch");
            let ctx = format!("shards {shards} threads {threads}");
            assert_eq!(got.ids, reference.ids, "{ctx}: batch ids diverged");
            assert_eq!(got.outcomes.len(), reference.outcomes.len(), "{ctx}");
            for (k, (g, w)) in got.outcomes.iter().zip(&reference.outcomes).enumerate() {
                assert_outcomes_eq!(*g, *w, format!("{ctx} row {k}"));
            }
        }
    }
    em_parallel::set_threads(0);
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Push(usize),
    Match(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![(0usize..12).prop_map(Op::Push), (0usize..5).prop_map(Op::Match)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary interleavings of corpus-row pushes and arrival
    /// matches, the sharded service stays bit-identical to the single
    /// instance at every shard count — growth included: each pushed row
    /// lands on exactly one shard and is visible to the very next match.
    #[test]
    fn sharded_equals_single_over_random_interleavings(
        ops in proptest::collection::vec(op_strategy(), 1..20),
    ) {
        let base = snapshot(1.0);
        let arr = arrivals();
        // Slot-aligned push rows with slot-unique accessions, so the
        // same row stream feeds every service replica.
        let rows: Vec<Vec<Value>> = ops
            .iter()
            .enumerate()
            .map(|(k, op)| match op {
                Op::Push(p) => push_variant(&base.corpus, &format!("S{k}"), *p),
                Op::Match(_) => Vec::new(),
            })
            .collect();
        for n_shards in 1..=4usize {
            let mut single = MatchService::from_snapshot(base.clone()).unwrap();
            let mut sharded = ShardedMatchService::from_snapshot(base.clone(), n_shards).unwrap();
            let mut pushed = 0usize;
            for (k, &op) in ops.iter().enumerate() {
                match op {
                    Op::Push(_) => {
                        single.push_corpus_row(rows[k].clone()).unwrap();
                        let (home, _local) = sharded.push_corpus_row(rows[k].clone()).unwrap();
                        prop_assert!(home < n_shards);
                        pushed += 1;
                        prop_assert_eq!(
                            sharded.stats().corpus_rows,
                            base.corpus.n_rows() + pushed,
                            "a pushed row vanished or duplicated across shards"
                        );
                    }
                    Op::Match(i) => {
                        let want = single.match_on_arrival(&arr, i).unwrap();
                        let got = sharded.match_on_arrival(&arr, i).unwrap();
                        assert_outcomes_eq!(got, want, format!("shards {n_shards} op {k}"));
                    }
                }
            }
            // The grown corpora agree as a whole batch too.
            let want = single.match_batch(&arr).unwrap();
            let got = sharded.match_batch(&arr).unwrap();
            prop_assert_eq!(got.ids, want.ids, "final batch diverged at {} shards", n_shards);
        }
    }
}
