//! Property tests for WAL-based crash recovery: for *arbitrary*
//! interleavings of corpus pushes and arrival matches, a crash at any
//! WAL record boundary — or mid-append, at any byte of the final record —
//! recovers a service whose replay of the remaining operations is
//! bit-identical to the run that never crashed.

use em_core::MatchIds;
use em_serve::testkit::{arrivals, push_variant, snapshot};
use em_serve::{read_wal, MatchService};
use em_table::{Table, Value};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug, Clone, Copy)]
enum Op {
    Push(usize),
    Match(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![(0usize..12).prop_map(Op::Push), (0usize..5).prop_map(Op::Match)]
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "em-wal-prop-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Applies `ops`; returns one `Some(ids)` per match op. `rows` is
/// slot-aligned with `ops`: `rows[i]` is the row `ops[i]` pushes (unused
/// for match ops).
fn run_ops(
    service: &mut MatchService,
    ops: &[Op],
    arr: &Table,
    rows: &[Vec<Value>],
) -> Vec<Option<MatchIds>> {
    ops.iter()
        .zip(rows)
        .map(|(op, row)| match op {
            Op::Push(_) => {
                service.push_corpus_row(row.clone()).expect("push");
                None
            }
            Op::Match(i) => Some(service.match_on_arrival(arr, *i).expect("match").ids),
        })
        .collect()
}

/// Reference run over `ops`: checkpointed service, per-op outcomes, the
/// finished WAL, and the op index resuming each record prefix.
struct Reference {
    dir: PathBuf,
    snap: PathBuf,
    wal: PathBuf,
    rows: Vec<Vec<Value>>,
    arr: Table,
    outcomes: Vec<Option<MatchIds>>,
    offsets: Vec<u64>,
    header_len: u64,
    resume_at: Vec<usize>,
    base_rows: usize,
}

fn reference(tag: &str, ops: &[Op]) -> Reference {
    let dir = scratch_dir(tag);
    let snap = dir.join("ref.emsnap");
    let wal = dir.join("ref.wal");
    let arr = arrivals();
    let mut service = MatchService::from_snapshot(snapshot(1.0)).expect("service");
    let base_rows = service.corpus().n_rows();
    // Push rows get per-op-slot accessions so repeated Push(p) of the same
    // source row still inserts distinct corpus rows.
    let rows: Vec<Vec<Value>> = ops
        .iter()
        .enumerate()
        .map(|(slot, op)| {
            let p = if let Op::Push(p) = op { *p } else { 0 };
            push_variant(service.corpus(), &format!("{tag}-{slot}"), p)
        })
        .collect();
    service.checkpoint(&snap, &wal).expect("checkpoint");
    let outcomes = run_ops(&mut service, ops, &arr, &rows);
    let replay = read_wal(&wal).expect("read wal");
    let n_pushes = ops.iter().filter(|o| matches!(o, Op::Push(_))).count();
    assert_eq!(replay.records.len(), n_pushes);
    let header_len = {
        let bytes = std::fs::read(&wal).expect("read wal bytes");
        bytes.iter().position(|&b| b == b'\n').expect("header") as u64 + 1
    };
    let mut resume_at = vec![0usize];
    for (idx, op) in ops.iter().enumerate() {
        if matches!(op, Op::Push(_)) {
            resume_at.push(idx + 1);
        }
    }
    Reference {
        dir,
        snap,
        wal,
        rows,
        arr,
        outcomes,
        offsets: replay.record_end_offsets,
        header_len,
        resume_at,
        base_rows,
    }
}

fn truncate_copy(r: &Reference, name: &str, len: u64) -> PathBuf {
    let bytes = std::fs::read(&r.wal).expect("read wal");
    let dest = r.dir.join(name);
    std::fs::write(&dest, &bytes[..bytes.len().min(len as usize)]).expect("write copy");
    dest
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Crash at every record boundary of an arbitrary interleaving: the
    /// recovered service replays the remaining ops bit-identically.
    #[test]
    fn recovery_replays_any_interleaving(ops in proptest::collection::vec(op_strategy(), 1..28)) {
        let r = reference("interleave", &ops);
        let n_records = r.offsets.len();
        for k in 0..=n_records {
            let len = if k == 0 { r.header_len } else { r.offsets[k - 1] };
            let wal_copy = truncate_copy(&r, &format!("crash-{k}.wal"), len);
            let (mut service, report) =
                MatchService::recover(&r.snap, &wal_copy).expect("recover");
            prop_assert_eq!(report.replayed, k, "prefix {}", k);
            prop_assert!(!report.torn_tail_repaired, "clean cut misread as tear at {}", k);
            prop_assert_eq!(service.corpus().n_rows(), r.base_rows + k, "prefix {}", k);
            let resume = r.resume_at[k];
            let tail = run_ops(&mut service, &ops[resume..], &r.arr, &r.rows[resume..]);
            prop_assert_eq!(
                tail,
                r.outcomes[resume..].to_vec(),
                "prefix {}: replay diverged from the uninterrupted run",
                k
            );
        }
        let _ = std::fs::remove_dir_all(&r.dir);
    }

    /// Torn tail at every byte prefix of the final record: recovery always
    /// lands on the longest clean prefix, records the repair, and replays
    /// the rest bit-identically.
    #[test]
    fn torn_final_record_recovers_the_prefix_at_every_byte(
        ops in proptest::collection::vec(op_strategy(), 1..20),
        last_push in 0usize..12,
    ) {
        let mut ops = ops;
        ops.push(Op::Push(last_push)); // guarantee a final record to tear
        let r = reference("torn", &ops);
        let n_records = r.offsets.len();
        let start = if n_records >= 2 { r.offsets[n_records - 2] } else { r.header_len };
        let end = r.offsets[n_records - 1];
        let resume = r.resume_at[n_records - 1];
        for cut in (start + 1)..end {
            let wal_copy = truncate_copy(&r, &format!("tear-{cut}.wal"), cut);
            let (mut service, report) =
                MatchService::recover(&r.snap, &wal_copy).expect("recover");
            prop_assert_eq!(report.replayed, n_records - 1, "cut {}", cut);
            prop_assert!(report.torn_tail_repaired, "cut {} not recorded as a tear", cut);
            prop_assert_eq!(service.corpus().n_rows(), r.base_rows + n_records - 1);
            let tail = run_ops(&mut service, &ops[resume..], &r.arr, &r.rows[resume..]);
            prop_assert_eq!(tail, r.outcomes[resume..].to_vec(), "cut {}", cut);
        }
        let _ = std::fs::remove_dir_all(&r.dir);
    }
}
