//! Crash-recovery equivalence: a service killed after *any* WAL record —
//! including mid-append, leaving a torn tail — and recovered from its
//! checkpoint + WAL serves the rest of its event trace bit-identically
//! to a service that never crashed.
//!
//! The trace interleaves 110 corpus pushes with 110 arrival matches
//! (220 events, above the 200-event floor). Because matches between push
//! `k` and push `k+1` depend only on the corpus prefix `0..=k`, a crash
//! right after WAL record `k` must recover a service whose replay of the
//! remaining events reproduces the uninterrupted run's outcomes exactly —
//! at every prefix, at 1 and at 4 threads, with byte-identical
//! [`ServiceStats`] across thread counts.

use em_core::MatchIds;
use em_serve::testkit::{arrivals, push_variant, snapshot};
use em_serve::{read_wal, MatchService, ServiceStats};
use em_table::{Table, Value};
use std::path::{Path, PathBuf};

#[derive(Clone, Copy)]
enum Event {
    Push(usize),
    Match(usize),
}

const N_PUSHES: usize = 110;

/// Pushes and matches, strictly alternating: 220 events.
fn trace(n_arrivals: usize) -> Vec<Event> {
    (0..2 * N_PUSHES)
        .map(|s| if s % 2 == 0 { Event::Push(s / 2) } else { Event::Match((s / 2) % n_arrivals) })
        .collect()
}

fn push_rows(base: &Table) -> Vec<Vec<Value>> {
    (0..N_PUSHES).map(|p| push_variant(base, "WAL", p)).collect()
}

/// Applies `events`, returning one `Some(ids)` per slot for match events.
fn run_events(
    service: &mut MatchService,
    events: &[Event],
    arr: &Table,
    rows: &[Vec<Value>],
) -> Vec<Option<MatchIds>> {
    events
        .iter()
        .map(|e| match e {
            Event::Push(p) => {
                service.push_corpus_row(rows[*p].clone()).expect("push");
                None
            }
            Event::Match(i) => Some(service.match_on_arrival(arr, *i).expect("match").ids),
        })
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("em-wal-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Copies the reference WAL truncated to `len` bytes.
fn truncated_wal(full_wal: &Path, dest: &Path, len: u64) -> PathBuf {
    let bytes = std::fs::read(full_wal).expect("read full wal");
    let cut = bytes.len().min(len as usize);
    std::fs::write(dest, &bytes[..cut]).expect("write truncated wal");
    dest.to_path_buf()
}

struct Reference {
    dir: PathBuf,
    snap_path: PathBuf,
    wal_path: PathBuf,
    events: Vec<Event>,
    rows: Vec<Vec<Value>>,
    arrivals: Table,
    outcomes: Vec<Option<MatchIds>>,
    /// `record_end_offsets` of the finished WAL (one per push).
    offsets: Vec<u64>,
    /// Event index right after each push: `resume_at[k]` is where a crash
    /// that persisted exactly `k` WAL records resumes the trace.
    resume_at: Vec<usize>,
    base_rows: usize,
}

/// The uninterrupted run: checkpoint, apply all 220 events, keep the
/// per-event outcomes and the final WAL as the oracle.
fn reference(tag: &str) -> Reference {
    let dir = scratch_dir(tag);
    let snap_path = dir.join("ref.emsnap");
    let wal_path = dir.join("ref.wal");
    let arrivals = arrivals();
    let events = trace(arrivals.n_rows());
    let mut service = MatchService::from_snapshot(snapshot(1.0)).expect("service");
    let base_rows = service.corpus().n_rows();
    let rows = push_rows(service.corpus());
    service.checkpoint(&snap_path, &wal_path).expect("checkpoint");
    let outcomes = run_events(&mut service, &events, &arrivals, &rows);
    let replay = read_wal(&wal_path).expect("read reference wal");
    assert_eq!(replay.records.len(), N_PUSHES);
    assert!(!replay.torn_tail);
    let mut resume_at = vec![0usize];
    for (idx, e) in events.iter().enumerate() {
        if let Event::Push(_) = e {
            resume_at.push(idx + 1);
        }
    }
    assert_eq!(resume_at.len(), N_PUSHES + 1);
    Reference {
        dir,
        snap_path,
        wal_path,
        events,
        rows,
        arrivals,
        outcomes,
        offsets: replay.record_end_offsets,
        resume_at,
        base_rows,
    }
}

/// WAL length (bytes) that persists exactly `k` records: the header alone
/// for `k == 0`, else the end of record `k - 1`.
fn prefix_len(r: &Reference, k: usize) -> u64 {
    if k == 0 {
        let bytes = std::fs::read(&r.wal_path).expect("read wal");
        let header_end = bytes.iter().position(|&b| b == b'\n').expect("header line");
        header_end as u64 + 1
    } else {
        r.offsets[k - 1]
    }
}

/// Recovers from a WAL truncated to `len` bytes and replays the trace
/// from `resume`; returns the replayed outcomes and the final stats.
fn recover_and_replay(
    r: &Reference,
    len: u64,
    resume: usize,
    tag: &str,
) -> (usize, Vec<Option<MatchIds>>, ServiceStats) {
    let wal_copy = truncated_wal(&r.wal_path, &r.dir.join(format!("crash-{tag}.wal")), len);
    let (mut service, report) = MatchService::recover(&r.snap_path, &wal_copy).expect("recover");
    let replayed = report.replayed;
    let tail = run_events(&mut service, &r.events[resume..], &r.arrivals, &r.rows);
    (replayed, tail, service.stats())
}

#[test]
fn crash_after_every_wal_record_replays_bit_identically() {
    let r = reference("every-record");
    for k in 0..=N_PUSHES {
        let len = prefix_len(&r, k);
        let resume = r.resume_at[k];

        em_parallel::set_threads(1);
        let (replayed_1, tail_1, stats_1) = recover_and_replay(&r, len, resume, &format!("{k}-t1"));
        em_parallel::set_threads(4);
        let (replayed_4, tail_4, stats_4) = recover_and_replay(&r, len, resume, &format!("{k}-t4"));
        em_parallel::set_threads(0);

        assert_eq!(replayed_1, k, "prefix {k}: wrong replay count");
        assert_eq!(replayed_4, k, "prefix {k}: wrong replay count at 4 threads");
        assert_eq!(
            tail_1,
            r.outcomes[resume..].to_vec(),
            "prefix {k}: post-recovery outcomes diverged from the uninterrupted run"
        );
        assert_eq!(tail_4, tail_1, "prefix {k}: thread count changed outcomes");
        assert_eq!(stats_1, stats_4, "prefix {k}: ServiceStats not byte-identical across threads");
        assert_eq!(stats_1.corpus_rows, r.base_rows + N_PUSHES, "prefix {k}");
        assert_eq!(stats_1.wal_replayed, k as u64, "prefix {k}");
        assert_eq!(stats_1.torn_tail_repairs, 0, "prefix {k}: clean cut is not a tear");
    }
    let _ = std::fs::remove_dir_all(&r.dir);
}

#[test]
fn crash_mid_append_drops_the_torn_tail_and_recovers_the_prefix() {
    let r = reference("torn-tail");
    // Tear inside the first, a middle, and the last record — every byte
    // position strictly inside the record's line.
    for &k in &[1usize, N_PUSHES / 2, N_PUSHES] {
        let start = prefix_len(&r, k - 1);
        let end = prefix_len(&r, k);
        let resume = r.resume_at[k - 1];
        for cut in (start + 1)..end {
            let (replayed, tail, stats) =
                recover_and_replay(&r, cut, resume, &format!("tear-{k}-{cut}"));
            assert_eq!(replayed, k - 1, "cut {cut} in record {k}: tear must drop the tail");
            assert_eq!(
                stats.torn_tail_repairs, 1,
                "cut {cut} in record {k}: repair not recorded"
            );
            assert_eq!(
                tail,
                r.outcomes[resume..].to_vec(),
                "cut {cut} in record {k}: replay from the repaired prefix diverged"
            );
            assert_eq!(stats.corpus_rows, r.base_rows + N_PUSHES);
        }
    }
    let _ = std::fs::remove_dir_all(&r.dir);
}

#[test]
fn recovered_service_keeps_appending_on_the_repaired_wal() {
    let r = reference("resume-append");
    // Tear the final record, recover, and verify the repaired WAL is a
    // live log again: new pushes append with continuous sequence numbers
    // and a second recovery sees them.
    let cut = prefix_len(&r, N_PUSHES) - 1;
    let wal_copy = truncated_wal(&r.wal_path, &r.dir.join("resume.wal"), cut);
    let (mut service, report) = MatchService::recover(&r.snap_path, &wal_copy).expect("recover");
    assert_eq!(report.replayed, N_PUSHES - 1);
    assert!(report.torn_tail_repaired);
    service.push_corpus_row(push_variant(service.corpus(), "POST", 0)).expect("push");
    service.push_corpus_row(push_variant(service.corpus(), "POST", 1)).expect("push");
    drop(service);
    let replay = read_wal(&wal_copy).expect("read repaired wal");
    assert!(!replay.torn_tail, "repair must leave a clean log");
    assert_eq!(replay.records.len(), N_PUSHES + 1, "N-1 survivors + 2 fresh appends");
    let (service2, report2) = MatchService::recover(&r.snap_path, &wal_copy).expect("re-recover");
    assert_eq!(report2.replayed, N_PUSHES + 1);
    assert!(!report2.torn_tail_repaired);
    assert_eq!(service2.corpus().n_rows(), r.base_rows + N_PUSHES + 1);
    let _ = std::fs::remove_dir_all(&r.dir);
}
