//! End-to-end serving equivalence: replaying the case study's 496 extra
//! UMETRICS records through the online [`MatchService`] — one at a time
//! and as a micro-batch — produces exactly the match ids the batch
//! pipeline's extra-data patch stage produces, and a snapshot
//! save/load round-trip changes nothing.

use em_core::pipeline::{CaseStudy, CaseStudyConfig};
use em_core::{standard_rules, EmWorkflow, MatchIds};
use em_serve::{MatchService, WorkflowSnapshot};

#[test]
fn serving_extra_records_equals_batch_patch_stage() {
    let artifacts = CaseStudy::new(CaseStudyConfig::small())
        .train_serving_artifacts()
        .expect("training the serving artifacts");
    let extra = &artifacts.extra_umetrics;
    assert!(extra.n_rows() > 0, "scenario produced no extra records");

    // Batch reference: the workflow-patch stage over the extra table
    // (Figure 9's composition), keyed as deliverable ids.
    let workflow = EmWorkflow {
        rules: standard_rules(),
        plan: artifacts.plan,
        matcher: &artifacts.matcher,
        apply_negative: true,
    };
    let (_original, patch) = workflow
        .run_patched(&artifacts.umetrics, extra, &artifacts.usda)
        .expect("batch patch run");
    let batch_ids = MatchIds::from_candidates(extra, &artifacts.usda, &patch.matches)
        .expect("batch ids");

    // Online replay, one record at a time.
    let service = MatchService::from_artifacts(&artifacts).expect("service from artifacts");
    let mut one_at_a_time = MatchIds::default();
    for i in 0..extra.n_rows() {
        let outcome = service.match_on_arrival(extra, i).expect("match_on_arrival");
        one_at_a_time = one_at_a_time.union(&outcome.ids);
    }
    assert_eq!(
        one_at_a_time, batch_ids,
        "one-at-a-time serving diverged from the batch patch stage"
    );

    // Online replay as one micro-batch.
    let batched = service.match_batch(extra).expect("match_batch");
    assert_eq!(batched.ids, batch_ids, "micro-batched serving diverged");
    assert_eq!(batched.outcomes.len(), extra.n_rows());

    // Snapshot round-trip: freeze, encode, decode, serve again —
    // bit-identical verdicts.
    let snapshot = WorkflowSnapshot::from_artifacts(&artifacts);
    let text = snapshot.encode();
    let reloaded = WorkflowSnapshot::decode(&text).expect("snapshot decode");
    assert_eq!(reloaded.encode(), text, "snapshot encoding is not a fixed point");
    let service2 = MatchService::from_snapshot(reloaded).expect("service from snapshot");
    let batched2 = service2.match_batch(extra).expect("match_batch after round-trip");
    assert_eq!(batched2.ids, batch_ids, "snapshot round-trip changed verdicts");

    // The bounded admission queue drains to the same result.
    let mut service3 = MatchService::from_artifacts(&artifacts).expect("service");
    let take = extra.n_rows().min(32);
    for i in 0..take {
        service3.submit(extra, i).expect("submit");
    }
    let drained = service3.drain().expect("drain");
    let mut expected = MatchIds::default();
    for o in batched.outcomes.iter().take(take) {
        expected = expected.union(&o.ids);
    }
    assert_eq!(drained.ids, expected, "queued drain diverged from direct serving");
}

#[test]
fn serving_is_thread_count_invariant() {
    let artifacts = CaseStudy::new(CaseStudyConfig::small())
        .train_serving_artifacts()
        .expect("training the serving artifacts");
    let extra = &artifacts.extra_umetrics;
    let service = MatchService::from_artifacts(&artifacts).expect("service");

    em_parallel::set_threads(1);
    let single = service.match_batch(extra).expect("1-thread batch");
    em_parallel::set_threads(4);
    let multi = service.match_batch(extra).expect("4-thread batch");
    em_parallel::set_threads(0);

    assert_eq!(single.ids, multi.ids, "thread count changed match ids");
    assert_eq!(single.outcomes.len(), multi.outcomes.len());
    for (a, b) in single.outcomes.iter().zip(&multi.outcomes) {
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.n_blocked, b.n_blocked);
        assert_eq!(a.n_predicted, b.n_predicted);
        assert_eq!(a.n_flipped, b.n_flipped);
    }
}
