//! Overload control for the admission queue: deadline budgets, load
//! shedding, backpressure, and the rules-only degraded scoring mode.
//!
//! The serve tier's degradation ladder, from healthiest to most stressed:
//!
//! 1. **Normal** — the queue is below every watermark; requests are
//!    admitted, drained, and scored through the full model path.
//! 2. **Degraded scoring** — a drain whose kept batch reaches
//!    [`OverloadPolicy::degrade_watermark`] switches that batch to
//!    [`ServeMode::RulesOnly`]: positive-rule sure matches are still
//!    served (they are hash-joins, orders of magnitude cheaper than
//!    featurize + score), model-scored candidates are skipped, and every
//!    affected outcome is flagged `degraded` and counted.
//! 3. **Load shedding** — an arrival that finds the queue at
//!    [`OverloadPolicy::shed_watermark`] is rejected with
//!    [`ServeError::Overloaded`](crate::ServeError::Overloaded), which
//!    carries a deterministic retry backoff from the policy's
//!    [`RetryPolicy`]; a queued request whose deadline
//!    (admission time + [`OverloadPolicy::deadline_budget_ms`]) has
//!    already passed at drain time is shed instead of served late.
//! 4. **Hard bound** — the queue capacity itself; past it admissions fail
//!    with [`ServeError::QueueFull`](crate::ServeError::QueueFull), which
//!    is transport-level rejection: the request never entered the
//!    service's accounting (watermark shedding, by contrast, is a policy
//!    decision *about* an admitted request, so it counts as admitted and
//!    shed).
//!
//! All clocks here are **virtual milliseconds** supplied by the caller
//! ([`MatchService::submit_at`](crate::MatchService::submit_at) /
//! [`MatchService::drain_at`](crate::MatchService::drain_at)) — nothing
//! sleeps and nothing reads wall time, so overload behavior is exactly
//! reproducible from a seed and an arrival schedule.

use crate::service::BatchOutcome;
use em_core::resilience::RetryPolicy;

/// How a drained batch is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// The full pipeline: blocking, rules, featurize, model, negative
    /// rules — bit-identical to the batch workflow.
    Full,
    /// Degraded scoring: blocking and positive rules only. Sure matches
    /// are served, model candidates are skipped, outcomes are flagged.
    RulesOnly,
}

/// Watermarks and budgets governing the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    /// Queue length at (or past) which new arrivals are shed with
    /// [`ServeError::Overloaded`](crate::ServeError::Overloaded).
    pub shed_watermark: usize,
    /// Virtual milliseconds an admitted request may wait before a drain
    /// sheds it instead of serving it late.
    pub deadline_budget_ms: u64,
    /// Kept-batch size at (or past) which a drain scores in
    /// [`ServeMode::RulesOnly`].
    pub degrade_watermark: usize,
    /// Backoff schedule quoted to shed callers (virtual, never slept).
    pub retry: RetryPolicy,
}

impl OverloadPolicy {
    /// No shedding, no deadlines, no degradation — the pre-overload
    /// behavior of the service, and its default.
    pub fn unbounded() -> OverloadPolicy {
        OverloadPolicy {
            shed_watermark: usize::MAX,
            deadline_budget_ms: u64::MAX,
            degrade_watermark: usize::MAX,
            retry: RetryPolicy::default(),
        }
    }
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy::unbounded()
    }
}

/// Admission-time metadata of one queued request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingMeta {
    /// Monotonic per-service submission sequence number.
    pub seq: u64,
    /// Virtual deadline: admission time + the policy's budget.
    pub deadline_ms: u64,
}

/// The result of one [`MatchService::drain_at`](crate::MatchService::drain_at).
#[derive(Debug, Clone)]
pub struct DrainOutcome {
    /// Outcomes of the served requests, in admission order.
    pub batch: BatchOutcome,
    /// Submission sequence numbers served, aligned with `batch.outcomes`.
    pub served: Vec<u64>,
    /// Submission sequence numbers shed for blown deadlines.
    pub shed: Vec<u64>,
    /// Whether the batch was scored in [`ServeMode::RulesOnly`].
    pub degraded: bool,
    /// Snapshot epoch the batch was served on.
    pub epoch: u64,
}
