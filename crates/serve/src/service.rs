//! The online match service: single-record and micro-batched matching
//! against a frozen workflow snapshot.
//!
//! [`MatchService`] replays the batch pipeline's decision function for one
//! arriving left-table record at a time. Equality with the batch pipeline
//! is structural, not approximate — each stage mirrors the batch
//! implementation's arithmetic over pre-built indexes:
//!
//! - **Blocking** probes the same three schemes `run_blocking` composes:
//!   an attribute-equivalence index over the corpus `AwardNumber` keyed by
//!   [`Value::dedup_key`] (the hash join the batch AE blocker builds, with
//!   the award-suffix temp column applied on the probe side), plus an
//!   [`IncrementalIndex`] over the corpus `AwardTitle` whose
//!   `probe_overlap` / `probe_set_sim` methods are property-tested equal
//!   to the batch overlap and overlap-coefficient blockers.
//! - **Sure matches** probe one hash index per positive rule (the same
//!   right-key join `EqualityRule::find_all` performs).
//! - **Prediction** runs the identical `extract_vectors` → imputer →
//!   `predict_proba ≥ threshold` chain; feature values are pure functions
//!   of the two cell values, so a one-row probe extracts the same floats
//!   the whole-table batch extraction does.
//! - **Negative rules** apply per pair exactly as `apply_negative`.
//!
//! Because every arriving row is scored independently and
//! [`MatchService::match_batch`] merges per-row results in row order
//! through [`Executor::map_indexed`], results are bit-identical across
//! thread counts and across one-at-a-time vs. batched replay.

use crate::error::ServeError;
use crate::hot::{derive_feature_mask, ProbeScratch};
use crate::overload::{DrainOutcome, OverloadPolicy, PendingMeta, ServeMode};
use crate::snapshot::WorkflowSnapshot;
use crate::wal::{read_wal, WalWriter};
use em_blocking::IncrementalIndex;
use em_core::pipeline::ServingArtifacts;
use em_core::{BlockingPlan, MatchIds};
use em_features::{FeatureMask, ServeExtractor};
use em_ml::{FittedModel, Imputer};
use em_parallel::Executor;
use em_rules::{RuleSet, RuleSetDesc};
use em_table::{Table, Value};
use em_text::TokenCache;
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Rows per parallel work unit in [`MatchService::match_batch`] — small,
/// because each row's probe already fans out over candidate pairs.
const SERVE_GRAIN: usize = 8;

/// Default bound of the admission queue.
const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Wall-clock stage timings of one request, in milliseconds.
///
/// Timings are observability only: they are measured with [`Instant`] and
/// excluded from every determinism guarantee.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestTimings {
    /// Blocking-index probes (AE + overlap + set-similarity).
    pub blocking_ms: f64,
    /// Positive-rule probes and candidate-set subtraction.
    pub rules_ms: f64,
    /// Feature extraction and imputation.
    pub features_ms: f64,
    /// Model scoring, negative rules, and id rendering.
    pub predict_ms: f64,
    /// End-to-end request time.
    pub total_ms: f64,
}

/// What happened after a crash: how much the WAL gave back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// WAL records replayed on top of the snapshot corpus.
    pub replayed: usize,
    /// Whether a torn final record was dropped and truncated away.
    pub torn_tail_repaired: bool,
    /// Wall-clock recovery time — observability only, excluded from every
    /// determinism guarantee.
    pub recovery_ms: f64,
}

/// The result of matching one arriving record.
#[derive(Debug, Clone)]
pub struct MatchOutcome {
    /// Final matches as `(UniqueAwardNumber, AccessionNumber)` pairs —
    /// the same deliverable keying as the batch pipeline.
    pub ids: MatchIds,
    /// Corpus rows admitted by blocking.
    pub n_blocked: usize,
    /// Corpus rows decided by positive rules (sure matches).
    pub n_sure: usize,
    /// Matcher input size (`blocked − sure`).
    pub n_candidates: usize,
    /// Candidates the model predicted as matches.
    pub n_predicted: usize,
    /// Predictions flipped to non-match by negative rules.
    pub n_flipped: usize,
    /// Whether the request was scored in the rules-only degraded mode
    /// (see [`crate::overload::ServeMode`]).
    pub degraded: bool,
    /// Snapshot epoch the request was served on (bumped by each published
    /// hot swap).
    pub epoch: u64,
    /// Per-stage wall-clock timings.
    pub timings: RequestTimings,
}

/// The result of matching a micro-batch of arrivals.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Union of all per-row match ids.
    pub ids: MatchIds,
    /// Per-row outcomes, in arrival (row) order.
    pub outcomes: Vec<MatchOutcome>,
}

/// Service health/size counters.
///
/// The request counters are monotonic over the life of a service lineage
/// (they survive snapshot hot-swaps — a published swap migrates them to
/// the new epoch) and satisfy the admission identity
///
/// ```text
/// admitted == completed + shed + queue_len
/// ```
///
/// at every quiescent point: an admitted request is queued until it is
/// either served (`completed`) or deadline/watermark-shed (`shed`).
/// [`ServeError::QueueFull`] rejections never enter the identity — they
/// are counted separately in `queue_full` because the request was
/// rejected at the transport bound, not decided by service policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Rows currently in the corpus.
    pub corpus_rows: usize,
    /// Distinct tokens interned by the blocking token cache.
    pub cache_tokens: usize,
    /// Distinct texts memoized by the blocking token cache.
    pub cache_texts: usize,
    /// Arrivals waiting in the admission queue.
    pub queue_len: usize,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Snapshot epoch (count of published hot swaps in this lineage).
    pub epoch: u64,
    /// Requests admitted into service accounting.
    pub admitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed: at the overload watermark or for a blown deadline.
    pub shed: u64,
    /// Arrivals rejected at the hard queue bound (not admitted).
    pub queue_full: u64,
    /// Requests served in the rules-only degraded mode.
    pub degraded: u64,
    /// Retry attempts observed at admission (`submit_at` with
    /// `attempt > 0`).
    pub retried: u64,
    /// Corpus rows appended to the WAL by this service.
    pub wal_appended: u64,
    /// Corpus rows replayed from the WAL at recovery.
    pub wal_replayed: u64,
    /// Torn WAL tails dropped and truncated at recovery.
    pub torn_tail_repairs: u64,
}

/// Monotonic request counters, atomically bumped so the read-only match
/// paths (which fan out over `&self` across executor workers) can count
/// without locks. `Relaxed` suffices: each counter is an independent
/// total, read only at quiescent points.
#[derive(Debug, Default)]
pub(crate) struct ServiceCounters {
    pub(crate) admitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) queue_full: AtomicU64,
    pub(crate) degraded: AtomicU64,
    pub(crate) retried: AtomicU64,
    pub(crate) wal_appended: AtomicU64,
    pub(crate) wal_replayed: AtomicU64,
    pub(crate) torn_tail_repairs: AtomicU64,
}

impl ServiceCounters {
    /// Copies another service's totals into `self` — how a published hot
    /// swap carries the lineage's counters across the epoch boundary.
    pub(crate) fn adopt(&self, other: &ServiceCounters) {
        let pairs = [
            (&self.admitted, &other.admitted),
            (&self.completed, &other.completed),
            (&self.shed, &other.shed),
            (&self.queue_full, &other.queue_full),
            (&self.degraded, &other.degraded),
            (&self.retried, &other.retried),
            (&self.wal_appended, &other.wal_appended),
            (&self.wal_replayed, &other.wal_replayed),
            (&self.torn_tail_repairs, &other.torn_tail_repairs),
        ];
        for (dst, src) in pairs {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// An online matching service over a frozen workflow.
pub struct MatchService {
    pub(crate) corpus: Table,
    pub(crate) imputer: Imputer,
    pub(crate) model: FittedModel,
    learner_name: String,
    pub(crate) threshold: f64,
    pub(crate) plan: BlockingPlan,
    pub(crate) rules: RuleSet,
    cache: Arc<TokenCache>,
    /// Inverted token index over the corpus blocking title column.
    pub(crate) title_index: IncrementalIndex,
    /// `dedup_key(AwardNumber)` → corpus rows (the AE blocker's hash join).
    pub(crate) ae_index: HashMap<String, Vec<usize>>,
    /// Per positive rule: `right_key` → corpus rows (`find_all`'s join).
    pub(crate) rule_indexes: Vec<HashMap<String, Vec<usize>>>,
    /// Persistent corpus-side feature caches for the serve hot path.
    pub(crate) extractor: ServeExtractor,
    /// Which features the fitted model / rules can actually read.
    pub(crate) mask: FeatureMask,
    /// The declarative rule set the service was built from — kept so
    /// [`MatchService::to_snapshot`] can freeze live state back into an
    /// artifact (the built [`RuleSet`] closures are not serializable).
    pub(crate) rule_descs: RuleSetDesc,
    /// Bounded admission queue of arrivals awaiting [`MatchService::drain`].
    pending: Option<Table>,
    /// Admission metadata (seq, deadline) aligned with `pending` rows.
    pending_meta: Vec<PendingMeta>,
    pub(crate) queue_capacity: usize,
    /// Corpus write-ahead log; `None` until [`MatchService::attach_wal`]
    /// (pushes are then volatile, as before PR 6).
    wal: Option<WalWriter>,
    /// Snapshot epoch: 0 at construction, +1 per published hot swap.
    pub(crate) epoch: u64,
    /// Overload watermarks and budgets (default: unbounded).
    pub(crate) policy: OverloadPolicy,
    /// Monotonic request counters.
    pub(crate) counters: ServiceCounters,
    /// Next submission sequence number.
    pub(crate) next_seq: u64,
}

/// Left/right blocking and id columns — fixed by the case-study workflow
/// (the snapshot's rule and feature attrs are free; these three anchor the
/// blocking plan and the deliverable keying).
pub(crate) const AWARD_COL: &str = "AwardNumber";
pub(crate) const TITLE_COL: &str = "AwardTitle";
pub(crate) const ACCESSION_COL: &str = "AccessionNumber";

thread_local! {
    /// Per-thread hot-path scratch, so [`MatchService::match_on_arrival`]
    /// and every executor worker in [`MatchService::match_batch`] reuse
    /// buffers across requests instead of allocating per record.
    static HOT_SCRATCH: RefCell<ProbeScratch> = RefCell::new(ProbeScratch::new());
}

impl MatchService {
    /// Builds a service from a (loaded or freshly frozen) snapshot.
    pub fn from_snapshot(snapshot: WorkflowSnapshot) -> Result<MatchService, ServeError> {
        let WorkflowSnapshot {
            corpus,
            features,
            imputer,
            model,
            learner_name,
            rules: rule_descs,
            plan,
            threshold,
        } = snapshot;
        for col in [AWARD_COL, TITLE_COL, ACCESSION_COL] {
            if corpus.schema().index_of(col).is_none() {
                return Err(ServeError::Corrupt(format!(
                    "snapshot corpus is missing required column {col:?}"
                )));
            }
        }
        let mask = derive_feature_mask(&features, &model, &rule_descs);
        let rules = rule_descs.build();
        let cache = Arc::new(TokenCache::for_blocking());
        let empty_corpus = Table::new(corpus.name(), corpus.schema().clone());
        let extractor = ServeExtractor::new(&features, &empty_corpus)?;
        let mut service = MatchService {
            title_index: IncrementalIndex::with_cache(Arc::clone(&cache)),
            ae_index: HashMap::new(),
            rule_indexes: vec![HashMap::new(); rules.positive.len()],
            corpus: empty_corpus,
            imputer,
            model,
            learner_name,
            threshold,
            plan,
            rules,
            cache,
            extractor,
            mask,
            rule_descs,
            pending: None,
            pending_meta: Vec::new(),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            wal: None,
            epoch: 0,
            policy: OverloadPolicy::unbounded(),
            counters: ServiceCounters::default(),
            next_seq: 0,
        };
        for row in corpus.iter() {
            service.push_corpus_row(row.values().to_vec())?;
        }
        Ok(service)
    }

    /// Builds a service straight from batch-pipeline artifacts (equivalent
    /// to freezing a snapshot and loading it back).
    pub fn from_artifacts(artifacts: &ServingArtifacts) -> Result<MatchService, ServeError> {
        MatchService::from_snapshot(WorkflowSnapshot::from_artifacts(artifacts))
    }

    /// Replaces the admission-queue bound (default 1024).
    pub fn with_queue_capacity(mut self, capacity: usize) -> MatchService {
        self.queue_capacity = capacity;
        self
    }

    /// The corpus currently matched against.
    pub fn corpus(&self) -> &Table {
        &self.corpus
    }

    /// Which learner the frozen workflow was trained with.
    pub fn learner_name(&self) -> &str {
        &self.learner_name
    }

    /// The decision threshold on `predict_proba`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The serve-time feature mask: which features of the frozen plan the
    /// hot path actually extracts (see [`crate::derive_feature_mask`]).
    pub fn feature_mask(&self) -> &FeatureMask {
        &self.mask
    }

    /// Service counters. See [`ServiceStats`] for the admission identity
    /// the request counters satisfy.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServiceStats {
            corpus_rows: self.corpus.n_rows(),
            cache_tokens: self.cache.n_tokens(),
            cache_texts: self.cache.n_texts(),
            queue_len: self.queue_len(),
            queue_capacity: self.queue_capacity,
            epoch: self.epoch,
            admitted: load(&c.admitted),
            completed: load(&c.completed),
            shed: load(&c.shed),
            queue_full: load(&c.queue_full),
            degraded: load(&c.degraded),
            retried: load(&c.retried),
            wal_appended: load(&c.wal_appended),
            wal_replayed: load(&c.wal_replayed),
            torn_tail_repairs: load(&c.torn_tail_repairs),
        }
    }

    /// Appends a row to the corpus, updating every blocking and rule index
    /// incrementally — the online equivalent of re-running batch blocking
    /// over the grown corpus.
    ///
    /// When a WAL is attached ([`MatchService::attach_wal`] /
    /// [`MatchService::recover`]), the row is validated against the corpus
    /// schema and **logged before any in-memory state changes** — so at
    /// every instant, snapshot + WAL replay reproduces the service, and a
    /// crash between the append and the index updates merely replays a
    /// row the indexes never saw.
    pub fn push_corpus_row(&mut self, row: Vec<Value>) -> Result<usize, ServeError> {
        // Validate *before* the WAL append: a row that cannot be applied
        // must not become a log record that recovery would also fail on.
        if row.len() != self.corpus.schema().len() {
            return Err(ServeError::Pipeline(format!(
                "pushed row has {} cells, corpus schema has {}",
                row.len(),
                self.corpus.schema().len()
            )));
        }
        for (col, v) in self.corpus.schema().columns().iter().zip(&row) {
            if let Some(t) = v.data_type() {
                if !col.dtype.accepts(t) {
                    return Err(ServeError::Pipeline(format!(
                        "pushed row cell for column {:?} has type {t:?}, column wants {:?}",
                        col.name, col.dtype
                    )));
                }
            }
        }
        if let Some(wal) = &mut self.wal {
            wal.append(&row)?;
            ServiceCounters::bump(&self.counters.wal_appended);
        }
        self.corpus.push_row(row)?;
        let j = self.corpus.n_rows() - 1;
        let added = self
            .corpus
            .row(j)
            .ok_or_else(|| ServeError::Pipeline("pushed row vanished".into()))?;
        self.extractor.push_right_row(added.values());
        self.title_index.insert(j, added.str(TITLE_COL));
        if let Some(v) = added.get(AWARD_COL) {
            if !v.is_null() {
                self.ae_index.entry(v.dedup_key()).or_default().push(j);
            }
        }
        for (rule, index) in self.rules.positive.iter().zip(&mut self.rule_indexes) {
            if let Some(key) = rule.right_key(added) {
                index.entry(key).or_default().push(j);
            }
        }
        Ok(j)
    }

    /// Freezes the *live* service state — including every row pushed since
    /// construction — back into a snapshot. `from_snapshot(to_snapshot())`
    /// rebuilds a service that matches bit-identically.
    pub fn to_snapshot(&self) -> WorkflowSnapshot {
        WorkflowSnapshot {
            corpus: self.corpus.clone(),
            features: self.extractor.features().clone(),
            imputer: self.imputer.clone(),
            model: self.model.clone(),
            learner_name: self.learner_name.clone(),
            rules: self.rule_descs.clone(),
            plan: self.plan,
            threshold: self.threshold,
        }
    }

    /// Attaches a **fresh** WAL at `path` (created or truncated): every
    /// subsequent [`MatchService::push_corpus_row`] is logged before it is
    /// applied. The log is relative to the service's *current* corpus —
    /// pair this with a snapshot of the same state (see
    /// [`MatchService::checkpoint`]) or recovery will miss the rows pushed
    /// before attachment.
    pub fn attach_wal(&mut self, path: &Path) -> Result<(), ServeError> {
        self.wal = Some(WalWriter::create(path)?);
        Ok(())
    }

    /// Durable checkpoint: atomically saves the live state to
    /// `snapshot_path` and rotates a fresh WAL at `wal_path` (all logged
    /// rows are now inside the snapshot, so the old records are
    /// redundant). After a crash, [`MatchService::recover`] on the same
    /// two paths rebuilds this exact service.
    pub fn checkpoint(&mut self, snapshot_path: &Path, wal_path: &Path) -> Result<(), ServeError> {
        self.to_snapshot().save(snapshot_path)?;
        self.attach_wal(wal_path)
    }

    /// Crash recovery: loads the checkpoint snapshot, replays every valid
    /// WAL record through [`MatchService::push_corpus_row`], repairs a
    /// torn tail by truncation, and resumes the WAL for further appends.
    ///
    /// The rebuilt service is **bit-identical** to the crashed one at its
    /// last completed push: same corpus, same incremental indexes, same
    /// match outcomes (pinned by the crash-after-every-record tests). A
    /// missing WAL file is not an error — it means the service crashed
    /// after checkpointing but before its first logged push, so recovery
    /// starts a fresh log.
    pub fn recover(
        snapshot_path: &Path,
        wal_path: &Path,
    ) -> Result<(MatchService, RecoveryReport), ServeError> {
        let t0 = Instant::now();
        let snapshot = WorkflowSnapshot::load(snapshot_path)?;
        let mut service = MatchService::from_snapshot(snapshot)?;
        if !wal_path.exists() {
            service.attach_wal(wal_path)?;
            return Ok((
                service,
                RecoveryReport {
                    replayed: 0,
                    torn_tail_repaired: false,
                    recovery_ms: t0.elapsed().as_secs_f64() * 1e3,
                },
            ));
        }
        let replay = read_wal(wal_path)?;
        for row in &replay.records {
            // `wal` is still `None` here, so replay never re-appends.
            service.push_corpus_row(row.clone())?;
        }
        service
            .counters
            .wal_replayed
            .fetch_add(replay.records.len() as u64, Ordering::Relaxed);
        if replay.torn_tail {
            ServiceCounters::bump(&service.counters.torn_tail_repairs);
        }
        service.wal = Some(WalWriter::resume(
            wal_path,
            replay.bytes_valid,
            replay.records.len() as u64,
        )?);
        Ok((
            service,
            RecoveryReport {
                replayed: replay.records.len(),
                torn_tail_repaired: replay.torn_tail,
                recovery_ms: t0.elapsed().as_secs_f64() * 1e3,
            },
        ))
    }

    /// Replaces the overload policy (default:
    /// [`OverloadPolicy::unbounded`]).
    pub fn with_overload_policy(mut self, policy: OverloadPolicy) -> MatchService {
        self.policy = policy;
        self
    }

    /// The active overload policy.
    pub fn overload_policy(&self) -> &OverloadPolicy {
        &self.policy
    }

    /// Snapshot epoch: 0 at construction, +1 per published hot swap.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Matches one arriving record (row `i` of `arrivals`) against the
    /// corpus, reproducing the batch workflow's verdict for that row
    /// bit-identically. Counts as one admitted + completed request.
    ///
    /// Delegates to [`MatchService::match_on_arrival_with`] over a
    /// per-thread [`ProbeScratch`], so repeated calls (and every executor
    /// worker inside [`MatchService::match_batch`]) run allocation-free in
    /// the steady state.
    pub fn match_on_arrival(
        &self,
        arrivals: &Table,
        i: usize,
    ) -> Result<MatchOutcome, ServeError> {
        HOT_SCRATCH.with(|s| self.match_on_arrival_with(arrivals, i, &mut s.borrow_mut()))
    }

    /// The uncounted core of the match path: one row, caller-chosen mode,
    /// per-thread scratch. Swap validation probes
    /// ([`crate::swap::GoldenProbeSet`]) and the drain path use this so
    /// accounting stays a property of the public entry points.
    pub(crate) fn match_row_uncounted(
        &self,
        arrivals: &Table,
        i: usize,
        mode: ServeMode,
    ) -> Result<MatchOutcome, ServeError> {
        HOT_SCRATCH.with(|s| self.match_inner(arrivals, i, &mut s.borrow_mut(), mode))
    }

    /// Matches a whole table of arrivals as one deterministic micro-batch:
    /// rows are scored independently on the executor and merged in row
    /// order, so the result is bit-identical at any thread count — and
    /// equal to replaying [`MatchService::match_on_arrival`] row by row.
    /// Each row counts as one admitted + completed request.
    pub fn match_batch(&self, arrivals: &Table) -> Result<BatchOutcome, ServeError> {
        let batch = self.match_batch_uncounted(arrivals, ServeMode::Full)?;
        let n = batch.outcomes.len() as u64;
        self.counters.admitted.fetch_add(n, Ordering::Relaxed);
        self.counters.completed.fetch_add(n, Ordering::Relaxed);
        Ok(batch)
    }

    /// Uncounted executor fan-out over all rows of `arrivals` in `mode`.
    pub(crate) fn match_batch_uncounted(
        &self,
        arrivals: &Table,
        mode: ServeMode,
    ) -> Result<BatchOutcome, ServeError> {
        let results = Executor::current().map_indexed(arrivals.n_rows(), SERVE_GRAIN, |i| {
            self.match_row_uncounted(arrivals, i, mode)
        });
        let mut ids = MatchIds::default();
        let mut outcomes = Vec::with_capacity(results.len());
        for r in results {
            let outcome = r?;
            ids = ids.union(&outcome.ids);
            outcomes.push(outcome);
        }
        Ok(BatchOutcome { ids, outcomes })
    }

    /// Arrivals waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.pending.as_ref().map_or(0, Table::n_rows)
    }

    /// Enqueues row `i` of `arrivals` for the next [`MatchService::drain`].
    /// Fails with [`ServeError::QueueFull`] at capacity — bounded
    /// admission, so a traffic spike degrades by rejecting arrivals
    /// instead of growing without limit. Returns the new queue length.
    ///
    /// Equivalent to [`MatchService::submit_at`] at virtual time 0,
    /// attempt 0 — under the default unbounded policy the two behave
    /// identically.
    pub fn submit(&mut self, arrivals: &Table, i: usize) -> Result<usize, ServeError> {
        self.submit_at(arrivals, i, 0, 0)?;
        Ok(self.queue_len())
    }

    /// Admission with overload control, at virtual time `now_ms`;
    /// `attempt` is 0 for a first submission and `n` for its `n`-th retry
    /// (counted in [`ServiceStats::retried`]). Returns the request's
    /// submission sequence number. The ladder, hardest bound first:
    ///
    /// - queue at capacity → [`ServeError::QueueFull`]: rejected at the
    ///   transport, **not** admitted (counted in
    ///   [`ServiceStats::queue_full`]);
    /// - queue at the shed watermark → [`ServeError::Overloaded`]: the
    ///   service *decides* to shed, so the request counts as admitted and
    ///   shed, and the error quotes a deterministic retry backoff;
    /// - otherwise the request is queued with deadline
    ///   `now_ms + deadline_budget_ms`; a drain after that deadline sheds
    ///   it instead of serving it late.
    pub fn submit_at(
        &mut self,
        arrivals: &Table,
        i: usize,
        now_ms: u64,
        attempt: u32,
    ) -> Result<u64, ServeError> {
        if attempt > 0 {
            ServiceCounters::bump(&self.counters.retried);
        }
        let queue_len = self.queue_len();
        if queue_len >= self.queue_capacity {
            ServiceCounters::bump(&self.counters.queue_full);
            return Err(ServeError::QueueFull { capacity: self.queue_capacity });
        }
        if queue_len >= self.policy.shed_watermark {
            ServiceCounters::bump(&self.counters.admitted);
            ServiceCounters::bump(&self.counters.shed);
            return Err(ServeError::Overloaded {
                queue_len,
                shed_watermark: self.policy.shed_watermark,
                retry_after_ms: self.policy.retry.backoff_ms(&format!("arrival-{i}"), attempt),
            });
        }
        let row = arrivals.row(i).ok_or_else(|| {
            ServeError::Pipeline(format!("arrival row {i} is out of range"))
        })?;
        let values = row.values().to_vec();
        let pending = self
            .pending
            .get_or_insert_with(|| Table::new("pending", arrivals.schema().clone()));
        if pending.schema() != arrivals.schema() {
            return Err(ServeError::Pipeline(
                "queued arrivals have a different schema than earlier submissions".into(),
            ));
        }
        pending.push_row(values)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending_meta.push(PendingMeta {
            seq,
            deadline_ms: now_ms.saturating_add(self.policy.deadline_budget_ms),
        });
        ServiceCounters::bump(&self.counters.admitted);
        Ok(seq)
    }

    /// Matches every queued arrival as one micro-batch and empties the
    /// queue. Queue order is submission order, so a drain is bit-identical
    /// to batch-matching the same rows directly.
    ///
    /// Equivalent to [`MatchService::drain_at`] at virtual time 0 — under
    /// the default unbounded policy nothing is ever shed or degraded.
    pub fn drain(&mut self) -> Result<BatchOutcome, ServeError> {
        self.drain_at(0).map(|d| d.batch)
    }

    /// Drains the queue at virtual time `now_ms`, applying the overload
    /// policy:
    ///
    /// - queued requests whose deadline has passed are **shed** (their
    ///   sequence numbers are returned, counted in
    ///   [`ServiceStats::shed`]), the rest are served in admission order —
    ///   shedding never reorders survivors;
    /// - if the kept batch reaches the policy's `degrade_watermark`, it is
    ///   scored in [`ServeMode::RulesOnly`] and every outcome is flagged
    ///   and counted degraded.
    pub fn drain_at(&mut self, now_ms: u64) -> Result<DrainOutcome, ServeError> {
        let meta = std::mem::take(&mut self.pending_meta);
        let Some(pending) = self.pending.take() else {
            return Ok(DrainOutcome {
                batch: BatchOutcome { ids: MatchIds::default(), outcomes: Vec::new() },
                served: Vec::new(),
                shed: Vec::new(),
                degraded: false,
                epoch: self.epoch,
            });
        };
        debug_assert_eq!(pending.n_rows(), meta.len(), "queue/meta desync");
        let mut kept = Table::new(pending.name(), pending.schema().clone());
        let mut served = Vec::new();
        let mut shed = Vec::new();
        for (i, m) in meta.iter().enumerate() {
            if now_ms > m.deadline_ms {
                shed.push(m.seq);
                continue;
            }
            let row = pending.row(i).ok_or_else(|| {
                ServeError::Pipeline(format!("queued row {i} vanished before drain"))
            })?;
            kept.push_row(row.values().to_vec())?;
            served.push(m.seq);
        }
        self.counters.shed.fetch_add(shed.len() as u64, Ordering::Relaxed);
        let degraded = served.len() >= self.policy.degrade_watermark;
        let mode = if degraded { ServeMode::RulesOnly } else { ServeMode::Full };
        let batch = self.match_batch_uncounted(&kept, mode)?;
        self.counters.completed.fetch_add(served.len() as u64, Ordering::Relaxed);
        if degraded {
            self.counters.degraded.fetch_add(served.len() as u64, Ordering::Relaxed);
        }
        Ok(DrainOutcome { batch, served, shed, degraded, epoch: self.epoch })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::snapshot::WorkflowSnapshot;
    use em_core::matcher::TrainedMatcher;
    use em_core::{EmWorkflow, MatchIds};
    use em_table::{DataType, Schema};

    pub(crate) use crate::testkit::{arrivals, corpus, snapshot};

    /// The batch pipeline's verdict over the same inputs, as match ids.
    fn batch_ids(proba: f64) -> MatchIds {
        let snap = snapshot(proba);
        let matcher = TrainedMatcher {
            features: snap.features.clone(),
            imputer: snap.imputer.clone(),
            model: snap.model.clone(),
            learner_name: snap.learner_name.clone(),
            feature_importance: None,
        };
        let wf = EmWorkflow {
            rules: snap.rules.build(),
            plan: snap.plan,
            matcher: &matcher,
            apply_negative: true,
        };
        let result = wf.run(&arrivals(), &corpus()).unwrap();
        MatchIds::from_candidates(&arrivals(), &corpus(), &result.matches).unwrap()
    }

    #[test]
    fn one_at_a_time_equals_batch_pipeline() {
        for proba in [1.0, 0.0] {
            let service = MatchService::from_snapshot(snapshot(proba)).unwrap();
            let arrivals = arrivals();
            let mut ids = MatchIds::default();
            for i in 0..arrivals.n_rows() {
                let outcome = service.match_on_arrival(&arrivals, i).unwrap();
                ids = ids.union(&outcome.ids);
            }
            assert_eq!(ids, batch_ids(proba), "proba {proba}");
            // Micro-batched replay agrees with one-at-a-time replay.
            let batch = service.match_batch(&arrivals).unwrap();
            assert_eq!(batch.ids, ids, "proba {proba}");
            assert_eq!(batch.outcomes.len(), arrivals.n_rows());
        }
    }

    #[test]
    fn accounting_is_consistent() {
        let service = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        let arrivals = arrivals();
        for i in 0..arrivals.n_rows() {
            let o = service.match_on_arrival(&arrivals, i).unwrap();
            // candidates = blocked − sure, so the removed count is bounded
            // by the sure count.
            assert!(o.n_candidates <= o.n_blocked, "row {i}");
            assert!(o.n_blocked - o.n_candidates <= o.n_sure, "row {i}");
            assert!(o.n_predicted <= o.n_candidates, "row {i}");
            assert!(o.n_flipped <= o.n_predicted, "row {i}");
            // Fixture accessions are unique, so ids = sure + kept exactly.
            assert_eq!(o.ids.len(), o.n_sure + o.n_predicted - o.n_flipped, "row {i}");
            assert!(o.timings.total_ms >= 0.0);
        }
    }

    #[test]
    fn snapshot_round_trip_serves_identically() {
        let snap = snapshot(1.0);
        let reloaded = WorkflowSnapshot::decode(&snap.encode()).unwrap();
        let a = MatchService::from_snapshot(snap).unwrap();
        let b = MatchService::from_snapshot(reloaded).unwrap();
        let arrivals = arrivals();
        for i in 0..arrivals.n_rows() {
            assert_eq!(
                a.match_on_arrival(&arrivals, i).unwrap().ids,
                b.match_on_arrival(&arrivals, i).unwrap().ids,
                "row {i}"
            );
        }
    }

    #[test]
    fn bounded_queue_admits_then_rejects_then_drains() {
        let mut service =
            MatchService::from_snapshot(snapshot(1.0)).unwrap().with_queue_capacity(3);
        let arrivals = arrivals();
        assert_eq!(service.queue_len(), 0);
        for i in 0..3 {
            assert_eq!(service.submit(&arrivals, i).unwrap(), i + 1);
        }
        assert_eq!(
            service.submit(&arrivals, 3),
            Err(ServeError::QueueFull { capacity: 3 })
        );
        let drained = service.drain().unwrap();
        assert_eq!(service.queue_len(), 0);
        assert_eq!(drained.outcomes.len(), 3);
        // Drain equals direct matching of the same rows.
        let mut expected = MatchIds::default();
        for i in 0..3 {
            expected = expected.union(&service.match_on_arrival(&arrivals, i).unwrap().ids);
        }
        assert_eq!(drained.ids, expected);
        // Queue is reusable after draining.
        assert_eq!(service.submit(&arrivals, 3).unwrap(), 1);
        assert!(service.drain().unwrap().outcomes.len() == 1);
        assert!(service.drain().unwrap().outcomes.is_empty());
    }

    #[test]
    fn incremental_corpus_growth_equals_rebuild() {
        // Service A starts with a truncated corpus and learns the last row
        // online; service B is built over the full corpus from scratch.
        let full = corpus();
        let mut head = Table::new(full.name(), full.schema().clone());
        for r in full.iter().take(full.n_rows() - 1) {
            head.push_row(r.values().to_vec()).unwrap();
        }
        let mut snap_head = snapshot(1.0);
        snap_head.corpus = head;
        let mut a = MatchService::from_snapshot(snap_head).unwrap();
        let arrivals = arrivals();
        // Probe before the insert so the token cache has prior state — the
        // equivalence must not depend on interning order.
        let _ = a.match_on_arrival(&arrivals, 0).unwrap();
        let last = full.row(full.n_rows() - 1).unwrap().values().to_vec();
        a.push_corpus_row(last).unwrap();
        let b = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        for i in 0..arrivals.n_rows() {
            let oa = a.match_on_arrival(&arrivals, i).unwrap();
            let ob = b.match_on_arrival(&arrivals, i).unwrap();
            assert_eq!(oa.ids, ob.ids, "row {i}");
            assert_eq!(oa.n_blocked, ob.n_blocked, "row {i}");
            assert_eq!(oa.n_sure, ob.n_sure, "row {i}");
        }
        assert_eq!(a.stats().corpus_rows, full.n_rows());
    }

    #[test]
    fn missing_required_corpus_column_is_typed() {
        let mut snap = snapshot(1.0);
        snap.corpus = Table::new("usda", Schema::of(&[("Other", DataType::Str)]));
        assert!(matches!(
            MatchService::from_snapshot(snap),
            Err(ServeError::Corrupt(_))
        ));
    }

    #[test]
    fn stats_reflect_cache_and_corpus() {
        let service = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        let s = service.stats();
        assert_eq!(s.corpus_rows, 4);
        assert!(s.cache_tokens > 0);
        assert!(s.cache_texts > 0);
        assert_eq!(s.queue_len, 0);
    }

    fn overloadable(shed_watermark: usize, degrade_watermark: usize) -> MatchService {
        use em_core::resilience::RetryPolicy;
        MatchService::from_snapshot(snapshot(1.0)).unwrap().with_queue_capacity(8).with_overload_policy(
            OverloadPolicy {
                shed_watermark,
                deadline_budget_ms: 10,
                degrade_watermark,
                retry: RetryPolicy {
                    max_retries: 3,
                    base_delay_ms: 8,
                    max_delay_ms: 64,
                    jitter_seed: 0x5eed,
                },
            },
        )
    }

    #[test]
    fn overload_sheds_at_watermark_with_a_quoted_backoff() {
        let mut service = overloadable(2, usize::MAX);
        let arrivals = arrivals();
        service.submit_at(&arrivals, 0, 0, 0).unwrap();
        service.submit_at(&arrivals, 1, 0, 0).unwrap();
        match service.submit_at(&arrivals, 2, 0, 0) {
            Err(ServeError::Overloaded { queue_len, shed_watermark, retry_after_ms }) => {
                assert_eq!((queue_len, shed_watermark), (2, 2));
                assert!(retry_after_ms >= 8, "backoff below base delay: {retry_after_ms}");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Shed-at-admission is admitted-then-shed, never QueueFull; the
        // two queued requests are untouched and still serve.
        let s = service.stats();
        assert_eq!((s.admitted, s.shed, s.queue_full, s.queue_len), (3, 1, 0, 2));
        let drained = service.drain_at(0).unwrap();
        assert_eq!(drained.served, vec![0, 1]);
        assert!(drained.shed.is_empty());
        let s = service.stats();
        assert_eq!(s.admitted, s.completed + s.shed + s.queue_len as u64);
    }

    #[test]
    fn expired_deadlines_shed_at_drain_not_before() {
        let mut service = overloadable(usize::MAX, usize::MAX);
        let arrivals = arrivals();
        let early = service.submit_at(&arrivals, 0, 0, 0).unwrap(); // deadline 10
        let late = service.submit_at(&arrivals, 1, 5, 0).unwrap(); // deadline 15
        // At the exact deadline the request still serves (budget is
        // inclusive); one tick past it is shed.
        let drained = service.drain_at(11).unwrap();
        assert_eq!(drained.shed, vec![early]);
        assert_eq!(drained.served, vec![late]);
        assert_eq!(drained.batch.outcomes.len(), 1);
        let s = service.stats();
        assert_eq!((s.admitted, s.completed, s.shed), (2, 1, 1));
        assert_eq!(s.admitted, s.completed + s.shed + s.queue_len as u64);
    }

    #[test]
    fn degraded_mode_serves_rules_only_verdicts() {
        let mut service = overloadable(usize::MAX, 2);
        let arrivals = arrivals();
        for i in 0..3 {
            service.submit_at(&arrivals, i, 0, 0).unwrap();
        }
        let drained = service.drain_at(0).unwrap();
        assert!(drained.degraded, "3 kept >= degrade watermark 2");
        let reference = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        for (k, o) in drained.batch.outcomes.iter().enumerate() {
            assert!(o.degraded, "row {k}");
            // Rules-only: sure matches survive, the trained model never
            // runs — so the always-1.0 constant model predicts nothing.
            assert_eq!(o.n_predicted, 0, "row {k}");
            let full = reference.match_on_arrival(&arrivals, k).unwrap();
            assert!(o.ids.len() <= full.ids.len(), "row {k}");
            assert_eq!(o.n_sure, full.n_sure, "row {k}");
        }
        // Arrival 0 is a sure rule match: degraded mode must still find it.
        assert_eq!(drained.batch.outcomes[0].ids.len(), 1);
        assert_eq!(service.stats().degraded, 3, "counts degraded requests, not drains");
        // Below the watermark the next drain is a full-fidelity one.
        service.submit_at(&arrivals, 0, 20, 0).unwrap();
        let calm = service.drain_at(20).unwrap();
        assert!(!calm.degraded);
        assert!(!calm.batch.outcomes[0].degraded);
    }

    #[test]
    fn retried_submissions_are_counted() {
        let mut service = overloadable(usize::MAX, usize::MAX);
        let arrivals = arrivals();
        service.submit_at(&arrivals, 0, 0, 0).unwrap();
        service.submit_at(&arrivals, 0, 1, 1).unwrap();
        service.submit_at(&arrivals, 0, 2, 3).unwrap();
        assert_eq!(service.stats().retried, 2);
    }

    #[test]
    fn stats_identity_holds_through_a_mixed_workload() {
        let mut service = overloadable(3, usize::MAX);
        let arrivals = arrivals();
        // Direct serving, queued serving, admission sheds, deadline
        // sheds, and hard rejections all feed the same ledger.
        let _ = service.match_on_arrival(&arrivals, 0).unwrap();
        let _ = service.match_batch(&arrivals).unwrap();
        for round in 0..4u64 {
            let now = round * 100;
            for i in 0..arrivals.n_rows() {
                let _ = service.submit_at(&arrivals, i, now, 0);
            }
            // Every other round the drain happens after the deadline.
            let _ = service.drain_at(now + if round % 2 == 0 { 0 } else { 50 }).unwrap();
        }
        service.submit_at(&arrivals, 1, 1000, 0).unwrap();
        let s = service.stats();
        assert_eq!(s.queue_len, 1, "one request left queued on purpose");
        assert_eq!(
            s.admitted,
            s.completed + s.shed + s.queue_len as u64,
            "admitted/completed/shed/queued identity broke: {s:?}"
        );
        assert!(s.shed > 0, "workload was meant to shed");
        assert!(s.completed > 0);
    }

    #[test]
    fn queue_full_is_counted_without_perturbing_admission_order() {
        for threads in [1usize, 4] {
            em_parallel::set_threads(threads);
            let mut service =
                MatchService::from_snapshot(snapshot(1.0)).unwrap().with_queue_capacity(3);
            let reference = MatchService::from_snapshot(snapshot(1.0)).unwrap();
            let arrivals = arrivals();
            let mut seqs = Vec::new();
            for i in 0..3 {
                seqs.push(service.submit_at(&arrivals, i, 0, 0).unwrap());
            }
            // Two hard rejections at the bound: counted, not admitted.
            for i in 3..5 {
                assert!(
                    matches!(service.submit(&arrivals, i), Err(ServeError::QueueFull { .. })),
                    "threads {threads}"
                );
            }
            let s = service.stats();
            assert_eq!((s.queue_full, s.admitted, s.queue_len), (2, 3, 3), "threads {threads}");
            // The rejections left the queue contents and order untouched.
            let drained = service.drain_at(0).unwrap();
            assert_eq!(drained.served, seqs, "threads {threads}");
            for (k, o) in drained.batch.outcomes.iter().enumerate() {
                let direct = reference.match_on_arrival(&arrivals, k).unwrap();
                assert_eq!(o.ids, direct.ids, "threads {threads} row {k}");
            }
            let s = service.stats();
            assert_eq!(s.admitted, s.completed + s.shed + s.queue_len as u64);
        }
        em_parallel::set_threads(0);
    }
}
