//! The online match service: single-record and micro-batched matching
//! against a frozen workflow snapshot.
//!
//! [`MatchService`] replays the batch pipeline's decision function for one
//! arriving left-table record at a time. Equality with the batch pipeline
//! is structural, not approximate — each stage mirrors the batch
//! implementation's arithmetic over pre-built indexes:
//!
//! - **Blocking** probes the same three schemes `run_blocking` composes:
//!   an attribute-equivalence index over the corpus `AwardNumber` keyed by
//!   [`Value::dedup_key`] (the hash join the batch AE blocker builds, with
//!   the award-suffix temp column applied on the probe side), plus an
//!   [`IncrementalIndex`] over the corpus `AwardTitle` whose
//!   `probe_overlap` / `probe_set_sim` methods are property-tested equal
//!   to the batch overlap and overlap-coefficient blockers.
//! - **Sure matches** probe one hash index per positive rule (the same
//!   right-key join `EqualityRule::find_all` performs).
//! - **Prediction** runs the identical `extract_vectors` → imputer →
//!   `predict_proba ≥ threshold` chain; feature values are pure functions
//!   of the two cell values, so a one-row probe extracts the same floats
//!   the whole-table batch extraction does.
//! - **Negative rules** apply per pair exactly as `apply_negative`.
//!
//! Because every arriving row is scored independently and
//! [`MatchService::match_batch`] merges per-row results in row order
//! through [`Executor::map_indexed`], results are bit-identical across
//! thread counts and across one-at-a-time vs. batched replay.

use crate::error::ServeError;
use crate::hot::{derive_feature_mask, ProbeScratch};
use crate::snapshot::WorkflowSnapshot;
use em_blocking::IncrementalIndex;
use em_core::pipeline::ServingArtifacts;
use em_core::{BlockingPlan, MatchIds};
use em_features::{FeatureMask, ServeExtractor};
use em_ml::{FittedModel, Imputer};
use em_parallel::Executor;
use em_rules::RuleSet;
use em_table::{Table, Value};
use em_text::TokenCache;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Rows per parallel work unit in [`MatchService::match_batch`] — small,
/// because each row's probe already fans out over candidate pairs.
const SERVE_GRAIN: usize = 8;

/// Default bound of the admission queue.
const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Wall-clock stage timings of one request, in milliseconds.
///
/// Timings are observability only: they are measured with [`Instant`] and
/// excluded from every determinism guarantee.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestTimings {
    /// Blocking-index probes (AE + overlap + set-similarity).
    pub blocking_ms: f64,
    /// Positive-rule probes and candidate-set subtraction.
    pub rules_ms: f64,
    /// Feature extraction and imputation.
    pub features_ms: f64,
    /// Model scoring, negative rules, and id rendering.
    pub predict_ms: f64,
    /// End-to-end request time.
    pub total_ms: f64,
}

/// The result of matching one arriving record.
#[derive(Debug, Clone)]
pub struct MatchOutcome {
    /// Final matches as `(UniqueAwardNumber, AccessionNumber)` pairs —
    /// the same deliverable keying as the batch pipeline.
    pub ids: MatchIds,
    /// Corpus rows admitted by blocking.
    pub n_blocked: usize,
    /// Corpus rows decided by positive rules (sure matches).
    pub n_sure: usize,
    /// Matcher input size (`blocked − sure`).
    pub n_candidates: usize,
    /// Candidates the model predicted as matches.
    pub n_predicted: usize,
    /// Predictions flipped to non-match by negative rules.
    pub n_flipped: usize,
    /// Per-stage wall-clock timings.
    pub timings: RequestTimings,
}

/// The result of matching a micro-batch of arrivals.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Union of all per-row match ids.
    pub ids: MatchIds,
    /// Per-row outcomes, in arrival (row) order.
    pub outcomes: Vec<MatchOutcome>,
}

/// Service health/size counters.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Rows currently in the corpus.
    pub corpus_rows: usize,
    /// Distinct tokens interned by the blocking token cache.
    pub cache_tokens: usize,
    /// Distinct texts memoized by the blocking token cache.
    pub cache_texts: usize,
    /// Arrivals waiting in the admission queue.
    pub queue_len: usize,
    /// Admission queue bound.
    pub queue_capacity: usize,
}

/// An online matching service over a frozen workflow.
pub struct MatchService {
    pub(crate) corpus: Table,
    pub(crate) imputer: Imputer,
    pub(crate) model: FittedModel,
    learner_name: String,
    pub(crate) threshold: f64,
    pub(crate) plan: BlockingPlan,
    pub(crate) rules: RuleSet,
    cache: Arc<TokenCache>,
    /// Inverted token index over the corpus blocking title column.
    pub(crate) title_index: IncrementalIndex,
    /// `dedup_key(AwardNumber)` → corpus rows (the AE blocker's hash join).
    pub(crate) ae_index: HashMap<String, Vec<usize>>,
    /// Per positive rule: `right_key` → corpus rows (`find_all`'s join).
    pub(crate) rule_indexes: Vec<HashMap<String, Vec<usize>>>,
    /// Persistent corpus-side feature caches for the serve hot path.
    pub(crate) extractor: ServeExtractor,
    /// Which features the fitted model / rules can actually read.
    pub(crate) mask: FeatureMask,
    /// Bounded admission queue of arrivals awaiting [`MatchService::drain`].
    pending: Option<Table>,
    queue_capacity: usize,
}

/// Left/right blocking and id columns — fixed by the case-study workflow
/// (the snapshot's rule and feature attrs are free; these three anchor the
/// blocking plan and the deliverable keying).
pub(crate) const AWARD_COL: &str = "AwardNumber";
pub(crate) const TITLE_COL: &str = "AwardTitle";
pub(crate) const ACCESSION_COL: &str = "AccessionNumber";

thread_local! {
    /// Per-thread hot-path scratch, so [`MatchService::match_on_arrival`]
    /// and every executor worker in [`MatchService::match_batch`] reuse
    /// buffers across requests instead of allocating per record.
    static HOT_SCRATCH: RefCell<ProbeScratch> = RefCell::new(ProbeScratch::new());
}

impl MatchService {
    /// Builds a service from a (loaded or freshly frozen) snapshot.
    pub fn from_snapshot(snapshot: WorkflowSnapshot) -> Result<MatchService, ServeError> {
        let WorkflowSnapshot {
            corpus,
            features,
            imputer,
            model,
            learner_name,
            rules: rule_descs,
            plan,
            threshold,
        } = snapshot;
        for col in [AWARD_COL, TITLE_COL, ACCESSION_COL] {
            if corpus.schema().index_of(col).is_none() {
                return Err(ServeError::Corrupt(format!(
                    "snapshot corpus is missing required column {col:?}"
                )));
            }
        }
        let mask = derive_feature_mask(&features, &model, &rule_descs);
        let rules = rule_descs.build();
        let cache = Arc::new(TokenCache::for_blocking());
        let empty_corpus = Table::new(corpus.name(), corpus.schema().clone());
        let extractor = ServeExtractor::new(&features, &empty_corpus)?;
        let mut service = MatchService {
            title_index: IncrementalIndex::with_cache(Arc::clone(&cache)),
            ae_index: HashMap::new(),
            rule_indexes: vec![HashMap::new(); rules.positive.len()],
            corpus: empty_corpus,
            imputer,
            model,
            learner_name,
            threshold,
            plan,
            rules,
            cache,
            extractor,
            mask,
            pending: None,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        };
        for row in corpus.iter() {
            service.push_corpus_row(row.values().to_vec())?;
        }
        Ok(service)
    }

    /// Builds a service straight from batch-pipeline artifacts (equivalent
    /// to freezing a snapshot and loading it back).
    pub fn from_artifacts(artifacts: &ServingArtifacts) -> Result<MatchService, ServeError> {
        MatchService::from_snapshot(WorkflowSnapshot::from_artifacts(artifacts))
    }

    /// Replaces the admission-queue bound (default 1024).
    pub fn with_queue_capacity(mut self, capacity: usize) -> MatchService {
        self.queue_capacity = capacity;
        self
    }

    /// The corpus currently matched against.
    pub fn corpus(&self) -> &Table {
        &self.corpus
    }

    /// Which learner the frozen workflow was trained with.
    pub fn learner_name(&self) -> &str {
        &self.learner_name
    }

    /// The decision threshold on `predict_proba`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The serve-time feature mask: which features of the frozen plan the
    /// hot path actually extracts (see [`crate::derive_feature_mask`]).
    pub fn feature_mask(&self) -> &FeatureMask {
        &self.mask
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            corpus_rows: self.corpus.n_rows(),
            cache_tokens: self.cache.n_tokens(),
            cache_texts: self.cache.n_texts(),
            queue_len: self.queue_len(),
            queue_capacity: self.queue_capacity,
        }
    }

    /// Appends a row to the corpus, updating every blocking and rule index
    /// incrementally — the online equivalent of re-running batch blocking
    /// over the grown corpus.
    pub fn push_corpus_row(&mut self, row: Vec<Value>) -> Result<usize, ServeError> {
        self.corpus.push_row(row)?;
        let j = self.corpus.n_rows() - 1;
        let added = self
            .corpus
            .row(j)
            .ok_or_else(|| ServeError::Pipeline("pushed row vanished".into()))?;
        self.extractor.push_right_row(added.values());
        self.title_index.insert(j, added.str(TITLE_COL));
        if let Some(v) = added.get(AWARD_COL) {
            if !v.is_null() {
                self.ae_index.entry(v.dedup_key()).or_default().push(j);
            }
        }
        for (rule, index) in self.rules.positive.iter().zip(&mut self.rule_indexes) {
            if let Some(key) = rule.right_key(added) {
                index.entry(key).or_default().push(j);
            }
        }
        Ok(j)
    }

    /// Matches one arriving record (row `i` of `arrivals`) against the
    /// corpus, reproducing the batch workflow's verdict for that row
    /// bit-identically.
    ///
    /// Delegates to [`MatchService::match_on_arrival_with`] over a
    /// per-thread [`ProbeScratch`], so repeated calls (and every executor
    /// worker inside [`MatchService::match_batch`]) run allocation-free in
    /// the steady state.
    pub fn match_on_arrival(
        &self,
        arrivals: &Table,
        i: usize,
    ) -> Result<MatchOutcome, ServeError> {
        HOT_SCRATCH.with(|s| self.match_on_arrival_with(arrivals, i, &mut s.borrow_mut()))
    }

    /// Matches a whole table of arrivals as one deterministic micro-batch:
    /// rows are scored independently on the executor and merged in row
    /// order, so the result is bit-identical at any thread count — and
    /// equal to replaying [`MatchService::match_on_arrival`] row by row.
    pub fn match_batch(&self, arrivals: &Table) -> Result<BatchOutcome, ServeError> {
        let results = Executor::current()
            .map_indexed(arrivals.n_rows(), SERVE_GRAIN, |i| self.match_on_arrival(arrivals, i));
        let mut ids = MatchIds::default();
        let mut outcomes = Vec::with_capacity(results.len());
        for r in results {
            let outcome = r?;
            ids = ids.union(&outcome.ids);
            outcomes.push(outcome);
        }
        Ok(BatchOutcome { ids, outcomes })
    }

    /// Arrivals waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.pending.as_ref().map_or(0, Table::n_rows)
    }

    /// Enqueues row `i` of `arrivals` for the next [`MatchService::drain`].
    /// Fails with [`ServeError::QueueFull`] at capacity — bounded
    /// admission, so a traffic spike degrades by rejecting arrivals
    /// instead of growing without limit. Returns the new queue length.
    pub fn submit(&mut self, arrivals: &Table, i: usize) -> Result<usize, ServeError> {
        if self.queue_len() >= self.queue_capacity {
            return Err(ServeError::QueueFull { capacity: self.queue_capacity });
        }
        let row = arrivals.row(i).ok_or_else(|| {
            ServeError::Pipeline(format!("arrival row {i} is out of range"))
        })?;
        let values = row.values().to_vec();
        let pending = self
            .pending
            .get_or_insert_with(|| Table::new("pending", arrivals.schema().clone()));
        if pending.schema() != arrivals.schema() {
            return Err(ServeError::Pipeline(
                "queued arrivals have a different schema than earlier submissions".into(),
            ));
        }
        pending.push_row(values)?;
        Ok(self.queue_len())
    }

    /// Matches every queued arrival as one micro-batch and empties the
    /// queue. Queue order is submission order, so a drain is bit-identical
    /// to batch-matching the same rows directly.
    pub fn drain(&mut self) -> Result<BatchOutcome, ServeError> {
        match self.pending.take() {
            Some(batch) => self.match_batch(&batch),
            None => Ok(BatchOutcome { ids: MatchIds::default(), outcomes: Vec::new() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::WorkflowSnapshot;
    use em_core::matcher::TrainedMatcher;
    use em_core::{EmWorkflow, MatchIds};
    use em_features::{Feature, FeatureKind, FeatureSet};
    use em_ml::model::ConstantModel;
    use em_rules::{RuleKeyKind, RuleSetDesc};
    use em_table::{DataType, Schema};

    fn corpus() -> Table {
        Table::from_rows(
            "usda",
            Schema::of(&[
                (ACCESSION_COL, DataType::Str),
                (AWARD_COL, DataType::Str),
                ("ProjectNumber", DataType::Str),
                (TITLE_COL, DataType::Str),
            ]),
            vec![
                vec![
                    Value::Str("ACC1".into()),
                    Value::Str("2008-34103-19449".into()),
                    Value::Null,
                    Value::Str("corn fungicide guidelines for states".into()),
                ],
                vec![
                    Value::Str("ACC2".into()),
                    Value::Null,
                    Value::Str("WIS01040".into()),
                    Value::Str("swamp dodder ecology and biology".into()),
                ],
                vec![
                    Value::Str("ACC3".into()),
                    Value::Str("2101-22222-33333".into()),
                    Value::Null,
                    Value::Str("corn fungicide guidelines handbook".into()),
                ],
                vec![
                    Value::Str("ACC4".into()),
                    Value::Null,
                    Value::Null,
                    Value::Str("maize gene expression study".into()),
                ],
            ],
        )
        .unwrap()
    }

    fn arrivals() -> Table {
        Table::from_rows(
            "umetrics",
            Schema::of(&[(AWARD_COL, DataType::Str), (TITLE_COL, DataType::Str)]),
            vec![
                vec![
                    Value::Str("10.200 2008-34103-19449".into()),
                    Value::Str("corn fungicide guidelines for states".into()),
                ],
                vec![
                    Value::Str("10.203 WIS01040".into()),
                    Value::Str("swamp dodder ecology and biology".into()),
                ],
                vec![
                    Value::Str("10.310 9999-88888-77777".into()),
                    Value::Str("corn fungicide guidelines for whom".into()),
                ],
                vec![Value::Null, Value::Str("maize gene expression study".into())],
                vec![Value::Str("10.500 NOPE".into()), Value::Null],
            ],
        )
        .unwrap()
    }

    fn rule_descs() -> RuleSetDesc {
        RuleSetDesc::new()
            .positive(RuleKeyKind::Suffix, "M1", AWARD_COL, AWARD_COL)
            .positive(RuleKeyKind::Suffix, "award=project", AWARD_COL, "ProjectNumber")
            .negative(RuleKeyKind::Suffix, "neg:award", AWARD_COL, AWARD_COL)
            .negative(RuleKeyKind::Suffix, "neg:project", AWARD_COL, "ProjectNumber")
    }

    fn features() -> FeatureSet {
        let mut f = FeatureSet::default();
        f.features.push(Feature::new(TITLE_COL, TITLE_COL, FeatureKind::JaccardWord, true));
        f
    }

    fn snapshot(proba: f64) -> WorkflowSnapshot {
        WorkflowSnapshot {
            corpus: corpus(),
            features: features(),
            imputer: Imputer { means: vec![0.0] },
            model: FittedModel::Constant(ConstantModel { proba }),
            learner_name: "constant".into(),
            rules: rule_descs(),
            plan: BlockingPlan { overlap_k: 3, oc_threshold: 0.7 },
            threshold: 0.5,
        }
    }

    /// The batch pipeline's verdict over the same inputs, as match ids.
    fn batch_ids(proba: f64) -> MatchIds {
        let snap = snapshot(proba);
        let matcher = TrainedMatcher {
            features: snap.features.clone(),
            imputer: snap.imputer.clone(),
            model: snap.model.clone(),
            learner_name: snap.learner_name.clone(),
            feature_importance: None,
        };
        let wf = EmWorkflow {
            rules: snap.rules.build(),
            plan: snap.plan,
            matcher: &matcher,
            apply_negative: true,
        };
        let result = wf.run(&arrivals(), &corpus()).unwrap();
        MatchIds::from_candidates(&arrivals(), &corpus(), &result.matches).unwrap()
    }

    #[test]
    fn one_at_a_time_equals_batch_pipeline() {
        for proba in [1.0, 0.0] {
            let service = MatchService::from_snapshot(snapshot(proba)).unwrap();
            let arrivals = arrivals();
            let mut ids = MatchIds::default();
            for i in 0..arrivals.n_rows() {
                let outcome = service.match_on_arrival(&arrivals, i).unwrap();
                ids = ids.union(&outcome.ids);
            }
            assert_eq!(ids, batch_ids(proba), "proba {proba}");
            // Micro-batched replay agrees with one-at-a-time replay.
            let batch = service.match_batch(&arrivals).unwrap();
            assert_eq!(batch.ids, ids, "proba {proba}");
            assert_eq!(batch.outcomes.len(), arrivals.n_rows());
        }
    }

    #[test]
    fn accounting_is_consistent() {
        let service = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        let arrivals = arrivals();
        for i in 0..arrivals.n_rows() {
            let o = service.match_on_arrival(&arrivals, i).unwrap();
            // candidates = blocked − sure, so the removed count is bounded
            // by the sure count.
            assert!(o.n_candidates <= o.n_blocked, "row {i}");
            assert!(o.n_blocked - o.n_candidates <= o.n_sure, "row {i}");
            assert!(o.n_predicted <= o.n_candidates, "row {i}");
            assert!(o.n_flipped <= o.n_predicted, "row {i}");
            // Fixture accessions are unique, so ids = sure + kept exactly.
            assert_eq!(o.ids.len(), o.n_sure + o.n_predicted - o.n_flipped, "row {i}");
            assert!(o.timings.total_ms >= 0.0);
        }
    }

    #[test]
    fn snapshot_round_trip_serves_identically() {
        let snap = snapshot(1.0);
        let reloaded = WorkflowSnapshot::decode(&snap.encode()).unwrap();
        let a = MatchService::from_snapshot(snap).unwrap();
        let b = MatchService::from_snapshot(reloaded).unwrap();
        let arrivals = arrivals();
        for i in 0..arrivals.n_rows() {
            assert_eq!(
                a.match_on_arrival(&arrivals, i).unwrap().ids,
                b.match_on_arrival(&arrivals, i).unwrap().ids,
                "row {i}"
            );
        }
    }

    #[test]
    fn bounded_queue_admits_then_rejects_then_drains() {
        let mut service =
            MatchService::from_snapshot(snapshot(1.0)).unwrap().with_queue_capacity(3);
        let arrivals = arrivals();
        assert_eq!(service.queue_len(), 0);
        for i in 0..3 {
            assert_eq!(service.submit(&arrivals, i).unwrap(), i + 1);
        }
        assert_eq!(
            service.submit(&arrivals, 3),
            Err(ServeError::QueueFull { capacity: 3 })
        );
        let drained = service.drain().unwrap();
        assert_eq!(service.queue_len(), 0);
        assert_eq!(drained.outcomes.len(), 3);
        // Drain equals direct matching of the same rows.
        let mut expected = MatchIds::default();
        for i in 0..3 {
            expected = expected.union(&service.match_on_arrival(&arrivals, i).unwrap().ids);
        }
        assert_eq!(drained.ids, expected);
        // Queue is reusable after draining.
        assert_eq!(service.submit(&arrivals, 3).unwrap(), 1);
        assert!(service.drain().unwrap().outcomes.len() == 1);
        assert!(service.drain().unwrap().outcomes.is_empty());
    }

    #[test]
    fn incremental_corpus_growth_equals_rebuild() {
        // Service A starts with a truncated corpus and learns the last row
        // online; service B is built over the full corpus from scratch.
        let full = corpus();
        let mut head = Table::new(full.name(), full.schema().clone());
        for r in full.iter().take(full.n_rows() - 1) {
            head.push_row(r.values().to_vec()).unwrap();
        }
        let mut snap_head = snapshot(1.0);
        snap_head.corpus = head;
        let mut a = MatchService::from_snapshot(snap_head).unwrap();
        let arrivals = arrivals();
        // Probe before the insert so the token cache has prior state — the
        // equivalence must not depend on interning order.
        let _ = a.match_on_arrival(&arrivals, 0).unwrap();
        let last = full.row(full.n_rows() - 1).unwrap().values().to_vec();
        a.push_corpus_row(last).unwrap();
        let b = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        for i in 0..arrivals.n_rows() {
            let oa = a.match_on_arrival(&arrivals, i).unwrap();
            let ob = b.match_on_arrival(&arrivals, i).unwrap();
            assert_eq!(oa.ids, ob.ids, "row {i}");
            assert_eq!(oa.n_blocked, ob.n_blocked, "row {i}");
            assert_eq!(oa.n_sure, ob.n_sure, "row {i}");
        }
        assert_eq!(a.stats().corpus_rows, full.n_rows());
    }

    #[test]
    fn missing_required_corpus_column_is_typed() {
        let mut snap = snapshot(1.0);
        snap.corpus = Table::new("usda", Schema::of(&[("Other", DataType::Str)]));
        assert!(matches!(
            MatchService::from_snapshot(snap),
            Err(ServeError::Corrupt(_))
        ));
    }

    #[test]
    fn stats_reflect_cache_and_corpus() {
        let service = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        let s = service.stats();
        assert_eq!(s.corpus_rows, 4);
        assert!(s.cache_tokens > 0);
        assert!(s.cache_texts > 0);
        assert_eq!(s.queue_len, 0);
    }
}
