//! Micro-batching scheduler: a virtual-clock admission queue in front of
//! the sharded tier.
//!
//! Single-record arrivals are expensive to serve one by one (every
//! request pays the scatter fan-out); batches amortize it. The
//! [`MicroBatcher`] accepts arrivals stamped with a **virtual time**
//! (milliseconds on the same virtual clock as
//! [`MatchService::submit_at`](crate::MatchService::submit_at) — no wall
//! clock anywhere near the determinism-relevant path) and closes the open
//! batch on whichever trigger fires first:
//!
//! - **size**: the batch reached [`BatchPolicy::max_batch`] rows;
//! - **deadline**: [`BatchPolicy::close_deadline_ms`] virtual ms elapsed
//!   since the batch opened — a lone arrival never waits longer than the
//!   deadline for company.
//!
//! Admission reuses the overload machinery from the single-instance
//! queue: the scheduler sheds when the **per-shard** backlog — open rows
//! plus whatever the caller reports as still in flight, divided over the
//! shards that will serve it — reaches
//! [`OverloadPolicy::shed_watermark`], and the error quotes the same
//! deterministic [`RetryPolicy`](em_core::resilience::RetryPolicy)
//! backoff as [`MatchService::submit_at`](crate::MatchService::submit_at).
//!
//! The batcher never runs matches itself: it turns an arrival stream into
//! [`ClosedBatch`]es, and the caller (the load generator, a real serving
//! loop) executes them against a [`ShardedMatchService`]
//! (crate::ShardedMatchService) and decides what "in flight" means.

use crate::error::ServeError;
use crate::overload::OverloadPolicy;
use std::collections::VecDeque;

/// When and how eagerly the open batch closes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Close as soon as the open batch holds this many rows.
    pub max_batch: usize,
    /// Close this many virtual ms after the batch opened, full or not.
    pub close_deadline_ms: f64,
}

impl Default for BatchPolicy {
    /// Eight rows or two virtual milliseconds, whichever comes first —
    /// one grain of the serve executor, a small multiple of the warm
    /// per-record latency.
    fn default() -> BatchPolicy {
        BatchPolicy { max_batch: 8, close_deadline_ms: 2.0 }
    }
}

/// Which trigger closed a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchTrigger {
    /// The batch filled to [`BatchPolicy::max_batch`].
    Size,
    /// The batch aged out at [`BatchPolicy::close_deadline_ms`].
    Deadline,
    /// The caller flushed at end of stream.
    Flush,
}

/// A batch the scheduler has closed, ready to execute.
#[derive(Debug, Clone)]
pub struct ClosedBatch {
    /// Arrival row indices, admission order.
    pub rows: Vec<usize>,
    /// Per-row admission sequence numbers (parallel to `rows`).
    pub seqs: Vec<u64>,
    /// Per-row admission virtual times (parallel to `rows`).
    pub arrived_ms: Vec<f64>,
    /// Virtual time the batch opened (first admission).
    pub opened_ms: f64,
    /// Virtual time the batch closed: the closing arrival's time (size),
    /// `opened_ms + close_deadline_ms` (deadline), or the flush time.
    pub closed_ms: f64,
    /// What closed it.
    pub trigger: BatchTrigger,
}

/// Counters the scheduler keeps — trigger attribution for the bench block
/// ([`MicroBatcher::size_closed`] vs [`MicroBatcher::deadline_closed`])
/// and the admission ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SchedCounters {
    admitted: u64,
    shed: u64,
    size_closed: u64,
    deadline_closed: u64,
    flush_closed: u64,
}

/// The virtual-clock micro-batching admission queue. See the module docs.
pub struct MicroBatcher {
    policy: BatchPolicy,
    overload: OverloadPolicy,
    n_shards: usize,
    open: Vec<(usize, u64, f64)>,
    opened_ms: f64,
    ready: VecDeque<ClosedBatch>,
    next_seq: u64,
    counters: SchedCounters,
}

impl MicroBatcher {
    /// A batcher feeding an `n_shards`-way tier (the shard count scales
    /// the shed watermark: depth is accounted per shard).
    pub fn new(policy: BatchPolicy, overload: OverloadPolicy, n_shards: usize) -> MicroBatcher {
        MicroBatcher {
            policy,
            overload,
            n_shards: n_shards.max(1),
            open: Vec::new(),
            opened_ms: 0.0,
            ready: VecDeque::new(),
            next_seq: 0,
            counters: SchedCounters::default(),
        }
    }

    /// Rows currently waiting in the open (unclosed) batch.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// Closed batches not yet taken by the caller.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Batches closed by the size trigger so far.
    pub fn size_closed(&self) -> u64 {
        self.counters.size_closed
    }

    /// Batches closed by the deadline trigger so far.
    pub fn deadline_closed(&self) -> u64 {
        self.counters.deadline_closed
    }

    /// Batches closed by an end-of-stream flush so far.
    pub fn flush_closed(&self) -> u64 {
        self.counters.flush_closed
    }

    /// Arrivals admitted (assigned a sequence number) so far.
    pub fn admitted(&self) -> u64 {
        self.counters.admitted
    }

    /// Arrivals shed at the watermark so far.
    pub fn shed(&self) -> u64 {
        self.counters.shed
    }

    /// The virtual time the open batch will age out, if one is open.
    pub fn deadline_at(&self) -> Option<f64> {
        if self.open.is_empty() {
            None
        } else {
            Some(self.opened_ms + self.policy.close_deadline_ms)
        }
    }

    /// Admission at virtual time `now_ms`. `in_flight_rows` is the
    /// caller's count of admitted-but-uncompleted rows (closed batches
    /// executing or queued behind the tier); together with the open rows
    /// it forms the backlog whose **per-shard depth**
    /// (`ceil(backlog / n_shards)`) is held against
    /// [`OverloadPolicy::shed_watermark`] — shedding with the same
    /// deterministic quoted backoff as the single-instance queue.
    /// `attempt` is 0 for a first submission, `n` for its `n`-th retry.
    ///
    /// On admission the arrival joins the open batch (opening one at
    /// `now_ms` if none is open) and the batch closes immediately when it
    /// reaches the size trigger. Call [`MicroBatcher::tick`] with a later
    /// virtual time to fire deadline closes, then drain
    /// [`MicroBatcher::pop_closed`].
    pub fn submit_at(
        &mut self,
        row: usize,
        now_ms: f64,
        in_flight_rows: usize,
        attempt: u32,
    ) -> Result<u64, ServeError> {
        // A deadline that already passed fires before this arrival joins:
        // the batch it would have joined closed in the (virtual) past.
        self.tick(now_ms);
        let backlog = self.open.len() + in_flight_rows;
        let per_shard = backlog.div_ceil(self.n_shards);
        if self.overload.shed_watermark > 0 && per_shard >= self.overload.shed_watermark {
            self.counters.shed += 1;
            return Err(ServeError::Overloaded {
                queue_len: backlog,
                shed_watermark: self.overload.shed_watermark,
                retry_after_ms: self
                    .overload
                    .retry
                    .backoff_ms(&format!("sched-arrival-{row}"), attempt),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.counters.admitted += 1;
        if self.open.is_empty() {
            self.opened_ms = now_ms;
        }
        self.open.push((row, seq, now_ms));
        if self.open.len() >= self.policy.max_batch {
            self.close(now_ms, BatchTrigger::Size);
        }
        Ok(seq)
    }

    /// Advances the virtual clock: if the open batch's deadline is at or
    /// before `now_ms`, it closes **at the deadline** (not at `now_ms` —
    /// the close happened when the clock passed it, regardless of when the
    /// caller noticed).
    pub fn tick(&mut self, now_ms: f64) {
        if let Some(deadline) = self.deadline_at() {
            if deadline <= now_ms {
                self.close(deadline, BatchTrigger::Deadline);
            }
        }
    }

    /// Closes the open batch at `now_ms` regardless of size or age (end
    /// of stream). No-op when nothing is open.
    pub fn flush(&mut self, now_ms: f64) {
        self.tick(now_ms);
        if !self.open.is_empty() {
            self.close(now_ms, BatchTrigger::Flush);
        }
    }

    /// Takes the oldest closed batch, if any.
    pub fn pop_closed(&mut self) -> Option<ClosedBatch> {
        self.ready.pop_front()
    }

    fn close(&mut self, closed_ms: f64, trigger: BatchTrigger) {
        let members = std::mem::take(&mut self.open);
        if members.is_empty() {
            return;
        }
        match trigger {
            BatchTrigger::Size => self.counters.size_closed += 1,
            BatchTrigger::Deadline => self.counters.deadline_closed += 1,
            BatchTrigger::Flush => self.counters.flush_closed += 1,
        }
        let mut rows = Vec::with_capacity(members.len());
        let mut seqs = Vec::with_capacity(members.len());
        let mut arrived_ms = Vec::with_capacity(members.len());
        for (row, seq, at) in members {
            rows.push(row);
            seqs.push(seq);
            arrived_ms.push(at);
        }
        self.ready.push_back(ClosedBatch {
            rows,
            seqs,
            arrived_ms,
            opened_ms: self.opened_ms,
            closed_ms,
            trigger,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::resilience::RetryPolicy;

    fn unbounded() -> MicroBatcher {
        MicroBatcher::new(
            BatchPolicy { max_batch: 4, close_deadline_ms: 10.0 },
            OverloadPolicy::unbounded(),
            2,
        )
    }

    #[test]
    fn size_trigger_closes_at_the_closing_arrival() {
        let mut b = unbounded();
        for k in 0..4 {
            b.submit_at(k, k as f64, 0, 0).unwrap();
        }
        assert_eq!(b.open_len(), 0);
        let batch = b.pop_closed().expect("size close");
        assert_eq!(batch.trigger, BatchTrigger::Size);
        assert_eq!(batch.rows, vec![0, 1, 2, 3]);
        assert_eq!(batch.seqs, vec![0, 1, 2, 3]);
        assert_eq!(batch.opened_ms, 0.0);
        assert_eq!(batch.closed_ms, 3.0);
        assert_eq!(b.size_closed(), 1);
        assert_eq!(b.deadline_closed(), 0);
    }

    #[test]
    fn deadline_trigger_closes_at_the_deadline_not_the_tick() {
        let mut b = unbounded();
        b.submit_at(7, 1.0, 0, 0).unwrap();
        assert_eq!(b.deadline_at(), Some(11.0));
        b.tick(5.0);
        assert!(b.pop_closed().is_none(), "closed before the deadline");
        b.tick(50.0);
        let batch = b.pop_closed().expect("deadline close");
        assert_eq!(batch.trigger, BatchTrigger::Deadline);
        assert_eq!(batch.closed_ms, 11.0, "must close at the deadline, not the tick");
        assert_eq!(b.deadline_closed(), 1);
    }

    #[test]
    fn late_arrival_lands_in_a_fresh_batch_after_a_passed_deadline() {
        let mut b = unbounded();
        b.submit_at(1, 0.0, 0, 0).unwrap();
        // The next arrival is past the first batch's deadline: the old
        // batch closes at 10.0 and the arrival opens a new one at 25.0.
        b.submit_at(2, 25.0, 0, 0).unwrap();
        let first = b.pop_closed().expect("aged-out batch");
        assert_eq!(first.rows, vec![1]);
        assert_eq!(first.closed_ms, 10.0);
        assert_eq!(b.open_len(), 1);
        assert_eq!(b.deadline_at(), Some(35.0));
    }

    #[test]
    fn per_shard_depth_feeds_the_shed_watermark_with_quoted_backoff() {
        let overload = OverloadPolicy {
            shed_watermark: 4,
            deadline_budget_ms: 1_000,
            degrade_watermark: 0,
            retry: RetryPolicy::default(),
        };
        // 2 shards, watermark 4: shedding starts when ceil(backlog/2) >= 4,
        // i.e. at a backlog of 7 rows.
        let mut b =
            MicroBatcher::new(BatchPolicy { max_batch: 100, close_deadline_ms: 1e9 }, overload, 2);
        for k in 0..6 {
            b.submit_at(k, 0.0, 0, 0).unwrap();
        }
        // 6 open + 2 in flight = 8 -> per-shard 4 -> shed.
        let err = b.submit_at(6, 0.0, 2, 0).unwrap_err();
        let ServeError::Overloaded { queue_len, shed_watermark, retry_after_ms } = err else {
            panic!("expected Overloaded, got {err:?}");
        };
        assert_eq!(queue_len, 8);
        assert_eq!(shed_watermark, 4);
        assert!(retry_after_ms >= 100, "backoff below base delay: {retry_after_ms}");
        assert_eq!(b.shed(), 1);
        // Without the in-flight rows the same arrival is admitted (backlog
        // 6 -> per-shard 3, below the watermark).
        b.submit_at(6, 0.0, 0, 0).unwrap();
        assert_eq!(b.admitted(), 7);
        // Backoff is deterministic in (key, attempt).
        let a = b.overload.retry.backoff_ms("sched-arrival-9", 2);
        let b2 = b.overload.retry.backoff_ms("sched-arrival-9", 2);
        assert_eq!(a, b2);
    }

    #[test]
    fn flush_drains_the_tail() {
        let mut b = unbounded();
        b.submit_at(3, 2.0, 0, 0).unwrap();
        b.submit_at(4, 3.0, 0, 0).unwrap();
        b.flush(4.0);
        let batch = b.pop_closed().expect("flushed batch");
        assert_eq!(batch.trigger, BatchTrigger::Flush);
        assert_eq!(batch.rows, vec![3, 4]);
        assert_eq!(batch.closed_ms, 4.0);
        assert_eq!(b.flush_closed(), 1);
        b.flush(9.0);
        assert!(b.pop_closed().is_none(), "empty flush must not emit a batch");
    }
}
