//! The corpus write-ahead log: crash-durable incremental corpus growth.
//!
//! A [`WorkflowSnapshot`](crate::WorkflowSnapshot) freezes the corpus at
//! checkpoint time, but [`MatchService::push_corpus_row`](crate::MatchService::push_corpus_row)
//! keeps growing it online — and before this log existed, every pushed row
//! died with the process. The WAL closes that gap with the classic
//! ordering: each push **appends a checksummed record first**, then
//! mutates the in-memory indexes, so at every instant
//!
//! ```text
//! service state  ==  snapshot corpus  +  replay(WAL records)
//! ```
//!
//! and [`MatchService::recover`](crate::MatchService::recover) can rebuild
//! a bit-identical service from the last checkpoint after any crash.
//!
//! ## Format
//!
//! The file is line-oriented text. The first line is the header:
//!
//! ```text
//! em-wal v1
//! ```
//!
//! Each subsequent line is one record:
//!
//! ```text
//! <seq> <fnv1a64-hex> <payload>
//! ```
//!
//! `seq` starts at 0 and increments by 1 (a gap means the file was
//! spliced — [`ServeError::Corrupt`]); the checksum covers `<seq> ` plus
//! the payload bytes. The payload is the row's cells in the snapshot
//! encoding ([`crate::snapshot`]'s tagged cells) joined by tabs, then
//! record-escaped so a cell can never smuggle a newline into the framing
//! (`\` → `\\`, newline → `\n`, carriage return → `\r`).
//!
//! ## Torn tails
//!
//! A record is appended with a **single** `write_all` of the full line
//! (including its newline), so a crash mid-append leaves a strict prefix
//! of one line at the end of the file and never damages earlier records.
//! [`read_wal`] therefore treats an unterminated final line as a torn
//! tail: the fragment is dropped and reported, never an error. A
//! *terminated* line that fails to parse or checksum is real corruption
//! and is a typed [`ServeError::Corrupt`]. Recovery repairs a torn tail
//! by truncating the file back to [`WalReplay::bytes_valid`].

use crate::error::ServeError;
use crate::snapshot::{decode_cell, encode_cell};
use em_table::Value;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Format version this build writes and reads.
pub const WAL_VERSION: u32 = 1;

/// The exact header line (without the trailing newline).
const HEADER: &str = "em-wal v1";

fn corrupt(detail: impl std::fmt::Display) -> ServeError {
    ServeError::Corrupt(detail.to_string())
}

/// FNV-1a over a byte string: small, dependency-free, and plenty to catch
/// torn or bit-rotted record lines (this is an integrity check against
/// accidental damage, not an authenticity check against an adversary).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Record-escapes a payload so the line framing survives any cell bytes.
fn escape_record(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape_record(s: &str) -> Result<String, ServeError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(corrupt(format!(
                    "bad record escape \\{}",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

/// Encodes one corpus row as a WAL record line, newline included.
fn encode_record(seq: u64, row: &[Value]) -> String {
    let cells: Vec<String> = row.iter().map(encode_cell).collect();
    let payload = escape_record(&cells.join("\t"));
    let sum = fnv1a64(format!("{seq} {payload}").as_bytes());
    format!("{seq} {sum:016x} {payload}\n")
}

/// Parses one *complete* record line (newline already stripped).
fn decode_record(line: &str, expected_seq: u64) -> Result<Vec<Value>, ServeError> {
    let (seq_tok, rest) = line
        .split_once(' ')
        .ok_or_else(|| corrupt(format!("wal record missing seq field: {line:?}")))?;
    let seq: u64 = seq_tok
        .parse()
        .map_err(|_| corrupt(format!("bad wal seq {seq_tok:?}")))?;
    if seq != expected_seq {
        return Err(corrupt(format!(
            "wal seq discontinuity: found {seq}, expected {expected_seq}"
        )));
    }
    let (sum_tok, payload) = rest
        .split_once(' ')
        .ok_or_else(|| corrupt(format!("wal record {seq} missing checksum field")))?;
    let declared = u64::from_str_radix(sum_tok, 16)
        .map_err(|_| corrupt(format!("bad wal checksum {sum_tok:?}")))?;
    let actual = fnv1a64(format!("{seq} {payload}").as_bytes());
    if declared != actual {
        return Err(corrupt(format!(
            "wal record {seq} checksum mismatch: declared {declared:016x}, computed {actual:016x}"
        )));
    }
    let raw = unescape_record(payload)?;
    raw.split('\t').map(decode_cell).collect()
}

/// The parsed contents of a WAL file.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// Every valid record, in append order.
    pub records: Vec<Vec<Value>>,
    /// Whether the file ended in an unterminated fragment (dropped).
    pub torn_tail: bool,
    /// Byte offset just past the last valid record (truncating the file
    /// here repairs a torn tail without touching any valid record).
    pub bytes_valid: u64,
    /// Byte offset just past each valid record, in order — offset `k`
    /// is the file length after record `k` was appended, so truncating to
    /// `record_end_offsets[k]` reproduces the exact on-disk state of the
    /// service right after its `k`-th post-checkpoint push.
    pub record_end_offsets: Vec<u64>,
}

/// Reads and validates a WAL file.
///
/// Returns every checksummed record plus tear accounting; a torn final
/// line is tolerated and reported, mid-file damage is
/// [`ServeError::Corrupt`], a wrong header is
/// [`ServeError::VersionMismatch`] or [`ServeError::Corrupt`].
pub fn read_wal(path: &Path) -> Result<WalReplay, ServeError> {
    let text = std::fs::read_to_string(path)?;
    read_wal_text(&text)
}

/// [`read_wal`] over already-loaded file contents (exposed for tests that
/// probe every byte-level truncation without round-tripping the disk).
pub fn read_wal_text(text: &str) -> Result<WalReplay, ServeError> {
    let Some((header, mut rest)) = text.split_once('\n') else {
        // No terminated header line: either an empty/torn file (a crash
        // before the header write completed — treat as a fully torn,
        // empty log) or garbage.
        if HEADER.starts_with(text) {
            return Ok(WalReplay { torn_tail: !text.is_empty(), ..WalReplay::default() });
        }
        return Err(corrupt(format!("not a wal (bad header {text:?})")));
    };
    if header != HEADER {
        if let Some(v) = header.strip_prefix("em-wal v").and_then(|v| v.parse::<u32>().ok()) {
            return Err(ServeError::VersionMismatch { found: v, expected: WAL_VERSION });
        }
        return Err(corrupt(format!("not a wal (bad header {header:?})")));
    }
    let mut replay = WalReplay {
        bytes_valid: (header.len() + 1) as u64,
        ..WalReplay::default()
    };
    while !rest.is_empty() {
        let Some((line, tail)) = rest.split_once('\n') else {
            // Unterminated final line: a torn append. The fragment may
            // even parse (the tear could have eaten only the newline), but
            // a record is only durable once its newline hit the disk, so
            // it is dropped either way — deterministically.
            replay.torn_tail = true;
            break;
        };
        let row = decode_record(line, replay.records.len() as u64)?;
        replay.records.push(row);
        replay.bytes_valid += (line.len() + 1) as u64;
        replay.record_end_offsets.push(replay.bytes_valid);
        rest = tail;
    }
    Ok(replay)
}

/// Appends checksummed corpus rows to a WAL file.
///
/// Owned by the [`MatchService`](crate::MatchService): the service calls
/// [`WalWriter::append`] *before* touching its in-memory indexes, so the
/// log is always at least as new as the state it protects.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    next_seq: u64,
}

impl WalWriter {
    /// Creates (or truncates) a WAL at `path` and writes the header. Used
    /// when a fresh checkpoint makes all prior records redundant.
    pub fn create(path: &Path) -> Result<WalWriter, ServeError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file =
            OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        file.write_all(format!("{HEADER}\n").as_bytes())?;
        file.flush()?;
        Ok(WalWriter { file, path: path.to_path_buf(), next_seq: 0 })
    }

    /// Re-opens an existing WAL for appending after recovery, first
    /// truncating it to `bytes_valid` (which repairs a torn tail and is a
    /// no-op on a clean log). `next_seq` must be the number of valid
    /// records already in the file.
    pub fn resume(path: &Path, bytes_valid: u64, next_seq: u64) -> Result<WalWriter, ServeError> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(bytes_valid)?;
        let mut file = OpenOptions::new().append(true).open(path)?;
        file.flush()?;
        Ok(WalWriter { file, path: path.to_path_buf(), next_seq })
    }

    /// Appends one corpus row as a single atomic-prefix write (one
    /// `write_all` of the full line, then flush) and returns its sequence
    /// number. A crash anywhere inside leaves a torn tail that
    /// [`read_wal`] drops — never a damaged earlier record.
    pub fn append(&mut self, row: &[Value]) -> Result<u64, ServeError> {
        let seq = self.next_seq;
        let line = encode_record(seq, row);
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Sequence number the next append will use (== records written).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![
                Value::Str("ACC9".into()),
                Value::Str("2008-34103-19449".into()),
                Value::Null,
                Value::Str("corn\tfungicide \\ guide\nline".into()),
            ],
            vec![
                Value::Int(-3),
                Value::Float(0.1 + 0.2),
                Value::Bool(true),
                Value::Str("carriage\rreturn".into()),
            ],
            vec![Value::Null, Value::Null, Value::Null, Value::Null],
        ]
    }

    fn temp_wal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("em-wal-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn append_read_round_trips_all_value_shapes() {
        let path = temp_wal("roundtrip");
        let mut w = WalWriter::create(&path).unwrap();
        for row in rows() {
            w.append(&row).unwrap();
        }
        assert_eq!(w.next_seq(), 3);
        let replay = read_wal(&path).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.records, rows());
        assert_eq!(replay.record_end_offsets.len(), 3);
        assert_eq!(
            replay.bytes_valid,
            std::fs::metadata(&path).unwrap().len(),
            "clean log must be valid to its last byte"
        );
        // Floats round-trip bit-exactly through the tagged-cell encoding.
        let Value::Float(f) = replay.records[1][1] else { panic!("not a float") };
        assert_eq!(f.to_bits(), (0.1f64 + 0.2).to_bits());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_byte_truncation_is_a_torn_tail_never_corrupt() {
        let path = temp_wal("tear");
        let mut w = WalWriter::create(&path).unwrap();
        for row in rows() {
            w.append(&row).unwrap();
        }
        let full = std::fs::read_to_string(&path).unwrap();
        let offsets = read_wal(&path).unwrap().record_end_offsets;
        for cut in 0..=full.len() {
            let replay = match read_wal_text(&full[..cut]) {
                Ok(r) => r,
                Err(e) => panic!("cut at byte {cut}: prefix must never be corrupt, got {e}"),
            };
            // The prefix keeps exactly the records whose full line
            // (newline included) survived the cut.
            let expect_n = offsets.iter().filter(|&&o| o <= cut as u64).count();
            assert_eq!(replay.records.len(), expect_n, "cut at byte {cut}");
            assert_eq!(replay.records, rows()[..expect_n].to_vec(), "cut at byte {cut}");
            // Torn iff the cut landed strictly inside a line.
            let at_boundary =
                cut as u64 == replay.bytes_valid || cut == 0;
            assert_eq!(replay.torn_tail, !at_boundary, "cut at byte {cut}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_damage_is_corrupt_not_tolerated() {
        let path = temp_wal("damage");
        let mut w = WalWriter::create(&path).unwrap();
        for row in rows() {
            w.append(&row).unwrap();
        }
        let full = std::fs::read_to_string(&path).unwrap();
        // Flip one payload byte of the middle record: its line is still
        // newline-terminated, so this is corruption, not a tear.
        let lines: Vec<&str> = full.lines().collect();
        let mut bad = lines[2].to_string();
        let flip_at = bad.len() - 1;
        let flipped = if bad.as_bytes()[flip_at] == b'x' { 'y' } else { 'x' };
        bad.replace_range(flip_at..bad.len(), &flipped.to_string());
        let damaged = format!("{}\n{}\n{}\n{}\n", lines[0], lines[1], bad, lines[3]);
        assert!(matches!(read_wal_text(&damaged), Err(ServeError::Corrupt(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn seq_splice_and_bad_header_are_typed() {
        // A record claiming the wrong sequence number is a splice.
        let row = vec![Value::Int(1)];
        let spliced = format!("{HEADER}\n{}{}", encode_record(0, &row), encode_record(2, &row));
        assert!(matches!(read_wal_text(&spliced), Err(ServeError::Corrupt(_))));
        // Future version is a typed mismatch, garbage is corrupt.
        assert_eq!(
            read_wal_text("em-wal v9\n").map(|_| ()).unwrap_err(),
            ServeError::VersionMismatch { found: 9, expected: 1 }
        );
        assert!(matches!(read_wal_text("not a wal\n"), Err(ServeError::Corrupt(_))));
        // A header prefix (torn before the header newline) is an empty log
        // with a torn tail, so recovery can truncate-and-resume.
        let torn_header = read_wal_text("em-wal").unwrap();
        assert!(torn_header.torn_tail && torn_header.records.is_empty());
    }

    #[test]
    fn resume_repairs_torn_tail_and_continues_the_sequence() {
        let path = temp_wal("resume");
        let mut w = WalWriter::create(&path).unwrap();
        for row in rows().iter().take(2) {
            w.append(row).unwrap();
        }
        drop(w);
        // Tear the second record: chop the trailing newline plus 3 bytes.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.records.len(), 1);
        // Resume truncates the fragment and appends seq 1 again.
        let mut w =
            WalWriter::resume(&path, replay.bytes_valid, replay.records.len() as u64).unwrap();
        assert_eq!(w.append(&rows()[1]).unwrap(), 1);
        assert_eq!(w.append(&rows()[2]).unwrap(), 2);
        let healed = read_wal(&path).unwrap();
        assert!(!healed.torn_tail);
        assert_eq!(healed.records, rows());
        let _ = std::fs::remove_file(&path);
    }
}
