//! Typed errors for snapshot persistence and online serving.
//!
//! Loading a snapshot must never panic: a truncated file, a future format
//! version, or hand-edited garbage each map to a distinct variant so
//! callers can decide between quarantining the artifact and failing the
//! request.

use std::fmt;

/// Errors raised by snapshot IO and the match service.
///
/// Every variant carries owned `String`/scalar payloads (no borrowed or
/// non-`Send` inner errors) so results can cross the executor's worker
/// threads.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The snapshot declares a format version this build does not read.
    VersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The snapshot body is shorter than its header promised (torn write).
    Truncated {
        /// Byte length the header declared.
        expected_bytes: usize,
        /// Byte length actually present.
        actual_bytes: usize,
    },
    /// The snapshot parsed as text but its contents are malformed.
    Corrupt(String),
    /// Underlying filesystem error (message of the `std::io::Error`).
    Io(String),
    /// The admission queue is at capacity; the arrival was not enqueued.
    QueueFull {
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The service shed the arrival to protect latency: the queue crossed
    /// the overload watermark (distinct from [`ServeError::QueueFull`],
    /// which is the hard capacity bound). Carries the backoff the caller
    /// should wait before retrying, from the service's
    /// [`RetryPolicy`](em_core::resilience::RetryPolicy).
    Overloaded {
        /// Queue length observed at admission time.
        queue_len: usize,
        /// The shed watermark that was crossed.
        shed_watermark: usize,
        /// Deterministic backoff (virtual milliseconds) before a retry.
        retry_after_ms: u64,
    },
    /// A corrupt artifact was moved aside; `dest` is where the evidence
    /// now lives, `cause` the decode failure that triggered quarantine.
    Quarantined {
        /// Path the corrupt artifact was renamed to.
        dest: String,
        /// The underlying decode failure.
        cause: Box<ServeError>,
    },
    /// A candidate snapshot failed golden-probe validation and was not
    /// published.
    SwapRejected {
        /// Index of the first golden probe whose outcome diverged.
        probe: usize,
        /// What diverged (or failed) on that probe.
        detail: String,
    },
    /// A pipeline stage failed while serving a request.
    Pipeline(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} is not readable (this build reads v{expected})")
            }
            ServeError::Truncated { expected_bytes, actual_bytes } => write!(
                f,
                "snapshot truncated: header declares {expected_bytes} body bytes, found {actual_bytes}"
            ),
            ServeError::Corrupt(detail) => write!(f, "snapshot corrupt: {detail}"),
            ServeError::Io(detail) => write!(f, "io error: {detail}"),
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            ServeError::Overloaded { queue_len, shed_watermark, retry_after_ms } => write!(
                f,
                "service overloaded: queue {queue_len} past shed watermark \
                 {shed_watermark}, retry after {retry_after_ms}ms"
            ),
            ServeError::Quarantined { dest, cause } => {
                write!(f, "artifact quarantined to {dest}: {cause}")
            }
            ServeError::SwapRejected { probe, detail } => {
                write!(f, "snapshot swap rejected at golden probe {probe}: {detail}")
            }
            ServeError::Pipeline(detail) => write!(f, "serving pipeline error: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

impl From<em_table::TableError> for ServeError {
    fn from(e: em_table::TableError) -> Self {
        ServeError::Pipeline(format!("table error: {e}"))
    }
}

impl From<em_rules::RuleError> for ServeError {
    fn from(e: em_rules::RuleError) -> Self {
        match e {
            em_rules::RuleError::BadRuleDesc(d) => {
                ServeError::Corrupt(format!("bad rule description: {d}"))
            }
            other => ServeError::Pipeline(format!("rule error: {other}")),
        }
    }
}

impl From<em_ml::MlError> for ServeError {
    fn from(e: em_ml::MlError) -> Self {
        ServeError::Corrupt(format!("model decode/apply error: {e}"))
    }
}

impl From<em_blocking::BlockError> for ServeError {
    fn from(e: em_blocking::BlockError) -> Self {
        ServeError::Pipeline(format!("blocking error: {e}"))
    }
}

impl From<em_core::CoreError> for ServeError {
    fn from(e: em_core::CoreError) -> Self {
        ServeError::Pipeline(format!("core pipeline error: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = ServeError::VersionMismatch { found: 9, expected: 1 };
        assert!(e.to_string().contains("version 9"));
        let e = ServeError::Truncated { expected_bytes: 100, actual_bytes: 7 };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains('7'));
        let e = ServeError::QueueFull { capacity: 4 };
        assert!(e.to_string().contains("capacity 4"));
        let e = ServeError::Overloaded { queue_len: 9, shed_watermark: 8, retry_after_ms: 40 };
        assert!(e.to_string().contains("watermark"));
        assert!(e.to_string().contains("40ms"));
        let e = ServeError::Quarantined {
            dest: "/tmp/x.quarantined.2".into(),
            cause: Box::new(ServeError::VersionMismatch { found: 9, expected: 1 }),
        };
        assert!(e.to_string().contains(".quarantined.2"));
        assert!(e.to_string().contains("version 9"));
        let e = ServeError::SwapRejected { probe: 3, detail: "ids diverged".into() };
        assert!(e.to_string().contains("probe 3"));
    }

    #[test]
    fn serve_error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
