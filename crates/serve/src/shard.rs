//! Sharded serve tier: N corpus partitions behind one deterministic
//! scatter/gather front.
//!
//! [`ShardedMatchService`] splits the right-hand (USDA) corpus into `N`
//! shards by a **stable FNV-1a hash of the corpus key**
//! (`AccessionNumber`), so a row's home shard is a pure function of its
//! identity — independent of arrival order, shard count changes rebuild
//! the same partition from the same corpus, and a WAL replay routes every
//! row back to the shard that logged it. Each shard is a full
//! [`SnapshotCell`]-wrapped [`MatchService`] with its own incremental
//! blocking indexes, token cache, WAL, and epoch.
//!
//! ## Determinism
//!
//! A request scatters to **all** shards (any shard may hold matching
//! corpus rows) and gathers with a chunk-ordered merge: per-shard
//! outcomes are combined in shard order, match ids are unioned into the
//! key-ordered [`MatchIds`] set (duplicate pairs — impossible while
//! shards partition the corpus, but harmless — dedup by pair key), and
//! per-row counters are summed. Because every corpus row lives in exactly
//! one shard and the frozen model, imputer, rules, and threshold are
//! replicated to all shards, the gathered output is **bit-identical to a
//! single-instance [`MatchService`] over the whole corpus, at any shard
//! count and any thread count** (pinned by the `shard_equivalence`
//! integration tests and a property test over random push/request
//! interleavings).
//!
//! ## Hot swap
//!
//! [`ShardedMatchService::propose_snapshot`] splits a candidate snapshot
//! with the same hash partition and stages it on every shard; if **any**
//! shard rejects (golden-probe divergence), every staged candidate is
//! abandoned — all-or-nothing, no shard ever runs ahead.
//! [`ShardedMatchService::publish_at_boundary`] publishes on all shards
//! only when all of them are at a request boundary, so no request can
//! observe mixed epochs.
//!
//! ## Durability
//!
//! Per-shard WALs and checkpoint snapshots carry the shard id in the
//! filename (`shard-3.wal`, `shard-3.emsnap`), and corrupt artifacts are
//! moved aside with the same numbered-quarantine rename as single-instance
//! snapshots ([`crate::snapshot::quarantine_path`]) — two shards can never
//! clobber each other's quarantine evidence because their names never
//! collide.

use crate::error::ServeError;
use crate::overload::ServeMode;
use crate::service::{BatchOutcome, MatchOutcome, MatchService, RecoveryReport, RequestTimings};
use crate::service::ACCESSION_COL;
use crate::snapshot::{quarantine_path, WorkflowSnapshot};
use crate::swap::{GoldenProbeSet, SnapshotCell, SwapReport};
use crate::wal::{fnv1a64, read_wal};
use em_core::MatchIds;
use em_parallel::Executor;
use em_table::{Table, Value};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The home shard of a corpus key under an `n`-way partition: FNV-1a of
/// the key bytes, reduced modulo `n`. Stable across processes, arrival
/// orders, and shard-count-preserving rebuilds.
pub fn shard_of_key(key: &str, n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    (fnv1a64(key.as_bytes()) % n_shards as u64) as usize
}

/// Checkpoint snapshot path for shard `s` under `dir`: `shard-<s>.emsnap`.
fn shard_snapshot_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("shard-{s}.emsnap"))
}

/// WAL path for shard `s` under `dir`: `shard-<s>.wal`.
fn shard_wal_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("shard-{s}.wal"))
}

/// Splits `snapshot` into `n` shard-local snapshots: the corpus rows are
/// routed by [`shard_of_key`] on the `AccessionNumber` cell (preserving
/// relative row order inside each shard); the frozen plan, features,
/// imputer, model, rules, and threshold are replicated verbatim.
fn split_snapshot(
    snapshot: &WorkflowSnapshot,
    n_shards: usize,
) -> Result<Vec<WorkflowSnapshot>, ServeError> {
    let acc_idx = snapshot.corpus.schema().index_of(ACCESSION_COL).ok_or_else(|| {
        ServeError::Pipeline(format!("corpus is missing the {ACCESSION_COL} shard key column"))
    })?;
    let mut parts: Vec<Table> = (0..n_shards)
        .map(|s| {
            Table::new(
                format!("{}-shard-{s}", snapshot.corpus.name()),
                snapshot.corpus.schema().clone(),
            )
        })
        .collect();
    for (i, row) in snapshot.corpus.rows().iter().enumerate() {
        let key = row.get(acc_idx).map(Value::render).unwrap_or_default();
        let s = shard_of_key(&key, n_shards);
        parts[s].push_row(row.clone()).map_err(|e| {
            ServeError::Pipeline(format!("corpus row {i} failed shard routing: {e}"))
        })?;
    }
    Ok(parts
        .into_iter()
        .map(|corpus| WorkflowSnapshot {
            corpus,
            features: snapshot.features.clone(),
            imputer: snapshot.imputer.clone(),
            model: snapshot.model.clone(),
            learner_name: snapshot.learner_name.clone(),
            rules: snapshot.rules.clone(),
            plan: snapshot.plan,
            threshold: snapshot.threshold,
        })
        .collect())
}

/// Shape of the sharded tier, for observability and the load benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards.
    pub n_shards: usize,
    /// Total corpus rows across all shards.
    pub corpus_rows: usize,
    /// Corpus rows per shard, in shard order.
    pub rows_per_shard: Vec<usize>,
    /// The common epoch (all shards always publish together).
    pub epoch: u64,
    /// Shards currently holding a staged (validated, unpublished) swap.
    pub staged: usize,
}

/// A [`MatchService`] partitioned into N hash-routed corpus shards — see
/// the module docs for the determinism, hot-swap, and durability story.
pub struct ShardedMatchService {
    cells: Vec<SnapshotCell>,
    /// Column index of the shard key in the corpus schema (validated at
    /// construction, so routing never re-searches the schema).
    acc_idx: usize,
}

impl std::fmt::Debug for ShardedMatchService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMatchService").field("stats", &self.stats()).finish()
    }
}

impl ShardedMatchService {
    /// Builds an `n_shards`-way sharded service from one whole-corpus
    /// snapshot. `n_shards` must be at least 1. Golden probe sets start
    /// empty (proposals are accepted unvalidated) until
    /// [`ShardedMatchService::record_probes`] freezes current behavior.
    pub fn from_snapshot(
        snapshot: WorkflowSnapshot,
        n_shards: usize,
    ) -> Result<ShardedMatchService, ServeError> {
        if n_shards == 0 {
            return Err(ServeError::Pipeline("shard count must be at least 1".into()));
        }
        let acc_idx = snapshot.corpus.schema().index_of(ACCESSION_COL).ok_or_else(|| {
            ServeError::Pipeline(format!("corpus is missing the {ACCESSION_COL} shard key column"))
        })?;
        let parts = split_snapshot(&snapshot, n_shards)?;
        let mut cells = Vec::with_capacity(n_shards);
        for part in parts {
            let probe_schema = part.corpus.schema().clone();
            let service = MatchService::from_snapshot(part)?;
            let probes = GoldenProbeSet::new(Table::new("probes", probe_schema), Vec::new())?;
            cells.push(SnapshotCell::new(service, probes));
        }
        Ok(ShardedMatchService { cells, acc_idx })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.cells.len()
    }

    /// The shard that owns (or would own) corpus key `key`.
    pub fn shard_of(&self, key: &str) -> usize {
        shard_of_key(key, self.cells.len())
    }

    /// Borrow shard `s`'s live service (observability; `None` out of range).
    pub fn shard(&self, s: usize) -> Option<&MatchService> {
        self.cells.get(s).map(SnapshotCell::service)
    }

    /// Tier shape: shard count, per-shard row counts, common epoch.
    pub fn stats(&self) -> ShardStats {
        let rows_per_shard: Vec<usize> =
            self.cells.iter().map(|c| c.service().corpus().n_rows()).collect();
        ShardStats {
            n_shards: self.cells.len(),
            corpus_rows: rows_per_shard.iter().sum(),
            rows_per_shard,
            epoch: self.epoch(),
            staged: self.cells.iter().filter(|c| c.has_staged()).count(),
        }
    }

    /// The tier's epoch. Shards only ever publish together
    /// ([`ShardedMatchService::publish_at_boundary`]), so every shard
    /// reports the same epoch; shard 0 speaks for all.
    pub fn epoch(&self) -> u64 {
        self.cells.first().map_or(0, |c| c.service().epoch())
    }

    /// Routes one corpus row to its home shard's
    /// [`MatchService::push_corpus_row`] (WAL-logged there when a WAL is
    /// attached). Returns `(shard, local_row_index)`.
    pub fn push_corpus_row(&mut self, row: Vec<Value>) -> Result<(usize, usize), ServeError> {
        let key = row.get(self.acc_idx).map(Value::render).unwrap_or_default();
        let s = shard_of_key(&key, self.cells.len());
        let local = self.cells[s].service_mut().push_corpus_row(row)?;
        Ok((s, local))
    }

    /// Matches one arriving record: scatter to every shard, gather in
    /// shard order. Bit-identical to a single-instance service over the
    /// unsharded corpus.
    pub fn match_on_arrival(
        &self,
        arrivals: &Table,
        i: usize,
    ) -> Result<MatchOutcome, ServeError> {
        let per_shard = Executor::current().map_indexed(self.cells.len(), 1, |s| {
            self.cells[s].service().match_row_uncounted(arrivals, i, ServeMode::Full)
        });
        let mut merged: Option<MatchOutcome> = None;
        for r in per_shard {
            let o = r?;
            merged = Some(match merged {
                None => o,
                Some(acc) => merge_outcomes(acc, &o),
            });
        }
        merged.ok_or_else(|| ServeError::Pipeline("sharded service has no shards".into()))
    }

    /// Matches a whole table of arrivals as one deterministic micro-batch.
    /// Equal to [`ShardedMatchService::match_on_arrival`] row by row, and
    /// bit-identical to the single-instance [`MatchService::match_batch`].
    pub fn match_batch(&self, arrivals: &Table) -> Result<BatchOutcome, ServeError> {
        let rows: Vec<usize> = (0..arrivals.n_rows()).collect();
        let (batch, _) = self.match_rows_timed(arrivals, &rows)?;
        Ok(batch)
    }

    /// The scatter/gather core over an explicit row subset, returning the
    /// merged batch plus each shard's wall-clock service time in
    /// milliseconds (observability and the load generator's virtual-time
    /// model; excluded from every determinism guarantee).
    ///
    /// Scatter: each shard serves the full row list against its own
    /// partition on the `em-parallel` executor (one chunk per shard, so
    /// the merge is chunk-ordered by construction). Gather: per row, the
    /// shard outcomes merge in shard order — ids union into the key-ordered
    /// pair set, counts sum.
    pub fn match_rows_timed(
        &self,
        arrivals: &Table,
        rows: &[usize],
    ) -> Result<(BatchOutcome, Vec<f64>), ServeError> {
        let per_shard: Vec<Result<(Vec<MatchOutcome>, f64), ServeError>> =
            Executor::current().map_indexed(self.cells.len(), 1, |s| {
                let t0 = Instant::now();
                let service = self.cells[s].service();
                let mut outs = Vec::with_capacity(rows.len());
                for &i in rows {
                    outs.push(service.match_row_uncounted(arrivals, i, ServeMode::Full)?);
                }
                Ok((outs, t0.elapsed().as_secs_f64() * 1e3))
            });
        let mut shard_ms = Vec::with_capacity(self.cells.len());
        let mut columns: Vec<Vec<MatchOutcome>> = Vec::with_capacity(self.cells.len());
        for r in per_shard {
            let (outs, ms) = r?;
            columns.push(outs);
            shard_ms.push(ms);
        }
        let mut ids = MatchIds::default();
        let mut outcomes: Vec<MatchOutcome> = Vec::with_capacity(rows.len());
        for ri in 0..rows.len() {
            let mut merged: Option<MatchOutcome> = None;
            for col in &columns {
                let o = &col[ri];
                merged = Some(match merged {
                    None => o.clone(),
                    Some(acc) => merge_outcomes(acc, o),
                });
            }
            let merged = merged
                .ok_or_else(|| ServeError::Pipeline("sharded service has no shards".into()))?;
            ids = ids.union(&merged.ids);
            outcomes.push(merged);
        }
        Ok((BatchOutcome { ids, outcomes }, shard_ms))
    }

    /// Freezes the tier's *current* behavior over `arrivals` as every
    /// shard's golden probe set: each shard records its own partition-local
    /// expected outcomes, so a proposed snapshot must reproduce all of them
    /// shard by shard before it can stage.
    pub fn record_probes(&mut self, arrivals: &Table) -> Result<(), ServeError> {
        for cell in &mut self.cells {
            let probes = GoldenProbeSet::record(cell.service(), arrivals.clone())?;
            cell.set_probes(probes);
        }
        Ok(())
    }

    /// Splits `snapshot` with the same hash partition and stages it on
    /// every shard — **all or nothing**: if any shard rejects the
    /// candidate (golden-probe divergence, decode failure), every staged
    /// candidate on every shard is abandoned and the error is returned, so
    /// no shard can ever publish ahead of its peers.
    pub fn propose_snapshot(&mut self, snapshot: WorkflowSnapshot) -> Result<(), ServeError> {
        let parts = split_snapshot(&snapshot, self.cells.len())?;
        for (s, part) in parts.into_iter().enumerate() {
            if let Err(e) = self.cells[s].propose(part) {
                for cell in &mut self.cells {
                    cell.abandon_staged();
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Publishes the staged candidate on **all** shards iff every shard
    /// has one staged and every shard's admission queue is empty — the
    /// tier-wide request boundary. Otherwise a no-op returning `None`: a
    /// request admitted before the boundary can never observe shard `a` on
    /// the old epoch and shard `b` on the new one. On publish, every
    /// shard's epoch advances together.
    pub fn publish_at_boundary(&mut self) -> Option<Vec<SwapReport>> {
        let ready = self
            .cells
            .iter()
            .all(|c| c.has_staged() && c.service().queue_len() == 0);
        if !ready {
            return None;
        }
        // Every precondition of SnapshotCell::publish_at_boundary holds on
        // every shard, so each publish succeeds; collect the reports.
        let reports: Vec<SwapReport> =
            self.cells.iter_mut().filter_map(SnapshotCell::publish_at_boundary).collect();
        if reports.len() == self.cells.len() {
            Some(reports)
        } else {
            // Unreachable by construction; surfaced as "no publish" rather
            // than a panic to keep the fault path typed.
            None
        }
    }

    /// Attaches a fresh WAL to every shard under `dir`
    /// (`dir/shard-<s>.wal`). See [`MatchService::attach_wal`] for the
    /// relative-to-current-corpus caveat.
    pub fn attach_wal(&mut self, dir: &Path) -> Result<(), ServeError> {
        for (s, cell) in self.cells.iter_mut().enumerate() {
            cell.service_mut().attach_wal(&shard_wal_path(dir, s))?;
        }
        Ok(())
    }

    /// Durable checkpoint of every shard under `dir`: shard `s` saves to
    /// `shard-<s>.emsnap` and rotates `shard-<s>.wal`, exactly
    /// [`MatchService::checkpoint`] per shard — `&Path` end to end.
    pub fn checkpoint(&mut self, dir: &Path) -> Result<(), ServeError> {
        for (s, cell) in self.cells.iter_mut().enumerate() {
            cell.service_mut()
                .checkpoint(&shard_snapshot_path(dir, s), &shard_wal_path(dir, s))?;
        }
        Ok(())
    }

    /// Crash recovery of an `n_shards`-way tier from `dir`: each shard
    /// recovers independently from its own snapshot + WAL pair
    /// ([`MatchService::recover`]), and a shard whose artifacts fail to
    /// *decode* is quarantined with the numbered rename
    /// ([`crate::snapshot::quarantine_path`]) before the error is
    /// returned — the shard id in the filename guarantees two shards'
    /// quarantine destinations never collide, so no shard's evidence can
    /// clobber another's. Returns the tier plus per-shard recovery
    /// reports, in shard order.
    pub fn recover(
        dir: &Path,
        n_shards: usize,
    ) -> Result<(ShardedMatchService, Vec<RecoveryReport>), ServeError> {
        if n_shards == 0 {
            return Err(ServeError::Pipeline("shard count must be at least 1".into()));
        }
        let mut cells = Vec::with_capacity(n_shards);
        let mut reports = Vec::with_capacity(n_shards);
        let mut acc_idx = None;
        for s in 0..n_shards {
            let snap_path = shard_snapshot_path(dir, s);
            let wal_path = shard_wal_path(dir, s);
            // A corrupt WAL must not crash-loop the supervisor: decode-class
            // failures quarantine the log (torn tails are *not* errors —
            // MatchService::recover repairs them by truncation).
            if wal_path.exists() {
                if let Err(e) = read_wal(&wal_path) {
                    let dest = quarantine_path(&wal_path);
                    let _ = std::fs::rename(&wal_path, &dest);
                    return Err(ServeError::Quarantined {
                        dest: dest.display().to_string(),
                        cause: Box::new(e),
                    });
                }
            }
            let (service, report) = match MatchService::recover(&snap_path, &wal_path) {
                Ok(ok) => ok,
                Err(e @ (ServeError::Corrupt(_)
                | ServeError::Truncated { .. }
                | ServeError::VersionMismatch { .. })) => {
                    // The snapshot failed to decode: same quarantine rename
                    // as WorkflowSnapshot::load_quarantining.
                    let dest = quarantine_path(&snap_path);
                    let _ = std::fs::rename(&snap_path, &dest);
                    return Err(ServeError::Quarantined {
                        dest: dest.display().to_string(),
                        cause: Box::new(e),
                    });
                }
                Err(other) => return Err(other),
            };
            if acc_idx.is_none() {
                acc_idx = service.corpus().schema().index_of(ACCESSION_COL);
            }
            let probe_schema = service.corpus().schema().clone();
            let probes = GoldenProbeSet::new(Table::new("probes", probe_schema), Vec::new())?;
            cells.push(SnapshotCell::new(service, probes));
            reports.push(report);
        }
        let acc_idx = acc_idx.ok_or_else(|| {
            ServeError::Pipeline(format!("corpus is missing the {ACCESSION_COL} shard key column"))
        })?;
        Ok((ShardedMatchService { cells, acc_idx }, reports))
    }
}

/// Shard-order merge of two per-row outcomes: ids union by pair key
/// (the [`MatchIds`] set is key-ordered, so the union is independent of
/// merge order), counts sum, degraded ORs, stage timings sum. The epoch
/// is common to all shards by the publish protocol.
fn merge_outcomes(acc: MatchOutcome, o: &MatchOutcome) -> MatchOutcome {
    MatchOutcome {
        ids: acc.ids.union(&o.ids),
        n_blocked: acc.n_blocked + o.n_blocked,
        n_sure: acc.n_sure + o.n_sure,
        n_candidates: acc.n_candidates + o.n_candidates,
        n_predicted: acc.n_predicted + o.n_predicted,
        n_flipped: acc.n_flipped + o.n_flipped,
        degraded: acc.degraded || o.degraded,
        epoch: acc.epoch,
        timings: RequestTimings {
            blocking_ms: acc.timings.blocking_ms + o.timings.blocking_ms,
            rules_ms: acc.timings.rules_ms + o.timings.rules_ms,
            features_ms: acc.timings.features_ms + o.timings.features_ms,
            predict_ms: acc.timings.predict_ms + o.timings.predict_ms,
            total_ms: acc.timings.total_ms + o.timings.total_ms,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{arrivals, corpus, push_variant, snapshot};

    #[test]
    fn shard_routing_is_stable_and_partitions_the_corpus() {
        let snap = snapshot(1.0);
        for n in 1..=4 {
            let sharded = ShardedMatchService::from_snapshot(snap.clone(), n).unwrap();
            let stats = sharded.stats();
            assert_eq!(stats.n_shards, n);
            assert_eq!(stats.corpus_rows, corpus().n_rows(), "rows lost in partition");
            // Every corpus key lives on exactly the shard the hash names.
            for r in corpus().iter() {
                let acc = r.get(ACCESSION_COL).unwrap().render();
                let home = shard_of_key(&acc, n);
                assert_eq!(home, sharded.shard_of(&acc));
                let shard = sharded.shard(home).unwrap();
                assert!(
                    shard
                        .corpus()
                        .iter()
                        .any(|row| row.get(ACCESSION_COL).unwrap().render() == acc),
                    "key {acc} missing from its home shard {home} of {n}"
                );
            }
        }
    }

    #[test]
    fn sharded_matches_single_instance_bit_identically() {
        let single = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        let arr = arrivals();
        let reference = single.match_batch(&arr).unwrap();
        for n in 1..=4 {
            let sharded = ShardedMatchService::from_snapshot(snapshot(1.0), n).unwrap();
            let got = sharded.match_batch(&arr).unwrap();
            assert_eq!(got.ids, reference.ids, "batch ids diverged at {n} shards");
            for (i, (g, w)) in got.outcomes.iter().zip(&reference.outcomes).enumerate() {
                assert_eq!(g.ids, w.ids, "row {i} ids diverged at {n} shards");
                assert_eq!(g.n_blocked, w.n_blocked, "row {i} blocked count at {n} shards");
                assert_eq!(g.n_sure, w.n_sure, "row {i} sure count at {n} shards");
                assert_eq!(g.n_candidates, w.n_candidates, "row {i} candidates at {n} shards");
                assert_eq!(g.n_predicted, w.n_predicted, "row {i} predicted at {n} shards");
                assert_eq!(g.n_flipped, w.n_flipped, "row {i} flipped at {n} shards");
            }
            // One-at-a-time agrees with the batch.
            for i in 0..arr.n_rows() {
                let o = sharded.match_on_arrival(&arr, i).unwrap();
                assert_eq!(o.ids, reference.outcomes[i].ids, "row {i} single at {n} shards");
            }
        }
    }

    #[test]
    fn pushes_route_to_the_home_shard_and_keep_equivalence() {
        let mut single = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        let mut sharded = ShardedMatchService::from_snapshot(snapshot(1.0), 3).unwrap();
        let arr = arrivals();
        let base = corpus();
        for k in 0..6 {
            let row = push_variant(&base, "GROW", k);
            single.push_corpus_row(row.clone()).unwrap();
            let (s, _) = sharded.push_corpus_row(row.clone()).unwrap();
            let key = row[0].render();
            assert_eq!(s, sharded.shard_of(&key), "push routed off the stable hash");
            let want = single.match_batch(&arr).unwrap();
            let got = sharded.match_batch(&arr).unwrap();
            assert_eq!(got.ids, want.ids, "diverged after push {k}");
        }
        assert_eq!(sharded.stats().corpus_rows, single.corpus().n_rows());
    }

    #[test]
    fn swap_is_all_or_nothing_across_shards() {
        let arr = arrivals();
        let mut sharded = ShardedMatchService::from_snapshot(snapshot(1.0), 3).unwrap();
        sharded.record_probes(&arr).unwrap();
        let before = sharded.match_batch(&arr).unwrap();
        assert_eq!(sharded.epoch(), 0);

        // A candidate that only perturbs ONE shard: drop the corpus row a
        // golden probe depends on (ACC1 matches arrival 0 by award number),
        // leaving every other shard's partition byte-identical. Exactly
        // ACC1's home shard must reject — and the rejection must still roll
        // back ALL shards' staged candidates.
        let full = snapshot(1.0);
        let mut pruned = full.clone();
        let kept: Vec<Vec<Value>> = full
            .corpus
            .rows()
            .iter()
            .filter(|r| r[0].render() != "ACC1")
            .cloned()
            .collect();
        pruned.corpus = Table::from_rows("usda", full.corpus.schema().clone(), kept).unwrap();
        let err = sharded.propose_snapshot(pruned).unwrap_err();
        assert!(matches!(err, ServeError::SwapRejected { .. }), "got {err:?}");
        let stats = sharded.stats();
        assert_eq!(stats.staged, 0, "a rejected proposal left a staged candidate behind");
        assert!(sharded.publish_at_boundary().is_none(), "nothing must publish");
        assert_eq!(sharded.epoch(), 0, "rejected proposal advanced an epoch");
        let after = sharded.match_batch(&arr).unwrap();
        assert_eq!(after.ids, before.ids, "rejected proposal changed serving");

        // The identical snapshot passes every shard's probes and publishes
        // epoch-atomically on all of them.
        sharded.propose_snapshot(snapshot(1.0)).unwrap();
        assert_eq!(sharded.stats().staged, 3);
        let reports = sharded.publish_at_boundary().expect("boundary is clear");
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.epoch == 1), "shards published different epochs");
        assert_eq!(sharded.epoch(), 1);
        let after = sharded.match_batch(&arr).unwrap();
        assert_eq!(after.ids, before.ids);
    }

    #[test]
    fn no_publish_while_any_shard_queue_is_nonempty() {
        let arr = arrivals();
        let mut sharded = ShardedMatchService::from_snapshot(snapshot(1.0), 2).unwrap();
        sharded.propose_snapshot(snapshot(1.0)).unwrap();
        // Queue a request on one shard only: the tier is mid-batch, so the
        // boundary is not reached and NO shard may advance.
        sharded.cells[1].service_mut().submit(&arr, 0).unwrap();
        assert!(sharded.publish_at_boundary().is_none(), "published across a live queue");
        assert_eq!(sharded.epoch(), 0);
        sharded.cells[1].service_mut().drain().unwrap();
        let reports = sharded.publish_at_boundary().expect("boundary reached after drain");
        assert_eq!(reports.len(), 2);
        assert_eq!(sharded.epoch(), 1);
    }

    #[test]
    fn checkpoint_recover_round_trips_and_quarantines_per_shard() {
        let dir = std::env::temp_dir().join(format!("em-shard-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let arr = arrivals();

        let mut sharded = ShardedMatchService::from_snapshot(snapshot(1.0), 2).unwrap();
        sharded.checkpoint(&dir).unwrap();
        let base = corpus();
        for k in 0..4 {
            sharded.push_corpus_row(push_variant(&base, "NEW", k)).unwrap();
        }
        let want = sharded.match_batch(&arr).unwrap();

        // Crash: recover from disk alone — WAL replay routes every row home.
        let (recovered, reports) = ShardedMatchService::recover(&dir, 2).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports.iter().map(|r| r.replayed).sum::<usize>(), 4);
        let got = recovered.match_batch(&arr).unwrap();
        assert_eq!(got.ids, want.ids, "recovery changed serving");
        assert_eq!(recovered.stats().corpus_rows, sharded.stats().corpus_rows);

        // Corrupt BOTH shard WALs: each quarantines to its own shard-named
        // destination; repeating the recovery numbers the next rename —
        // no shard ever clobbers another shard's (or its own) evidence.
        for s in 0..2 {
            std::fs::write(dir.join(format!("shard-{s}.wal")), "em-wal v999\ngarbage").unwrap();
        }
        let err = ShardedMatchService::recover(&dir, 2).unwrap_err();
        let ServeError::Quarantined { dest, .. } = err else {
            panic!("expected Quarantined, got {err:?}");
        };
        assert!(dest.ends_with("shard-0.wal.quarantined"), "unexpected dest {dest}");
        std::fs::write(dir.join("shard-0.wal"), "em-wal v999\ngarbage").unwrap();
        let err2 = ShardedMatchService::recover(&dir, 2).unwrap_err();
        let ServeError::Quarantined { dest: dest2, .. } = err2 else {
            panic!("expected Quarantined, got {err2:?}");
        };
        assert!(
            dest2.ends_with("shard-0.wal.quarantined.1"),
            "second quarantine must take a numbered destination, got {dest2}"
        );
        assert!(std::path::Path::new(&dest).exists());
        assert!(std::path::Path::new(&dest2).exists());
        // Shard 1's corrupt WAL is still in place, untouched by shard 0's
        // quarantines: with shard 0's log moved aside, the next recovery
        // reaches shard 1 and quarantines at shard 1's own destination —
        // the shard id in the filename makes collision impossible.
        let err3 = ShardedMatchService::recover(&dir, 2).unwrap_err();
        let ServeError::Quarantined { dest: dest3, .. } = err3 else {
            panic!("expected Quarantined, got {err3:?}");
        };
        assert!(
            dest3.ends_with("shard-1.wal.quarantined"),
            "shard 1 quarantine collided or missed: {dest3}"
        );
        // With every bad WAL moved aside, recovery succeeds from the
        // checkpoints (the logged pushes are lost with their logs).
        let (recovered2, _) = ShardedMatchService::recover(&dir, 2).unwrap();
        assert_eq!(recovered2.stats().corpus_rows, corpus().n_rows());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
