//! # em-serve — online matching over frozen workflow snapshots
//!
//! The case study ends with a *deployed* match list, but deployment is
//! where the paper's story begins again: new UMETRICS records keep
//! arriving (Section 10's "new data" complication), and re-running the
//! whole batch pipeline per record is wasteful. This crate turns the
//! trained batch workflow into an online service:
//!
//! - [`WorkflowSnapshot`]: the trained artifacts — blocking plan, feature
//!   plan, fitted model, rule set, threshold, and the right-hand corpus —
//!   frozen into one versioned text artifact. Loading a snapshot
//!   reproduces batch predictions **bit-identically**.
//! - [`MatchService`]: matches arriving records one at a time
//!   ([`MatchService::match_on_arrival`]) or as deterministic
//!   micro-batches ([`MatchService::match_batch`]), behind a bounded
//!   admission queue, with per-request stage timings. Blocking probes an
//!   [`em_blocking::IncrementalIndex`] plus hash-join indexes, which are
//!   property-tested equal to from-scratch batch blocking.
//! - [`ServeError`]: typed failures — a corrupt or truncated snapshot is
//!   an error value (and is quarantined to `<path>.quarantined` by
//!   [`WorkflowSnapshot::load_quarantining`]), never a panic.
//!
//! ```
//! use em_serve::{MatchService, WorkflowSnapshot};
//! use em_core::pipeline::{CaseStudy, CaseStudyConfig};
//!
//! let artifacts = CaseStudy::new(CaseStudyConfig::small())
//!     .train_serving_artifacts()
//!     .unwrap();
//! let snapshot = WorkflowSnapshot::from_artifacts(&artifacts);
//! let service = MatchService::from_snapshot(snapshot).unwrap();
//! let outcome = service.match_on_arrival(&artifacts.extra_umetrics, 0).unwrap();
//! assert!(outcome.n_blocked >= outcome.n_candidates);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod chaos;
pub mod error;
pub mod hot;
pub mod loadgen;
pub mod overload;
pub mod sched;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod swap;
#[doc(hidden)]
pub mod testkit;
pub mod wal;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use error::ServeError;
pub use hot::{derive_feature_mask, ProbeScratch};
pub use loadgen::{run_open_loop, run_sweep, LoadConfig, LoadReport, SweepConfig, SweepReport};
pub use overload::{DrainOutcome, OverloadPolicy, ServeMode};
pub use sched::{BatchPolicy, BatchTrigger, ClosedBatch, MicroBatcher};
pub use service::{
    BatchOutcome, MatchOutcome, MatchService, RecoveryReport, RequestTimings, ServiceStats,
};
pub use shard::{shard_of_key, ShardStats, ShardedMatchService};
pub use snapshot::{quarantine_path, WorkflowSnapshot, SNAPSHOT_VERSION};
pub use swap::{GoldenProbeSet, SnapshotCell, SwapReport};
pub use wal::{read_wal, read_wal_text, WalReplay, WalWriter, WAL_VERSION};
