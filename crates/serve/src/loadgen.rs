//! Open-loop load generator: seeded Poisson-style arrivals driving the
//! micro-batched sharded tier, with virtual-time latency percentiles.
//!
//! ## The model
//!
//! Arrivals are an **open-loop** process — the generator never waits for
//! a response before sending the next request, so saturation shows up as
//! real queueing delay instead of the coordinated-omission flattening a
//! closed loop produces. Inter-arrival gaps are exponential draws from
//! the vendored `rand` (`StdRng`, fixed seed), approximating a Poisson
//! arrival process at the configured rate.
//!
//! Time is **virtual**: the arrival clock, batch-close deadlines, and
//! queueing delays all live on one virtual millisecond axis, so the
//! arrival schedule is bit-reproducible from the seed. The only wall
//! clock in the loop is the *measured service time* of each executed
//! batch — shard `s`'s scatter leg is timed for real
//! ([`ShardedMatchService::match_rows_timed`]), and the batch's virtual
//! service time is the **max across shards**, i.e. the tier is modeled
//! as one core per shard (the shards really do run their legs
//! independently; measuring them sequentially keeps the per-shard numbers
//! clean on any host, including single-core CI boxes). Batches execute
//! FIFO on that virtual tier: `start = max(close_time, server_free)`,
//! `completion = start + max_shard_ms`, and a request's latency is
//! `completion − arrival`.
//!
//! Every determinism guarantee of the serve tier is unaffected: the load
//! run *measures* wall time but the match output it produces is still
//! bit-identical to the single-instance service.

use crate::error::ServeError;
use crate::overload::OverloadPolicy;
use crate::sched::{BatchPolicy, MicroBatcher};
use crate::shard::ShardedMatchService;
use em_table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One open-loop run at a fixed offered rate.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Seed of the arrival process.
    pub seed: u64,
    /// Offered arrival rate, requests per second (virtual).
    pub rate_per_s: f64,
    /// Arrivals to generate.
    pub n_requests: usize,
    /// Batch-close policy of the scheduler in front of the tier.
    pub batch: BatchPolicy,
    /// Admission overload policy (per-shard depth vs the shed watermark).
    pub overload: OverloadPolicy,
}

/// What one open-loop run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Offered rate, requests per second.
    pub offered_per_s: f64,
    /// Arrivals generated.
    pub arrivals: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests shed at the admission watermark.
    pub shed: usize,
    /// Median virtual-time latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile virtual-time latency (ms).
    pub p99_ms: f64,
    /// 99.9th-percentile virtual-time latency (ms).
    pub p999_ms: f64,
    /// Worst virtual-time latency (ms).
    pub max_ms: f64,
    /// Completed requests per virtual second.
    pub achieved_per_s: f64,
    /// Per-shard busy fraction of the virtual makespan, shard order.
    pub occupancy: Vec<f64>,
    /// Batches closed by the size trigger.
    pub size_closed: u64,
    /// Batches closed by the deadline trigger.
    pub deadline_closed: u64,
    /// Batches closed by the end-of-stream flush.
    pub flush_closed: u64,
    /// Batches executed.
    pub batches: usize,
    /// Mean rows per executed batch.
    pub mean_batch_rows: f64,
}

/// A rate sweep over one tier shape.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seed of every run's arrival process.
    pub seed: u64,
    /// Arrivals per run.
    pub n_requests: usize,
    /// Offered rates to run, requests per second, ascending.
    pub rates: Vec<f64>,
    /// Batch-close policy.
    pub batch: BatchPolicy,
    /// Admission overload policy.
    pub overload: OverloadPolicy,
}

/// The sweep's runs plus its saturation summary.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One report per offered rate, in sweep order.
    pub runs: Vec<LoadReport>,
    /// Saturation throughput: the highest achieved completion rate across
    /// the sweep (requests per virtual second).
    pub saturation_per_s: f64,
}

/// The `p`-quantile (0..=1) of `sorted` (ascending). 0.0 when empty.
fn quantile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    let idx = rank.saturating_sub(1).min(sorted.len() - 1);
    sorted[idx]
}

/// Drives one open-loop run against `service`, cycling arrival rows from
/// `arrivals` (request `k` serves row `k % n_rows`). See the module docs
/// for the virtual-time queueing model.
pub fn run_open_loop(
    service: &ShardedMatchService,
    arrivals: &Table,
    cfg: &LoadConfig,
) -> Result<LoadReport, ServeError> {
    if arrivals.n_rows() == 0 {
        return Err(ServeError::Pipeline("load run needs at least one arrival row".into()));
    }
    if cfg.rate_per_s.is_nan() || cfg.rate_per_s <= 0.0 {
        return Err(ServeError::Pipeline(format!(
            "offered rate must be positive, got {}",
            cfg.rate_per_s
        )));
    }
    let n_shards = service.n_shards();
    let mut batcher = MicroBatcher::new(cfg.batch, cfg.overload, n_shards);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut now_ms = 0.0f64;
    let mut server_free = 0.0f64;
    let mut busy_ms = vec![0.0f64; n_shards];
    let mut latencies: Vec<f64> = Vec::with_capacity(cfg.n_requests);
    // Rows admitted into batches whose virtual completion lies in the
    // future of the current arrival clock: (completion_ms, rows).
    let mut in_flight: Vec<(f64, usize)> = Vec::new();
    let mut batches = 0usize;
    let mut batch_rows_total = 0usize;
    let mut makespan = 0.0f64;

    let execute_ready = |batcher: &mut MicroBatcher,
                             server_free: &mut f64,
                             busy_ms: &mut [f64],
                             latencies: &mut Vec<f64>,
                             in_flight: &mut Vec<(f64, usize)>,
                             batches: &mut usize,
                             batch_rows_total: &mut usize,
                             makespan: &mut f64|
     -> Result<(), ServeError> {
        while let Some(batch) = batcher.pop_closed() {
            let start = server_free.max(batch.closed_ms);
            let (_outcome, shard_ms) = service.match_rows_timed(arrivals, &batch.rows)?;
            let service_ms = shard_ms.iter().cloned().fold(0.0f64, f64::max);
            let completion = start + service_ms;
            *server_free = completion;
            *makespan = makespan.max(completion);
            for (s, ms) in shard_ms.iter().enumerate() {
                busy_ms[s] += ms;
            }
            for &arrived in &batch.arrived_ms {
                latencies.push(completion - arrived);
            }
            in_flight.push((completion, batch.rows.len()));
            *batches += 1;
            *batch_rows_total += batch.rows.len();
        }
        Ok(())
    };

    for k in 0..cfg.n_requests {
        // Exponential inter-arrival gap at the offered rate.
        let u: f64 = rng.gen::<f64>();
        let gap_ms = -(1.0 - u).ln() / cfg.rate_per_s * 1e3;
        now_ms += gap_ms;
        makespan = makespan.max(now_ms);
        in_flight.retain(|&(completion, _)| completion > now_ms);
        let in_flight_rows: usize = in_flight.iter().map(|&(_, rows)| rows).sum();
        let row = k % arrivals.n_rows();
        // Open loop: a shed arrival is gone (no retry feedback loop); the
        // batcher counts it and quotes the deterministic backoff a real
        // client would honor.
        let _ = batcher.submit_at(row, now_ms, in_flight_rows, 0);
        execute_ready(
            &mut batcher,
            &mut server_free,
            &mut busy_ms,
            &mut latencies,
            &mut in_flight,
            &mut batches,
            &mut batch_rows_total,
            &mut makespan,
        )?;
    }
    batcher.flush(now_ms);
    execute_ready(
        &mut batcher,
        &mut server_free,
        &mut busy_ms,
        &mut latencies,
        &mut in_flight,
        &mut batches,
        &mut batch_rows_total,
        &mut makespan,
    )?;

    let completed = latencies.len();
    let shed = batcher.shed() as usize;
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let makespan = makespan.max(f64::EPSILON);
    Ok(LoadReport {
        offered_per_s: cfg.rate_per_s,
        arrivals: cfg.n_requests,
        completed,
        shed,
        p50_ms: quantile(&latencies, 0.50),
        p99_ms: quantile(&latencies, 0.99),
        p999_ms: quantile(&latencies, 0.999),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        achieved_per_s: completed as f64 / makespan * 1e3,
        occupancy: busy_ms.iter().map(|&b| b / makespan).collect(),
        size_closed: batcher.size_closed(),
        deadline_closed: batcher.deadline_closed(),
        flush_closed: batcher.flush_closed(),
        batches,
        mean_batch_rows: batch_rows_total as f64 / (batches.max(1)) as f64,
    })
}

/// Runs the rate sweep and summarizes saturation (the best achieved
/// completion rate anywhere in the sweep — at offered rates far above
/// capacity the tier is fully busy, so this is its service capacity).
pub fn run_sweep(
    service: &ShardedMatchService,
    arrivals: &Table,
    cfg: &SweepConfig,
) -> Result<SweepReport, ServeError> {
    let mut runs = Vec::with_capacity(cfg.rates.len());
    for &rate in &cfg.rates {
        let run = run_open_loop(
            service,
            arrivals,
            &LoadConfig {
                seed: cfg.seed,
                rate_per_s: rate,
                n_requests: cfg.n_requests,
                batch: cfg.batch,
                overload: cfg.overload,
            },
        )?;
        runs.push(run);
    }
    let saturation_per_s = runs.iter().map(|r| r.achieved_per_s).fold(0.0f64, f64::max);
    Ok(SweepReport { runs, saturation_per_s })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{arrivals, snapshot};
    use em_core::resilience::RetryPolicy;

    fn tier(n: usize) -> ShardedMatchService {
        ShardedMatchService::from_snapshot(snapshot(1.0), n).unwrap()
    }

    fn cfg(rate: f64) -> LoadConfig {
        LoadConfig {
            seed: 7,
            rate_per_s: rate,
            n_requests: 200,
            batch: BatchPolicy::default(),
            overload: OverloadPolicy::unbounded(),
        }
    }

    #[test]
    fn arrival_schedule_is_seed_deterministic() {
        // Same seed -> same shed/admission split and same batch shapes
        // (latencies vary with measured wall time; the schedule does not).
        let svc = tier(2);
        let arr = arrivals();
        let a = run_open_loop(&svc, &arr, &cfg(500.0)).unwrap();
        let b = run_open_loop(&svc, &arr, &cfg(500.0)).unwrap();
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.size_closed, b.size_closed);
        assert_eq!(a.batches, b.batches);
    }

    #[test]
    fn accounting_identity_and_ordered_percentiles() {
        for shards in [1, 3] {
            let svc = tier(shards);
            let arr = arrivals();
            let r = run_open_loop(&svc, &arr, &cfg(2_000.0)).unwrap();
            assert_eq!(r.completed + r.shed, r.arrivals, "admission ledger leaked");
            assert!(r.completed > 0, "nothing completed");
            assert!(r.p50_ms <= r.p99_ms && r.p99_ms <= r.p999_ms && r.p999_ms <= r.max_ms);
            assert!(r.achieved_per_s > 0.0);
            assert_eq!(r.occupancy.len(), shards);
            for &o in &r.occupancy {
                assert!((0.0..=1.0 + 1e-9).contains(&o), "occupancy out of range: {o}");
            }
            let closes = r.size_closed + r.deadline_closed + r.flush_closed;
            assert_eq!(closes as usize, r.batches, "trigger attribution must cover batches");
        }
    }

    #[test]
    fn watermark_sheds_under_a_flood() {
        let svc = tier(2);
        let arr = arrivals();
        let overload = OverloadPolicy {
            shed_watermark: 2,
            deadline_budget_ms: 1_000,
            degrade_watermark: 0,
            retry: RetryPolicy::default(),
        };
        let mut c = cfg(1e9);
        c.overload = overload;
        // At an absurd offered rate with a tiny watermark, most arrivals
        // land inside one batch window and the backlog sheds hard.
        let r = run_open_loop(&svc, &arr, &c).unwrap();
        assert!(r.shed > 0, "flood never hit the watermark");
        assert_eq!(r.completed + r.shed, r.arrivals);
    }

    #[test]
    fn sweep_saturation_is_the_best_achieved_rate() {
        let svc = tier(1);
        let arr = arrivals();
        let sweep = run_sweep(
            &svc,
            &arr,
            &SweepConfig {
                seed: 7,
                n_requests: 120,
                rates: vec![100.0, 10_000.0],
                batch: BatchPolicy::default(),
                overload: OverloadPolicy::unbounded(),
            },
        )
        .unwrap();
        assert_eq!(sweep.runs.len(), 2);
        let best = sweep.runs.iter().map(|r| r.achieved_per_s).fold(0.0f64, f64::max);
        assert_eq!(sweep.saturation_per_s, best);
        assert!(sweep.saturation_per_s > 0.0);
    }

    #[test]
    fn load_run_output_stays_bit_identical_to_single_instance() {
        // The load path runs real matches; spot-check the merged output of
        // one executed batch equals the single-instance verdicts.
        let svc = tier(4);
        let arr = arrivals();
        let single = crate::service::MatchService::from_snapshot(snapshot(1.0)).unwrap();
        let want = single.match_batch(&arr).unwrap();
        let rows: Vec<usize> = (0..arr.n_rows()).collect();
        let (got, shard_ms) = svc.match_rows_timed(&arr, &rows).unwrap();
        assert_eq!(got.ids, want.ids);
        assert_eq!(shard_ms.len(), 4);
    }
}
