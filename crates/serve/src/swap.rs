//! Epoch-based snapshot hot-swap: retrain offline, validate against golden
//! probes, publish at a deterministic request boundary — or roll back and
//! quarantine.
//!
//! ## The swap protocol
//!
//! 1. **Propose.** A candidate [`WorkflowSnapshot`] (typically a fresh
//!    retrain) is built into a full [`MatchService`] off to the side — the
//!    live service keeps serving untouched.
//! 2. **Validate.** The candidate must reproduce every expected outcome of
//!    the cell's [`GoldenProbeSet`]. A divergence is a typed
//!    [`ServeError::SwapRejected`] naming the first failing probe; the
//!    candidate is dropped (rollback is a no-op because the live service
//!    was never touched), and when the candidate came from disk, the
//!    artifact is quarantined like any other corrupt snapshot.
//! 3. **Stage.** A validated candidate waits in the cell. Nothing about
//!    the live service changes yet.
//! 4. **Publish at a boundary.** [`SnapshotCell::publish_at_boundary`]
//!    swaps only when the admission queue is empty — the deterministic
//!    request boundary. Every queued or in-flight request therefore
//!    finishes on the epoch that admitted it; the first request admitted
//!    after the swap runs on `epoch + 1`. The lineage's monotonic counters
//!    and overload policy migrate to the new epoch; its WAL does **not**
//!    (the new corpus supersedes the old log), so callers should
//!    [`MatchService::checkpoint`] right after a publish.
//!
//! Epochs are counted, reported in every
//! [`MatchOutcome`](crate::MatchOutcome), and surfaced in
//! [`ServiceStats`](crate::ServiceStats), so an auditor can attribute any
//! served result to the exact snapshot generation that produced it.

use crate::error::ServeError;
use crate::overload::ServeMode;
use crate::service::MatchService;
use crate::snapshot::{quarantine_path, WorkflowSnapshot};
use em_core::MatchIds;
use em_table::Table;
use std::path::Path;
use std::time::Instant;

/// A fixed set of probe arrivals with their expected match ids — the
/// acceptance gate a candidate snapshot must pass before publication.
#[derive(Debug, Clone)]
pub struct GoldenProbeSet {
    arrivals: Table,
    expected: Vec<MatchIds>,
}

impl GoldenProbeSet {
    /// A probe set with externally curated expectations (`expected[i]` is
    /// the required outcome for row `i` of `arrivals`).
    pub fn new(arrivals: Table, expected: Vec<MatchIds>) -> Result<GoldenProbeSet, ServeError> {
        if arrivals.n_rows() != expected.len() {
            return Err(ServeError::Pipeline(format!(
                "golden probe set has {} arrivals but {} expectations",
                arrivals.n_rows(),
                expected.len()
            )));
        }
        Ok(GoldenProbeSet { arrivals, expected })
    }

    /// Freezes the *current* behavior of `service` over `arrivals` as the
    /// expectations — the right gate when candidates are supposed to be
    /// behavior-preserving (checkpoint reloads, corpus-identical rebuilds).
    /// Probes run on the uncounted path, so recording does not perturb
    /// [`ServiceStats`](crate::ServiceStats).
    pub fn record(service: &MatchService, arrivals: Table) -> Result<GoldenProbeSet, ServeError> {
        let mut expected = Vec::with_capacity(arrivals.n_rows());
        for i in 0..arrivals.n_rows() {
            expected.push(service.match_row_uncounted(&arrivals, i, ServeMode::Full)?.ids);
        }
        Ok(GoldenProbeSet { arrivals, expected })
    }

    /// Number of probes.
    pub fn len(&self) -> usize {
        self.expected.len()
    }

    /// Whether the set has no probes (validation then accepts anything —
    /// the caller has explicitly opted out of gating).
    pub fn is_empty(&self) -> bool {
        self.expected.is_empty()
    }

    /// Checks every probe against `candidate` (uncounted), failing with
    /// [`ServeError::SwapRejected`] at the first divergence or probe error.
    pub fn validate(&self, candidate: &MatchService) -> Result<(), ServeError> {
        for (i, want) in self.expected.iter().enumerate() {
            let got = candidate
                .match_row_uncounted(&self.arrivals, i, ServeMode::Full)
                .map_err(|e| ServeError::SwapRejected {
                    probe: i,
                    detail: format!("probe failed to serve: {e}"),
                })?;
            if got.ids != *want {
                return Err(ServeError::SwapRejected {
                    probe: i,
                    detail: format!(
                        "ids diverged: candidate produced {} match(es), expected {}",
                        got.ids.len(),
                        want.len()
                    ),
                });
            }
        }
        Ok(())
    }
}

/// What one published swap did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapReport {
    /// Epoch the lineage moved to.
    pub epoch: u64,
    /// Golden probes the candidate passed.
    pub probes: usize,
    /// Corpus rows of the published service.
    pub corpus_rows: usize,
    /// Wall-clock time from proposal to validation verdict —
    /// observability only, excluded from every determinism guarantee.
    pub validate_ms: f64,
    /// Wall-clock time of the publish itself (counter migration + swap).
    pub publish_ms: f64,
}

/// The arc-swap-style holder of the live service: candidates are
/// validated and staged off to the side, then atomically (from the
/// request path's point of view: between drains, never mid-batch)
/// exchanged for the live service at a queue-empty boundary.
pub struct SnapshotCell {
    current: MatchService,
    staged: Option<(MatchService, f64)>,
    probes: GoldenProbeSet,
    history: Vec<SwapReport>,
}

impl SnapshotCell {
    /// Wraps a live service with its acceptance gate.
    pub fn new(service: MatchService, probes: GoldenProbeSet) -> SnapshotCell {
        SnapshotCell { current: service, staged: None, probes, history: Vec::new() }
    }

    /// The live service.
    pub fn service(&self) -> &MatchService {
        &self.current
    }

    /// The live service, mutably (submissions, drains, pushes).
    pub fn service_mut(&mut self) -> &mut MatchService {
        &mut self.current
    }

    /// Unwraps the cell, dropping any staged candidate.
    pub fn into_service(self) -> MatchService {
        self.current
    }

    /// Whether a validated candidate is waiting for a boundary.
    pub fn has_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// Reports of every published swap, oldest first.
    pub fn history(&self) -> &[SwapReport] {
        &self.history
    }

    /// Replaces the acceptance gate (e.g. re-freezing current behavior
    /// after a corpus push made the old expectations stale).
    pub fn set_probes(&mut self, probes: GoldenProbeSet) {
        self.probes = probes;
    }

    /// Drops any staged candidate without publishing it — the rollback
    /// half of an all-or-nothing multi-cell swap
    /// ([`crate::shard::ShardedMatchService::propose_snapshot`]): when a
    /// peer cell rejects its part of a proposal, every sibling abandons
    /// its own validated stage so no cell can publish ahead of the group.
    pub fn abandon_staged(&mut self) {
        self.staged = None;
    }

    /// Builds, validates, and stages a candidate snapshot. On failure the
    /// live service and any previously staged candidate are untouched
    /// (rollback is the absence of publication); the error names the
    /// failing probe. A newly validated candidate replaces an older staged
    /// one — last validated proposal wins the next boundary.
    pub fn propose(&mut self, snapshot: WorkflowSnapshot) -> Result<(), ServeError> {
        let t0 = Instant::now();
        let candidate = MatchService::from_snapshot(snapshot)?;
        self.probes.validate(&candidate)?;
        self.staged = Some((candidate, t0.elapsed().as_secs_f64() * 1e3));
        Ok(())
    }

    /// [`SnapshotCell::propose`] from an on-disk artifact. A snapshot that
    /// fails to *decode* is quarantined by
    /// [`WorkflowSnapshot::load_quarantining`]; one that decodes but fails
    /// golden-probe validation is quarantined here for the same reason —
    /// a supervisor must not retry a rejected artifact in a loop. Either
    /// way the returned [`ServeError::Quarantined`] names the destination.
    pub fn propose_from_path(&mut self, path: &Path) -> Result<(), ServeError> {
        let snapshot = WorkflowSnapshot::load_quarantining(path)?;
        match self.propose(snapshot) {
            Ok(()) => Ok(()),
            Err(e @ ServeError::SwapRejected { .. }) => {
                let dest = quarantine_path(path);
                let _ = std::fs::rename(path, &dest);
                Err(ServeError::Quarantined {
                    dest: dest.display().to_string(),
                    cause: Box::new(e),
                })
            }
            Err(other) => Err(other),
        }
    }

    /// Publishes the staged candidate **iff** one exists and the admission
    /// queue is empty (the deterministic request boundary); otherwise a
    /// no-op returning `None`. On publish, the new epoch is the old plus
    /// one; monotonic counters, overload policy, queue capacity, and the
    /// submission sequence migrate so the lineage's accounting is
    /// continuous across the swap. The old service (and its WAL handle)
    /// is dropped — checkpoint the new service to make the swap durable.
    pub fn publish_at_boundary(&mut self) -> Option<SwapReport> {
        if self.current.queue_len() > 0 {
            return None;
        }
        let (mut next, validate_ms) = self.staged.take()?;
        let t0 = Instant::now();
        next.counters.adopt(&self.current.counters);
        next.epoch = self.current.epoch + 1;
        next.policy = self.current.policy;
        next.queue_capacity = self.current.queue_capacity;
        next.next_seq = self.current.next_seq;
        let report = SwapReport {
            epoch: next.epoch,
            probes: self.probes.len(),
            corpus_rows: next.corpus().n_rows(),
            validate_ms,
            publish_ms: t0.elapsed().as_secs_f64() * 1e3,
        };
        self.current = next;
        self.history.push(report);
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::tests::{arrivals, corpus as fixture_corpus, snapshot};
    use em_table::Value;

    #[test]
    fn golden_probes_accept_identical_and_reject_divergent_candidates() {
        let service = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        let probes = GoldenProbeSet::record(&service, arrivals()).unwrap();
        assert_eq!(probes.len(), arrivals().n_rows());

        // A behavior-identical rebuild (round-tripped snapshot) passes.
        let same = MatchService::from_snapshot(
            WorkflowSnapshot::decode(&snapshot(1.0).encode()).unwrap(),
        )
        .unwrap();
        probes.validate(&same).unwrap();

        // A candidate whose model flips every prediction diverges.
        let broken = MatchService::from_snapshot(snapshot(0.0)).unwrap();
        let err = probes.validate(&broken).unwrap_err();
        assert!(matches!(err, ServeError::SwapRejected { .. }), "got {err:?}");
    }

    #[test]
    fn queued_requests_finish_on_their_admission_epoch() {
        // Empty probe set: both models are acceptable, so the swap is
        // gated purely by the request boundary.
        let service = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        let probes =
            GoldenProbeSet::new(Table::new("probes", arrivals().schema().clone()), Vec::new())
                .unwrap();
        let mut cell = SnapshotCell::new(service, probes);
        let arr = arrivals();

        // Queue two requests on epoch 0, then stage a candidate that
        // predicts nothing (proba 0.0).
        cell.service_mut().submit(&arr, 0).unwrap();
        cell.service_mut().submit(&arr, 2).unwrap();
        cell.propose(snapshot(0.0)).unwrap();
        assert!(cell.has_staged());

        // The queue is non-empty: no boundary, no swap.
        assert!(cell.publish_at_boundary().is_none());
        assert_eq!(cell.service().epoch(), 0);

        // Drain: the queued requests are served by the *old* model on the
        // admission epoch.
        let drained = cell.service_mut().drain().unwrap();
        assert_eq!(drained.outcomes.len(), 2);
        for o in &drained.outcomes {
            assert_eq!(o.epoch, 0, "queued request served on a later epoch");
        }
        let old_ids = drained.ids.clone();
        assert!(!old_ids.is_empty(), "proba-1.0 fixture must match something");

        // Now the boundary is real: the swap publishes, epoch advances,
        // counters migrate.
        let before = cell.service().stats();
        let report = cell.publish_at_boundary().expect("staged swap must publish");
        assert_eq!(report.epoch, 1);
        let after = cell.service().stats();
        assert_eq!(after.epoch, 1);
        assert_eq!(after.admitted, before.admitted, "counters must migrate");
        assert_eq!(after.completed, before.completed);

        // Requests after the boundary run on the new epoch and the new
        // model (proba 0.0 → sure matches only).
        let o = cell.service().match_on_arrival(&arr, 0).unwrap();
        assert_eq!(o.epoch, 1);
        assert_eq!(o.n_predicted, 0, "new model must predict nothing");
    }

    #[test]
    fn rejected_disk_candidate_is_quarantined_and_live_service_untouched() {
        let dir = std::env::temp_dir().join(format!("em-swap-q-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("candidate.emsnap");

        let service = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        let probes = GoldenProbeSet::record(&service, arrivals()).unwrap();
        let mut cell = SnapshotCell::new(service, probes);

        // A semantically broken candidate: decodes fine, diverges on the
        // probes. It must be rejected AND moved aside.
        snapshot(0.0).save(&path).unwrap();
        let err = cell.propose_from_path(&path).unwrap_err();
        let ServeError::Quarantined { dest, cause } = err else {
            panic!("expected Quarantined, got {err:?}");
        };
        assert!(matches!(*cause, ServeError::SwapRejected { .. }));
        assert!(!path.exists(), "rejected artifact still in place");
        assert!(std::path::Path::new(&dest).exists());
        assert!(!cell.has_staged());
        assert_eq!(cell.service().epoch(), 0);
        assert!(cell.publish_at_boundary().is_none(), "nothing staged must publish");

        // A byte-corrupt candidate takes the decode-quarantine path.
        std::fs::write(&path, "em-snapshot v1 5\njunk").unwrap();
        let err = cell.propose_from_path(&path).unwrap_err();
        assert!(matches!(err, ServeError::Quarantined { .. }), "got {err:?}");
        assert!(!path.exists());

        // The live service still serves exactly as before.
        let o = cell.service().match_on_arrival(&arrivals(), 0).unwrap();
        assert!(!o.ids.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn swapping_in_a_grown_corpus_serves_the_new_rows() {
        // The retrain-with-more-data story: candidate = live state plus
        // one new corpus row, frozen via to_snapshot.
        let mut grown = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        let extra = vec![
            Value::Str("ACC5".into()),
            Value::Str("7777-66666-55555".into()),
            Value::Null,
            Value::Str("corn fungicide guidelines appendix".into()),
        ];
        grown.push_corpus_row(extra).unwrap();
        let candidate = grown.to_snapshot();
        assert_eq!(candidate.corpus.n_rows(), fixture_corpus().n_rows() + 1);

        let service = MatchService::from_snapshot(snapshot(1.0)).unwrap();
        // Probe on a row whose outcome the new corpus row does not change
        // (arrival 1 matches by project number only).
        let mut probe_rows = Table::new("probes", arrivals().schema().clone());
        probe_rows
            .push_row(arrivals().row(1).unwrap().values().to_vec())
            .unwrap();
        let probes = GoldenProbeSet::record(&service, probe_rows).unwrap();
        let mut cell = SnapshotCell::new(service, probes);
        cell.propose(candidate).unwrap();
        let report = cell.publish_at_boundary().expect("boundary is clear");
        assert_eq!(report.epoch, 1);
        assert_eq!(report.corpus_rows, fixture_corpus().n_rows() + 1);
        assert_eq!(cell.service().stats().corpus_rows, fixture_corpus().n_rows() + 1);
    }
}
