//! Seeded chaos harness: drive the serve tier through crashes, torn WAL
//! tails, corrupt snapshots, latency spikes, and arrival bursts — then
//! prove nothing was lost.
//!
//! The harness mirrors PR 1's batch-side fault injection
//! (`em_core::resilience`) for the serve tier. Everything is derived from
//! one seed through [`fault_draw`], and every clock is **virtual**: ticks
//! and milliseconds advance by arithmetic, never by sleeping, so a chaos
//! run is exactly reproducible and fast.
//!
//! A run has two phases:
//!
//! - **Phase A — durable growth.** `n_pushes` deterministic corpus rows
//!   (clones of existing rows under fresh accession numbers) are pushed
//!   through the WAL. After any push the process may "crash" (the service
//!   is dropped), optionally tearing the WAL tail mid-record; recovery
//!   must rebuild the exact prefix state and the harness re-pushes the
//!   rest. The phase ends with a checkpoint, freezing the fully-grown
//!   corpus.
//! - **Phase B — open-loop serving.** Arrivals are submitted on a virtual
//!   clock (one per tick, plus seeded bursts), drained every tick,
//!   retried on shed/reject with the service's quoted backoff, and
//!   periodically hot-swapped (`swap_every`) through candidate snapshots
//!   that are sometimes byte-corrupt (quarantined at decode) or
//!   semantically broken (rejected by golden probes, then quarantined).
//!   Crashes can strike between drains; the harness resubmits the queued
//!   requests the crash destroyed after recovery.
//!
//! The report asserts the three robustness invariants of the issue: **no
//! panics** (everything is a typed [`ServeError`]), **a terminal outcome
//! for every request** (served or shed after bounded retries), and
//! **bit-identity**: every served outcome equals the fault-free shadow
//! service's outcome for that arrival (full or rules-only, per its mode),
//! and a final crash + recover reproduces the shadow's corpus and probes.

use crate::error::ServeError;
use crate::overload::{OverloadPolicy, ServeMode};
use crate::service::{MatchService, ACCESSION_COL};
use crate::shard::ShardedMatchService;
use crate::snapshot::WorkflowSnapshot;
use crate::swap::{GoldenProbeSet, SnapshotCell};
use crate::wal::read_wal;
use em_core::resilience::{fault_draw, RetryPolicy, ServeFaultPlan};
use em_core::MatchIds;
use em_rules::RuleSetDesc;
use em_table::{Table, Value};
use std::path::{Path, PathBuf};

/// Ticks after which a run is declared non-terminating (a harness bug,
/// not a service property — bounded retries guarantee termination).
const MAX_TICKS: u64 = 1_000_000;

/// Configuration of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed; every fault decision hashes it with a site key.
    pub seed: u64,
    /// Serve-side fault probabilities and shapes.
    pub faults: ServeFaultPlan,
    /// Corpus rows pushed (through the WAL) in phase A.
    pub n_pushes: usize,
    /// Total admission attempts per arrival before a terminal shed.
    pub max_attempts: u32,
    /// Hard queue bound of the service under test.
    pub queue_capacity: usize,
    /// Overload watermarks/budgets of the service under test.
    pub policy: OverloadPolicy,
    /// Shard count for the post-run sharded-serving audit: the recovered
    /// state is re-partitioned across this many shards and every arrival
    /// must match the fault-free shadow bit-identically. `0` skips the
    /// audit.
    pub shards: usize,
    /// Directory holding the checkpoint snapshot, WAL, and candidates.
    pub dir: PathBuf,
}

impl ChaosConfig {
    /// A stress-everything default: tight queue, short deadlines, every
    /// fault channel active. Deterministic in `seed`.
    pub fn new(seed: u64, dir: PathBuf) -> ChaosConfig {
        ChaosConfig {
            seed,
            faults: ServeFaultPlan {
                p_crash: 0.04,
                p_torn_tail: 0.6,
                p_snapshot_corrupt: 0.5,
                p_latency_spike: 0.12,
                latency_spike_ms: 64,
                p_burst: 0.18,
                burst_len: 6,
                swap_every: 16,
            },
            n_pushes: 24,
            max_attempts: 6,
            queue_capacity: 24,
            policy: OverloadPolicy {
                shed_watermark: 16,
                deadline_budget_ms: 48,
                degrade_watermark: 8,
                retry: RetryPolicy {
                    max_retries: 6,
                    base_delay_ms: 4,
                    max_delay_ms: 64,
                    jitter_seed: seed,
                },
            },
            shards: 2,
            dir,
        }
    }
}

/// The ledger of one chaos run. Wall-clock fields (`*_ms*`) are
/// observability only; every other field is deterministic in the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Seed the run was driven by.
    pub seed: u64,
    /// Arrival requests driven through the service.
    pub arrivals: usize,
    /// Arrivals that reached a served outcome.
    pub completed: u64,
    /// Arrivals that reached a terminal shed (attempts exhausted).
    pub shed: u64,
    /// Retry submissions performed after a shed/reject/crash.
    pub retried: u64,
    /// `QueueFull` rejections observed at the hard bound.
    pub queue_full: u64,
    /// Served outcomes that were scored in the rules-only degraded mode.
    pub degraded: u64,
    /// Simulated crashes (service dropped mid-run).
    pub crashes: u64,
    /// Successful recoveries (always equals `crashes` + the final audit).
    pub recoveries: u64,
    /// WAL records replayed across all recoveries.
    pub wal_records_replayed: u64,
    /// Torn WAL tails dropped and truncated across all recoveries.
    pub torn_tails_repaired: u64,
    /// Candidate snapshots validated and published.
    pub swaps: u64,
    /// Candidates that decoded but failed golden-probe validation.
    pub swap_rollbacks: u64,
    /// Candidate artifacts quarantined (byte-corrupt or rejected).
    pub snapshots_quarantined: u64,
    /// Total wall-clock recovery time (ms) across all recoveries.
    pub recovery_ms_total: f64,
    /// Slowest single recovery (ms).
    pub recovery_ms_max: f64,
    /// Slowest single swap, validation + publish (ms).
    pub swap_latency_ms_max: f64,
    /// Whether every served outcome matched the fault-free shadow run and
    /// the final crash + recover reproduced the shadow state.
    pub bit_identical: bool,
    /// Whether every arrival reached a terminal outcome (served or shed).
    pub terminal_outcomes: bool,
    /// Snapshot epoch at the end of the run.
    pub final_epoch: u64,
    /// Shard count of the post-run sharded-serving audit (0 = skipped).
    pub shards: usize,
    /// Arrivals replayed through the sharded service during the audit.
    pub shard_probes: u64,
    /// Whether the sharded replay of the recovered state matched the
    /// fault-free shadow on every arrival (vacuously true when skipped).
    pub shard_identical: bool,
}

/// Terminal state of one arrival in the harness's own ledger.
enum Terminal {
    Done(MatchIds, bool),
    Shed,
}

fn pipeline(detail: impl std::fmt::Display) -> ServeError {
    ServeError::Pipeline(detail.to_string())
}

/// Deterministic phase-A push rows: clones of existing corpus rows under
/// fresh accession numbers (so they block and join like real rows without
/// colliding with any original id).
fn chaos_push_rows(corpus: &Table, n: usize) -> Result<Vec<Vec<Value>>, ServeError> {
    if corpus.n_rows() == 0 {
        return Err(pipeline("chaos needs a non-empty snapshot corpus"));
    }
    let acc = corpus
        .schema()
        .index_of(ACCESSION_COL)
        .ok_or_else(|| pipeline(format!("corpus is missing {ACCESSION_COL:?}")))?;
    let acc_dtype = corpus.schema().columns()[acc].dtype;
    let mut rows = Vec::with_capacity(n);
    for p in 0..n {
        let src = corpus
            .row(p % corpus.n_rows())
            .ok_or_else(|| pipeline(format!("corpus row {p} vanished")))?;
        let mut vals = src.values().to_vec();
        // Fresh accession in the column's own dtype, far outside any id
        // the generator hands out, so pushed rows never collide.
        vals[acc] = match acc_dtype {
            em_table::DataType::Int => Value::Int(900_000_000 + p as i64),
            _ => Value::Str(format!("CHAOS-{p}")),
        };
        rows.push(vals);
    }
    Ok(rows)
}

/// Truncates the WAL mid-way through its final record — the torn tail a
/// crash during an append leaves behind. The cut point is deterministic
/// in `(seed, key)` and always leaves a non-empty unterminated fragment.
fn tear_wal_tail(path: &Path, seed: u64, key: &str) -> Result<(), ServeError> {
    let replay = read_wal(path)?;
    let n = replay.record_end_offsets.len();
    if n == 0 {
        return Ok(());
    }
    let last_end = replay.record_end_offsets[n - 1];
    let prev_end = if n >= 2 {
        replay.record_end_offsets[n - 2]
    } else {
        let bytes = std::fs::read(path)?;
        match bytes.iter().position(|&b| b == b'\n') {
            Some(p) => p as u64 + 1,
            None => return Ok(()),
        }
    };
    let span = last_end.saturating_sub(prev_end);
    if span < 2 {
        return Ok(());
    }
    // Cut in [prev_end + 1, last_end - 1]: the newline is always gone, at
    // least one fragment byte always remains.
    let cut = prev_end + 1 + (fault_draw(seed, key, 110) * (span - 2) as f64) as u64;
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(cut)?;
    Ok(())
}

/// Runs the full chaos schedule. Every fault is deterministic in
/// `cfg.seed`; every failure mode is a typed [`ServeError`] — a panic
/// anywhere in here is a bug the chaos gate exists to catch.
pub fn run_chaos(
    snapshot: WorkflowSnapshot,
    arrivals: &Table,
    cfg: &ChaosConfig,
) -> Result<ChaosReport, ServeError> {
    std::fs::create_dir_all(&cfg.dir)?;
    let snap_path = cfg.dir.join("chaos.emsnap");
    let wal_path = cfg.dir.join("chaos.wal");
    let candidate_path = cfg.dir.join("candidate.emsnap");

    let mut crashes = 0u64;
    let mut recoveries = 0u64;
    let mut wal_records_replayed = 0u64;
    let mut torn_tails_repaired = 0u64;
    let mut recovery_ms_total = 0f64;
    let mut recovery_ms_max = 0f64;

    // ---- Phase A: durable corpus growth under crash + torn-tail faults.
    let mut service = MatchService::from_snapshot(snapshot)?
        .with_queue_capacity(cfg.queue_capacity)
        .with_overload_policy(cfg.policy);
    let base_rows = service.corpus().n_rows();
    let push_rows = chaos_push_rows(service.corpus(), cfg.n_pushes)?;
    service.checkpoint(&snap_path, &wal_path)?;
    let mut next_push = 0usize;
    // Fault draws are keyed by a monotonic operation counter, NOT by the
    // push index: a torn tail rewinds `next_push`, and keying off it
    // would hand the re-push the exact same crash draw — a deterministic
    // crash loop. The op counter never rewinds, so every retry gets fresh
    // (but still seed-reproducible) randomness; the cap turns the
    // astronomically-unlikely endless crash chain into a typed error.
    let mut push_op = 0u64;
    let push_op_cap = (cfg.n_pushes as u64 + 1) * 64;
    while next_push < cfg.n_pushes {
        push_op += 1;
        if push_op > push_op_cap {
            return Err(pipeline(format!(
                "phase A failed to make progress within {push_op_cap} push operations"
            )));
        }
        service.push_corpus_row(push_rows[next_push].clone())?;
        next_push += 1;
        let key = format!("push-op-{push_op}");
        if fault_draw(cfg.seed, &key, 101) < cfg.faults.p_crash {
            crashes += 1;
            drop(service); // the crash: all in-memory state is gone
            if fault_draw(cfg.seed, &key, 102) < cfg.faults.p_torn_tail {
                tear_wal_tail(&wal_path, cfg.seed, &key)?;
            }
            let (restored, rec) = MatchService::recover(&snap_path, &wal_path)?;
            service = restored
                .with_queue_capacity(cfg.queue_capacity)
                .with_overload_policy(cfg.policy);
            recoveries += 1;
            wal_records_replayed += rec.replayed as u64;
            torn_tails_repaired += u64::from(rec.torn_tail_repaired);
            recovery_ms_total += rec.recovery_ms;
            recovery_ms_max = recovery_ms_max.max(rec.recovery_ms);
            // A torn tail ate the newest record(s): re-push from wherever
            // recovery actually landed.
            next_push = service.corpus().n_rows() - base_rows;
        }
    }
    service.checkpoint(&snap_path, &wal_path)?;

    // ---- Fault-free shadow: the oracle for bit-identity. Same corpus,
    // no faults, both scoring modes precomputed per arrival.
    let shadow = MatchService::from_snapshot(service.to_snapshot())?;
    let n = arrivals.n_rows();
    let mut full_expect = Vec::with_capacity(n);
    let mut rules_expect = Vec::with_capacity(n);
    for i in 0..n {
        full_expect.push(shadow.match_row_uncounted(arrivals, i, ServeMode::Full)?.ids);
        rules_expect.push(shadow.match_row_uncounted(arrivals, i, ServeMode::RulesOnly)?.ids);
    }

    // Golden probes: the first arrivals with non-empty outcomes (capped at
    // 8) — probes that can actually catch a broken candidate.
    let mut probe_rows = Table::new("golden-probes", arrivals.schema().clone());
    let mut probe_expect = Vec::new();
    for (i, expect) in full_expect.iter().enumerate() {
        if probe_expect.len() == 8 {
            break;
        }
        if expect.is_empty() {
            continue;
        }
        let row = arrivals
            .row(i)
            .ok_or_else(|| pipeline(format!("arrival row {i} vanished")))?;
        probe_rows.push_row(row.values().to_vec())?;
        probe_expect.push(expect.clone());
    }
    let probes = GoldenProbeSet::new(probe_rows, probe_expect)?;

    // ---- Phase B: open-loop arrivals on a virtual clock.
    let mut cell = SnapshotCell::new(service, probes.clone());
    let mut terminal: Vec<Option<Terminal>> = Vec::new();
    terminal.resize_with(n, || None);
    let mut inflight: Vec<(u64, usize, u32)> = Vec::new(); // (seq, arrival, attempt)
    let mut retries: Vec<(u64, usize, u32)> = Vec::new(); // (due_ms, arrival, attempt)
    let mut next_arrival = 0usize;
    let mut now_ms = 0u64;
    let mut tick = 0u64;
    let mut completed = 0u64;
    let mut terminal_shed = 0u64;
    let mut retried = 0u64;
    let mut queue_full = 0u64;
    let mut degraded = 0u64;
    let mut swaps = 0u64;
    let mut swap_rollbacks = 0u64;
    let mut snapshots_quarantined = 0u64;
    let mut swap_latency_ms_max = 0f64;
    let mut bit_identical = true;

    while next_arrival < n || !inflight.is_empty() || !retries.is_empty() {
        tick += 1;
        if tick > MAX_TICKS {
            return Err(pipeline(format!(
                "chaos run failed to terminate after {MAX_TICKS} ticks"
            )));
        }
        let tick_key = format!("tick-{tick}");

        // Due submissions: matured retries first (stable order), then new
        // arrivals — one per tick, plus a seeded burst.
        let mut due: Vec<(usize, u32)> = Vec::new();
        retries.retain(|&(due_ms, idx, attempt)| {
            if due_ms <= now_ms {
                due.push((idx, attempt));
                false
            } else {
                true
            }
        });
        let mut n_new = 1usize;
        if fault_draw(cfg.seed, &tick_key, 103) < cfg.faults.p_burst {
            n_new += cfg.faults.burst_len as usize;
        }
        for _ in 0..n_new {
            if next_arrival < n {
                due.push((next_arrival, 0));
                next_arrival += 1;
            }
        }
        for (idx, attempt) in due {
            if attempt > 0 {
                retried += 1;
            }
            match cell.service_mut().submit_at(arrivals, idx, now_ms, attempt) {
                Ok(seq) => inflight.push((seq, idx, attempt)),
                Err(ServeError::Overloaded { retry_after_ms, .. }) => {
                    if attempt + 1 >= cfg.max_attempts {
                        terminal[idx] = Some(Terminal::Shed);
                        terminal_shed += 1;
                    } else {
                        retries.push((now_ms + retry_after_ms.max(1), idx, attempt + 1));
                    }
                }
                Err(ServeError::QueueFull { .. }) => {
                    queue_full += 1;
                    let back = cfg.policy.retry.backoff_ms(&format!("qf-{idx}"), attempt);
                    if attempt + 1 >= cfg.max_attempts {
                        terminal[idx] = Some(Terminal::Shed);
                        terminal_shed += 1;
                    } else {
                        retries.push((now_ms + back.max(1), idx, attempt + 1));
                    }
                }
                Err(other) => return Err(other),
            }
        }

        // Injected latency spike: virtual time jumps before the drain, so
        // queued deadlines can expire exactly as under a real stall.
        if fault_draw(cfg.seed, &tick_key, 104) < cfg.faults.p_latency_spike {
            now_ms += cfg.faults.latency_spike_ms;
        }

        // Crash between drains: the queue dies with the process. The
        // harness resubmits the destroyed requests (same attempt count —
        // a crash is not the request's fault) after recovery.
        if fault_draw(cfg.seed, &tick_key, 105) < cfg.faults.p_crash {
            crashes += 1;
            for (_seq, idx, attempt) in inflight.drain(..) {
                retries.push((now_ms + 1, idx, attempt));
            }
            drop(cell);
            let (restored, rec) = MatchService::recover(&snap_path, &wal_path)?;
            recoveries += 1;
            wal_records_replayed += rec.replayed as u64;
            torn_tails_repaired += u64::from(rec.torn_tail_repaired);
            recovery_ms_total += rec.recovery_ms;
            recovery_ms_max = recovery_ms_max.max(rec.recovery_ms);
            cell = SnapshotCell::new(
                restored
                    .with_queue_capacity(cfg.queue_capacity)
                    .with_overload_policy(cfg.policy),
                probes.clone(),
            );
            now_ms += 1;
            continue;
        }

        // Drain: serve everything still inside its deadline, shed the
        // rest (shed requests re-enter through the retry path).
        let outcome = cell.service_mut().drain_at(now_ms)?;
        for (k, seq) in outcome.served.iter().enumerate() {
            let Some(pos) = inflight.iter().position(|&(s, _, _)| s == *seq) else {
                return Err(pipeline(format!("served unknown seq {seq}")));
            };
            let (_, idx, _) = inflight.remove(pos);
            let o = &outcome.batch.outcomes[k];
            if o.degraded {
                degraded += 1;
            }
            terminal[idx] = Some(Terminal::Done(o.ids.clone(), o.degraded));
            completed += 1;
        }
        for seq in &outcome.shed {
            let Some(pos) = inflight.iter().position(|&(s, _, _)| s == *seq) else {
                return Err(pipeline(format!("shed unknown seq {seq}")));
            };
            let (_, idx, attempt) = inflight.remove(pos);
            if attempt + 1 >= cfg.max_attempts {
                terminal[idx] = Some(Terminal::Shed);
                terminal_shed += 1;
            } else {
                let back = cfg.policy.retry.backoff_ms(&format!("dl-{idx}"), attempt);
                retries.push((now_ms + back.max(1), idx, attempt + 1));
            }
        }

        // Periodic hot swap at the just-drained boundary. Candidates are
        // frozen from live state, so a clean candidate is behavior-
        // preserving and must pass the golden probes; a corrupted one
        // must be quarantined (byte damage) or rejected + quarantined
        // (semantic damage) without perturbing the live service.
        if cfg.faults.swap_every > 0 && tick.is_multiple_of(cfg.faults.swap_every as u64) {
            let mut candidate = cell.service().to_snapshot();
            let swap_key = format!("swap-{tick}");
            let corrupt_draw = fault_draw(cfg.seed, &swap_key, 106);
            let byte_corrupt = corrupt_draw < cfg.faults.p_snapshot_corrupt / 2.0;
            let semantic_corrupt = !byte_corrupt && corrupt_draw < cfg.faults.p_snapshot_corrupt;
            if semantic_corrupt {
                // Decodes fine, behaves wrong: no rules, impossible
                // threshold — the golden probes must catch it.
                candidate.threshold = 2.0;
                candidate.rules = RuleSetDesc::new();
            }
            candidate.save(&candidate_path)?;
            if byte_corrupt {
                // Mid-swap corruption: the artifact on disk is damaged
                // after the writer thought it was safe.
                let text = std::fs::read_to_string(&candidate_path)?;
                std::fs::write(
                    &candidate_path,
                    text.replacen("em-snapshot v1", "em-snapshot v7", 1),
                )?;
            }
            match cell.propose_from_path(&candidate_path) {
                Ok(()) => {
                    if let Some(rep) = cell.publish_at_boundary() {
                        swaps += 1;
                        swap_latency_ms_max =
                            swap_latency_ms_max.max(rep.validate_ms + rep.publish_ms);
                        // Make the published epoch durable: new snapshot,
                        // fresh WAL.
                        cell.service_mut().checkpoint(&snap_path, &wal_path)?;
                    }
                }
                Err(ServeError::Quarantined { cause, .. }) => {
                    snapshots_quarantined += 1;
                    if matches!(*cause, ServeError::SwapRejected { .. }) {
                        swap_rollbacks += 1;
                    }
                }
                Err(other) => return Err(other),
            }
        }

        now_ms += 1;
    }

    // ---- Post-run audit. Every arrival must be terminal; every served
    // outcome must equal the fault-free shadow in its scoring mode.
    let mut terminal_outcomes = true;
    for (idx, t) in terminal.iter().enumerate() {
        match t {
            Some(Terminal::Done(ids, was_degraded)) => {
                let want = if *was_degraded { &rules_expect[idx] } else { &full_expect[idx] };
                if ids != want {
                    bit_identical = false;
                }
            }
            Some(Terminal::Shed) => {}
            None => terminal_outcomes = false,
        }
    }

    // Final crash + recover: the disk state alone must reproduce the
    // shadow corpus and every golden probe outcome.
    let final_epoch = cell.service().epoch();
    drop(cell);
    let (resurrected, rec) = MatchService::recover(&snap_path, &wal_path)?;
    recoveries += 1;
    wal_records_replayed += rec.replayed as u64;
    torn_tails_repaired += u64::from(rec.torn_tail_repaired);
    recovery_ms_total += rec.recovery_ms;
    recovery_ms_max = recovery_ms_max.max(rec.recovery_ms);
    if resurrected.corpus().n_rows() != shadow.corpus().n_rows() {
        bit_identical = false;
    }
    if probes.validate(&resurrected).is_err() {
        bit_identical = false;
    }

    // Sharded-serving audit: partition the recovered state across
    // `cfg.shards` shards and replay every arrival through the
    // scatter/gather path. The merged outcomes must equal the fault-free
    // shadow's full-mode outcomes — the same bit-identity bar the
    // single-instance run is held to.
    let mut shard_identical = true;
    let mut shard_probes = 0u64;
    if cfg.shards > 0 {
        let sharded = ShardedMatchService::from_snapshot(resurrected.to_snapshot(), cfg.shards)?;
        for (i, expect) in full_expect.iter().enumerate() {
            let outcome = sharded.match_on_arrival(arrivals, i)?;
            shard_probes += 1;
            if &outcome.ids != expect {
                shard_identical = false;
            }
        }
    }

    Ok(ChaosReport {
        seed: cfg.seed,
        arrivals: n,
        completed,
        shed: terminal_shed,
        retried,
        queue_full,
        degraded,
        crashes,
        recoveries,
        wal_records_replayed,
        torn_tails_repaired,
        swaps,
        swap_rollbacks,
        snapshots_quarantined,
        recovery_ms_total,
        recovery_ms_max,
        swap_latency_ms_max,
        bit_identical,
        terminal_outcomes,
        final_epoch,
        shards: cfg.shards,
        shard_probes,
        shard_identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::tests::{arrivals, snapshot};

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("em-chaos-{tag}-{}", std::process::id()))
    }

    /// The deterministic slice of a report (wall-clock timings excluded).
    fn deterministic_view(r: &ChaosReport) -> (u64, usize, [u64; 15], [bool; 3]) {
        (
            r.seed,
            r.arrivals,
            [
                r.completed,
                r.shed,
                r.retried,
                r.queue_full,
                r.degraded,
                r.crashes,
                r.recoveries,
                r.wal_records_replayed,
                r.torn_tails_repaired,
                r.swaps,
                r.swap_rollbacks,
                r.snapshots_quarantined,
                r.final_epoch,
                r.shards as u64,
                r.shard_probes,
            ],
            [r.bit_identical, r.terminal_outcomes, r.shard_identical],
        )
    }

    #[test]
    fn chaos_run_reaches_terminal_outcomes_bit_identically() {
        for seed in [1u64, 2, 20190326] {
            let dir = temp_dir(&format!("run-{seed}"));
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = ChaosConfig::new(seed, dir.clone());
            let report = run_chaos(snapshot(1.0), &arrivals(), &cfg).unwrap();
            assert!(report.terminal_outcomes, "seed {seed}: request without outcome");
            assert!(report.bit_identical, "seed {seed}: diverged from fault-free run");
            assert!(report.shard_identical, "seed {seed}: sharded audit diverged");
            assert_eq!(report.shards, 2, "seed {seed}: default shard audit width");
            assert_eq!(report.shard_probes, report.arrivals as u64, "seed {seed}");
            assert_eq!(
                report.completed + report.shed,
                report.arrivals as u64,
                "seed {seed}: terminal accounting broken"
            );
            assert_eq!(report.recoveries, report.crashes + 1, "seed {seed}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn chaos_is_deterministic_in_the_seed() {
        let dir_a = temp_dir("det-a");
        let dir_b = temp_dir("det-b");
        for d in [&dir_a, &dir_b] {
            let _ = std::fs::remove_dir_all(d);
        }
        let a = run_chaos(snapshot(1.0), &arrivals(), &ChaosConfig::new(7, dir_a.clone()))
            .unwrap();
        let b = run_chaos(snapshot(1.0), &arrivals(), &ChaosConfig::new(7, dir_b.clone()))
            .unwrap();
        assert_eq!(deterministic_view(&a), deterministic_view(&b));
        for d in [&dir_a, &dir_b] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn fault_free_chaos_serves_everything_on_epoch_cadence() {
        let dir = temp_dir("calm");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ChaosConfig::new(3, dir.clone());
        cfg.faults = ServeFaultPlan { swap_every: 4, ..ServeFaultPlan::none() };
        let report = run_chaos(snapshot(1.0), &arrivals(), &cfg).unwrap();
        assert!(report.bit_identical && report.terminal_outcomes);
        assert_eq!(report.completed, report.arrivals as u64, "nothing may shed");
        assert_eq!(report.shed + report.queue_full + report.crashes, 0);
        assert_eq!(report.swap_rollbacks + report.snapshots_quarantined, 0);
        assert!(report.swaps > 0, "clean candidates must publish");
        assert_eq!(report.final_epoch, report.swaps);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_audit_passes_at_every_shard_count() {
        for shards in [1usize, 3, 4] {
            let dir = temp_dir(&format!("shards-{shards}"));
            let _ = std::fs::remove_dir_all(&dir);
            let mut cfg = ChaosConfig::new(11, dir.clone());
            cfg.shards = shards;
            let report = run_chaos(snapshot(1.0), &arrivals(), &cfg).unwrap();
            assert!(report.shard_identical, "shards {shards}: sharded audit diverged");
            assert_eq!(report.shards, shards);
            assert_eq!(report.shard_probes, report.arrivals as u64);
            // The shard knob must not perturb the fault schedule itself.
            assert!(report.bit_identical && report.terminal_outcomes);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
