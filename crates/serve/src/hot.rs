//! The serve-path hot loop: filtered probes, model-aware feature pruning,
//! and zero-alloc scoring.
//!
//! [`MatchService::match_on_arrival_with`] is the steady-state request
//! path. Everything a request needs beyond the immutable service state
//! lives in a caller-owned [`ProbeScratch`], so the probe → block →
//! featurize → score → rules loop runs without heap allocation once the
//! scratch has warmed up:
//!
//! - **Blocking** issues one filtered postings walk
//!   ([`IncrementalIndex::probe_union_into`](em_blocking::IncrementalIndex::probe_union_into))
//!   that admits the C2 ∪ C3 candidates directly — the length and prefix
//!   filters prune rows whose best-possible overlap already fails the
//!   plan's thresholds, and the result is property-tested equal to the two
//!   unfiltered probes the service previously unioned.
//! - **Features** go through the service's persistent
//!   [`ServeExtractor`](em_features::ServeExtractor): the arriving record
//!   is normalized once ([`prepare`](em_features::ServeExtractor::prepare)),
//!   then each surviving candidate is scored against pre-tokenized corpus
//!   rows. A [`FeatureMask`] derived from the fitted model and the rule
//!   set ([`derive_feature_mask`]) skips features nothing downstream can
//!   read; dead slots carry `NaN`, which mean-imputation replaces with an
//!   unread column mean.
//! - **Scoring** imputes and predicts in place over one reused feature
//!   buffer; negative rules and id rendering run only for predicted
//!   matches.
//!
//! Bit-identity with the batch pipeline is preserved stage by stage: the
//! filtered probe admits exactly the candidate set of the unfiltered scan
//! (proptested in `em-blocking`), live features are extracted bit-equal to
//! `extract_vectors` (pinned in `em-features`), and tree/forest models
//! never read a masked slot by construction. Debug builds additionally
//! sample candidates and assert the masked vector equals the full
//! per-feature recomputation on every live slot.

use crate::error::ServeError;
use crate::overload::ServeMode;
use crate::service::{MatchOutcome, MatchService, RequestTimings, ACCESSION_COL, AWARD_COL, TITLE_COL};
use em_blocking::SetMeasure;
use em_core::MatchIds;
use em_features::{ExtractScratch, FeatureMask, FeatureSet};
use em_ml::{FittedModel, Model};
use em_rules::award::award_suffix;
use em_rules::RuleSetDesc;
use em_table::{Table, Value};
use std::time::{Duration, Instant};

/// Derives the serve-time [`FeatureMask`] from a frozen workflow: a
/// feature stays live when the fitted model can read it (a split in some
/// tree of the forest) **or** its attribute pair is referenced by a rule
/// predicate. Models that read every feature densely (linear, bayes —
/// [`FittedModel::referenced_features`] returns `None`) keep the full
/// plan, preserving batch semantics exactly. The definition lives in
/// [`em_core::stream`] (shared with the streaming match executor); this
/// re-export keeps the serve tier's established entry point.
pub fn derive_feature_mask(
    features: &FeatureSet,
    model: &FittedModel,
    rules: &RuleSetDesc,
) -> FeatureMask {
    em_core::stream::derive_feature_mask(features, model, rules)
}

impl MatchService {
    /// Matches one arriving record through the allocation-free hot loop,
    /// reusing `scratch` across calls. Equivalent to
    /// [`MatchService::match_on_arrival`] (which wraps this over a
    /// per-thread scratch) — callers that own a request loop should hold
    /// one [`ProbeScratch`] and pass it here directly. Counts as one
    /// admitted + completed request.
    pub fn match_on_arrival_with(
        &self,
        arrivals: &Table,
        i: usize,
        scratch: &mut ProbeScratch,
    ) -> Result<MatchOutcome, ServeError> {
        let outcome = self.match_inner(arrivals, i, scratch, ServeMode::Full)?;
        self.counters.admitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.counters.completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(outcome)
    }

    /// The uncounted hot loop in a caller-chosen [`ServeMode`].
    /// [`ServeMode::RulesOnly`] is the degraded tier: blocking and
    /// positive-rule probes run as usual (hash joins over prebuilt
    /// indexes), but the featurize → impute → score → negative-rule chain
    /// is skipped entirely, so the outcome's ids are the sure matches
    /// alone and the outcome is flagged `degraded`.
    pub(crate) fn match_inner(
        &self,
        arrivals: &Table,
        i: usize,
        scratch: &mut ProbeScratch,
        mode: ServeMode,
    ) -> Result<MatchOutcome, ServeError> {
        let t_start = Instant::now();
        let row = arrivals
            .row(i)
            .ok_or_else(|| ServeError::Pipeline(format!("arrival row {i} is out of range")))?;

        // Blocking: C1 (award-suffix attribute equivalence) ∪ C2 (token
        // overlap) ∪ C3 (overlap coefficient). C2 ∪ C3 come from a single
        // filtered postings walk; the AE probe replicates the batch
        // pipeline's `TempAwardNumber` derived column.
        scratch.blocked.clear();
        if let Some(suffix) = row.str(AWARD_COL).and_then(award_suffix) {
            if let Some(js) = self.ae_index.get(&Value::from(suffix).dedup_key()) {
                scratch.blocked.extend_from_slice(js);
            }
        }
        let title = row.str(TITLE_COL);
        self.title_index.probe_union_into(
            title,
            self.plan.overlap_k,
            SetMeasure::OverlapCoefficient,
            self.plan.oc_threshold,
            &mut scratch.probe,
            &mut scratch.union_hits,
        );
        scratch.blocked.extend_from_slice(&scratch.union_hits);
        scratch.blocked.sort_unstable();
        scratch.blocked.dedup();
        let t_blocked = Instant::now();

        // Sure matches: union of per-rule hash-join probes, then
        // `candidates = blocked − sure` (the workflow's `C = C2 − C1`) as
        // a sorted-merge difference over the reused buffers.
        scratch.sure.clear();
        for (rule, index) in self.rules.positive.iter().zip(&self.rule_indexes) {
            if let Some(key) = rule.left_key(row) {
                if let Some(js) = index.get(&key) {
                    scratch.sure.extend_from_slice(js);
                }
            }
        }
        scratch.sure.sort_unstable();
        scratch.sure.dedup();
        scratch.candidates.clear();
        let mut su = scratch.sure.iter().copied().peekable();
        for &j in &scratch.blocked {
            while su.peek().is_some_and(|&s| s < j) {
                su.next();
            }
            if su.peek() != Some(&j) {
                scratch.candidates.push(j);
            }
        }
        let t_rules = Instant::now();

        // Featurize + score each candidate against the persistent corpus
        // caches. The arriving record is normalized once; per candidate,
        // live features are written into one reused buffer, imputed in
        // place, and scored. Negative rules run on predicted matches only.
        // The rules-only degraded mode stops here: sure matches are
        // already decided, and everything below is the expensive part.
        let mut n_predicted = 0usize;
        let mut n_flipped = 0usize;
        let mut feature_time = Duration::ZERO;
        scratch.kept.clear();
        if mode == ServeMode::Full {
            self.extractor.prepare(arrivals, i, &mut scratch.extract)?;
        }
        for (c, &j) in scratch.candidates.iter().enumerate() {
            if mode == ServeMode::RulesOnly {
                break;
            }
            let t_pair = Instant::now();
            self.extractor.extract_into(
                arrivals,
                i,
                &self.corpus,
                j,
                &self.mask,
                &mut scratch.extract,
                &mut scratch.feats,
            );
            #[cfg(debug_assertions)]
            if c % 64 == 0 {
                self.debug_assert_masked_matches_full(arrivals, i, j, &scratch.feats);
            }
            #[cfg(not(debug_assertions))]
            let _ = c;
            self.imputer.transform_row(&mut scratch.feats);
            feature_time += t_pair.elapsed();
            if self.model.predict_proba(&scratch.feats) < self.threshold {
                continue;
            }
            n_predicted += 1;
            let rb = self
                .corpus
                .row(j)
                .ok_or_else(|| ServeError::Pipeline(format!("corpus row {j} vanished")))?;
            if self.rules.any_negative_fires(row, rb) {
                n_flipped += 1;
            } else {
                scratch.kept.push(j);
            }
        }

        // Deliverable ids: `sure ∪ kept`, keyed exactly as
        // `MatchIds::from_candidates`. Id rendering allocates — it runs
        // once per *match*, not per candidate.
        let award = row
            .get(AWARD_COL)
            .ok_or_else(|| ServeError::Pipeline(format!("row {i} missing {AWARD_COL}")))?
            .render();
        let mut id_pairs = Vec::with_capacity(scratch.sure.len() + scratch.kept.len());
        for &j in scratch.sure.iter().chain(&scratch.kept) {
            let acc = self
                .corpus
                .get(j, ACCESSION_COL)
                .ok_or_else(|| ServeError::Pipeline(format!("corpus row {j} missing")))?
                .render();
            id_pairs.push((award.clone(), acc));
        }
        let t_end = Instant::now();

        let ms = |a: Instant, b: Instant| (b - a).as_secs_f64() * 1e3;
        let features_ms = feature_time.as_secs_f64() * 1e3;
        Ok(MatchOutcome {
            ids: MatchIds::from_pairs(id_pairs),
            n_blocked: scratch.blocked.len(),
            n_sure: scratch.sure.len(),
            n_candidates: scratch.candidates.len(),
            n_predicted,
            n_flipped,
            degraded: mode == ServeMode::RulesOnly,
            epoch: self.epoch,
            timings: RequestTimings {
                blocking_ms: ms(t_start, t_blocked),
                rules_ms: ms(t_blocked, t_rules),
                features_ms,
                predict_ms: ms(t_rules, t_end) - features_ms,
                total_ms: ms(t_start, t_end),
            },
        })
    }

    /// Debug-only oracle: recompute every **live** feature of the pair
    /// through the batch path's per-pair function and assert bit-equality
    /// with the masked extraction — pins masked ⊂ full on sampled pairs.
    #[cfg(debug_assertions)]
    fn debug_assert_masked_matches_full(
        &self,
        arrivals: &Table,
        i: usize,
        j: usize,
        feats: &[f64],
    ) {
        let (Some(ra), Some(rb)) = (arrivals.row(i), self.corpus.row(j)) else {
            return;
        };
        for (k, f) in self.extractor.features().features.iter().enumerate() {
            if !self.mask.is_live(k) {
                debug_assert!(feats[k].is_nan(), "dead feature {k} ({}) not NaN", f.name);
                continue;
            }
            let (Some(a), Some(b)) = (ra.get(&f.left_attr), rb.get(&f.right_attr)) else {
                continue;
            };
            let full = f.compute(a, b);
            debug_assert!(
                full.to_bits() == feats[k].to_bits(),
                "masked feature {k} ({}) diverged: serve {} vs batch {}",
                f.name,
                feats[k],
                full,
            );
        }
    }
}

// ---- scratch construction (allocations are confined below this line) ----

/// Reusable per-request buffers for the serve hot loop — the service-level
/// mirror of `em_text`'s `KernelScratch`. One instance serves any number
/// of sequential requests; [`MatchService::match_batch`] keeps one per
/// executor thread.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    /// Postings-walk state of the filtered index probe.
    probe: em_blocking::ProbeScratch,
    /// Per-arrival probe cells + per-request memos of the extractor.
    extract: ExtractScratch,
    /// Output of the C2 ∪ C3 union probe.
    union_hits: Vec<usize>,
    /// Blocked corpus rows (sorted, deduped).
    blocked: Vec<usize>,
    /// Sure-match corpus rows (sorted, deduped).
    sure: Vec<usize>,
    /// `blocked − sure`, the matcher's input.
    candidates: Vec<usize>,
    /// Feature vector of the candidate currently being scored.
    feats: Vec<f64>,
    /// Predicted matches that survived the negative rules.
    kept: Vec<usize>,
}

impl ProbeScratch {
    /// Creates an empty scratch; buffers grow to steady-state size over
    /// the first few requests and are then reused.
    pub fn new() -> ProbeScratch {
        ProbeScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::WorkflowSnapshot;
    use crate::MatchService;
    use em_core::pipeline::{CaseStudy, CaseStudyConfig};

    fn artifacts() -> em_core::pipeline::ServingArtifacts {
        CaseStudy::new(CaseStudyConfig::small()).train_serving_artifacts().unwrap()
    }

    #[test]
    fn mask_over_standard_rules_and_trained_forest_is_strict_nonempty_subset() {
        use em_ml::forest::RandomForestLearner;
        use em_ml::{Dataset, Learner};
        let a = artifacts();
        let d = a.matcher.features.len();
        // A forest over the case-study feature plan, trained on data where
        // only the first two feature columns carry signal: its split walk
        // can reference at most those columns (plus none of the constant
        // rest), so the mask must prune.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60usize {
            let mut v = vec![0.0; d];
            v[0] = (i % 10) as f64 / 10.0;
            v[1] = ((i * 7) % 10) as f64 / 10.0;
            y.push(v[0] + v[1] > 0.9);
            x.push(v);
        }
        let names = a.matcher.features.features.iter().map(|f| f.name.clone()).collect();
        let data = Dataset { feature_names: names, x, y };
        let learner = RandomForestLearner { n_trees: 4, seed: 7, ..Default::default() };
        let forest = learner.fit_model(&data).unwrap();
        let mask = derive_feature_mask(&a.matcher.features, &forest, &a.rule_descs);
        assert!(mask.n_live() > 0, "mask must keep at least one feature");
        assert!(
            mask.is_strict_subset(),
            "mask must prune: {} live of {}",
            mask.n_live(),
            mask.len()
        );
        assert_eq!(mask.len(), d);
        // Every split feature of the forest is live.
        for k in forest.referenced_features().into_iter().flatten() {
            assert!(mask.is_live(k), "split feature {k} must stay live");
        }
    }

    #[test]
    fn dense_models_get_the_full_mask() {
        use em_ml::model::ConstantModel;
        let a = artifacts();
        // Constant models read nothing: the mask keeps only rule-referenced
        // attribute pairs (possibly none).
        let m = derive_feature_mask(
            &a.matcher.features,
            &FittedModel::Constant(ConstantModel { proba: 1.0 }),
            &RuleSetDesc::new(),
        );
        assert_eq!(m.n_live(), 0);
        assert_eq!(m.len(), a.matcher.features.len());
    }

    #[test]
    fn explicit_scratch_reuse_matches_per_call_path() {
        let a = artifacts();
        let service =
            MatchService::from_snapshot(WorkflowSnapshot::from_artifacts(&a)).unwrap();
        let mut scratch = ProbeScratch::new();
        for i in 0..a.extra_umetrics.n_rows().min(40) {
            let hot = service
                .match_on_arrival_with(&a.extra_umetrics, i, &mut scratch)
                .unwrap();
            let wrapped = service.match_on_arrival(&a.extra_umetrics, i).unwrap();
            assert_eq!(hot.ids, wrapped.ids, "row {i}");
            assert_eq!(hot.n_blocked, wrapped.n_blocked, "row {i}");
            assert_eq!(hot.n_sure, wrapped.n_sure, "row {i}");
            assert_eq!(hot.n_candidates, wrapped.n_candidates, "row {i}");
            assert_eq!(hot.n_predicted, wrapped.n_predicted, "row {i}");
            assert_eq!(hot.n_flipped, wrapped.n_flipped, "row {i}");
        }
    }
}
