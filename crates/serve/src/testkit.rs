//! Tiny deterministic fixtures shared by the crate's unit tests, the
//! integration tests under `tests/`, and the property tests.
//!
//! Hidden from the public API surface: nothing here is part of the
//! serving contract, it only exists so crash-recovery and chaos tests
//! across compilation units exercise the exact same minimal workflow
//! (4-row USDA corpus, 5 UMETRICS arrivals, constant-probability model).

#![allow(clippy::unwrap_used)]

use crate::service::{ACCESSION_COL, AWARD_COL, TITLE_COL};
use crate::snapshot::WorkflowSnapshot;
use em_core::BlockingPlan;
use em_features::{Feature, FeatureKind, FeatureSet};
use em_ml::model::ConstantModel;
use em_ml::{FittedModel, Imputer};
use em_rules::{RuleKeyKind, RuleSetDesc};
use em_table::{DataType, Schema, Table, Value};

/// The 4-row right-hand (USDA) corpus every serve test matches against.
pub fn corpus() -> Table {
    Table::from_rows(
        "usda",
        Schema::of(&[
            (ACCESSION_COL, DataType::Str),
            (AWARD_COL, DataType::Str),
            ("ProjectNumber", DataType::Str),
            (TITLE_COL, DataType::Str),
        ]),
        vec![
            vec![
                Value::Str("ACC1".into()),
                Value::Str("2008-34103-19449".into()),
                Value::Null,
                Value::Str("corn fungicide guidelines for states".into()),
            ],
            vec![
                Value::Str("ACC2".into()),
                Value::Null,
                Value::Str("WIS01040".into()),
                Value::Str("swamp dodder ecology and biology".into()),
            ],
            vec![
                Value::Str("ACC3".into()),
                Value::Str("2101-22222-33333".into()),
                Value::Null,
                Value::Str("corn fungicide guidelines handbook".into()),
            ],
            vec![
                Value::Str("ACC4".into()),
                Value::Null,
                Value::Null,
                Value::Str("maize gene expression study".into()),
            ],
        ],
    )
    .unwrap()
}

/// Five arriving UMETRICS records: two sure matches, one near-title
/// probe, one award-less row, one title-less row.
pub fn arrivals() -> Table {
    Table::from_rows(
        "umetrics",
        Schema::of(&[(AWARD_COL, DataType::Str), (TITLE_COL, DataType::Str)]),
        vec![
            vec![
                Value::Str("10.200 2008-34103-19449".into()),
                Value::Str("corn fungicide guidelines for states".into()),
            ],
            vec![
                Value::Str("10.203 WIS01040".into()),
                Value::Str("swamp dodder ecology and biology".into()),
            ],
            vec![
                Value::Str("10.310 9999-88888-77777".into()),
                Value::Str("corn fungicide guidelines for whom".into()),
            ],
            vec![Value::Null, Value::Str("maize gene expression study".into())],
            vec![Value::Str("10.500 NOPE".into()), Value::Null],
        ],
    )
    .unwrap()
}

fn rule_descs() -> RuleSetDesc {
    RuleSetDesc::new()
        .positive(RuleKeyKind::Suffix, "M1", AWARD_COL, AWARD_COL)
        .positive(RuleKeyKind::Suffix, "award=project", AWARD_COL, "ProjectNumber")
        .negative(RuleKeyKind::Suffix, "neg:award", AWARD_COL, AWARD_COL)
        .negative(RuleKeyKind::Suffix, "neg:project", AWARD_COL, "ProjectNumber")
}

fn features() -> FeatureSet {
    let mut f = FeatureSet::default();
    f.features.push(Feature::new(TITLE_COL, TITLE_COL, FeatureKind::JaccardWord, true));
    f
}

/// A complete frozen workflow over [`corpus`] whose model predicts every
/// candidate at the given constant probability.
pub fn snapshot(proba: f64) -> WorkflowSnapshot {
    WorkflowSnapshot {
        corpus: corpus(),
        features: features(),
        imputer: Imputer { means: vec![0.0] },
        model: FittedModel::Constant(ConstantModel { proba }),
        learner_name: "constant".into(),
        rules: rule_descs(),
        plan: BlockingPlan { overlap_k: 3, oc_threshold: 0.7 },
        threshold: 0.5,
    }
}

/// A pushable clone of corpus row `p % corpus.n_rows()` under the fresh
/// accession number `"<tag>-<p>"` — blocks and joins like a real row
/// without colliding with any existing deliverable id.
pub fn push_variant(corpus: &Table, tag: &str, p: usize) -> Vec<Value> {
    let acc = corpus.schema().index_of(ACCESSION_COL).unwrap();
    let src = corpus.row(p % corpus.n_rows()).unwrap();
    let mut vals = src.values().to_vec();
    vals[acc] = Value::Str(format!("{tag}-{p}"));
    vals
}
