//! Frozen workflow snapshots: everything a trained EM workflow needs to
//! serve matches, in one versioned on-disk artifact.
//!
//! A snapshot captures the *decision function* of the batch pipeline — the
//! blocking plan, the generated feature plan, the fitted model, the rule
//! set, the decision threshold — plus the right-hand corpus table it
//! matches against. Loading the snapshot and serving a record reproduces
//! the batch pipeline's prediction **bit-identically**: every float is
//! written with `{:?}` (which round-trips each `f64` bit pattern through
//! `parse::<f64>()`), and every component reconstructs through the same
//! public constructors batch code uses.
//!
//! ## Format
//!
//! The file is text. The first line is the envelope:
//!
//! ```text
//! em-snapshot v1 <body-byte-length>
//! ```
//!
//! and the rest is the body — a [`Checkpoint`]-serialized `key = value`
//! bag. The declared byte length lets loading distinguish a torn write
//! ([`ServeError::Truncated`]) from hand-edited garbage
//! ([`ServeError::Corrupt`]); an unknown version is
//! [`ServeError::VersionMismatch`]. [`WorkflowSnapshot::load_quarantining`]
//! renames bad artifacts to `<path>.quarantined` so a corrupt snapshot
//! can never be retried in a crash loop.

use crate::error::ServeError;
use em_core::checkpoint::Checkpoint;
use em_core::pipeline::ServingArtifacts;
use em_core::BlockingPlan;
use em_features::{Feature, FeatureKind, FeatureSet};
use em_ml::{FittedModel, Imputer};
use em_rules::RuleSetDesc;
use em_table::{Column, DataType, Date, Schema, Table, Value};
use std::path::{Path, PathBuf};

/// Format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Leading magic token of the envelope line.
const MAGIC: &str = "em-snapshot";

/// A frozen, serializable workflow: the trained artifacts of the batch
/// pipeline, sufficient to serve online match requests.
#[derive(Debug, Clone)]
pub struct WorkflowSnapshot {
    /// The right-hand corpus table matched against (USDA in the case
    /// study).
    pub corpus: Table,
    /// The generated feature plan.
    pub features: FeatureSet,
    /// Mean imputer fitted on the training matrix.
    pub imputer: Imputer,
    /// The fitted model in its concrete serializable form.
    pub model: FittedModel,
    /// Which learner won selection (provenance).
    pub learner_name: String,
    /// Declarative rule set (rebuilt into closures on load).
    pub rules: RuleSetDesc,
    /// Blocking plan parameters.
    pub plan: BlockingPlan,
    /// Decision threshold on `predict_proba` (the batch pipeline's 0.5).
    pub threshold: f64,
}

fn corrupt(detail: impl std::fmt::Display) -> ServeError {
    ServeError::Corrupt(detail.to_string())
}

/// Tag for a declared column type.
fn dtype_tag(t: DataType) -> &'static str {
    match t {
        DataType::Str => "str",
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Bool => "bool",
        DataType::Date => "date",
        DataType::Any => "any",
    }
}

fn dtype_from_tag(tag: &str) -> Result<DataType, ServeError> {
    Ok(match tag {
        "str" => DataType::Str,
        "int" => DataType::Int,
        "float" => DataType::Float,
        "bool" => DataType::Bool,
        "date" => DataType::Date,
        "any" => DataType::Any,
        other => return Err(corrupt(format!("unknown column type tag {other:?}"))),
    })
}

/// Escapes a string cell so it cannot contain a literal tab (record field
/// separator) or backslash ambiguity.
fn escape_cell(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape_cell(s: &str) -> Result<String, ServeError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            other => {
                return Err(corrupt(format!(
                    "bad cell escape \\{}",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

/// One cell as a tagged token. Types are explicit — the CSV reader
/// re-infers types, which would not round-trip a table whose column is
/// declared `Str` but holds numeric-looking text. Shared with the corpus
/// WAL ([`crate::wal`]), which logs rows in exactly this encoding so a
/// replayed row is byte-for-byte the snapshot row.
pub(crate) fn encode_cell(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Str(s) => format!("s:{}", escape_cell(s)),
        Value::Int(i) => format!("i:{i}"),
        Value::Float(f) => format!("f:{f:?}"),
        Value::Bool(b) => format!("b:{b}"),
        Value::Date(d) => format!("d:{d}"),
    }
}

pub(crate) fn decode_cell(s: &str) -> Result<Value, ServeError> {
    if s.is_empty() {
        return Ok(Value::Null);
    }
    let (tag, payload) =
        s.split_once(':').ok_or_else(|| corrupt(format!("untagged cell {s:?}")))?;
    Ok(match tag {
        "s" => Value::Str(unescape_cell(payload)?),
        "i" => Value::Int(
            payload.parse().map_err(|_| corrupt(format!("bad int cell {payload:?}")))?,
        ),
        "f" => Value::Float(
            payload.parse().map_err(|_| corrupt(format!("bad float cell {payload:?}")))?,
        ),
        "b" => Value::Bool(
            payload.parse().map_err(|_| corrupt(format!("bad bool cell {payload:?}")))?,
        ),
        "d" => Value::Date(
            Date::parse(payload).ok_or_else(|| corrupt(format!("bad date cell {payload:?}")))?,
        ),
        other => return Err(corrupt(format!("unknown cell tag {other:?}"))),
    })
}

fn encode_table(cp: &mut Checkpoint, prefix: &str, table: &Table) {
    cp.put(&format!("{prefix}.name"), table.name());
    let schema: Vec<Vec<String>> = table
        .schema()
        .columns()
        .iter()
        .map(|c| vec![c.name.clone(), dtype_tag(c.dtype).to_string()])
        .collect();
    cp.put_records(&format!("{prefix}.schema"), &schema);
    let rows: Vec<Vec<String>> =
        table.iter().map(|r| r.values().iter().map(encode_cell).collect()).collect();
    cp.put_records(&format!("{prefix}.rows"), &rows);
}

fn decode_table(cp: &Checkpoint, prefix: &str) -> Result<Table, ServeError> {
    let name = cp.get(&format!("{prefix}.name")).map_err(corrupt)?;
    let mut columns = Vec::new();
    for rec in cp.get_records(&format!("{prefix}.schema")).map_err(corrupt)? {
        let [col, tag] = rec.as_slice() else {
            return Err(corrupt(format!("schema record must have 2 fields, got {}", rec.len())));
        };
        columns.push(Column::new(col.clone(), dtype_from_tag(tag)?));
    }
    let schema = Schema::new(columns).map_err(|e| corrupt(format!("bad schema: {e}")))?;
    let n_cols = schema.len();
    let mut table = Table::new(name, schema);
    for rec in cp.get_records(&format!("{prefix}.rows")).map_err(corrupt)? {
        // A row of all-empty cells (all nulls) serializes as N-1 tabs; an
        // entirely-null single-column row is the empty string, which
        // `split` still yields as one field — arity stays consistent.
        if rec.len() != n_cols {
            return Err(corrupt(format!(
                "row has {} cells, schema has {n_cols} columns",
                rec.len()
            )));
        }
        let row = rec.iter().map(|c| decode_cell(c)).collect::<Result<Vec<_>, _>>()?;
        table.push_row(row).map_err(|e| corrupt(format!("bad row: {e}")))?;
    }
    Ok(table)
}

impl WorkflowSnapshot {
    /// Freezes the trained artifacts of a batch pipeline run into a
    /// serializable snapshot (decision threshold 0.5, matching
    /// `Model::predict`).
    pub fn from_artifacts(artifacts: &ServingArtifacts) -> WorkflowSnapshot {
        WorkflowSnapshot {
            corpus: artifacts.usda.clone(),
            features: artifacts.matcher.features.clone(),
            imputer: artifacts.matcher.imputer.clone(),
            model: artifacts.matcher.model.clone(),
            learner_name: artifacts.matcher.learner_name.clone(),
            rules: artifacts.rule_descs.clone(),
            plan: artifacts.plan,
            threshold: 0.5,
        }
    }

    /// Serializes to the versioned text format (envelope + checkpoint
    /// body). Encoding is canonical: decode ∘ encode is a fixed point.
    pub fn encode(&self) -> String {
        let mut cp = Checkpoint::new();
        cp.put("learner_name", &self.learner_name);
        cp.put_f64("threshold", self.threshold);
        cp.put_display("plan.overlap_k", self.plan.overlap_k);
        cp.put_f64("plan.oc_threshold", self.plan.oc_threshold);
        cp.put("model", self.model.encode());
        cp.put("rules", self.rules.encode());
        let means: Vec<String> = self.imputer.means.iter().map(|m| format!("{m:?}")).collect();
        cp.put("imputer.means", means.join(" "));
        let features: Vec<Vec<String>> = self
            .features
            .features
            .iter()
            .map(|f| {
                vec![
                    f.left_attr.clone(),
                    f.right_attr.clone(),
                    f.kind.tag().to_string(),
                    if f.lowercase { "1".into() } else { "0".into() },
                ]
            })
            .collect();
        cp.put_records("features", &features);
        encode_table(&mut cp, "corpus", &self.corpus);
        let body = cp.to_text();
        format!("{MAGIC} v{SNAPSHOT_VERSION} {}\n{body}", body.len())
    }

    /// Parses a snapshot produced by [`WorkflowSnapshot::encode`]. Every
    /// failure is a typed [`ServeError`] — never a panic.
    pub fn decode(text: &str) -> Result<WorkflowSnapshot, ServeError> {
        let (header, body) = text
            .split_once('\n')
            .ok_or_else(|| corrupt("missing envelope line"))?;
        let mut toks = header.split_whitespace();
        if toks.next() != Some(MAGIC) {
            return Err(corrupt(format!("not a snapshot (bad magic in {header:?})")));
        }
        let version_tok = toks.next().ok_or_else(|| corrupt("missing version token"))?;
        let version: u32 = version_tok
            .strip_prefix('v')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt(format!("bad version token {version_tok:?}")))?;
        if version != SNAPSHOT_VERSION {
            return Err(ServeError::VersionMismatch { found: version, expected: SNAPSHOT_VERSION });
        }
        let declared: usize = toks
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt("missing or bad body length"))?;
        if toks.next().is_some() {
            return Err(corrupt("trailing tokens in envelope"));
        }
        if body.len() < declared {
            return Err(ServeError::Truncated {
                expected_bytes: declared,
                actual_bytes: body.len(),
            });
        }
        if body.len() > declared {
            return Err(corrupt(format!(
                "body has {} bytes, envelope declares {declared}",
                body.len()
            )));
        }
        let cp = Checkpoint::from_text(body).map_err(corrupt)?;
        let learner_name = cp.get("learner_name").map_err(corrupt)?.to_string();
        let threshold: f64 = cp.get_parsed("threshold").map_err(corrupt)?;
        let plan = BlockingPlan {
            overlap_k: cp.get_parsed("plan.overlap_k").map_err(corrupt)?,
            oc_threshold: cp.get_parsed("plan.oc_threshold").map_err(corrupt)?,
        };
        let model = FittedModel::decode(cp.get("model").map_err(corrupt)?)?;
        let rules = RuleSetDesc::decode(cp.get("rules").map_err(corrupt)?)?;
        let means_raw = cp.get("imputer.means").map_err(corrupt)?;
        let means = if means_raw.is_empty() {
            Vec::new()
        } else {
            means_raw
                .split(' ')
                .map(|t| t.parse::<f64>().map_err(|_| corrupt(format!("bad mean {t:?}"))))
                .collect::<Result<Vec<_>, _>>()?
        };
        let mut features = FeatureSet::default();
        for rec in cp.get_records("features").map_err(corrupt)? {
            let [left, right, tag, lc] = rec.as_slice() else {
                return Err(corrupt(format!(
                    "feature record must have 4 fields, got {}",
                    rec.len()
                )));
            };
            let kind = FeatureKind::from_tag(tag)
                .ok_or_else(|| corrupt(format!("unknown feature tag {tag:?}")))?;
            let lowercase = match lc.as_str() {
                "1" => true,
                "0" => false,
                other => return Err(corrupt(format!("bad lowercase flag {other:?}"))),
            };
            // Feature::new regenerates the canonical name, so names never
            // drift from the (attrs, kind, lowercase) triple.
            features.features.push(Feature::new(left.clone(), right.clone(), kind, lowercase));
        }
        let corpus = decode_table(&cp, "corpus")?;
        Ok(WorkflowSnapshot {
            corpus,
            features,
            imputer: Imputer { means },
            model,
            learner_name,
            rules,
            plan,
            threshold,
        })
    }

    /// Writes the snapshot atomically (temp file + rename): a crash
    /// mid-write leaves either the old artifact or none, never a torn one.
    pub fn save(&self, path: &Path) -> Result<(), ServeError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = tmp_path(path);
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and decodes a snapshot file.
    pub fn load(path: &Path) -> Result<WorkflowSnapshot, ServeError> {
        let text = std::fs::read_to_string(path)?;
        WorkflowSnapshot::decode(&text)
    }

    /// Like [`WorkflowSnapshot::load`], but a snapshot that fails to
    /// *decode* (version mismatch, truncation, corruption) is renamed to
    /// a fresh `<path>.quarantined[.N]` destination before the error is
    /// returned, so a supervisor restarting the service cannot crash-loop
    /// on the same bad artifact — and a *second* corrupt artifact cannot
    /// silently overwrite the evidence of the first. The returned
    /// [`ServeError::Quarantined`] carries the destination path and the
    /// underlying decode failure. Plain IO failures (e.g. the file does
    /// not exist) do not quarantine.
    pub fn load_quarantining(path: &Path) -> Result<WorkflowSnapshot, ServeError> {
        let text = std::fs::read_to_string(path)?;
        match WorkflowSnapshot::decode(&text) {
            Ok(snap) => Ok(snap),
            Err(e) => {
                let dest = quarantine_path(path);
                // Best-effort: the decode error is the primary failure.
                let _ = std::fs::rename(path, &dest);
                Err(ServeError::Quarantined {
                    dest: dest.display().to_string(),
                    cause: Box::new(e),
                })
            }
        }
    }
}

/// The temp-file path used by [`WorkflowSnapshot::save`].
fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Where [`WorkflowSnapshot::load_quarantining`] moves a corrupt artifact:
/// `<path>.quarantined`, or the first free `<path>.quarantined.N` when
/// earlier quarantined artifacts already occupy the plain suffix — each
/// corrupt artifact gets its own destination, none is overwritten.
pub fn quarantine_path(path: &Path) -> PathBuf {
    let base = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".quarantined");
        PathBuf::from(os)
    };
    if !base.exists() {
        return base;
    }
    let mut n: u64 = 1;
    loop {
        let mut os = base.as_os_str().to_os_string();
        os.push(format!(".{n}"));
        let candidate = PathBuf::from(os);
        if !candidate.exists() {
            return candidate;
        }
        n = n.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_ml::model::ConstantModel;
    use em_ml::Model;
    use em_rules::RuleKeyKind;

    fn sample_corpus() -> Table {
        Table::from_rows(
            "usda",
            Schema::of(&[
                ("AccessionNumber", DataType::Str),
                ("AwardNumber", DataType::Str),
                ("AwardTitle", DataType::Str),
                ("Funds", DataType::Float),
                ("Year", DataType::Int),
                ("Active", DataType::Bool),
                ("Start", DataType::Date),
                ("Anything", DataType::Any),
            ]),
            vec![
                vec![
                    Value::Str("ACC1".into()),
                    Value::Str("2008-34103-19449".into()),
                    Value::Str("Corn Fungicide\tGuidelines \\ Study".into()),
                    Value::Float(0.1 + 0.2),
                    Value::Int(-7),
                    Value::Bool(true),
                    Value::Date(Date { year: 2008, month: 3, day: 1 }),
                    Value::Int(9),
                ],
                vec![
                    Value::Str("ACC2".into()),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ],
            ],
        )
        .unwrap()
    }

    fn sample_snapshot() -> WorkflowSnapshot {
        let mut features = FeatureSet::default();
        features.features.push(Feature::new(
            "AwardTitle",
            "AwardTitle",
            FeatureKind::JaccardQgram3,
            true,
        ));
        features.features.push(Feature::new(
            "AwardNumber",
            "AwardNumber",
            FeatureKind::ExactStr,
            false,
        ));
        WorkflowSnapshot {
            corpus: sample_corpus(),
            features,
            imputer: Imputer { means: vec![0.25, std::f64::consts::PI / 3.0] },
            model: FittedModel::Constant(ConstantModel { proba: 0.75 }),
            learner_name: "decision_tree".into(),
            rules: RuleSetDesc::new()
                .positive(RuleKeyKind::Suffix, "M1", "AwardNumber", "AwardNumber")
                .negative(RuleKeyKind::Suffix, "neg:award", "AwardNumber", "AwardNumber"),
            plan: BlockingPlan { overlap_k: 3, oc_threshold: 0.7 },
            threshold: 0.5,
        }
    }

    #[test]
    fn encode_decode_is_a_fixed_point() {
        let snap = sample_snapshot();
        let text = snap.encode();
        let back = WorkflowSnapshot::decode(&text).unwrap();
        assert_eq!(back.encode(), text);
        assert_eq!(back.corpus, snap.corpus);
        assert_eq!(back.features.names(), snap.features.names());
        assert_eq!(back.rules, snap.rules);
        assert_eq!(back.learner_name, snap.learner_name);
        assert_eq!(back.plan.overlap_k, snap.plan.overlap_k);
        assert_eq!(back.plan.oc_threshold.to_bits(), snap.plan.oc_threshold.to_bits());
        assert_eq!(back.threshold.to_bits(), snap.threshold.to_bits());
        for (a, b) in back.imputer.means.iter().zip(&snap.imputer.means) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Model predictions are bit-identical post-round-trip.
        let row = [0.3, 0.8];
        assert_eq!(
            back.model.predict_proba(&row).to_bits(),
            snap.model.predict_proba(&row).to_bits()
        );
    }

    #[test]
    fn version_mismatch_is_typed() {
        let text = sample_snapshot().encode().replacen("v1", "v2", 1);
        assert_eq!(
            WorkflowSnapshot::decode(&text).map(|_| ()).unwrap_err(),
            ServeError::VersionMismatch { found: 2, expected: 1 }
        );
    }

    #[test]
    fn truncation_is_typed() {
        let text = sample_snapshot().encode();
        let cut = &text[..text.len() - 10];
        match WorkflowSnapshot::decode(cut) {
            Err(ServeError::Truncated { expected_bytes, actual_bytes }) => {
                assert_eq!(expected_bytes, actual_bytes + 10);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_corrupt_not_panic() {
        for text in [
            "",
            "not a snapshot\n",
            "em-snapshot\n",
            "em-snapshot vX 10\n",
            "em-snapshot v1 zzz\n",
            "em-snapshot v1 3 extra\nabc",
        ] {
            assert!(
                matches!(WorkflowSnapshot::decode(text), Err(ServeError::Corrupt(_))),
                "accepted {text:?}"
            );
        }
        // Valid envelope, mangled body key.
        let good = sample_snapshot().encode();
        let (header, body) = good.split_once('\n').unwrap();
        let bad_body = body.replacen("model = ", "motel = ", 1);
        let bad = format!("{header}\n{bad_body}");
        // Same byte length, so the envelope still matches.
        assert!(matches!(WorkflowSnapshot::decode(&bad), Err(ServeError::Corrupt(_))), "{bad}");
    }

    #[test]
    fn save_load_round_trips_and_quarantines_corruption() {
        let dir = std::env::temp_dir().join(format!("em-serve-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("workflow.emsnap");
        let snap = sample_snapshot();
        snap.save(&path).unwrap();
        let back = WorkflowSnapshot::load(&path).unwrap();
        assert_eq!(back.encode(), snap.encode());

        // Corrupt the artifact in place: load_quarantining must rename it,
        // and the error names both the decode failure and the destination.
        std::fs::write(&path, "em-snapshot v9 0\n").unwrap();
        let err = WorkflowSnapshot::load_quarantining(&path).unwrap_err();
        let ServeError::Quarantined { dest, cause } = err else {
            panic!("expected Quarantined, got {err:?}");
        };
        assert_eq!(*cause, ServeError::VersionMismatch { found: 9, expected: 1 });
        assert!(!path.exists(), "corrupt artifact still in place");
        let first = PathBuf::from(&dest);
        assert!(first.exists(), "quarantine file missing at {dest}");
        assert!(dest.ends_with(".quarantined"), "unexpected destination {dest}");

        // A missing file is Io and does not create quarantine litter.
        let missing = dir.join("absent.emsnap");
        assert!(matches!(
            WorkflowSnapshot::load_quarantining(&missing),
            Err(ServeError::Io(_))
        ));
        assert!(!quarantine_path(&missing).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_quarantine_destinations_never_collide() {
        let dir =
            std::env::temp_dir().join(format!("em-serve-snapq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workflow.emsnap");
        // Three corrupt artifacts in a row: each quarantine destination is
        // fresh, and every earlier artifact survives untouched.
        let mut dests = Vec::new();
        for gen in 0..3u32 {
            std::fs::write(&path, format!("em-snapshot v{} 0\n", 9 + gen)).unwrap();
            let err = WorkflowSnapshot::load_quarantining(&path).unwrap_err();
            let ServeError::Quarantined { dest, cause } = err else {
                panic!("expected Quarantined");
            };
            assert_eq!(
                *cause,
                ServeError::VersionMismatch { found: 9 + gen, expected: 1 },
                "generation {gen}"
            );
            assert!(!dests.contains(&dest), "destination {dest} reused");
            dests.push(dest);
        }
        for (gen, dest) in dests.iter().enumerate() {
            let text = std::fs::read_to_string(dest).unwrap();
            assert_eq!(
                text,
                format!("em-snapshot v{} 0\n", 9 + gen as u32),
                "quarantined artifact {dest} was overwritten"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
