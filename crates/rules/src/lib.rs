//! # em-rules — hand-crafted match rules, patterns, and the IRIS baseline
//!
//! The rule layer of the case study:
//!
//! - [`pattern`]: the Section 12 identifier-pattern language (`#` digit,
//!   `X` letter, `YYYY` year), pattern inference, and *comparability*.
//! - [`award`]: award-number structure helpers (`"10.200 2008-34103-19449"`
//!   → suffix `"2008-34103-19449"`).
//! - [`rules`]: positive sure-match rules (M1, award-number =
//!   project-number) as hash joins; negative comparable-but-different rules;
//!   [`rules::RuleSet`] combining both.
//! - [`iris`]: the production rule-based baseline matcher (exact rules only
//!   — high precision, low recall).
//!
//! ```
//! use em_rules::pattern::{comparable, infer};
//!
//! assert_eq!(infer("2001-34101-10526"), "YYYY-#####-#####");
//! assert!(comparable("WIS01560", "WIS04509")); // same pattern → negative rule can fire
//! ```

#![warn(missing_docs)]

pub mod award;
pub mod error;
pub mod iris;
pub mod pattern;
pub mod rules;
pub mod spec;

pub use error::RuleError;
pub use iris::IrisMatcher;
pub use pattern::{comparable, infer, Pattern, PatternSet};
pub use rules::{EqualityRule, KeyFn, NegativeRule, RuleSet};
pub use spec::{RuleDesc, RuleKeyKind, RulePolarity, RuleSetDesc};
