//! Serializable rule-set descriptions.
//!
//! [`RuleSet`](crate::RuleSet) holds closures, so it cannot be written to
//! disk directly. A [`RuleSetDesc`] is the declarative form: a list of
//! records naming the rule constructor and its attributes, from which
//! [`RuleSetDesc::build`] reconstructs the exact same rules. Workflow
//! snapshots persist the description and rebuild the closures on load.

use crate::rules::{EqualityRule, NegativeRule, RuleSet};
use crate::RuleError;

/// Which side of the workflow a rule acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RulePolarity {
    /// Sure-match rule (applied to whole tables).
    Positive,
    /// Flip-to-non-match rule (applied to predicted matches).
    Negative,
}

/// Which key derivation the rule uses on its left side (the right side is
/// always the plain attribute value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKeyKind {
    /// Trimmed attribute equality ([`EqualityRule::attr_equals`] /
    /// [`NegativeRule::comparable_attrs`]).
    Attr,
    /// Award-suffix on the left ([`EqualityRule::suffix_equals`] /
    /// [`NegativeRule::comparable_suffix`]).
    Suffix,
}

/// One declaratively-described rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleDesc {
    /// Positive or negative.
    pub polarity: RulePolarity,
    /// Key derivation.
    pub kind: RuleKeyKind,
    /// Rule name (provenance tag) — preserved exactly.
    pub name: String,
    /// Left-table attribute.
    pub left_attr: String,
    /// Right-table attribute.
    pub right_attr: String,
}

/// A serializable description of a [`RuleSet`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleSetDesc {
    /// The rules, in application order (positives keep their union order).
    pub rules: Vec<RuleDesc>,
}

impl RulePolarity {
    fn tag(self) -> &'static str {
        match self {
            RulePolarity::Positive => "pos",
            RulePolarity::Negative => "neg",
        }
    }

    fn from_tag(tag: &str) -> Option<RulePolarity> {
        match tag {
            "pos" => Some(RulePolarity::Positive),
            "neg" => Some(RulePolarity::Negative),
            _ => None,
        }
    }
}

impl RuleKeyKind {
    fn tag(self) -> &'static str {
        match self {
            RuleKeyKind::Attr => "attr",
            RuleKeyKind::Suffix => "suffix",
        }
    }

    fn from_tag(tag: &str) -> Option<RuleKeyKind> {
        match tag {
            "attr" => Some(RuleKeyKind::Attr),
            "suffix" => Some(RuleKeyKind::Suffix),
            _ => None,
        }
    }
}

impl RuleSetDesc {
    /// Starts an empty description.
    pub fn new() -> RuleSetDesc {
        RuleSetDesc::default()
    }

    /// Appends a positive rule.
    pub fn positive(
        mut self,
        kind: RuleKeyKind,
        name: impl Into<String>,
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
    ) -> RuleSetDesc {
        self.rules.push(RuleDesc {
            polarity: RulePolarity::Positive,
            kind,
            name: name.into(),
            left_attr: left_attr.into(),
            right_attr: right_attr.into(),
        });
        self
    }

    /// Appends a negative rule.
    pub fn negative(
        mut self,
        kind: RuleKeyKind,
        name: impl Into<String>,
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
    ) -> RuleSetDesc {
        self.rules.push(RuleDesc {
            polarity: RulePolarity::Negative,
            kind,
            name: name.into(),
            left_attr: left_attr.into(),
            right_attr: right_attr.into(),
        });
        self
    }

    /// Reconstructs the executable [`RuleSet`] through the same public
    /// constructors hand-written code uses, so described and hand-built
    /// rule sets behave identically.
    pub fn build(&self) -> RuleSet {
        let mut set = RuleSet::default();
        for r in &self.rules {
            match (r.polarity, r.kind) {
                (RulePolarity::Positive, RuleKeyKind::Attr) => set
                    .positive
                    .push(EqualityRule::attr_equals(&r.name, &r.left_attr, &r.right_attr)),
                (RulePolarity::Positive, RuleKeyKind::Suffix) => set
                    .positive
                    .push(EqualityRule::suffix_equals(&r.name, &r.left_attr, &r.right_attr)),
                (RulePolarity::Negative, RuleKeyKind::Attr) => set
                    .negative
                    .push(NegativeRule::comparable_attrs(&r.name, &r.left_attr, &r.right_attr)),
                (RulePolarity::Negative, RuleKeyKind::Suffix) => set
                    .negative
                    .push(NegativeRule::comparable_suffix(&r.name, &r.left_attr, &r.right_attr)),
            }
        }
        set
    }

    /// The distinct `(left_attr, right_attr)` pairs any described rule's
    /// predicate reads, in first-appearance order. Serving uses this to keep
    /// features over rule-referenced attribute pairs alive when pruning the
    /// feature plan to what the fitted model actually inspects.
    pub fn referenced_attr_pairs(&self) -> Vec<(&str, &str)> {
        let mut pairs: Vec<(&str, &str)> = Vec::new();
        for r in &self.rules {
            let p = (r.left_attr.as_str(), r.right_attr.as_str());
            if !pairs.contains(&p) {
                pairs.push(p);
            }
        }
        pairs
    }

    /// One line per rule: `polarity kind name left right`, fields
    /// tab-separated so names may contain spaces.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for r in &self.rules {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                r.polarity.tag(),
                r.kind.tag(),
                r.name,
                r.left_attr,
                r.right_attr
            ));
        }
        out
    }

    /// Parses a description produced by [`RuleSetDesc::encode`]. Malformed
    /// lines yield [`RuleError::BadRuleDesc`] — never a panic.
    pub fn decode(text: &str) -> Result<RuleSetDesc, RuleError> {
        let mut rules = Vec::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let [pol, kind, name, left, right] = fields.as_slice() else {
                return Err(RuleError::BadRuleDesc(format!(
                    "expected 5 tab-separated fields, got {}: {line:?}",
                    fields.len()
                )));
            };
            let polarity = RulePolarity::from_tag(pol)
                .ok_or_else(|| RuleError::BadRuleDesc(format!("unknown polarity {pol:?}")))?;
            let kind = RuleKeyKind::from_tag(kind)
                .ok_or_else(|| RuleError::BadRuleDesc(format!("unknown key kind {kind:?}")))?;
            rules.push(RuleDesc {
                polarity,
                kind,
                name: name.to_string(),
                left_attr: left.to_string(),
                right_attr: right.to_string(),
            });
        }
        Ok(RuleSetDesc { rules })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_table::csv::read_str;

    fn sample() -> RuleSetDesc {
        RuleSetDesc::new()
            .positive(RuleKeyKind::Suffix, "M1", "AwardNumber", "AwardNumber")
            .positive(RuleKeyKind::Suffix, "award=project", "AwardNumber", "ProjectNumber")
            .negative(RuleKeyKind::Suffix, "neg:award", "AwardNumber", "AwardNumber")
            .negative(RuleKeyKind::Attr, "neg:title", "AwardTitle", "ProjectTitle")
    }

    #[test]
    fn encode_decode_roundtrips() {
        let desc = sample();
        assert_eq!(RuleSetDesc::decode(&desc.encode()).unwrap(), desc);
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        for text in ["pos\tattr\tname\tleft", "maybe\tattr\ta\tb\tc", "pos\tregex\ta\tb\tc"] {
            assert!(
                matches!(RuleSetDesc::decode(text), Err(RuleError::BadRuleDesc(_))),
                "accepted {text:?}"
            );
        }
    }

    #[test]
    fn built_rules_match_hand_constructed() {
        let u = read_str(
            "U",
            "AwardNumber,AwardTitle\n\
             10.200 2008-34103-19449,Corn Fungicide Guidelines\n\
             10.203 WIS01040,Swamp Dodder Ecology\n",
        )
        .unwrap();
        let s = read_str(
            "S",
            "AwardNumber,ProjectNumber,ProjectTitle\n\
             2008-34103-19449,,Corn Fungicide Guidelines\n\
             ,WIS01040,Swamp Dodder Ecology\n",
        )
        .unwrap();
        let built = sample().build();
        let hand = RuleSet {
            positive: vec![
                EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber"),
                EqualityRule::suffix_equals("award=project", "AwardNumber", "ProjectNumber"),
            ],
            negative: vec![
                NegativeRule::comparable_suffix("neg:award", "AwardNumber", "AwardNumber"),
                NegativeRule::comparable_attrs("neg:title", "AwardTitle", "ProjectTitle"),
            ],
        };
        for i in 0..u.n_rows() {
            for j in 0..s.n_rows() {
                let (ra, rb) = (u.row(i).unwrap(), s.row(j).unwrap());
                assert_eq!(built.any_positive_fires(ra, rb), hand.any_positive_fires(ra, rb));
                assert_eq!(built.any_negative_fires(ra, rb), hand.any_negative_fires(ra, rb));
            }
        }
        let names: Vec<&str> = built.positive.iter().map(|r| r.name()).collect();
        assert_eq!(names, vec!["M1", "award=project"]);
    }
}
