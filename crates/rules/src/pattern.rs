//! The award-number pattern language of Section 12.
//!
//! The UMETRICS team describes identifier shapes with patterns such as
//! `##-XX-########-###` and `YYYY-#####-#####`, where `#` is any digit, `X`
//! any letter, and `YYYY` a four-digit year. Two identifiers are
//! **comparable** when they follow the same pattern; the negative matching
//! rule then declares comparable-but-different identifiers a non-match.
//!
//! [`infer`] derives the pattern of a concrete value (so the rule engine can
//! check comparability without the experts enumerating patterns), and
//! [`Pattern`] matches values against an explicit spec (so the experts'
//! enumerated pattern lists are also expressible).

/// Infers the pattern of a value: maximal digit runs of length 4 that parse
/// to a plausible year (1900–2099) become `YYYY`, other digits become `#`,
/// letters become `X`, and everything else is kept literally.
pub fn infer(value: &str) -> String {
    let chars: Vec<char> = value.chars().collect();
    let mut out = String::with_capacity(chars.len());
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_ascii_digit() {
            let mut j = i;
            while j < chars.len() && chars[j].is_ascii_digit() {
                j += 1;
            }
            let run: String = chars[i..j].iter().collect();
            if run.len() == 4 {
                let year: u32 = run.parse().unwrap_or(0);
                if (1900..=2099).contains(&year) {
                    out.push_str("YYYY");
                    i = j;
                    continue;
                }
            }
            for _ in i..j {
                out.push('#');
            }
            i = j;
        } else if c.is_ascii_alphabetic() {
            out.push('X');
            i += 1;
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// Two values are comparable when they follow the same inferred pattern
/// (Section 12's definition). Empty values are never comparable.
pub fn comparable(a: &str, b: &str) -> bool {
    let (a, b) = (a.trim(), b.trim());
    !a.is_empty() && !b.is_empty() && infer(a) == infer(b)
}

/// An explicit pattern spec in the paper's notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    spec: Vec<Token>,
    source: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    Digit,
    Letter,
    Year,
    Literal(char),
}

impl Pattern {
    /// Parses a spec: `#` digit, `X` letter, `YYYY` year, anything else
    /// literal.
    pub fn parse(spec: &str) -> Pattern {
        let mut tokens = Vec::new();
        let chars: Vec<char> = spec.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if chars[i] == 'Y' && chars[i..].starts_with(&['Y', 'Y', 'Y', 'Y']) {
                tokens.push(Token::Year);
                i += 4;
            } else {
                tokens.push(match chars[i] {
                    '#' => Token::Digit,
                    'X' => Token::Letter,
                    c => Token::Literal(c),
                });
                i += 1;
            }
        }
        Pattern { spec: tokens, source: spec.to_string() }
    }

    /// The original spec text.
    pub fn spec(&self) -> &str {
        &self.source
    }

    /// True when `value` matches the pattern exactly (whole string).
    pub fn matches(&self, value: &str) -> bool {
        let chars: Vec<char> = value.chars().collect();
        let mut pos = 0usize;
        for token in &self.spec {
            match token {
                Token::Digit => {
                    if pos >= chars.len() || !chars[pos].is_ascii_digit() {
                        return false;
                    }
                    pos += 1;
                }
                Token::Letter => {
                    if pos >= chars.len() || !chars[pos].is_ascii_alphabetic() {
                        return false;
                    }
                    pos += 1;
                }
                Token::Year => {
                    if pos + 4 > chars.len() {
                        return false;
                    }
                    let run: String = chars[pos..pos + 4].iter().collect();
                    match run.parse::<u32>() {
                        Ok(y) if (1900..=2099).contains(&y) => pos += 4,
                        _ => return false,
                    }
                }
                Token::Literal(c) => {
                    if pos >= chars.len() || chars[pos] != *c {
                        return false;
                    }
                    pos += 1;
                }
            }
        }
        pos == chars.len()
    }
}

/// A set of known patterns; a value "follows a known pattern" when any
/// member matches. This is the shape of the pattern lists the UMETRICS team
/// supplied (paper: "the list of possible patterns for the award numbers").
#[derive(Debug, Clone, Default)]
pub struct PatternSet {
    patterns: Vec<Pattern>,
}

impl PatternSet {
    /// Builds a set from spec strings.
    pub fn new(specs: &[&str]) -> PatternSet {
        PatternSet { patterns: specs.iter().map(|s| Pattern::parse(s)).collect() }
    }

    /// The first matching pattern's spec, if any.
    pub fn classify(&self, value: &str) -> Option<&str> {
        self.patterns.iter().find(|p| p.matches(value)).map(Pattern::spec)
    }

    /// True when some pattern matches.
    pub fn matches(&self, value: &str) -> bool {
        self.classify(value).is_some()
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when the set has no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_paper_examples() {
        // Section 12's own examples.
        assert_eq!(infer("03-CS-112313000-031"), "##-XX-#########-###");
        assert_eq!(infer("2001-34101-10526"), "YYYY-#####-#####");
        assert_eq!(infer("WIS01560"), "XXX#####");
        assert_eq!(infer("WIS04509"), "XXX#####");
    }

    #[test]
    fn comparable_matches_paper_semantics() {
        // Different patterns → not comparable.
        assert!(!comparable("03-CS-112313000-031", "2001-34101-10526"));
        // Same pattern, different values → comparable (the negative rule
        // will then fire).
        assert!(comparable("WIS01560", "WIS04509"));
        assert!(comparable("2008-34103-19449", "2001-34101-10526"));
    }

    #[test]
    fn comparable_rejects_empty() {
        assert!(!comparable("", "WIS01560"));
        assert!(!comparable("  ", "  "));
    }

    #[test]
    fn year_detection_requires_plausible_year() {
        assert_eq!(infer("2008"), "YYYY");
        assert_eq!(infer("3008"), "####");
        assert_eq!(infer("123"), "###");
        assert_eq!(infer("12345"), "#####");
    }

    #[test]
    fn pattern_matches_explicit_specs() {
        let p = Pattern::parse("YYYY-#####-#####");
        assert!(p.matches("2008-34103-19449"));
        assert!(!p.matches("9008-34103-19449")); // implausible year
        assert!(!p.matches("2008-34103-1944")); // short
        assert!(!p.matches("2008-34103-194499")); // long
        let wis = Pattern::parse("XXX#####");
        assert!(wis.matches("WIS01040"));
        assert!(!wis.matches("WIS0104"));
        assert!(!wis.matches("W1S01040"));
    }

    #[test]
    fn pattern_literal_chars() {
        let p = Pattern::parse("##.###");
        assert!(p.matches("10.200"));
        assert!(!p.matches("10-200"));
    }

    #[test]
    fn pattern_set_classifies() {
        let set = PatternSet::new(&["YYYY-#####-#####", "XXX#####", "##-XX-#########-###"]);
        assert_eq!(set.classify("WIS01040"), Some("XXX#####"));
        assert_eq!(set.classify("2008-34103-19449"), Some("YYYY-#####-#####"));
        assert_eq!(set.classify("nonsense"), None);
        assert!(set.matches("03-CS-112313000-031"));
    }

    #[test]
    fn infer_then_match_round_trips() {
        for v in ["WIS01040", "2008-34103-19449", "03-CS-112313000-031", "10.200 2008-34103-19449"] {
            let p = Pattern::parse(&infer(v));
            assert!(p.matches(v), "inferred pattern should match its source: {v}");
        }
    }

    #[test]
    fn empty_pattern_matches_only_empty() {
        let p = Pattern::parse("");
        assert!(p.matches(""));
        assert!(!p.matches("x"));
    }
}
