//! Positive and negative match rules, and the rule sets the workflows apply.
//!
//! The case study uses three kinds of hand-crafted rules:
//!
//! - **M1** (Section 5): if the suffix of UMETRICS `AwardNumber` equals the
//!   USDA `AwardNumber`, the pair is a sure match.
//! - The **revised-definition rule** (Section 10): if UMETRICS
//!   `AwardNumber` equals USDA `ProjectNumber`, the pair is a sure match.
//! - The **negative rule** (Section 12): if two identifiers are comparable
//!   (same pattern) but different, flip the prediction to non-match.
//!
//! Positive rules are [`EqualityRule`]s over derived keys, so whole-table
//! application is a hash join, not a Cartesian scan.

use crate::award::award_suffix;
use crate::error::RuleError;
use crate::pattern::comparable;
use em_blocking::{CandidateSet, Pair};
use em_parallel::Executor;
use em_table::{RowRef, Table};
use em_text::intern::Interner;
use std::collections::HashMap;
use std::sync::Arc;

/// Minimum rows (or pairs) per thread when rule probing fans out.
const RULE_GRAIN: usize = 256;

/// Derives the comparison key for one side of a rule. `None` / empty keys
/// never fire a rule.
pub type KeyFn = Arc<dyn Fn(RowRef<'_>) -> Option<String> + Send + Sync>;

/// Extracts a trimmed, non-empty string attribute.
pub fn attr_key(attr: &str) -> KeyFn {
    let attr = attr.to_string();
    Arc::new(move |r: RowRef<'_>| {
        r.str(&attr).map(str::trim).filter(|s| !s.is_empty()).map(str::to_string)
    })
}

/// Extracts the award-number suffix of an attribute (M1's left side).
pub fn suffix_key(attr: &str) -> KeyFn {
    let attr = attr.to_string();
    Arc::new(move |r: RowRef<'_>| {
        r.str(&attr).and_then(award_suffix).map(str::to_string)
    })
}

/// A positive (sure-match) rule: fires when the derived keys agree exactly.
#[derive(Clone)]
pub struct EqualityRule {
    name: String,
    left_key: KeyFn,
    right_key: KeyFn,
}

impl std::fmt::Debug for EqualityRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EqualityRule").field("name", &self.name).finish_non_exhaustive()
    }
}

impl EqualityRule {
    /// A rule over arbitrary key extractors.
    pub fn new(name: impl Into<String>, left_key: KeyFn, right_key: KeyFn) -> EqualityRule {
        EqualityRule { name: name.into(), left_key, right_key }
    }

    /// Exact equality of two attributes (the Section 10 rule:
    /// `AwardNumber = ProjectNumber`).
    pub fn attr_equals(name: impl Into<String>, left_attr: &str, right_attr: &str) -> EqualityRule {
        EqualityRule::new(name, attr_key(left_attr), attr_key(right_attr))
    }

    /// M1: the suffix of the left attribute equals the right attribute.
    pub fn suffix_equals(name: impl Into<String>, left_attr: &str, right_attr: &str) -> EqualityRule {
        EqualityRule::new(name, suffix_key(left_attr), attr_key(right_attr))
    }

    /// The rule's name (used as provenance tag).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Derived key for a left-table row (`None` never fires). Online
    /// serving uses this to probe a prebuilt right-side key index.
    pub fn left_key(&self, r: RowRef<'_>) -> Option<String> {
        (self.left_key)(r)
    }

    /// Derived key for a right-table row — the index side of the hash join.
    pub fn right_key(&self, r: RowRef<'_>) -> Option<String> {
        (self.right_key)(r)
    }

    /// Pair-level check.
    pub fn fires(&self, a: RowRef<'_>, b: RowRef<'_>) -> bool {
        match ((self.left_key)(a), (self.right_key)(b)) {
            (Some(l), Some(r)) => l == r,
            _ => false,
        }
    }

    /// All pairs of `A × B` on which the rule fires, via hash join on the
    /// derived keys. Right-side keys are interned to dense ids once while
    /// building the index; left rows then probe in parallel (each probe is
    /// a pure function of its row index, so output is thread-count
    /// independent).
    pub fn find_all(&self, a: &Table, b: &Table) -> Result<CandidateSet, RuleError> {
        let mut interner = Interner::new();
        let mut index: HashMap<u32, Vec<usize>> = HashMap::new();
        for (j, rb) in b.iter().enumerate() {
            if let Some(k) = (self.right_key)(rb) {
                index.entry(interner.intern(&k)).or_default().push(j);
            }
        }
        let hits: Vec<Option<&Vec<usize>>> =
            Executor::current().map_indexed(a.n_rows(), RULE_GRAIN, |i| {
                a.row(i)
                    .and_then(|ra| (self.left_key)(ra))
                    .and_then(|k| interner.get(&k))
                    .and_then(|id| index.get(&id))
            });
        let mut out = CandidateSet::new(self.name.clone());
        for (i, js) in hits.into_iter().enumerate() {
            for &j in js.into_iter().flatten() {
                out.add(Pair::new(i, j), &self.name);
            }
        }
        Ok(out)
    }
}

/// A negative rule: flips a predicted match to non-match when the derived
/// keys are *comparable* (same inferred pattern) but not equal.
#[derive(Clone)]
pub struct NegativeRule {
    name: String,
    left_key: KeyFn,
    right_key: KeyFn,
}

impl std::fmt::Debug for NegativeRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NegativeRule").field("name", &self.name).finish_non_exhaustive()
    }
}

impl NegativeRule {
    /// A negative rule over arbitrary key extractors.
    pub fn new(name: impl Into<String>, left_key: KeyFn, right_key: KeyFn) -> NegativeRule {
        NegativeRule { name: name.into(), left_key, right_key }
    }

    /// Comparable-but-different check over two attributes.
    pub fn comparable_attrs(
        name: impl Into<String>,
        left_attr: &str,
        right_attr: &str,
    ) -> NegativeRule {
        NegativeRule::new(name, attr_key(left_attr), attr_key(right_attr))
    }

    /// Comparable-but-different between the left attribute's award suffix
    /// and the right attribute (the paper's first negative condition).
    pub fn comparable_suffix(
        name: impl Into<String>,
        left_attr: &str,
        right_attr: &str,
    ) -> NegativeRule {
        NegativeRule::new(name, suffix_key(left_attr), attr_key(right_attr))
    }

    /// The rule's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Pair-level check: true when the pair should be flipped to non-match.
    pub fn fires(&self, a: RowRef<'_>, b: RowRef<'_>) -> bool {
        match ((self.left_key)(a), (self.right_key)(b)) {
            (Some(l), Some(r)) => comparable(&l, &r) && l != r,
            _ => false,
        }
    }
}

/// A bundle of positive and negative rules, applied the way the final
/// workflow of Figure 10 applies them.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    /// Sure-match rules (applied to whole tables; union of firings).
    pub positive: Vec<EqualityRule>,
    /// Flip-to-non-match rules (applied to predicted matches).
    pub negative: Vec<NegativeRule>,
}

impl RuleSet {
    /// Union of all positive-rule firings over `A × B` — the sure-match set
    /// (`C1`/`D1` in Figures 9 and 10).
    pub fn sure_matches(&self, a: &Table, b: &Table) -> Result<CandidateSet, RuleError> {
        let mut out = CandidateSet::new("sure-matches");
        for rule in &self.positive {
            out = out.union(&rule.find_all(a, b)?);
        }
        out.set_name("sure-matches");
        Ok(out)
    }

    /// True when any positive rule fires on the pair.
    pub fn any_positive_fires(&self, a: RowRef<'_>, b: RowRef<'_>) -> bool {
        self.positive.iter().any(|r| r.fires(a, b))
    }

    /// True when any negative rule fires on the pair.
    pub fn any_negative_fires(&self, a: RowRef<'_>, b: RowRef<'_>) -> bool {
        self.negative.iter().any(|r| r.fires(a, b))
    }

    /// Applies the negative rules to a set of predicted matches, splitting
    /// it into `(kept, flipped)` — `S = R − flipped` in Figure 10.
    pub fn apply_negative(
        &self,
        a: &Table,
        b: &Table,
        matches: &CandidateSet,
    ) -> Result<(CandidateSet, CandidateSet), RuleError> {
        let mut kept = CandidateSet::new(format!("{}·kept", matches.name()));
        let mut flipped = CandidateSet::new(format!("{}·flipped", matches.name()));
        // Each pair's verdict is independent, so evaluation fans out; the
        // ordered merge below preserves provenance exactly as the
        // sequential loop did.
        let pairs: Vec<Pair> = matches.to_vec();
        let verdicts: Vec<Result<bool, RuleError>> =
            Executor::current().map_slice(&pairs, RULE_GRAIN, |pair| {
                let ra = a
                    .row(pair.left)
                    .ok_or(RuleError::BadPair(pair.left, pair.right))?;
                let rb = b
                    .row(pair.right)
                    .ok_or(RuleError::BadPair(pair.left, pair.right))?;
                Ok(self.any_negative_fires(ra, rb))
            });
        for (pair, verdict) in pairs.iter().zip(verdicts) {
            if verdict? {
                flipped.add(*pair, "negative-rule");
            } else {
                for src in matches.provenance(pair).unwrap_or(&[]) {
                    kept.add(*pair, src);
                }
            }
        }
        Ok((kept, flipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_table::csv::read_str;

    fn umetrics() -> Table {
        read_str(
            "U",
            "AwardNumber,AwardTitle\n\
             10.200 2008-34103-19449,Corn Fungicide Guidelines\n\
             10.203 WIS01040,Swamp Dodder Ecology\n\
             10.250 WIS04059,Maize Genetics\n\
             bare-no-space,Other\n",
        )
        .unwrap()
    }

    fn usda() -> Table {
        read_str(
            "S",
            "AwardNumber,ProjectNumber,ProjectTitle\n\
             2008-34103-19449,,Corn Fungicide Guidelines\n\
             ,WIS01040,Swamp Dodder Ecology\n\
             ,WIS09999,Different Project\n",
        )
        .unwrap()
    }

    #[test]
    fn m1_fires_on_suffix_equality() {
        let m1 = EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber");
        let c = m1.find_all(&umetrics(), &usda()).unwrap();
        assert_eq!(c.len(), 1);
        assert!(c.contains(&Pair::new(0, 0)));
        assert_eq!(c.provenance(&Pair::new(0, 0)).unwrap(), &["M1"]);
    }

    #[test]
    fn m1_ignores_bare_values() {
        // "bare-no-space" has no extractable suffix → never fires.
        let m1 = EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber");
        let (u, s) = (umetrics(), usda());
        for j in 0..s.n_rows() {
            assert!(!m1.fires(u.row(3).unwrap(), s.row(j).unwrap()));
        }
    }

    #[test]
    fn project_number_rule_fires() {
        let r2 = EqualityRule::suffix_equals("R2", "AwardNumber", "ProjectNumber");
        let c = r2.find_all(&umetrics(), &usda()).unwrap();
        assert_eq!(c.len(), 1);
        assert!(c.contains(&Pair::new(1, 1)));
    }

    #[test]
    fn fires_agrees_with_find_all() {
        let (u, s) = (umetrics(), usda());
        let rule = EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber");
        let c = rule.find_all(&u, &s).unwrap();
        for i in 0..u.n_rows() {
            for j in 0..s.n_rows() {
                assert_eq!(
                    rule.fires(u.row(i).unwrap(), s.row(j).unwrap()),
                    c.contains(&Pair::new(i, j)),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn negative_rule_flips_comparable_but_different() {
        let neg = NegativeRule::comparable_suffix("neg", "AwardNumber", "ProjectNumber");
        let (u, s) = (umetrics(), usda());
        // WIS01040 vs WIS09999: same pattern, different values → fires.
        assert!(neg.fires(u.row(1).unwrap(), s.row(2).unwrap()));
        // WIS01040 vs WIS01040: same value → does not fire.
        assert!(!neg.fires(u.row(1).unwrap(), s.row(1).unwrap()));
        // federal vs WIS pattern: not comparable → does not fire.
        assert!(!neg.fires(u.row(0).unwrap(), s.row(2).unwrap()));
    }

    #[test]
    fn negative_rule_ignores_missing_values() {
        let neg = NegativeRule::comparable_attrs("neg", "AwardNumber", "AwardNumber");
        let (u, s) = (umetrics(), usda());
        // USDA row 1 has empty AwardNumber → no firing possible.
        assert!(!neg.fires(u.row(1).unwrap(), s.row(1).unwrap()));
    }

    #[test]
    fn ruleset_sure_matches_unions_rules() {
        let rules = RuleSet {
            positive: vec![
                EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber"),
                EqualityRule::suffix_equals("R2", "AwardNumber", "ProjectNumber"),
            ],
            negative: vec![],
        };
        let sure = rules.sure_matches(&umetrics(), &usda()).unwrap();
        assert_eq!(sure.len(), 2);
        assert!(sure.contains(&Pair::new(0, 0)));
        assert!(sure.contains(&Pair::new(1, 1)));
    }

    #[test]
    fn apply_negative_splits_matches() {
        let rules = RuleSet {
            positive: vec![],
            negative: vec![NegativeRule::comparable_suffix(
                "neg",
                "AwardNumber",
                "ProjectNumber",
            )],
        };
        let mut predicted = CandidateSet::new("R");
        predicted.add(Pair::new(1, 1), "model"); // WIS01040 = WIS01040: keep
        predicted.add(Pair::new(1, 2), "model"); // WIS01040 vs WIS09999: flip
        let (kept, flipped) =
            rules.apply_negative(&umetrics(), &usda(), &predicted).unwrap();
        assert_eq!(kept.len(), 1);
        assert!(kept.contains(&Pair::new(1, 1)));
        assert_eq!(kept.provenance(&Pair::new(1, 1)).unwrap(), &["model"]);
        assert_eq!(flipped.len(), 1);
        assert!(flipped.contains(&Pair::new(1, 2)));
    }

    #[test]
    fn apply_negative_rejects_out_of_range_pairs() {
        let rules = RuleSet::default();
        let mut predicted = CandidateSet::new("R");
        predicted.add(Pair::new(99, 0), "model");
        assert!(rules.apply_negative(&umetrics(), &usda(), &predicted).is_err());
    }
}
