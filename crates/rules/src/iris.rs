//! The IRIS baseline: the rule-based matcher deployed in production at
//! UMETRICS (IRIS is the organization that manages the repository).
//!
//! The paper characterizes it as exact hand-crafted rules — estimated at
//! **100% precision but only ~65–72% recall** (Section 11). Here it is the
//! union of the two exact identifier rules, with no learning and no fuzzy
//! matching, which is what gives it that precision/recall profile.

use crate::error::RuleError;
use crate::rules::EqualityRule;
use em_blocking::CandidateSet;
use em_table::Table;

/// The production rule-based matcher used as the paper's baseline.
#[derive(Debug, Clone)]
pub struct IrisMatcher {
    rules: Vec<EqualityRule>,
}

impl IrisMatcher {
    /// A matcher from explicit rules.
    pub fn new(rules: Vec<EqualityRule>) -> IrisMatcher {
        IrisMatcher { rules }
    }

    /// The standard IRIS configuration for the UMETRICS/USDA slice: the
    /// award-number suffix rule and the award-number = project-number rule.
    ///
    /// `left_award` is the UMETRICS `AwardNumber` column; `right_award` and
    /// `right_project` are USDA's `AwardNumber` and `ProjectNumber`.
    pub fn standard(left_award: &str, right_award: &str, right_project: &str) -> IrisMatcher {
        IrisMatcher {
            rules: vec![
                EqualityRule::suffix_equals("iris:award-suffix", left_award, right_award),
                EqualityRule::suffix_equals("iris:project-number", left_award, right_project),
            ],
        }
    }

    /// The rules, for inspection.
    pub fn rules(&self) -> &[EqualityRule] {
        &self.rules
    }

    /// Predicts matches over two tables: every pair any rule fires on.
    pub fn predict(&self, a: &Table, b: &Table) -> Result<CandidateSet, RuleError> {
        let mut out = CandidateSet::new("iris");
        for rule in &self.rules {
            out = out.union(&rule.find_all(a, b)?);
        }
        out.set_name("iris");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_blocking::Pair;
    use em_table::csv::read_str;

    fn tables() -> (Table, Table) {
        let u = read_str(
            "U",
            "AwardNumber\n\
             10.200 2008-34103-19449\n\
             10.203 WIS01040\n\
             10.250 WIS04059\n",
        )
        .unwrap();
        let s = read_str(
            "S",
            "AwardNumber,ProjectNumber\n\
             2008-34103-19449,\n\
             ,WIS01040\n\
             ,WIS07777\n",
        )
        .unwrap();
        (u, s)
    }

    #[test]
    fn standard_iris_finds_exact_matches_only() {
        let (u, s) = tables();
        let iris = IrisMatcher::standard("AwardNumber", "AwardNumber", "ProjectNumber");
        let m = iris.predict(&u, &s).unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.contains(&Pair::new(0, 0)));
        assert!(m.contains(&Pair::new(1, 1)));
        assert!(!m.contains(&Pair::new(2, 2)), "WIS04059 vs WIS07777 differ");
    }

    #[test]
    fn provenance_names_the_rule() {
        let (u, s) = tables();
        let iris = IrisMatcher::standard("AwardNumber", "AwardNumber", "ProjectNumber");
        let m = iris.predict(&u, &s).unwrap();
        assert_eq!(m.provenance(&Pair::new(0, 0)).unwrap(), &["iris:award-suffix"]);
        assert_eq!(m.provenance(&Pair::new(1, 1)).unwrap(), &["iris:project-number"]);
    }

    #[test]
    fn empty_rule_set_predicts_nothing() {
        let (u, s) = tables();
        let iris = IrisMatcher::new(vec![]);
        assert!(iris.predict(&u, &s).unwrap().is_empty());
    }
}
