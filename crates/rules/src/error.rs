//! Error type for rule application.

use std::fmt;

/// Errors raised while applying rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// A candidate pair referenced a row outside its table.
    BadPair(usize, usize),
    /// A serialized rule description did not parse.
    BadRuleDesc(String),
    /// Underlying table error.
    Table(em_table::TableError),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::BadPair(l, r) => write!(f, "pair ({l}, {r}) is out of range"),
            RuleError::BadRuleDesc(detail) => write!(f, "bad rule description: {detail}"),
            RuleError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for RuleError {}

impl From<em_table::TableError> for RuleError {
    fn from(e: em_table::TableError) -> Self {
        RuleError::Table(e)
    }
}
