//! Award-number helpers shared by rules and the case-study pipeline.
//!
//! UMETRICS `UniqueAwardNumber` values take the form
//! `"XX.XXX YYYY-YYYY-YYYYY-YYYYY"` — a CFDA-style program prefix, a space,
//! then the award identifier proper. The M1 positive rule compares that
//! second part against USDA's `Award Number`.

/// The identifier part of a UMETRICS award number: the last
/// whitespace-separated component when there are at least two, otherwise
/// `None` (a bare value has no extractable suffix under M1's definition).
pub fn award_suffix(unique_award_number: &str) -> Option<&str> {
    let mut parts = unique_award_number.split_whitespace();
    let first = parts.next()?;
    let last = parts.last();
    match last {
        Some(l) => Some(l),
        None => {
            let _ = first;
            None
        }
    }
}

/// The program (CFDA-style) prefix of a UMETRICS award number: the first
/// whitespace-separated component, when a suffix also exists.
pub fn program_prefix(unique_award_number: &str) -> Option<&str> {
    let mut parts = unique_award_number.split_whitespace();
    let first = parts.next()?;
    parts.next().map(|_| first)
}

/// Case-study comparison of two identifiers: trimmed, case-sensitive exact
/// equality, with empty values never equal.
pub fn ids_equal(a: &str, b: &str) -> bool {
    let (a, b) = (a.trim(), b.trim());
    !a.is_empty() && a == b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_suffix_of_federal_number() {
        assert_eq!(award_suffix("10.200 2008-34103-19449"), Some("2008-34103-19449"));
    }

    #[test]
    fn extracts_suffix_of_state_number() {
        assert_eq!(award_suffix("10.203 WIS01040"), Some("WIS01040"));
    }

    #[test]
    fn bare_value_has_no_suffix() {
        assert_eq!(award_suffix("2008-34103-19449"), None);
        assert_eq!(award_suffix(""), None);
    }

    #[test]
    fn multi_space_takes_last() {
        assert_eq!(award_suffix("10.200  extra  WIS01040"), Some("WIS01040"));
    }

    #[test]
    fn program_prefix_extracted() {
        assert_eq!(program_prefix("10.200 2008-34103-19449"), Some("10.200"));
        assert_eq!(program_prefix("2008-34103-19449"), None);
    }

    #[test]
    fn ids_equal_semantics() {
        assert!(ids_equal(" WIS01040 ", "WIS01040"));
        assert!(!ids_equal("", ""));
        assert!(!ids_equal("WIS01040", "wis01040"));
    }
}
