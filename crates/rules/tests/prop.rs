//! Property-based tests for the pattern language and rule semantics.

use em_rules::award::{award_suffix, ids_equal, program_prefix};
use em_rules::pattern::{comparable, infer, Pattern};
use proptest::prelude::*;

/// Identifier-shaped strings: digits, letters, dashes, dots.
fn identifier() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Z0-9.-]{1,20}").expect("valid regex")
}

/// Award numbers in the UMETRICS shape: `##.### <suffix>`.
fn unique_award_number() -> impl Strategy<Value = String> {
    (10u32..100, 100u32..1000, identifier())
        .prop_map(|(a, b, suffix)| format!("{a}.{b} {suffix}"))
}

proptest! {
    /// The inferred pattern of a value always matches that value.
    #[test]
    fn inferred_pattern_matches_source(v in identifier()) {
        let p = Pattern::parse(&infer(&v));
        prop_assert!(p.matches(&v), "infer({v:?}) = {:?} does not match", infer(&v));
    }

    /// Comparability is reflexive (for non-empty values) and symmetric.
    #[test]
    fn comparable_is_reflexive_and_symmetric(a in identifier(), b in identifier()) {
        prop_assert!(comparable(&a, &a));
        prop_assert_eq!(comparable(&a, &b), comparable(&b, &a));
    }

    /// Two values with the same inferred pattern are comparable; values
    /// with different patterns never are.
    #[test]
    fn comparable_iff_same_pattern(a in identifier(), b in identifier()) {
        prop_assert_eq!(comparable(&a, &b), infer(&a) == infer(&b));
    }

    /// Pattern inference is idempotent on the pattern alphabet in the sense
    /// that equal values infer equal patterns.
    #[test]
    fn equal_values_equal_patterns(a in identifier()) {
        prop_assert_eq!(infer(&a), infer(&a.clone()));
    }

    /// The award suffix of `"<prefix> <suffix>"` is the suffix, and the
    /// program prefix is the prefix.
    #[test]
    fn suffix_and_prefix_extraction(n in unique_award_number()) {
        let suffix = award_suffix(&n).expect("two components");
        let prefix = program_prefix(&n).expect("two components");
        prop_assert_eq!(format!("{prefix} {suffix}"), n);
    }

    /// Bare identifiers (no whitespace) have no suffix and no prefix.
    #[test]
    fn bare_identifier_has_no_parts(v in identifier()) {
        prop_assert!(award_suffix(&v).is_none());
        prop_assert!(program_prefix(&v).is_none());
    }

    /// `ids_equal` is an equivalence on trimmed non-empty identifiers and
    /// never equates distinct trimmed values.
    #[test]
    fn ids_equal_semantics(a in identifier(), b in identifier()) {
        prop_assert!(ids_equal(&a, &a));
        prop_assert_eq!(ids_equal(&a, &b), a.trim() == b.trim() && !a.trim().is_empty());
        // whitespace-insensitive on the outside
        let padded = format!("  {a} ");
        prop_assert!(ids_equal(&padded, &a));
    }
}
