//! Property-based tests for feature computation.

use em_features::{Feature, FeatureKind};
use em_table::{Date, Value};
use proptest::prelude::*;

fn text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9 ]{0,30}").expect("valid regex")
}

const STRING_KINDS: &[FeatureKind] = &[
    FeatureKind::ExactStr,
    FeatureKind::LevSim,
    FeatureKind::Jaro,
    FeatureKind::JaroWinkler,
    FeatureKind::NeedlemanWunsch,
    FeatureKind::SmithWaterman,
    FeatureKind::JaccardQgram3,
    FeatureKind::JaccardWord,
    FeatureKind::CosineWord,
    FeatureKind::OverlapCoeffWord,
    FeatureKind::DiceQgram3,
    FeatureKind::MongeElkanJw,
];

proptest! {
    /// Every string measure is bounded in [0,1], scores 1 on identical
    /// strings, and is symmetric.
    #[test]
    fn string_features_bounded_symmetric(a in text(), b in text()) {
        for &kind in STRING_KINDS {
            let f = Feature::new("t", "t", kind, false);
            let ab = f.compute(&Value::Str(a.clone()), &Value::Str(b.clone()));
            let ba = f.compute(&Value::Str(b.clone()), &Value::Str(a.clone()));
            prop_assert!((0.0..=1.0).contains(&ab), "{kind:?} gave {ab} for ({a:?}, {b:?})");
            prop_assert!((ab - ba).abs() < 1e-9, "{kind:?} asymmetric: {ab} vs {ba}");
            let aa = f.compute(&Value::Str(a.clone()), &Value::Str(a.clone()));
            prop_assert!((aa - 1.0).abs() < 1e-9, "{kind:?} self-sim {aa} for {a:?}");
        }
    }

    /// The case-insensitive variant dominates or equals the case-sensitive
    /// score whenever the strings differ only by case.
    #[test]
    fn lowercase_variant_fixes_case_mangling(a in text()) {
        let upper = Value::Str(a.to_uppercase());
        #[allow(clippy::disallowed_methods)] // test constructs its own case variants
        let lower = Value::Str(a.to_lowercase());
        for &kind in STRING_KINDS {
            let ci = Feature::new("t", "t", kind, true);
            let v = ci.compute(&upper, &lower);
            prop_assert!((v - 1.0).abs() < 1e-9, "{kind:?} case-insensitive gave {v} on {a:?}");
        }
    }

    /// Null on either side always yields NaN, for every kind.
    #[test]
    fn nulls_always_nan(a in text(), lowercase in any::<bool>()) {
        for &kind in STRING_KINDS {
            let f = Feature::new("t", "t", kind, lowercase);
            prop_assert!(f.compute(&Value::Null, &Value::Str(a.clone())).is_nan());
            prop_assert!(f.compute(&Value::Str(a.clone()), &Value::Null).is_nan());
        }
    }

    /// Numeric features: abs diff is symmetric and zero iff equal; rel sim
    /// is bounded and 1 iff equal.
    #[test]
    fn numeric_feature_laws(x in -1e6f64..1e6, y in -1e6f64..1e6) {
        let abs = Feature::new("n", "n", FeatureKind::NumAbsDiff, false);
        let d_xy = abs.compute(&Value::Float(x), &Value::Float(y));
        let d_yx = abs.compute(&Value::Float(y), &Value::Float(x));
        prop_assert!((d_xy - d_yx).abs() < 1e-9);
        prop_assert_eq!(d_xy == 0.0, x == y);

        let rel = Feature::new("n", "n", FeatureKind::NumRelSim, false);
        let r = rel.compute(&Value::Float(x), &Value::Float(y));
        prop_assert!((0.0..=1.0).contains(&r));
        if x == y {
            prop_assert!((r - 1.0).abs() < 1e-9);
        }
    }

    /// Date year-gap is symmetric, non-negative, and zero for equal dates.
    #[test]
    fn date_gap_laws(
        y1 in 1990i32..2030, m1 in 1u8..=12, d1 in 1u8..=28,
        y2 in 1990i32..2030, m2 in 1u8..=12, d2 in 1u8..=28,
    ) {
        let gap = Feature::new("d", "d", FeatureKind::DateYearGap, false);
        let a = Value::Date(Date::new(y1, m1, d1).unwrap());
        let b = Value::Date(Date::new(y2, m2, d2).unwrap());
        let ab = gap.compute(&a, &b);
        let ba = gap.compute(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
        prop_assert_eq!(gap.compute(&a, &a), 0.0);
    }
}
