//! Feature-vector extraction: turning candidate pairs into the matrix the
//! matchers consume. Extraction is embarrassingly parallel across pairs, so
//! it fans out over scoped threads (crossbeam) when the workload is large
//! enough to pay for them.

use crate::generate::FeatureSet;
use em_blocking::Pair;
use em_table::{Table, TableError, Value};

/// Below this many (pair × feature) computations, extraction stays
/// single-threaded — thread setup would dominate.
const PARALLEL_THRESHOLD: usize = 20_000;

/// Extracts the feature matrix for `pairs`: one row per pair, one column
/// per feature, `NaN` for missing values.
///
/// Fails fast if any feature references a column absent from its table or
/// any pair indexes past a table.
pub fn extract_vectors(
    features: &FeatureSet,
    a: &Table,
    b: &Table,
    pairs: &[Pair],
) -> Result<Vec<Vec<f64>>, TableError> {
    // Pre-resolve column indices so the hot loop is index math only.
    let mut left_idx = Vec::with_capacity(features.len());
    let mut right_idx = Vec::with_capacity(features.len());
    for f in &features.features {
        left_idx.push(a.schema().require(&f.left_attr)?);
        right_idx.push(b.schema().require(&f.right_attr)?);
    }
    for p in pairs {
        if p.left >= a.n_rows() || p.right >= b.n_rows() {
            return Err(TableError::KeyViolation {
                column: "pair".to_string(),
                detail: format!("pair ({}, {}) out of range", p.left, p.right),
            });
        }
    }

    let compute_chunk = |chunk: &[Pair]| -> Vec<Vec<f64>> {
        chunk
            .iter()
            .map(|p| {
                let ra = &a.rows()[p.left];
                let rb = &b.rows()[p.right];
                features
                    .features
                    .iter()
                    .enumerate()
                    .map(|(k, f)| {
                        let va: &Value = &ra[left_idx[k]];
                        let vb: &Value = &rb[right_idx[k]];
                        f.compute(va, vb)
                    })
                    .collect()
            })
            .collect()
    };

    let work = pairs.len().saturating_mul(features.len());
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    if work < PARALLEL_THRESHOLD || threads < 2 || pairs.len() < 2 * threads {
        return Ok(compute_chunk(pairs));
    }

    let chunk_size = pairs.len().div_ceil(threads);
    let chunks: Vec<&[Pair]> = pairs.chunks(chunk_size).collect();
    let mut results: Vec<Vec<Vec<f64>>> = Vec::with_capacity(chunks.len());
    crossbeam::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| scope.spawn(move |_| compute_chunk(chunk)))
            .collect();
        for h in handles {
            results.push(h.join().expect("extraction worker panicked"));
        }
    })
    .expect("crossbeam scope");
    Ok(results.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{auto_features, FeatureOptions};
    use em_table::csv::read_str;

    fn tables() -> (Table, Table) {
        let a = read_str(
            "A",
            "Title,Amount\nCorn Fungicide Guidelines,10\nSwamp Dodder Ecology,\n",
        )
        .unwrap();
        let b = read_str(
            "B",
            "Title,Amount\ncorn fungicide guidelines,10\nTotally Different,5\n",
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn extracts_rows_in_pair_order() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let pairs = vec![Pair::new(0, 0), Pair::new(1, 1), Pair::new(0, 1)];
        let x = extract_vectors(&fs, &a, &b, &pairs).unwrap();
        assert_eq!(x.len(), 3);
        assert_eq!(x[0].len(), fs.len());
        // case-insensitive jaccard on pair (0,0) must be 1.0
        let idx = fs.names().iter().position(|n| n == "Title_jac_q3_lc").unwrap();
        assert_eq!(x[0][idx], 1.0);
        assert!(x[2][idx] < 0.5);
    }

    #[test]
    fn missing_values_become_nan() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default());
        let idx = fs.names().iter().position(|n| n == "Amount_abs_diff").unwrap();
        let x = extract_vectors(&fs, &a, &b, &[Pair::new(1, 0)]).unwrap();
        assert!(x[0][idx].is_nan());
    }

    #[test]
    fn out_of_range_pair_is_error() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default());
        assert!(extract_vectors(&fs, &a, &b, &[Pair::new(9, 0)]).is_err());
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Build enough pairs to cross the parallel threshold.
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let mut pairs = Vec::new();
        for _ in 0..2000 {
            pairs.push(Pair::new(0, 0));
            pairs.push(Pair::new(0, 1));
            pairs.push(Pair::new(1, 0));
            pairs.push(Pair::new(1, 1));
        }
        let x = extract_vectors(&fs, &a, &b, &pairs).unwrap();
        let serial = extract_vectors(&fs, &a, &b, &pairs[..4]).unwrap();
        assert_eq!(x.len(), pairs.len());
        for k in 0..4 {
            for (u, v) in x[k].iter().zip(&serial[k]) {
                assert!(u == v || (u.is_nan() && v.is_nan()));
            }
        }
    }

    #[test]
    fn empty_pairs_ok() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default());
        assert!(extract_vectors(&fs, &a, &b, &[]).unwrap().is_empty());
    }
}
