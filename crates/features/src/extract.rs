//! Feature-vector extraction: turning candidate pairs into the matrix the
//! matchers consume.
//!
//! Two layers of the performance engine meet here. First, every set-based
//! string feature (word/q-gram Jaccard, cosine, overlap coefficient, Dice)
//! is rewired onto interned token ids: each referenced column is tokenized
//! **once** up front into sorted distinct `u32` id lists (shared across
//! features that use the same column/tokenizer/case plan), and the hot loop
//! compares integers. Second, extraction is embarrassingly parallel across
//! pairs, so it fans out over [`em_parallel::Executor`] when the workload
//! is large enough to pay for threads. Both layers are bit-for-bit neutral:
//! the `*_sorted` id measures reproduce `em_text::set` exactly, and chunked
//! results join in pair order.

use crate::feature::FeatureKind;
use crate::generate::FeatureSet;
use em_blocking::Pair;
use em_parallel::Executor;
use em_table::{Table, TableError, Value};
use em_text::intern::{self, Interner, TokenIds};
use em_text::tokenize::{AlphanumericTokenizer, QgramTokenizer, Tokenizer};
use std::collections::HashMap;
use std::sync::Arc;

/// Below this many (pair × feature) computations, extraction stays
/// single-threaded — thread setup would dominate.
const PARALLEL_THRESHOLD: usize = 20_000;

/// The set measure an interned feature computes on sorted id lists.
#[derive(Debug, Clone, Copy)]
enum SetOp {
    Jaccard,
    Cosine,
    OverlapCoeff,
    Dice,
}

impl SetOp {
    fn score(self, a: &[u32], b: &[u32]) -> f64 {
        match self {
            SetOp::Jaccard => intern::jaccard_sorted(a, b),
            SetOp::Cosine => intern::cosine_sorted(a, b),
            SetOp::OverlapCoeff => intern::overlap_coefficient_sorted(a, b),
            SetOp::Dice => intern::dice_sorted(a, b),
        }
    }
}

/// Which feature kinds run on interned ids, and how they tokenize
/// (`true` → 3-grams, `false` → word tokens).
fn set_op(kind: FeatureKind) -> Option<(bool, SetOp)> {
    match kind {
        FeatureKind::JaccardWord => Some((false, SetOp::Jaccard)),
        FeatureKind::CosineWord => Some((false, SetOp::Cosine)),
        FeatureKind::OverlapCoeffWord => Some((false, SetOp::OverlapCoeff)),
        FeatureKind::JaccardQgram3 => Some((true, SetOp::Jaccard)),
        FeatureKind::DiceQgram3 => Some((true, SetOp::Dice)),
        _ => None,
    }
}

/// One tokenization plan's id lists for both tables; `None` marks a null
/// cell (feature value `NaN`, as always).
struct ColumnIds {
    left: Vec<Option<TokenIds>>,
    right: Vec<Option<TokenIds>>,
}

/// Per-feature routing into the shared tokenized columns. Features sharing
/// a `(left column, right column, tokenizer, case)` plan share one entry,
/// so e.g. word Jaccard/cosine/overlap-coefficient on the same attribute
/// tokenize that attribute exactly once.
struct SetCaches {
    feature_plan: Vec<Option<(usize, SetOp)>>,
    columns: Vec<ColumnIds>,
}

fn tokenize_col(
    t: &Table,
    col: usize,
    qgram: bool,
    lowercase: bool,
    interner: &mut Interner,
    memo: &mut HashMap<String, TokenIds>,
) -> Vec<Option<TokenIds>> {
    t.rows()
        .iter()
        .map(|row| {
            let v: &Value = &row[col];
            if v.is_null() {
                return None;
            }
            let mut s = v.render();
            if lowercase {
                s = s.to_lowercase();
            }
            if let Some(ids) = memo.get(&s) {
                return Some(Arc::clone(ids));
            }
            let toks = if qgram {
                QgramTokenizer::new(3).tokenize(&s)
            } else {
                AlphanumericTokenizer.tokenize(&s)
            };
            let mut ids: Vec<u32> = toks.iter().map(|tok| interner.intern(tok)).collect();
            ids.sort_unstable();
            ids.dedup();
            let ids: TokenIds = Arc::from(ids);
            memo.insert(s, Arc::clone(&ids));
            Some(ids)
        })
        .collect()
}

fn build_set_caches(
    features: &FeatureSet,
    a: &Table,
    b: &Table,
    left_idx: &[usize],
    right_idx: &[usize],
) -> SetCaches {
    let mut plan_index: HashMap<(usize, usize, bool, bool), usize> = HashMap::new();
    let mut columns: Vec<ColumnIds> = Vec::new();
    let mut feature_plan = Vec::with_capacity(features.len());
    for (k, f) in features.features.iter().enumerate() {
        let Some((qgram, op)) = set_op(f.kind) else {
            feature_plan.push(None);
            continue;
        };
        let key = (left_idx[k], right_idx[k], qgram, f.lowercase);
        let plan = match plan_index.get(&key) {
            Some(&p) => p,
            None => {
                // One interner + memo spans both columns so ids compare
                // across tables; the pass is sequential and runs once per
                // distinct plan.
                let mut interner = Interner::new();
                let mut memo: HashMap<String, TokenIds> = HashMap::new();
                let left =
                    tokenize_col(a, left_idx[k], qgram, f.lowercase, &mut interner, &mut memo);
                let right =
                    tokenize_col(b, right_idx[k], qgram, f.lowercase, &mut interner, &mut memo);
                columns.push(ColumnIds { left, right });
                let p = columns.len() - 1;
                plan_index.insert(key, p);
                p
            }
        };
        feature_plan.push(Some((plan, op)));
    }
    SetCaches { feature_plan, columns }
}

/// Extracts the feature matrix for `pairs`: one row per pair, one column
/// per feature, `NaN` for missing values.
///
/// Fails fast if any feature references a column absent from its table or
/// any pair indexes past a table.
pub fn extract_vectors(
    features: &FeatureSet,
    a: &Table,
    b: &Table,
    pairs: &[Pair],
) -> Result<Vec<Vec<f64>>, TableError> {
    // Pre-resolve column indices so the hot loop is index math only.
    let mut left_idx = Vec::with_capacity(features.len());
    let mut right_idx = Vec::with_capacity(features.len());
    for f in &features.features {
        left_idx.push(a.schema().require(&f.left_attr)?);
        right_idx.push(b.schema().require(&f.right_attr)?);
    }
    for p in pairs {
        if p.left >= a.n_rows() || p.right >= b.n_rows() {
            return Err(TableError::KeyViolation {
                column: "pair".to_string(),
                detail: format!("pair ({}, {}) out of range", p.left, p.right),
            });
        }
    }

    let caches = build_set_caches(features, a, b, &left_idx, &right_idx);

    // Grain in pairs such that one thread's chunk is at least
    // PARALLEL_THRESHOLD (pair × feature) computations.
    let grain = (PARALLEL_THRESHOLD / features.len().max(1)).max(1);
    let rows = Executor::current().map_slice(pairs, grain, |p| {
        let ra = &a.rows()[p.left];
        let rb = &b.rows()[p.right];
        features
            .features
            .iter()
            .enumerate()
            .map(|(k, f)| match caches.feature_plan[k] {
                Some((plan, op)) => {
                    let col = &caches.columns[plan];
                    match (&col.left[p.left], &col.right[p.right]) {
                        (Some(ta), Some(tb)) => op.score(ta, tb),
                        _ => f64::NAN,
                    }
                }
                None => f.compute(&ra[left_idx[k]], &rb[right_idx[k]]),
            })
            .collect()
    });
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{auto_features, FeatureOptions};
    use em_table::csv::read_str;

    fn tables() -> (Table, Table) {
        let a = read_str(
            "A",
            "Title,Amount\nCorn Fungicide Guidelines,10\nSwamp Dodder Ecology,\n",
        )
        .unwrap();
        let b = read_str(
            "B",
            "Title,Amount\ncorn fungicide guidelines,10\nTotally Different,5\n",
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn extracts_rows_in_pair_order() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let pairs = vec![Pair::new(0, 0), Pair::new(1, 1), Pair::new(0, 1)];
        let x = extract_vectors(&fs, &a, &b, &pairs).unwrap();
        assert_eq!(x.len(), 3);
        assert_eq!(x[0].len(), fs.len());
        // case-insensitive jaccard on pair (0,0) must be 1.0
        let idx = fs.names().iter().position(|n| n == "Title_jac_q3_lc").unwrap();
        assert_eq!(x[0][idx], 1.0);
        assert!(x[2][idx] < 0.5);
    }

    #[test]
    fn missing_values_become_nan() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default());
        let idx = fs.names().iter().position(|n| n == "Amount_abs_diff").unwrap();
        let x = extract_vectors(&fs, &a, &b, &[Pair::new(1, 0)]).unwrap();
        assert!(x[0][idx].is_nan());
    }

    #[test]
    fn out_of_range_pair_is_error() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default());
        assert!(extract_vectors(&fs, &a, &b, &[Pair::new(9, 0)]).is_err());
    }

    #[test]
    fn interned_set_features_match_direct_compute() {
        // Every feature value must equal Feature::compute run directly on
        // the cell values — the interned fast path is bit-for-bit neutral.
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let pairs = [Pair::new(0, 0), Pair::new(0, 1), Pair::new(1, 0), Pair::new(1, 1)];
        let x = extract_vectors(&fs, &a, &b, &pairs).unwrap();
        for (r, p) in pairs.iter().enumerate() {
            for (k, f) in fs.features.iter().enumerate() {
                let va = a.row(p.left).unwrap().get(&f.left_attr).unwrap();
                let vb = b.row(p.right).unwrap().get(&f.right_attr).unwrap();
                let direct = f.compute(va, vb);
                let got = x[r][k];
                assert!(
                    got.to_bits() == direct.to_bits() || (got.is_nan() && direct.is_nan()),
                    "{} on pair {:?}: got {got}, direct {direct}",
                    f.name,
                    p
                );
            }
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Build enough pairs to cross the parallel threshold.
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let mut pairs = Vec::new();
        for _ in 0..2000 {
            pairs.push(Pair::new(0, 0));
            pairs.push(Pair::new(0, 1));
            pairs.push(Pair::new(1, 0));
            pairs.push(Pair::new(1, 1));
        }
        em_parallel::set_threads(4);
        let x = extract_vectors(&fs, &a, &b, &pairs).unwrap();
        em_parallel::set_threads(0);
        let serial = extract_vectors(&fs, &a, &b, &pairs[..4]).unwrap();
        assert_eq!(x.len(), pairs.len());
        for k in 0..4 {
            for (u, v) in x[k].iter().zip(&serial[k]) {
                assert!(u == v || (u.is_nan() && v.is_nan()));
            }
        }
    }

    #[test]
    fn empty_pairs_ok() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default());
        assert!(extract_vectors(&fs, &a, &b, &[]).unwrap().is_empty());
    }
}
