//! Feature-vector extraction: turning candidate pairs into the matrix the
//! matchers consume.
//!
//! Three layers of the performance engine meet here. First, every set-based
//! string feature (word/q-gram Jaccard, cosine, overlap coefficient, Dice)
//! is rewired onto interned token ids: each referenced column is tokenized
//! **once** up front into sorted distinct `u32` id lists (shared across
//! features that use the same column/tokenizer/case plan), and the hot loop
//! compares integers. Second, every sequence (character-level) feature runs
//! through a **row-level normalization cache**: each referenced column is
//! rendered and lowercased once into interned [`NormCell`]s — pre-decoded
//! `Arc<[char]>` slices plus word tokens — so per-pair work feeds the
//! allocation-free `*_chars` kernels of `em_text::seq` and never touches
//! `to_lowercase()` or `chars().collect()`; a per-thread **pair memo**
//! keyed on `(feature, left string id, right string id)` skips kernels
//! entirely for the heavy value repetition real tables exhibit. Third,
//! extraction is embarrassingly parallel across pairs, so it fans out over
//! [`em_parallel::Executor`] when the workload is large enough to pay for
//! threads. All layers are bit-for-bit neutral: the `*_sorted` id measures
//! reproduce `em_text::set` exactly, the `*_chars` kernels are
//! property-tested equal to the naive reference, and chunked results join
//! in pair order.

use crate::batch::{BatchExtractor, BatchScratch};
use crate::feature::FeatureKind;
use crate::generate::FeatureSet;
use crate::serve::FeatureMask;
use em_blocking::Pair;
use em_parallel::Executor;
use em_table::{Table, TableError, Value};
use em_text::intern::{self, TokenIds};
use em_text::tokenize::{AlphanumericTokenizer, Tokenizer};
use em_text::{phonetic, seq, with_scratch, FastMap};
use std::collections::HashMap;
use std::sync::Arc;

/// Below this many (pair × feature) computations, extraction stays
/// single-threaded — thread setup would dominate.
pub(crate) const PARALLEL_THRESHOLD: usize = 20_000;

/// A memoized `f64` map with **size-capped epoch eviction**: when the map
/// reaches its cap it is cleared wholesale and an epoch counter ticks, so
/// long candidate streams hold memory flat instead of growing with the
/// number of distinct keys. Values must be pure functions of their key
/// (every memo here is), so eviction can only cost recomputation — never
/// change a result. A cap of 0 disables memoization entirely.
pub(crate) struct BoundedMemo<K> {
    map: FastMap<K, f64>,
    cap: usize,
    epochs: u64,
}

impl<K: std::hash::Hash + Eq> BoundedMemo<K> {
    pub(crate) fn with_cap(cap: usize) -> BoundedMemo<K> {
        BoundedMemo { map: FastMap::default(), cap, epochs: 0 }
    }

    #[inline]
    pub(crate) fn get(&self, k: &K) -> Option<f64> {
        self.map.get(k).copied()
    }

    #[inline]
    pub(crate) fn insert(&mut self, k: K, v: f64) {
        if self.cap == 0 {
            return;
        }
        if self.map.len() >= self.cap {
            self.map.clear();
            self.epochs += 1;
        }
        self.map.insert(k, v);
    }

    pub(crate) fn epochs(&self) -> u64 {
        self.epochs
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

/// The set measure an interned feature computes on sorted id lists.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SetOp {
    Jaccard,
    Cosine,
    OverlapCoeff,
    Dice,
}

impl SetOp {
    pub(crate) fn score(self, a: &[u32], b: &[u32]) -> f64 {
        match self {
            SetOp::Jaccard => intern::jaccard_sorted(a, b),
            SetOp::Cosine => intern::cosine_sorted(a, b),
            SetOp::OverlapCoeff => intern::overlap_coefficient_sorted(a, b),
            SetOp::Dice => intern::dice_sorted(a, b),
        }
    }

    /// Same measure from `(|A∩B|, |A|, |B|)` counts. The `*_sorted`
    /// functions delegate to the `*_counts` functions, so this is the
    /// identical f64 expression [`SetOp::score`] evaluates — the serve
    /// extractor scores candidates against probe cells whose unknown tokens
    /// only contribute to `|A|`.
    pub(crate) fn score_counts(self, inter: usize, la: usize, lb: usize) -> f64 {
        match self {
            SetOp::Jaccard => intern::jaccard_counts(inter, la, lb),
            SetOp::Cosine => intern::cosine_counts(inter, la, lb),
            SetOp::OverlapCoeff => intern::overlap_coefficient_counts(inter, la, lb),
            SetOp::Dice => intern::dice_counts(inter, la, lb),
        }
    }
}

/// Which feature kinds run on interned ids, and how they tokenize
/// (`true` → 3-grams, `false` → word tokens).
pub(crate) fn set_op(kind: FeatureKind) -> Option<(bool, SetOp)> {
    match kind {
        FeatureKind::JaccardWord => Some((false, SetOp::Jaccard)),
        FeatureKind::CosineWord => Some((false, SetOp::Cosine)),
        FeatureKind::OverlapCoeffWord => Some((false, SetOp::OverlapCoeff)),
        FeatureKind::JaccardQgram3 => Some((true, SetOp::Jaccard)),
        FeatureKind::DiceQgram3 => Some((true, SetOp::Dice)),
        _ => None,
    }
}

/// The character-level measure a sequence feature computes on cached,
/// pre-decoded cells.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SeqOp {
    Exact,
    LevSim,
    Jaro,
    JaroWinkler,
    NeedlemanWunsch,
    SmithWaterman,
    MongeElkanJw,
    MongeElkanSoundex,
}

/// Directed Monge-Elkan over interned word ids — the exact computation of
/// `em_text::set::monge_elkan`, with the inner measure resolved through the
/// call-wide word table instead of re-deriving it from `&str` every call.
/// Same iteration order, same fold, same mean: bit-identical results.
pub(crate) fn monge_elkan_ids(a: &[u32], b: &[u32], inner: &mut impl FnMut(u32, u32) -> f64) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let total: f64 = a
        .iter()
        .map(|&ta| b.iter().map(|&tb| inner(ta, tb)).fold(f64::NEG_INFINITY, f64::max))
        .sum();
    total / a.len() as f64
}

/// Symmetric mean of both directed scores, mirroring
/// `em_text::set::monge_elkan_sym` (argument order of the second direction
/// included, so inner memo keys stay call-order faithful).
pub(crate) fn monge_elkan_sym_ids(a: &[u32], b: &[u32], mut inner: impl FnMut(u32, u32) -> f64) -> f64 {
    (monge_elkan_ids(a, b, &mut inner) + monge_elkan_ids(b, a, &mut inner)) / 2.0
}

impl SeqOp {
    pub(crate) fn score(
        self,
        ca: &NormCell,
        cb: &NormCell,
        words: &[WordData],
        jw_memo: &mut BoundedMemo<(u32, u32)>,
    ) -> f64 {
        use SeqOp::*;
        match self {
            // Cells are interned: equal string ids ⇔ equal strings.
            Exact => f64::from(ca.sid == cb.sid),
            // Monge-Elkan runs on interned word ids: the inner
            // Jaro-Winkler reads pre-decoded word chars (memoized per
            // ordered word pair), the inner Soundex compares codes
            // precomputed once per distinct word.
            MongeElkanJw => with_scratch(|s| {
                let mut inner = |x: u32, y: u32| {
                    if let Some(v) = jw_memo.get(&(x, y)) {
                        return v;
                    }
                    let v = seq::jaro_winkler_chars(
                        s,
                        &words[x as usize].chars,
                        &words[y as usize].chars,
                    );
                    jw_memo.insert((x, y), v);
                    v
                };
                monge_elkan_sym_ids(&ca.word_ids, &cb.word_ids, &mut inner)
            }),
            MongeElkanSoundex => {
                // Exactly `phonetic::soundex_sim`: 1.0 iff both words have
                // a code and the codes agree.
                let inner = |x: u32, y: u32| match (words[x as usize].sdx, words[y as usize].sdx) {
                    (Some(cx), Some(cy)) if cx == cy => 1.0,
                    _ => 0.0,
                };
                monge_elkan_sym_ids(&ca.word_ids, &cb.word_ids, inner)
            }
            _ => with_scratch(|s| match self {
                LevSim => seq::levenshtein_sim_chars(s, &ca.chars, &cb.chars),
                Jaro => seq::jaro_chars(s, &ca.chars, &cb.chars),
                JaroWinkler => seq::jaro_winkler_chars(s, &ca.chars, &cb.chars),
                NeedlemanWunsch => seq::needleman_wunsch_sim_chars(s, &ca.chars, &cb.chars),
                SmithWaterman => seq::smith_waterman_sim_chars(s, &ca.chars, &cb.chars),
                _ => unreachable!("handled above"),
            }),
        }
    }
}

/// Which feature kinds run on the normalization cache.
pub(crate) fn seq_op(kind: FeatureKind) -> Option<SeqOp> {
    match kind {
        FeatureKind::ExactStr => Some(SeqOp::Exact),
        FeatureKind::LevSim => Some(SeqOp::LevSim),
        FeatureKind::Jaro => Some(SeqOp::Jaro),
        FeatureKind::JaroWinkler => Some(SeqOp::JaroWinkler),
        FeatureKind::NeedlemanWunsch => Some(SeqOp::NeedlemanWunsch),
        FeatureKind::SmithWaterman => Some(SeqOp::SmithWaterman),
        FeatureKind::MongeElkanJw => Some(SeqOp::MongeElkanJw),
        FeatureKind::MongeElkanSoundex => Some(SeqOp::MongeElkanSoundex),
        _ => None,
    }
}

/// One normalized cell: the rendered (and possibly lowercased) string,
/// decoded exactly once. `sid` is a call-wide interned string id — equal
/// ids mean equal normalized strings across both tables and all plans —
/// so it doubles as the exact-match answer and the pair-memo key.
#[derive(Clone)]
pub(crate) struct NormCell {
    pub(crate) sid: u32,
    pub(crate) chars: Arc<[char]>,
    pub(crate) word_ids: Arc<[u32]>,
}

/// One distinct word across the whole call: chars decoded once for the
/// Monge-Elkan inner Jaro-Winkler, Soundex code computed once for the inner
/// phonetic measure (`None` = no letters, scores 0 against everything).
pub(crate) struct WordData {
    pub(crate) chars: Arc<[char]>,
    pub(crate) sdx: Option<[u8; 4]>,
}

/// Word-level Soundex code in the fixed-width form [`WordTable`] stores:
/// `None` when the word has no letters (scores 0 against everything).
pub(crate) fn soundex_code(w: &str) -> Option<[u8; 4]> {
    phonetic::soundex(w).map(|code| {
        let b = code.into_bytes();
        [b[0], b[1], b[2], b[3]]
    })
}

/// Call-wide word interner: every distinct word token is decoded and
/// Soundex-encoded exactly once, shared by all Monge-Elkan features.
#[derive(Default)]
pub(crate) struct WordTable {
    pub(crate) index: FastMap<String, u32>,
    pub(crate) data: Vec<WordData>,
}

impl WordTable {
    fn intern(&mut self, w: &str) -> u32 {
        if let Some(&id) = self.index.get(w) {
            return id;
        }
        let id = u32::try_from(self.data.len()).expect("more than u32::MAX distinct words");
        self.data.push(WordData { chars: w.chars().collect(), sdx: soundex_code(w) });
        self.index.insert(w.to_string(), id);
        id
    }
}

/// One normalization plan's cells for both tables; `None` marks a null
/// cell (feature value `NaN`, as always).
pub(crate) struct NormColumns {
    pub(crate) left: Vec<Option<NormCell>>,
    pub(crate) right: Vec<Option<NormCell>>,
}

/// Per-feature routing of sequence measures into the shared normalized
/// columns. Features sharing a `(left column, right column, case)` plan
/// share one entry, so every seq measure on the same attribute decodes it
/// exactly once.
pub(crate) struct SeqCaches {
    pub(crate) feature_plan: Vec<Option<(usize, SeqOp)>>,
    pub(crate) columns: Vec<NormColumns>,
    pub(crate) words: Vec<WordData>,
}

/// Memoized normalization of one already-rendered (and lowercased, when the
/// plan asks) string: string id, decoded chars, interned word ids. Shared
/// by the batch cache build and the serve extractor's corpus-push path so
/// both produce the same cells for the same memo/word-table state.
pub(crate) fn norm_cell(
    s: String,
    memo: &mut FastMap<String, NormCell>,
    words: &mut WordTable,
) -> NormCell {
    if let Some(cell) = memo.get(&s) {
        return cell.clone();
    }
    let sid = u32::try_from(memo.len()).expect("more than u32::MAX distinct strings");
    let chars: Arc<[char]> = s.chars().collect();
    let word_ids: Arc<[u32]> =
        AlphanumericTokenizer.tokenize(&s).iter().map(|w| words.intern(w)).collect();
    let cell = NormCell { sid, chars, word_ids };
    memo.insert(s, cell.clone());
    cell
}

fn normalize_col(
    t: &Table,
    col: usize,
    lowercase: bool,
    used: &[bool],
    memo: &mut FastMap<String, NormCell>,
    words: &mut WordTable,
) -> Vec<Option<NormCell>> {
    t.rows()
        .iter()
        .enumerate()
        .map(|(i, row)| {
            // Rows no candidate pair references are never read in the hot
            // loop, so they are not normalized at all.
            if !used[i] {
                return None;
            }
            let v: &Value = &row[col];
            if v.is_null() {
                return None;
            }
            let mut s = v.render();
            if lowercase {
                // Allow-listed cache-build site: this runs once per row, not
                // per pair.
                #[allow(clippy::disallowed_methods)]
                {
                    s = s.to_lowercase();
                }
            }
            Some(norm_cell(s, memo, words))
        })
        .collect()
}

/// Shared inputs to the cache builders: the feature set, both tables,
/// pre-resolved column indices, the used-row masks, and the live-feature
/// mask — one context instead of eight parallel arguments.
pub(crate) struct CacheBuild<'a> {
    pub(crate) features: &'a FeatureSet,
    pub(crate) a: &'a Table,
    pub(crate) b: &'a Table,
    pub(crate) left_idx: &'a [usize],
    pub(crate) right_idx: &'a [usize],
    pub(crate) used_left: &'a [bool],
    pub(crate) used_right: &'a [bool],
    pub(crate) live: &'a [bool],
}

/// Builds the sequence-measure caches for the features marked live;
/// dead features get no plan (their slots extract as `NaN`), and columns
/// only dead features reference are never normalized at all.
pub(crate) fn build_seq_caches(cb: &CacheBuild<'_>) -> SeqCaches {
    let CacheBuild { features, a, b, left_idx, right_idx, used_left, used_right, live } = *cb;
    let mut plan_index: HashMap<(usize, usize, bool), usize> = HashMap::new();
    let mut columns: Vec<NormColumns> = Vec::new();
    let mut feature_plan = Vec::with_capacity(features.len());
    // One memo spans both tables and every plan so string ids are global to
    // the call: sid equality ⇔ string equality everywhere.
    let mut memo: FastMap<String, NormCell> = FastMap::default();
    let mut words = WordTable::default();
    for (k, f) in features.features.iter().enumerate() {
        if !live[k] {
            feature_plan.push(None);
            continue;
        }
        let Some(op) = seq_op(f.kind) else {
            feature_plan.push(None);
            continue;
        };
        let key = (left_idx[k], right_idx[k], f.lowercase);
        let plan = match plan_index.get(&key) {
            Some(&p) => p,
            None => {
                let left =
                    normalize_col(a, left_idx[k], f.lowercase, used_left, &mut memo, &mut words);
                let right =
                    normalize_col(b, right_idx[k], f.lowercase, used_right, &mut memo, &mut words);
                columns.push(NormColumns { left, right });
                let p = columns.len() - 1;
                plan_index.insert(key, p);
                p
            }
        };
        feature_plan.push(Some((plan, op)));
    }
    SeqCaches { feature_plan, columns, words: words.data }
}

/// One tokenization plan's id lists for both tables; `None` marks a null
/// cell (feature value `NaN`, as always).
pub(crate) struct ColumnIds {
    pub(crate) left: Vec<Option<TokenIds>>,
    pub(crate) right: Vec<Option<TokenIds>>,
}

/// Per-feature routing into the shared tokenized columns. Features sharing
/// a `(left column, right column, tokenizer, case)` plan share one entry,
/// so e.g. word Jaccard/cosine/overlap-coefficient on the same attribute
/// tokenize that attribute exactly once.
pub(crate) struct SetCaches {
    pub(crate) feature_plan: Vec<Option<(usize, SetOp)>>,
    pub(crate) columns: Vec<ColumnIds>,
}

/// Token-id assignment for one tokenization plan. Grams are keyed by their
/// three chars directly — no heap key, no per-gram string building — while
/// words and shorter-than-q whole strings key by string. The namespaces
/// can't collide (a gram is exactly 3 chars, a short string fewer), so ids
/// from one shared counter preserve token identity exactly as a single
/// string interner would.
#[derive(Default)]
pub(crate) struct PlanInterner {
    grams: FastMap<[char; 3], u32>,
    strings: FastMap<String, u32>,
    next: u32,
}

impl PlanInterner {
    fn gram(&mut self, g: [char; 3]) -> u32 {
        *self.grams.entry(g).or_insert_with(|| {
            let id = self.next;
            self.next += 1;
            id
        })
    }

    fn string(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.strings.get(s) {
            return id;
        }
        let id = self.next;
        self.next += 1;
        self.strings.insert(s.to_string(), id);
        id
    }

    /// Read-only gram lookup (serve probe cells never grow the interner).
    pub(crate) fn get_gram(&self, g: [char; 3]) -> Option<u32> {
        self.grams.get(&g).copied()
    }

    /// Read-only string/word lookup.
    pub(crate) fn get_string(&self, s: &str) -> Option<u32> {
        self.strings.get(s).copied()
    }
}

/// Tokenizes one normalized string under a plan (`qgram` → 3-gram windows,
/// else word tokens) into **sorted distinct** interned ids — the exact
/// token stream `tokenize_col` produces per row. `cbuf` is a reusable char
/// buffer. Shared with the serve extractor's corpus-push path.
pub(crate) fn plan_tokenize(
    s: &str,
    qgram: bool,
    interner: &mut PlanInterner,
    cbuf: &mut Vec<char>,
) -> Vec<u32> {
    let mut ids: Vec<u32> = if qgram {
        // The exact token stream of `QgramTokenizer::new(3)` (empty → none,
        // shorter than q → the whole string, else char windows), with each
        // gram interned straight from its window — no `String` is ever
        // built per gram.
        cbuf.clear();
        cbuf.extend(s.chars());
        if cbuf.is_empty() {
            Vec::new()
        } else if cbuf.len() < 3 {
            vec![interner.string(s)]
        } else {
            cbuf.windows(3).map(|w| interner.gram([w[0], w[1], w[2]])).collect()
        }
    } else {
        AlphanumericTokenizer.tokenize(s).iter().map(|tok| interner.string(tok)).collect()
    };
    ids.sort_unstable();
    ids.dedup();
    ids
}

fn tokenize_col(
    t: &Table,
    col: usize,
    qgram: bool,
    lowercase: bool,
    used: &[bool],
    interner: &mut PlanInterner,
    memo: &mut FastMap<String, TokenIds>,
) -> Vec<Option<TokenIds>> {
    // Reused across rows: the decoded chars of the current string.
    let mut cbuf: Vec<char> = Vec::new();
    t.rows()
        .iter()
        .enumerate()
        .map(|(i, row)| {
            // Rows no candidate pair references are never read in the hot
            // loop, so they are not tokenized at all.
            if !used[i] {
                return None;
            }
            let v: &Value = &row[col];
            if v.is_null() {
                return None;
            }
            let mut s = v.render();
            if lowercase {
                // Allow-listed cache-build site: runs once per row.
                #[allow(clippy::disallowed_methods)]
                {
                    s = s.to_lowercase();
                }
            }
            if let Some(ids) = memo.get(&s) {
                return Some(Arc::clone(ids));
            }
            let ids: TokenIds = Arc::from(plan_tokenize(&s, qgram, interner, &mut cbuf));
            memo.insert(s, Arc::clone(&ids));
            Some(ids)
        })
        .collect()
}

/// Borrows an already-tokenized [`TokenCorpus`] pair as a set-feature
/// plan's id columns, instead of re-tokenizing the column from scratch.
///
/// Eligibility and bit-safety: the corpus rows are sorted distinct ids of
/// the `AlphanumericTokenizer` stream over `Normalizer::for_blocking`
/// output (strip specials → lowercase → collapse whitespace). For a
/// **lowercase word-level** plan the owned path tokenizes the lowercased
/// render with the same tokenizer — and since the tokenizer splits on
/// every non-alphanumeric char anyway, the strip/collapse steps cannot
/// change the token stream. Set measures depend only on
/// `(|A∩B|, |A|, |B|)` of sorted distinct sets, so scores are bit-equal
/// under either interner's id space.
///
/// Nullness comes from the *table* (the corpus maps null and empty rows
/// both to an empty slice): a null cell stays `None` → `NaN`, a non-null
/// cell with no tokens stays `Some(empty)`. Returns `None` (caller falls
/// back to owned tokenization) if any used non-null cell is not a string —
/// `render()` would tokenize the formatted value, which the corpus never
/// saw.
fn shared_column_ids(
    t: &Table,
    col: usize,
    corpus: &em_text::TokenCorpus,
    used: &[bool],
) -> Option<Vec<Option<TokenIds>>> {
    let rows = t.rows();
    debug_assert_eq!(corpus.len(), rows.len());
    for (i, row) in rows.iter().enumerate() {
        if used[i] && !row[col].is_null() && row[col].as_str().is_none() {
            return None;
        }
    }
    Some(
        rows.iter()
            .enumerate()
            .map(|(i, row)| {
                if !used[i] || row[col].is_null() {
                    return None;
                }
                Some(Arc::from(corpus.row(i)))
            })
            .collect(),
    )
}

/// An already-tokenized column pair offered to [`build_set_caches`]:
/// lowercase word-level set features on `(left_attr, right_attr)` borrow
/// these corpora instead of re-tokenizing — sharing one tokenization pass
/// between the blocking join and set-feature extraction.
pub(crate) struct SharedWordCorpora<'c> {
    pub(crate) left_attr: &'c str,
    pub(crate) right_attr: &'c str,
    pub(crate) left: &'c em_text::TokenCorpus,
    pub(crate) right: &'c em_text::TokenCorpus,
}

/// Builds the set-measure caches for the features marked `live`; dead
/// features get no plan, and columns only dead features reference are
/// never tokenized. When `shared` matches a plan's attributes (lowercase
/// word-level only), the plan borrows the corpora instead of tokenizing.
pub(crate) fn build_set_caches(
    cb: &CacheBuild<'_>,
    shared: Option<&SharedWordCorpora<'_>>,
) -> SetCaches {
    let CacheBuild { features, a, b, left_idx, right_idx, used_left, used_right, live } = *cb;
    let mut plan_index: HashMap<(usize, usize, bool, bool), usize> = HashMap::new();
    let mut columns: Vec<ColumnIds> = Vec::new();
    let mut feature_plan = Vec::with_capacity(features.len());
    for (k, f) in features.features.iter().enumerate() {
        if !live[k] {
            feature_plan.push(None);
            continue;
        }
        let Some((qgram, op)) = set_op(f.kind) else {
            feature_plan.push(None);
            continue;
        };
        let key = (left_idx[k], right_idx[k], qgram, f.lowercase);
        let plan = match plan_index.get(&key) {
            Some(&p) => p,
            None => {
                let borrowed = match shared {
                    Some(sh)
                        if !qgram
                            && f.lowercase
                            && f.left_attr == sh.left_attr
                            && f.right_attr == sh.right_attr
                            && sh.left.len() == a.n_rows()
                            && sh.right.len() == b.n_rows() =>
                    {
                        match (
                            shared_column_ids(a, left_idx[k], sh.left, used_left),
                            shared_column_ids(b, right_idx[k], sh.right, used_right),
                        ) {
                            (Some(left), Some(right)) => Some(ColumnIds { left, right }),
                            _ => None,
                        }
                    }
                    _ => None,
                };
                let cols = match borrowed {
                    Some(cols) => cols,
                    None => {
                        // One interner + memo spans both columns so ids
                        // compare across tables; the pass is sequential and
                        // runs once per distinct plan.
                        let mut interner = PlanInterner::default();
                        let mut memo: FastMap<String, TokenIds> = FastMap::default();
                        let left = tokenize_col(
                            a,
                            left_idx[k],
                            qgram,
                            f.lowercase,
                            used_left,
                            &mut interner,
                            &mut memo,
                        );
                        let right = tokenize_col(
                            b,
                            right_idx[k],
                            qgram,
                            f.lowercase,
                            used_right,
                            &mut interner,
                            &mut memo,
                        );
                        ColumnIds { left, right }
                    }
                };
                columns.push(cols);
                let p = columns.len() - 1;
                plan_index.insert(key, p);
                p
            }
        };
        feature_plan.push(Some((plan, op)));
    }
    SetCaches { feature_plan, columns }
}

/// Extracts the feature matrix for `pairs`: one row per pair, one column
/// per feature, `NaN` for missing values.
///
/// Implemented on [`BatchExtractor`] with a full feature mask: caches are
/// built once for the rows `pairs` actually reference, then extraction
/// fans out over [`em_parallel::Executor`] with an explicit per-worker
/// [`BatchScratch`] (size-capped pair/word memos). Per-pair values are
/// pure functions of the cell contents, so results are bit-identical at
/// any thread count — and to the pre-batched implementation.
///
/// Fails fast if any feature references a column absent from its table or
/// any pair indexes past a table.
pub fn extract_vectors(
    features: &FeatureSet,
    a: &Table,
    b: &Table,
    pairs: &[Pair],
) -> Result<Vec<Vec<f64>>, TableError> {
    let ex = BatchExtractor::for_pairs(features, a, b, &FeatureMask::full(features.len()), pairs)?;
    // Grain in pairs such that one thread's chunk is at least
    // PARALLEL_THRESHOLD (pair × feature) computations.
    let grain = (PARALLEL_THRESHOLD / features.len().max(1)).max(1);
    let rows = Executor::current().map_indexed_with(
        pairs.len(),
        grain,
        BatchScratch::new,
        |scratch, i| {
            let mut out = vec![0.0; features.len()];
            ex.extract_into(a, b, pairs[i], scratch, &mut out);
            out
        },
    );
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{auto_features, FeatureOptions};
    use em_table::csv::read_str;

    fn tables() -> (Table, Table) {
        let a = read_str(
            "A",
            "Title,Amount\nCorn Fungicide Guidelines,10\nSwamp Dodder Ecology,\n",
        )
        .unwrap();
        let b = read_str(
            "B",
            "Title,Amount\ncorn fungicide guidelines,10\nTotally Different,5\n",
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn extracts_rows_in_pair_order() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let pairs = vec![Pair::new(0, 0), Pair::new(1, 1), Pair::new(0, 1)];
        let x = extract_vectors(&fs, &a, &b, &pairs).unwrap();
        assert_eq!(x.len(), 3);
        assert_eq!(x[0].len(), fs.len());
        // case-insensitive jaccard on pair (0,0) must be 1.0
        let idx = fs.names().iter().position(|n| n == "Title_jac_q3_lc").unwrap();
        assert_eq!(x[0][idx], 1.0);
        assert!(x[2][idx] < 0.5);
    }

    #[test]
    fn missing_values_become_nan() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default());
        let idx = fs.names().iter().position(|n| n == "Amount_abs_diff").unwrap();
        let x = extract_vectors(&fs, &a, &b, &[Pair::new(1, 0)]).unwrap();
        assert!(x[0][idx].is_nan());
    }

    #[test]
    fn out_of_range_pair_is_error() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default());
        assert!(extract_vectors(&fs, &a, &b, &[Pair::new(9, 0)]).is_err());
    }

    #[test]
    fn interned_set_features_match_direct_compute() {
        // Every feature value must equal Feature::compute run directly on
        // the cell values — the interned fast path is bit-for-bit neutral.
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let pairs = [Pair::new(0, 0), Pair::new(0, 1), Pair::new(1, 0), Pair::new(1, 1)];
        let x = extract_vectors(&fs, &a, &b, &pairs).unwrap();
        for (r, p) in pairs.iter().enumerate() {
            for (k, f) in fs.features.iter().enumerate() {
                let va = a.row(p.left).unwrap().get(&f.left_attr).unwrap();
                let vb = b.row(p.right).unwrap().get(&f.right_attr).unwrap();
                let direct = f.compute(va, vb);
                let got = x[r][k];
                assert!(
                    got.to_bits() == direct.to_bits() || (got.is_nan() && direct.is_nan()),
                    "{} on pair {:?}: got {got}, direct {direct}",
                    f.name,
                    p
                );
            }
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Build enough pairs to cross the parallel threshold.
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let mut pairs = Vec::new();
        for _ in 0..2000 {
            pairs.push(Pair::new(0, 0));
            pairs.push(Pair::new(0, 1));
            pairs.push(Pair::new(1, 0));
            pairs.push(Pair::new(1, 1));
        }
        em_parallel::set_threads(4);
        let x = extract_vectors(&fs, &a, &b, &pairs).unwrap();
        em_parallel::set_threads(0);
        let serial = extract_vectors(&fs, &a, &b, &pairs[..4]).unwrap();
        assert_eq!(x.len(), pairs.len());
        for k in 0..4 {
            for (u, v) in x[k].iter().zip(&serial[k]) {
                assert!(u == v || (u.is_nan() && v.is_nan()));
            }
        }
    }

    #[test]
    fn pair_memo_invalidated_between_calls() {
        // String ids are assigned per call; a stale memo entry from a prior
        // extraction must never leak into the next one. Run two extractions
        // whose sid spaces collide but whose strings differ, then check both
        // against the direct compute path.
        let (a, b) = tables();
        let a2 = read_str("A", "Title,Amount\nZebra Grazing Study,10\nRiver Silt Survey,2\n")
            .unwrap();
        let b2 = read_str("B", "Title,Amount\nzebra grazing study,10\nUnrelated Topic,5\n")
            .unwrap();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let pairs = [Pair::new(0, 0), Pair::new(0, 1), Pair::new(1, 0), Pair::new(1, 1)];
        for (ta, tb) in [(&a, &b), (&a2, &b2), (&a, &b)] {
            let x = extract_vectors(&fs, ta, tb, &pairs).unwrap();
            for (r, p) in pairs.iter().enumerate() {
                for (k, f) in fs.features.iter().enumerate() {
                    let va = ta.row(p.left).unwrap().get(&f.left_attr).unwrap();
                    let vb = tb.row(p.right).unwrap().get(&f.right_attr).unwrap();
                    let direct = f.compute(va, vb);
                    let got = x[r][k];
                    assert!(
                        got.to_bits() == direct.to_bits() || (got.is_nan() && direct.is_nan()),
                        "{} on pair {:?}: got {got}, direct {direct}",
                        f.name,
                        p
                    );
                }
            }
        }
    }

    #[test]
    fn empty_pairs_ok() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default());
        assert!(extract_vectors(&fs, &a, &b, &[]).unwrap().is_empty());
    }
}
