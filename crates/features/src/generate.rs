//! Automatic feature generation — PyMatcher's "apply … to the schemas of
//! the two tables to automatically generate a large set of features"
//! (Section 9, footnote 7).
//!
//! Attributes are paired by identical name (the tables have been aligned in
//! pre-processing); each pair's joint [`AttrType`] selects a menu of
//! measures. [`FeatureOptions::case_insensitive`] additionally emits
//! lowercase variants of every string feature — the Section 9 fix.

use crate::feature::{Feature, FeatureKind};
use crate::types::{infer_attr_type, joint_attr_type, AttrType};
use em_table::Table;

/// Options controlling automatic generation.
#[derive(Debug, Clone, Default)]
pub struct FeatureOptions {
    /// Attributes to skip entirely (ids, bookkeeping columns).
    pub exclude: Vec<String>,
    /// Also generate lowercase variants of every string feature.
    pub case_insensitive: bool,
}

impl FeatureOptions {
    /// Excludes the given attributes.
    pub fn excluding(attrs: &[&str]) -> FeatureOptions {
        FeatureOptions {
            exclude: attrs.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        }
    }

    /// Enables case-insensitive variants.
    pub fn with_case_insensitive(mut self) -> FeatureOptions {
        self.case_insensitive = true;
        self
    }
}

/// An ordered set of features plus the names the ML layer will see.
#[derive(Debug, Clone, Default)]
pub struct FeatureSet {
    /// The features, in generation order.
    pub features: Vec<Feature>,
}

impl FeatureSet {
    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when no features were generated.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature names in order (column names of the extracted matrix).
    pub fn names(&self) -> Vec<String> {
        self.features.iter().map(|f| f.name.clone()).collect()
    }

    /// Adds a hand-crafted feature (the escape hatch PyMatcher's scripting
    /// layer offers).
    pub fn push(&mut self, feature: Feature) {
        self.features.push(feature);
    }
}

/// The measure menu for a joint attribute type.
fn menu(t: AttrType) -> &'static [FeatureKind] {
    use FeatureKind::*;
    match t {
        AttrType::Numeric => &[NumExact, NumAbsDiff, NumRelSim],
        AttrType::Date => &[DateExact, DateYearGap],
        AttrType::Boolean => &[BoolExact],
        AttrType::ShortString => {
            &[ExactStr, LevSim, Jaro, JaroWinkler, NeedlemanWunsch, SmithWaterman, JaccardQgram3]
        }
        AttrType::LongText => &[
            JaccardQgram3,
            JaccardWord,
            CosineWord,
            OverlapCoeffWord,
            DiceQgram3,
            MongeElkanJw,
            MongeElkanSoundex,
        ],
    }
}

/// Generates features for every same-named attribute pair of the two tables.
pub fn auto_features(a: &Table, b: &Table, opts: &FeatureOptions) -> FeatureSet {
    let mut out = FeatureSet::default();
    for col in a.schema().columns() {
        let name = &col.name;
        if opts.exclude.iter().any(|e| e == name) || !b.schema().contains(name) {
            continue;
        }
        let (Some(ta), Some(tb)) = (infer_attr_type(a, name), infer_attr_type(b, name)) else {
            continue;
        };
        let Some(joint) = joint_attr_type(ta, tb) else {
            continue;
        };
        for &kind in menu(joint) {
            out.push(Feature::new(name, name, kind, false));
            if opts.case_insensitive && kind.is_string_measure() {
                out.push(Feature::new(name, name, kind, true));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_table::csv::read_str;

    fn tables() -> (Table, Table) {
        let a = read_str(
            "A",
            "RecordId,AwardNumber,AwardTitle,FirstTransDate,Amount\n\
             0,10.200 2008-34103-19449,Development of IPM Based Corn Fungicide Guidelines,2008-10-01,100\n\
             1,10.203 WIS01040,Swamp Dodder Applied Ecology and Management Production,2007-10-01,50\n",
        )
        .unwrap();
        let b = read_str(
            "B",
            "RecordId,AwardNumber,AwardTitle,FirstTransDate,Amount\n\
             0,2008-34103-19449,Development of IPM Based Corn Fungicide Guidelines,2008-08-15,100\n\
             1,,Swamp Dodder Applied Ecology and Management in Carrots,2006-10-01,51\n",
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn generates_per_type_menus() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::excluding(&["RecordId"]));
        let names = fs.names();
        // long-text title gets token measures
        assert!(names.contains(&"AwardTitle_jac_q3".to_string()));
        assert!(names.contains(&"AwardTitle_me_jw".to_string()));
        // short-string award number gets edit measures
        assert!(names.contains(&"AwardNumber_lev".to_string()));
        assert!(names.contains(&"AwardNumber_jw".to_string()));
        // date and numeric menus
        assert!(names.contains(&"FirstTransDate_year_gap".to_string()));
        assert!(names.contains(&"Amount_abs_diff".to_string()));
        // excluded id produces nothing
        assert!(!names.iter().any(|n| n.starts_with("RecordId")));
    }

    #[test]
    fn case_insensitive_doubles_string_features() {
        let (a, b) = tables();
        let base = auto_features(&a, &b, &FeatureOptions::excluding(&["RecordId"]));
        let ci = auto_features(
            &a,
            &b,
            &FeatureOptions::excluding(&["RecordId"]).with_case_insensitive(),
        );
        let string_features = base
            .features
            .iter()
            .filter(|f| f.kind.is_string_measure())
            .count();
        assert_eq!(ci.len(), base.len() + string_features);
        assert!(ci.names().contains(&"AwardTitle_jac_q3_lc".to_string()));
        // numeric/date features do not get lowercase variants
        assert!(!ci.names().iter().any(|n| n == "Amount_abs_diff_lc"));
    }

    #[test]
    fn only_shared_names_pair_up() {
        let a = read_str("A", "x,y\n1,2\n").unwrap();
        let b = read_str("B", "x,z\n1,2\n").unwrap();
        let fs = auto_features(&a, &b, &FeatureOptions::default());
        assert!(fs.names().iter().all(|n| n.starts_with("x_")));
    }

    #[test]
    fn incompatible_types_skipped() {
        let a = read_str("A", "v\n1\n2\n").unwrap(); // numeric
        let b = read_str("B", "v\nabc\ndef\n").unwrap(); // string
        let fs = auto_features(&a, &b, &FeatureOptions::default());
        assert!(fs.is_empty());
    }

    #[test]
    fn feature_names_unique() {
        let (a, b) = tables();
        let fs = auto_features(
            &a,
            &b,
            &FeatureOptions::excluding(&["RecordId"]).with_case_insensitive(),
        );
        let mut names = fs.names();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
