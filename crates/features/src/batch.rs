//! Batched, maskable feature extraction — the match path's workhorse.
//!
//! [`BatchExtractor`] builds the call-wide interned caches of
//! [`extract_vectors`](crate::extract::extract_vectors) (set-feature token
//! columns, sequence-feature normalization columns, the word table) **once**
//! and then extracts any number of pairs through them, restricted to a
//! [`FeatureMask`]'s live subset: dead features get no cache plan, their
//! columns are never tokenized, and their output slots are `NaN` — exactly
//! what downstream mean imputation replaces with the column mean, so a
//! tree-shaped model that never reads those columns scores bit-identically
//! to full extraction (the PR 5 serving argument, now available to batch).
//!
//! Memory is bounded by design: the per-worker [`BatchScratch`] carries the
//! `(feature, sid, sid)` pair memo and the Monge-Elkan word-pair
//! Jaro-Winkler memo with **size-capped epoch eviction** (the maps clear
//! wholesale at their cap), so streaming millions of candidates holds RSS
//! flat. Memoized values are pure functions of their keys; eviction can
//! only cost recomputation, never change a bit.
//!
//! The extractor can also *borrow* the blocking join's [`TokenCorpus`]
//! pair for lowercase word-level set features (one tokenization pass per
//! column per run, shared across stages) — see
//! [`BatchExtractor::with_shared_word_corpora`].

use crate::extract::{
    build_seq_caches, build_set_caches, BoundedMemo, CacheBuild, SeqCaches, SetCaches,
    SharedWordCorpora,
    PARALLEL_THRESHOLD,
};
use crate::generate::FeatureSet;
use crate::serve::FeatureMask;
use em_blocking::Pair;
use em_parallel::Executor;
use em_table::{Table, TableError};
use em_text::TokenCorpus;

/// Default cap on the `(feature, left sid, right sid)` pair memo of one
/// [`BatchScratch`]. At ~28 bytes a slot this bounds the memo near 30 MB
/// per worker before an epoch clears it.
pub const PAIR_MEMO_CAP: usize = 1 << 20;

/// Default cap on the word-pair Jaro-Winkler memo (Monge-Elkan inner
/// measure). Distinct word pairs grow much slower than distinct cell
/// pairs, so a smaller cap suffices.
pub const JW_MEMO_CAP: usize = 1 << 18;

/// Fixed pair-chunk width of [`BatchExtractor::extract_matrix`]. Chunks
/// are the parallel index space, so the split is independent of the thread
/// count; per-pair values are pure, so output is bit-identical regardless.
pub const BATCH_CHUNK: usize = 1024;

/// Per-worker extraction memos with size-capped epoch eviction.
///
/// One scratch per worker (or one reused across sequential calls): the
/// memos exploit value repetition — recurring titles cost one kernel call,
/// recurring words one Jaro-Winkler — and clear wholesale when they hit
/// their cap, holding memory flat on unbounded candidate streams.
pub struct BatchScratch {
    pub(crate) pairs: BoundedMemo<(u32, u32, u32)>,
    pub(crate) jw_words: BoundedMemo<(u32, u32)>,
}

impl BatchScratch {
    /// A scratch with the default [`PAIR_MEMO_CAP`] / [`JW_MEMO_CAP`] caps.
    pub fn new() -> BatchScratch {
        BatchScratch::with_caps(PAIR_MEMO_CAP, JW_MEMO_CAP)
    }

    /// A scratch with explicit caps (tests pin eviction behavior with tiny
    /// caps; 0 disables a memo entirely).
    pub fn with_caps(pair_cap: usize, jw_cap: usize) -> BatchScratch {
        BatchScratch {
            pairs: BoundedMemo::with_cap(pair_cap),
            jw_words: BoundedMemo::with_cap(jw_cap),
        }
    }

    /// How many times the pair memo hit its cap and was cleared.
    pub fn pair_memo_epochs(&self) -> u64 {
        self.pairs.epochs()
    }

    /// Current pair-memo occupancy (always ≤ its cap).
    pub fn pair_memo_len(&self) -> usize {
        self.pairs.len()
    }
}

impl Default for BatchScratch {
    fn default() -> BatchScratch {
        BatchScratch::new()
    }
}

/// A reusable batched extractor: caches built once, pairs extracted many
/// times (optionally restricted to a live-feature mask).
pub struct BatchExtractor {
    features: FeatureSet,
    live: Vec<bool>,
    left_idx: Vec<usize>,
    right_idx: Vec<usize>,
    set_caches: SetCaches,
    seq_caches: SeqCaches,
}

/// Builder input distinguishing "every row" from "rows these pairs touch".
enum UsedRows<'p> {
    All,
    FromPairs(&'p [Pair]),
}

impl BatchExtractor {
    /// An extractor over **all** rows of both tables — the streaming match
    /// path, where every left row is driven through the join and any right
    /// row can surface as a candidate. `shared`, when given, lets
    /// lowercase word-level set features borrow the blocking join's
    /// already-tokenized corpora (falls back to owned tokenization per
    /// plan if a referenced cell is not a string).
    pub fn new(
        features: &FeatureSet,
        a: &Table,
        b: &Table,
        mask: &FeatureMask,
        shared: Option<SharedWordColumns<'_>>,
    ) -> Result<BatchExtractor, TableError> {
        BatchExtractor::build(features, a, b, mask, UsedRows::All, shared)
    }

    /// An extractor whose caches cover only the rows `pairs` reference —
    /// the materialized-candidate-set path ([`extract_vectors`]
    /// (crate::extract::extract_vectors) and the bench's masked stage).
    /// Validates every pair's range up front.
    pub fn for_pairs(
        features: &FeatureSet,
        a: &Table,
        b: &Table,
        mask: &FeatureMask,
        pairs: &[Pair],
    ) -> Result<BatchExtractor, TableError> {
        for p in pairs {
            if p.left >= a.n_rows() || p.right >= b.n_rows() {
                return Err(TableError::KeyViolation {
                    column: "pair".to_string(),
                    detail: format!("pair ({}, {}) out of range", p.left, p.right),
                });
            }
        }
        BatchExtractor::build(features, a, b, mask, UsedRows::FromPairs(pairs), None)
    }

    fn build(
        features: &FeatureSet,
        a: &Table,
        b: &Table,
        mask: &FeatureMask,
        used: UsedRows<'_>,
        shared: Option<SharedWordColumns<'_>>,
    ) -> Result<BatchExtractor, TableError> {
        // Pre-resolve column indices so the hot loop is index math only.
        let mut left_idx = Vec::with_capacity(features.len());
        let mut right_idx = Vec::with_capacity(features.len());
        for f in &features.features {
            left_idx.push(a.schema().require(&f.left_attr)?);
            right_idx.push(b.schema().require(&f.right_attr)?);
        }
        let live: Vec<bool> = (0..features.len()).map(|k| mask.is_live(k)).collect();
        let (used_left, used_right) = match used {
            UsedRows::All => (vec![true; a.n_rows()], vec![true; b.n_rows()]),
            UsedRows::FromPairs(pairs) => {
                // Caches are built only for rows some candidate pair
                // actually references — after blocking, that is often a
                // small slice of either table.
                let mut ul = vec![false; a.n_rows()];
                let mut ur = vec![false; b.n_rows()];
                for p in pairs {
                    ul[p.left] = true;
                    ur[p.right] = true;
                }
                (ul, ur)
            }
        };
        let shared = match &shared {
            Some(sh) => {
                if sh.left.len() != a.n_rows() || sh.right.len() != b.n_rows() {
                    return Err(TableError::KeyViolation {
                        column: "shared word corpus".to_string(),
                        detail: format!(
                            "corpus rows ({}, {}) do not match table rows ({}, {})",
                            sh.left.len(),
                            sh.right.len(),
                            a.n_rows(),
                            b.n_rows()
                        ),
                    });
                }
                Some(SharedWordCorpora {
                    left_attr: sh.left_attr,
                    right_attr: sh.right_attr,
                    left: sh.left,
                    right: sh.right,
                })
            }
            None => None,
        };
        let cb = CacheBuild {
            features,
            a,
            b,
            left_idx: &left_idx,
            right_idx: &right_idx,
            used_left: &used_left,
            used_right: &used_right,
            live: &live,
        };
        let set_caches = build_set_caches(&cb, shared.as_ref());
        let seq_caches = build_seq_caches(&cb);
        Ok(BatchExtractor {
            features: features.clone(),
            live,
            left_idx,
            right_idx,
            set_caches,
            seq_caches,
        })
    }

    /// Number of feature slots (live and dead).
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Extracts one pair into `out` (length must equal
    /// [`n_features`](BatchExtractor::n_features)): live features get
    /// their value, dead features `NaN`. Allocation-free apart from memo
    /// growth inside `scratch`.
    ///
    /// # Panics
    /// If `pair` indexes past a table or a referenced row was not covered
    /// by the constructor's `pairs`.
    #[inline]
    pub fn extract_into(
        &self,
        a: &Table,
        b: &Table,
        p: Pair,
        scratch: &mut BatchScratch,
        out: &mut [f64],
    ) {
        debug_assert_eq!(out.len(), self.features.len());
        let ra = &a.rows()[p.left];
        let rb = &b.rows()[p.right];
        for (k, f) in self.features.features.iter().enumerate() {
            out[k] = if !self.live[k] {
                f64::NAN
            } else if let Some((plan, op)) = self.set_caches.feature_plan[k] {
                let col = &self.set_caches.columns[plan];
                match (&col.left[p.left], &col.right[p.right]) {
                    (Some(ta), Some(tb)) => op.score(ta, tb),
                    _ => f64::NAN,
                }
            } else if let Some((plan, op)) = self.seq_caches.feature_plan[k] {
                let col = &self.seq_caches.columns[plan];
                match (&col.left[p.left], &col.right[p.right]) {
                    (Some(ca), Some(cb)) => {
                        let key = (k as u32, ca.sid, cb.sid);
                        if let Some(v) = scratch.pairs.get(&key) {
                            v
                        } else {
                            let v =
                                op.score(ca, cb, &self.seq_caches.words, &mut scratch.jw_words);
                            scratch.pairs.insert(key, v);
                            v
                        }
                    }
                    _ => f64::NAN,
                }
            } else {
                f.compute(&ra[self.left_idx[k]], &rb[self.right_idx[k]])
            };
        }
    }

    /// Extracts every pair into one row-major matrix
    /// (`pairs.len() × n_features`), fanned out over fixed
    /// [`BATCH_CHUNK`]-pair chunks with a per-worker scratch. Bit-identical
    /// at any thread count.
    pub fn extract_matrix(&self, a: &Table, b: &Table, pairs: &[Pair]) -> Vec<f64> {
        let nf = self.features.len();
        if nf == 0 || pairs.is_empty() {
            return Vec::new();
        }
        let chunks = pairs.len().div_ceil(BATCH_CHUNK);
        // Grain in chunks so one worker holds at least PARALLEL_THRESHOLD
        // (pair × feature) computations.
        let grain = (PARALLEL_THRESHOLD / (nf * BATCH_CHUNK)).max(1);
        let blocks = Executor::current().map_indexed_with(
            chunks,
            grain,
            BatchScratch::new,
            |scratch, c| {
                let lo = c * BATCH_CHUNK;
                let hi = (lo + BATCH_CHUNK).min(pairs.len());
                let mut block = vec![0.0; (hi - lo) * nf];
                for (i, p) in pairs[lo..hi].iter().enumerate() {
                    self.extract_into(a, b, *p, scratch, &mut block[i * nf..(i + 1) * nf]);
                }
                block
            },
        );
        blocks.concat()
    }
}

/// An already-tokenized column pair to share with set-feature extraction:
/// the blocking join's left/right [`TokenCorpus`] over `(left_attr,
/// right_attr)`. Corpora must cover every row of their table.
#[derive(Clone, Copy)]
pub struct SharedWordColumns<'c> {
    /// Left-table attribute the corpora tokenize.
    pub left_attr: &'c str,
    /// Right-table attribute the corpora tokenize.
    pub right_attr: &'c str,
    /// Tokenized left column (one row per table row).
    pub left: &'c TokenCorpus,
    /// Tokenized right column (one row per table row).
    pub right: &'c TokenCorpus,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_vectors;
    use crate::generate::{auto_features, FeatureOptions};
    use em_table::csv::read_str;
    use em_text::TokenCache;

    fn tables() -> (Table, Table) {
        let a = read_str(
            "A",
            "Title,Amount\nCorn Fungicide Guidelines,10\nSwamp Dodder Ecology,\nCorn  Fungicide?Guidelines,3\n,7\n",
        )
        .unwrap();
        let b = read_str(
            "B",
            "Title,Amount\ncorn fungicide guidelines,10\nTotally Different,5\n,\nDodder-ecology (swamp),1\n",
        )
        .unwrap();
        (a, b)
    }

    fn all_pairs(a: &Table, b: &Table) -> Vec<Pair> {
        (0..a.n_rows())
            .flat_map(|i| (0..b.n_rows()).map(move |j| Pair::new(i, j)))
            .collect()
    }

    #[test]
    fn full_mask_matches_extract_vectors_bitwise() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let pairs = all_pairs(&a, &b);
        let reference = extract_vectors(&fs, &a, &b, &pairs).unwrap();
        let ex =
            BatchExtractor::new(&fs, &a, &b, &FeatureMask::full(fs.len()), None).unwrap();
        let mut scratch = BatchScratch::new();
        let mut out = vec![0.0; fs.len()];
        for (r, p) in pairs.iter().enumerate() {
            ex.extract_into(&a, &b, *p, &mut scratch, &mut out);
            for k in 0..fs.len() {
                assert!(
                    out[k].to_bits() == reference[r][k].to_bits()
                        || (out[k].is_nan() && reference[r][k].is_nan()),
                    "{} on {:?}: {} vs {}",
                    fs.features[k].name,
                    p,
                    out[k],
                    reference[r][k]
                );
            }
        }
        // The matrix form agrees too, at 1 and 4 threads.
        let m1 = ex.extract_matrix(&a, &b, &pairs);
        em_parallel::set_threads(4);
        let m4 = ex.extract_matrix(&a, &b, &pairs);
        em_parallel::set_threads(0);
        assert_eq!(m1.len(), pairs.len() * fs.len());
        for (u, v) in m1.iter().zip(&m4) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn masked_slots_are_nan_and_live_slots_exact() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let pairs = all_pairs(&a, &b);
        let reference = extract_vectors(&fs, &a, &b, &pairs).unwrap();
        // Keep every third feature live.
        let live: Vec<usize> = (0..fs.len()).step_by(3).collect();
        let mask = FeatureMask::from_live_indices(fs.len(), live.iter().copied());
        let ex = BatchExtractor::for_pairs(&fs, &a, &b, &mask, &pairs).unwrap();
        let mut scratch = BatchScratch::new();
        let mut out = vec![0.0; fs.len()];
        for (r, p) in pairs.iter().enumerate() {
            ex.extract_into(&a, &b, *p, &mut scratch, &mut out);
            for k in 0..fs.len() {
                if mask.is_live(k) {
                    assert!(
                        out[k].to_bits() == reference[r][k].to_bits()
                            || (out[k].is_nan() && reference[r][k].is_nan())
                    );
                } else {
                    assert!(out[k].is_nan(), "dead slot must be NaN");
                }
            }
        }
    }

    #[test]
    fn tiny_memo_caps_change_nothing_but_cycle_epochs() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let pairs = all_pairs(&a, &b);
        let ex =
            BatchExtractor::for_pairs(&fs, &a, &b, &FeatureMask::full(fs.len()), &pairs).unwrap();
        let mut big = BatchScratch::new();
        let mut tiny = BatchScratch::with_caps(2, 1);
        let mut off = BatchScratch::with_caps(0, 0);
        let mut o1 = vec![0.0; fs.len()];
        let mut o2 = vec![0.0; fs.len()];
        let mut o3 = vec![0.0; fs.len()];
        for _ in 0..3 {
            for p in &pairs {
                ex.extract_into(&a, &b, *p, &mut big, &mut o1);
                ex.extract_into(&a, &b, *p, &mut tiny, &mut o2);
                ex.extract_into(&a, &b, *p, &mut off, &mut o3);
                for k in 0..fs.len() {
                    assert!(
                        (o1[k].to_bits() == o2[k].to_bits()
                            || (o1[k].is_nan() && o2[k].is_nan()))
                            && (o1[k].to_bits() == o3[k].to_bits()
                                || (o1[k].is_nan() && o3[k].is_nan())),
                        "memo caps must be value-neutral ({})",
                        fs.features[k].name
                    );
                }
            }
        }
        assert!(tiny.pair_memo_epochs() > 0, "tiny cap must have evicted");
        assert!(tiny.pair_memo_len() <= 2);
        assert_eq!(off.pair_memo_len(), 0);
    }

    #[test]
    fn shared_word_corpora_match_owned_tokenization() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let pairs = all_pairs(&a, &b);
        let cache = TokenCache::for_blocking();
        let left = TokenCorpus::from_column(
            &cache,
            (0..a.n_rows()).map(|i| a.get(i, "Title").and_then(|v| v.as_str())),
        );
        let right = TokenCorpus::from_column(
            &cache,
            (0..b.n_rows()).map(|i| b.get(i, "Title").and_then(|v| v.as_str())),
        );
        let shared = SharedWordColumns {
            left_attr: "Title",
            right_attr: "Title",
            left: &left,
            right: &right,
        };
        let mask = FeatureMask::full(fs.len());
        let owned = BatchExtractor::new(&fs, &a, &b, &mask, None).unwrap();
        let borrowed = BatchExtractor::new(&fs, &a, &b, &mask, Some(shared)).unwrap();
        let mo = owned.extract_matrix(&a, &b, &pairs);
        let mb = borrowed.extract_matrix(&a, &b, &pairs);
        for (k, (u, v)) in mo.iter().zip(&mb).enumerate() {
            assert!(
                u.to_bits() == v.to_bits() || (u.is_nan() && v.is_nan()),
                "slot {k}: owned {u} vs shared {v}"
            );
        }
    }

    #[test]
    fn shared_corpora_shape_mismatch_is_an_error() {
        let (a, b) = tables();
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let cache = TokenCache::for_blocking();
        let too_short = TokenCorpus::from_column(&cache, [Some("corn")]);
        let shared = SharedWordColumns {
            left_attr: "Title",
            right_attr: "Title",
            left: &too_short,
            right: &too_short,
        };
        assert!(BatchExtractor::new(&fs, &a, &b, &FeatureMask::full(fs.len()), Some(shared))
            .is_err());
    }
}
