//! Serve-path feature extraction: persistent corpus caches, model-aware
//! feature masks, and per-request scratch.
//!
//! [`extract_vectors`](crate::extract_vectors) is built for batch calls: it
//! (re)builds its tokenization and normalization caches for **every** call,
//! walking all rows of both tables per plan. That amortizes beautifully over
//! tens of thousands of candidate pairs and is catastrophic for an online
//! service extracting ~a dozen candidates per arriving record — per-record
//! cost becomes `O(corpus × plans)` regardless of how few pairs survive
//! blocking.
//!
//! [`ServeExtractor`] flips the lifecycle: the corpus-side caches (interned
//! token-id lists per set plan, normalized cells + the word table for the
//! sequence plans) are built **once** and grown row-by-row via
//! [`push_right_row`](ServeExtractor::push_right_row) as the corpus evolves.
//! A request then only normalizes the single arriving record into a
//! [`ExtractScratch`]-backed probe cell ([`prepare`](ServeExtractor::prepare),
//! once per record), and each surviving candidate is scored against the
//! pre-tokenized corpus row with zero allocations
//! ([`extract_into`](ServeExtractor::extract_into)).
//!
//! Bit-identity with the batch path holds feature-by-feature:
//!
//! - Set measures depend only on `(|A∩B|, |A|, |B|)`. Probe tokens are
//!   looked up **read-only** in the persistent per-plan interner; a token
//!   the corpus has never produced can intersect nothing, so it contributes
//!   to `|A|` only. The score then runs through the same `*_counts`
//!   functions the batch `*_sorted` measures delegate to — the identical
//!   f64 expression on identical integers.
//! - Sequence kernels run on the same decoded `&[char]` content through the
//!   same `em_text::seq` kernels; exact-match compares interned string ids,
//!   where a probe string absent from the persistent memo equals no corpus
//!   string by construction.
//! - Monge-Elkan folds through the same
//!   [`monge_elkan_sym_ids`](crate::extract::monge_elkan_sym_ids) shape with
//!   inner measures resolved over the persistent word table (probe-only
//!   words get request-local entries).
//!
//! A [`FeatureMask`] (derived from the fitted model's split walk plus the
//! rule-referenced attribute pairs — see `em-serve`) prunes extraction to
//! the features the downstream scorer can actually read; dead slots are
//! filled with `NaN`, which mean-imputation maps to an unread column mean.

use crate::extract::{
    monge_elkan_sym_ids, norm_cell, plan_tokenize, set_op, seq_op, soundex_code, NormCell,
    PlanInterner, SeqOp, SetOp, WordTable,
};
use crate::generate::FeatureSet;
use em_table::{Table, TableError, Value};
use em_text::intern::{overlap_size_sorted, TokenIds};
use em_text::tokenize::{AlphanumericTokenizer, Tokenizer};
use em_text::{seq, with_scratch, FastMap};
use std::collections::HashMap;
use std::sync::Arc;

/// Which features of a plan are *live* — actually read by the fitted model
/// or a rule-referenced attribute pair. Dead features are skipped at serve
/// time and their slots filled with `NaN`.
#[derive(Debug, Clone)]
pub struct FeatureMask {
    live: Vec<bool>,
    n_live: usize,
}

impl FeatureMask {
    /// A mask over `n_features` slots with exactly the given indices live.
    /// Out-of-range indices are ignored.
    pub fn from_live_indices(
        n_features: usize,
        indices: impl IntoIterator<Item = usize>,
    ) -> FeatureMask {
        let mut live = vec![false; n_features];
        for i in indices {
            if let Some(slot) = live.get_mut(i) {
                *slot = true;
            }
        }
        let n_live = live.iter().filter(|&&b| b).count();
        FeatureMask { live, n_live }
    }

    /// The mask that keeps every feature — batch semantics.
    pub fn full(n_features: usize) -> FeatureMask {
        FeatureMask { live: vec![true; n_features], n_live: n_features }
    }

    /// True when feature `k` must be computed.
    pub fn is_live(&self, k: usize) -> bool {
        self.live.get(k).copied().unwrap_or(false)
    }

    /// Number of live features.
    pub fn n_live(&self) -> usize {
        self.n_live
    }

    /// Total number of feature slots.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when the mask has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// True when at least one feature is dead — masking actually prunes.
    pub fn is_strict_subset(&self) -> bool {
        self.n_live < self.live.len()
    }

    /// Iterates the live feature indices in ascending order.
    pub fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.live.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i)
    }
}

/// Encoded word reference: plain ids index the persistent word table;
/// ids with [`LOCAL_BIT`] set index the request-local words of the probe
/// cell (words the corpus has never produced).
const LOCAL_BIT: u32 = 1 << 31;

/// A probe-only word: decoded chars + Soundex code, request-local.
#[derive(Debug, Default, Clone)]
struct LocalWord {
    chars: Vec<char>,
    sdx: Option<[u8; 4]>,
}

/// Per-request probe cell of one set plan.
#[derive(Debug, Default)]
struct SetProbeCell {
    present: bool,
    /// Sorted distinct *known* token ids (plan-interner space).
    ids: Vec<u32>,
    /// Distinct probe tokens, known + unknown — `|A|` for the measures.
    la: usize,
}

/// Per-request probe cell of one sequence plan.
#[derive(Debug, Default)]
struct SeqProbeCell {
    present: bool,
    /// Persistent string id when the normalized probe string is one the
    /// corpus has produced; `None` means it equals no corpus string.
    sid: Option<u32>,
    chars: Vec<char>,
    /// Encoded word ids ([`LOCAL_BIT`] marks request-local words).
    word_ids: Vec<u32>,
    locals: Vec<LocalWord>,
}

/// Reusable per-request buffers for [`ServeExtractor`]. All contained
/// collections retain capacity across requests (`clear()`, not drop), so a
/// warmed-up serving loop prepares probes and extracts candidates without
/// allocating.
#[derive(Default)]
pub struct ExtractScratch {
    set_left: Vec<SetProbeCell>,
    seq_left: Vec<SeqProbeCell>,
    /// Per-feature left column index in the arrival table's schema.
    fallback_left: Vec<usize>,
    /// Request-scoped inner Jaro-Winkler memo, keyed on ordered encoded
    /// word-id pairs (cleared per request: local ids are request-scoped).
    jw: FastMap<(u32, u32), f64>,
    cbuf: Vec<char>,
    ugrams: Vec<[char; 3]>,
    ustrings: Vec<String>,
}

impl ExtractScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> ExtractScratch {
        ExtractScratch::default()
    }
}

impl std::fmt::Debug for ExtractScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtractScratch")
            .field("set_plans", &self.set_left.len())
            .field("seq_plans", &self.seq_left.len())
            .field("jw_memo", &self.jw.len())
            .finish()
    }
}

/// Persistent state of one tokenization plan (set features).
struct SetPlan {
    left_attr: String,
    right_col: usize,
    qgram: bool,
    lowercase: bool,
    interner: PlanInterner,
    memo: FastMap<String, TokenIds>,
    /// Per corpus row: sorted distinct token ids, `None` for null cells.
    right: Vec<Option<TokenIds>>,
}

/// Persistent state of one normalization plan (sequence features).
struct SeqPlan {
    left_attr: String,
    right_col: usize,
    lowercase: bool,
    /// Per corpus row: normalized cell, `None` for null cells.
    right: Vec<Option<NormCell>>,
}

/// Persistent serve-side feature extractor over an evolving corpus.
///
/// Construction tokenizes/normalizes every corpus row once;
/// [`push_right_row`](ServeExtractor::push_right_row) grows the caches in
/// place as records are admitted. Requests are read-only (`&self`), so a
/// service can extract from multiple threads without locking.
pub struct ServeExtractor {
    features: FeatureSet,
    /// Per feature: column index in the corpus schema.
    right_idx: Vec<usize>,
    set_route: Vec<Option<(usize, SetOp)>>,
    seq_route: Vec<Option<(usize, SeqOp)>>,
    set_plans: Vec<SetPlan>,
    seq_plans: Vec<SeqPlan>,
    /// One memo + word table spans all sequence plans, so string ids are
    /// global: sid equality ⇔ string equality everywhere.
    seq_memo: FastMap<String, NormCell>,
    words: WordTable,
    n_rows: usize,
    /// Push-side char buffer.
    cbuf: Vec<char>,
}

impl std::fmt::Debug for ServeExtractor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeExtractor")
            .field("n_features", &self.features.len())
            .field("set_plans", &self.set_plans.len())
            .field("seq_plans", &self.seq_plans.len())
            .field("n_rows", &self.n_rows)
            .finish()
    }
}

impl ServeExtractor {
    /// Builds the extractor for `features` over the current `corpus`
    /// (right-side) rows. Fails if a feature references a column absent
    /// from the corpus schema.
    pub fn new(features: &FeatureSet, corpus: &Table) -> Result<ServeExtractor, TableError> {
        let mut right_idx = Vec::with_capacity(features.len());
        for f in &features.features {
            right_idx.push(corpus.schema().require(&f.right_attr)?);
        }
        let mut set_index: HashMap<(String, usize, bool, bool), usize> = HashMap::new();
        let mut seq_index: HashMap<(String, usize, bool), usize> = HashMap::new();
        let mut set_plans: Vec<SetPlan> = Vec::new();
        let mut seq_plans: Vec<SeqPlan> = Vec::new();
        let mut set_route = Vec::with_capacity(features.len());
        let mut seq_route = Vec::with_capacity(features.len());
        for (k, f) in features.features.iter().enumerate() {
            if let Some((qgram, op)) = set_op(f.kind) {
                let key = (f.left_attr.clone(), right_idx[k], qgram, f.lowercase);
                let plan = *set_index.entry(key).or_insert_with(|| {
                    set_plans.push(SetPlan {
                        left_attr: f.left_attr.clone(),
                        right_col: right_idx[k],
                        qgram,
                        lowercase: f.lowercase,
                        interner: PlanInterner::default(),
                        memo: FastMap::default(),
                        right: Vec::new(),
                    });
                    set_plans.len() - 1
                });
                set_route.push(Some((plan, op)));
            } else {
                set_route.push(None);
            }
            if let Some(op) = seq_op(f.kind) {
                let key = (f.left_attr.clone(), right_idx[k], f.lowercase);
                let plan = *seq_index.entry(key).or_insert_with(|| {
                    seq_plans.push(SeqPlan {
                        left_attr: f.left_attr.clone(),
                        right_col: right_idx[k],
                        lowercase: f.lowercase,
                        right: Vec::new(),
                    });
                    seq_plans.len() - 1
                });
                seq_route.push(Some((plan, op)));
            } else {
                seq_route.push(None);
            }
        }
        let mut ex = ServeExtractor {
            features: features.clone(),
            right_idx,
            set_route,
            seq_route,
            set_plans,
            seq_plans,
            seq_memo: FastMap::default(),
            words: WordTable::default(),
            n_rows: 0,
            cbuf: Vec::new(),
        };
        for row in corpus.rows() {
            ex.push_right_row(row);
        }
        Ok(ex)
    }

    /// Number of corpus rows currently cached.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The feature plan this extractor serves.
    pub fn features(&self) -> &FeatureSet {
        &self.features
    }

    /// Tokenizes/normalizes one newly-admitted corpus row into every plan's
    /// cache. Must be called for corpus rows in order (row `n_rows` next).
    pub fn push_right_row(&mut self, row: &[Value]) {
        for plan in &mut self.set_plans {
            let v: &Value = &row[plan.right_col];
            let cell = if v.is_null() {
                None
            } else {
                let mut s = v.render();
                if plan.lowercase {
                    // Allow-listed cache-build site: once per admitted row.
                    #[allow(clippy::disallowed_methods)]
                    {
                        s = s.to_lowercase();
                    }
                }
                Some(match plan.memo.get(&s) {
                    Some(ids) => Arc::clone(ids),
                    None => {
                        let ids: TokenIds =
                            Arc::from(plan_tokenize(&s, plan.qgram, &mut plan.interner, &mut self.cbuf));
                        plan.memo.insert(s, Arc::clone(&ids));
                        ids
                    }
                })
            };
            plan.right.push(cell);
        }
        for plan in &mut self.seq_plans {
            let v: &Value = &row[plan.right_col];
            let cell = if v.is_null() {
                None
            } else {
                let mut s = v.render();
                if plan.lowercase {
                    // Allow-listed cache-build site: once per admitted row.
                    #[allow(clippy::disallowed_methods)]
                    {
                        s = s.to_lowercase();
                    }
                }
                Some(norm_cell(s, &mut self.seq_memo, &mut self.words))
            };
            plan.right.push(cell);
        }
        self.n_rows += 1;
    }

    /// Normalizes the arriving record `arrivals[i]` into `scratch`'s probe
    /// cells — once per request, before any candidate is scored. Persistent
    /// state is only *read*: probe tokens and words absent from the corpus
    /// caches become request-local entries. Fails if a feature's left
    /// column is absent from the arrival schema or `i` is out of range.
    pub fn prepare(
        &self,
        arrivals: &Table,
        i: usize,
        scratch: &mut ExtractScratch,
    ) -> Result<(), TableError> {
        let row = arrivals.rows().get(i).ok_or_else(|| TableError::KeyViolation {
            column: "arrival".to_string(),
            detail: format!("row {i} out of range"),
        })?;
        scratch.set_left.resize_with(self.set_plans.len(), SetProbeCell::default);
        scratch.seq_left.resize_with(self.seq_plans.len(), SeqProbeCell::default);
        scratch.fallback_left.clear();
        for f in &self.features.features {
            scratch.fallback_left.push(arrivals.schema().require(&f.left_attr)?);
        }
        scratch.jw.clear();

        for (p, plan) in self.set_plans.iter().enumerate() {
            let cell = &mut scratch.set_left[p];
            cell.ids.clear();
            cell.la = 0;
            let col = arrivals.schema().require(&plan.left_attr)?;
            let v: &Value = &row[col];
            if v.is_null() {
                cell.present = false;
                continue;
            }
            cell.present = true;
            let mut s = v.render();
            if plan.lowercase {
                // Allow-listed probe-normalization site: once per request.
                #[allow(clippy::disallowed_methods)]
                {
                    s = s.to_lowercase();
                }
            }
            if plan.qgram {
                scratch.cbuf.clear();
                scratch.cbuf.extend(s.chars());
                if scratch.cbuf.is_empty() {
                    // Empty string tokenizes to nothing: |A| = 0.
                } else if scratch.cbuf.len() < 3 {
                    // Whole-string token (the QgramTokenizer short-string
                    // convention): known or not, it is one distinct token.
                    if let Some(id) = plan.interner.get_string(&s) {
                        cell.ids.push(id);
                    }
                    cell.la = 1;
                } else {
                    scratch.ugrams.clear();
                    for w in scratch.cbuf.windows(3) {
                        match plan.interner.get_gram([w[0], w[1], w[2]]) {
                            Some(id) => cell.ids.push(id),
                            None => scratch.ugrams.push([w[0], w[1], w[2]]),
                        }
                    }
                    cell.ids.sort_unstable();
                    cell.ids.dedup();
                    scratch.ugrams.sort_unstable();
                    scratch.ugrams.dedup();
                    cell.la = cell.ids.len() + scratch.ugrams.len();
                }
            } else {
                scratch.ustrings.clear();
                for tok in AlphanumericTokenizer.tokenize(&s) {
                    match plan.interner.get_string(&tok) {
                        Some(id) => cell.ids.push(id),
                        None => scratch.ustrings.push(tok),
                    }
                }
                cell.ids.sort_unstable();
                cell.ids.dedup();
                scratch.ustrings.sort_unstable();
                scratch.ustrings.dedup();
                cell.la = cell.ids.len() + scratch.ustrings.len();
            }
        }

        for (p, plan) in self.seq_plans.iter().enumerate() {
            let cell = &mut scratch.seq_left[p];
            cell.chars.clear();
            cell.word_ids.clear();
            cell.locals.clear();
            cell.sid = None;
            let col = arrivals.schema().require(&plan.left_attr)?;
            let v: &Value = &row[col];
            if v.is_null() {
                cell.present = false;
                continue;
            }
            cell.present = true;
            let mut s = v.render();
            if plan.lowercase {
                // Allow-listed probe-normalization site: once per request.
                #[allow(clippy::disallowed_methods)]
                {
                    s = s.to_lowercase();
                }
            }
            if let Some(known) = self.seq_memo.get(&s) {
                cell.sid = Some(known.sid);
                cell.chars.extend_from_slice(&known.chars);
                cell.word_ids.extend_from_slice(&known.word_ids);
            } else {
                cell.chars.extend(s.chars());
                for w in AlphanumericTokenizer.tokenize(&s) {
                    match self.words.index.get(&w) {
                        Some(&id) => cell.word_ids.push(id),
                        None => {
                            let local = u32::try_from(cell.locals.len())
                                .ok()
                                .filter(|&n| n < LOCAL_BIT)
                                .unwrap_or(LOCAL_BIT - 1);
                            cell.word_ids.push(LOCAL_BIT | local);
                            cell.locals
                                .push(LocalWord { sdx: soundex_code(&w), chars: w.chars().collect() });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Chars of an encoded word id (persistent table or request-local).
    fn word_chars<'a>(&'a self, locals: &'a [LocalWord], enc: u32) -> &'a [char] {
        if enc & LOCAL_BIT != 0 {
            &locals[(enc ^ LOCAL_BIT) as usize].chars
        } else {
            &self.words.data[enc as usize].chars
        }
    }

    /// Soundex code of an encoded word id.
    fn word_sdx(&self, locals: &[LocalWord], enc: u32) -> Option<[u8; 4]> {
        if enc & LOCAL_BIT != 0 {
            locals[(enc ^ LOCAL_BIT) as usize].sdx
        } else {
            self.words.data[enc as usize].sdx
        }
    }

    /// Extracts the feature vector of candidate pair
    /// `(arrivals[i], corpus[right_key])` into `out`: live features get the
    /// batch-identical value, dead features `NaN`. The probe cells of
    /// `scratch` must have been [`prepare`](ServeExtractor::prepare)d for
    /// this arrival. This is the allocation-free per-candidate path.
    #[allow(clippy::too_many_arguments)] // one hot-path entry point: tables, pair, mask, buffers
    pub fn extract_into(
        &self,
        arrivals: &Table,
        i: usize,
        corpus: &Table,
        right_key: usize,
        mask: &FeatureMask,
        scratch: &mut ExtractScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        let ra = &arrivals.rows()[i];
        let rb = &corpus.rows()[right_key];
        let ExtractScratch { set_left, seq_left, fallback_left, jw, .. } = scratch;
        for (k, f) in self.features.features.iter().enumerate() {
            if !mask.is_live(k) {
                out.push(f64::NAN);
                continue;
            }
            if let Some((p, op)) = self.set_route[k] {
                let cell = &set_left[p];
                let val = match (cell.present, &self.set_plans[p].right[right_key]) {
                    (true, Some(rids)) => {
                        op.score_counts(overlap_size_sorted(&cell.ids, rids), cell.la, rids.len())
                    }
                    _ => f64::NAN,
                };
                out.push(val);
                continue;
            }
            if let Some((p, op)) = self.seq_route[k] {
                let cell = &seq_left[p];
                let val = match (cell.present, &self.seq_plans[p].right[right_key]) {
                    (true, Some(rc)) => self.seq_score(op, cell, rc, jw),
                    _ => f64::NAN,
                };
                out.push(val);
                continue;
            }
            out.push(f.compute(&ra[fallback_left[k]], &rb[self.right_idx[k]]));
        }
    }

    /// One sequence-feature value against a cached corpus cell — the same
    /// kernels and fold shapes as the batch path, with probe-only words
    /// resolved through the request-local table.
    fn seq_score(
        &self,
        op: SeqOp,
        lc: &SeqProbeCell,
        rc: &NormCell,
        jw: &mut FastMap<(u32, u32), f64>,
    ) -> f64 {
        match op {
            // Cells are interned: equal string ids ⇔ equal strings; a probe
            // string the memo has never seen equals no corpus string.
            SeqOp::Exact => f64::from(lc.sid == Some(rc.sid)),
            SeqOp::MongeElkanJw => with_scratch(|s| {
                let mut inner = |x: u32, y: u32| {
                    if let Some(&v) = jw.get(&(x, y)) {
                        return v;
                    }
                    let v = seq::jaro_winkler_chars(
                        s,
                        self.word_chars(&lc.locals, x),
                        self.word_chars(&lc.locals, y),
                    );
                    jw.insert((x, y), v);
                    v
                };
                monge_elkan_sym_ids(&lc.word_ids, &rc.word_ids, &mut inner)
            }),
            SeqOp::MongeElkanSoundex => {
                let inner = |x: u32, y: u32| match (
                    self.word_sdx(&lc.locals, x),
                    self.word_sdx(&lc.locals, y),
                ) {
                    (Some(cx), Some(cy)) if cx == cy => 1.0,
                    _ => 0.0,
                };
                monge_elkan_sym_ids(&lc.word_ids, &rc.word_ids, inner)
            }
            _ => with_scratch(|s| match op {
                SeqOp::LevSim => seq::levenshtein_sim_chars(s, &lc.chars, &rc.chars),
                SeqOp::Jaro => seq::jaro_chars(s, &lc.chars, &rc.chars),
                SeqOp::JaroWinkler => seq::jaro_winkler_chars(s, &lc.chars, &rc.chars),
                SeqOp::NeedlemanWunsch => seq::needleman_wunsch_sim_chars(s, &lc.chars, &rc.chars),
                SeqOp::SmithWaterman => seq::smith_waterman_sim_chars(s, &lc.chars, &rc.chars),
                _ => unreachable!("handled above"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract_vectors;
    use crate::generate::{auto_features, FeatureOptions};
    use em_blocking::Pair;
    use em_table::csv::read_str;

    fn corpus() -> Table {
        read_str(
            "B",
            "Title,Amount\n\
             corn fungicide guidelines,10\n\
             Totally Different,5\n\
             ab,\n\
             ,7\n\
             Swamp Dodder Applied Ecology,3\n",
        )
        .unwrap()
    }

    fn arrivals() -> Table {
        // Known strings, unknown words, unknown grams, short strings, case
        // differences, nulls, and an exact corpus duplicate.
        read_str(
            "A",
            "Title,Amount\n\
             Corn Fungicide Guidelines,10\n\
             Zebra Quixotic Jargon,2\n\
             ab,\n\
             ,4\n\
             Totally Different,5\n\
             corn dodder xylophone,1\n",
        )
        .unwrap()
    }

    fn all_pairs(a: &Table, b: &Table) -> Vec<Pair> {
        let mut pairs = Vec::new();
        for i in 0..a.n_rows() {
            for j in 0..b.n_rows() {
                pairs.push(Pair::new(i, j));
            }
        }
        pairs
    }

    fn assert_bits_eq(got: f64, want: f64, what: &str) {
        assert!(
            got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
            "{what}: got {got}, want {want}"
        );
    }

    #[test]
    fn full_mask_matches_batch_extraction_bitwise() {
        let (a, b) = (arrivals(), corpus());
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let pairs = all_pairs(&a, &b);
        let batch = extract_vectors(&fs, &a, &b, &pairs).unwrap();
        let ex = ServeExtractor::new(&fs, &b).unwrap();
        let mask = FeatureMask::full(fs.len());
        let mut scratch = ExtractScratch::new();
        let mut out = Vec::new();
        for (r, p) in pairs.iter().enumerate() {
            ex.prepare(&a, p.left, &mut scratch).unwrap();
            ex.extract_into(&a, p.left, &b, p.right, &mask, &mut scratch, &mut out);
            assert_eq!(out.len(), fs.len());
            for k in 0..fs.len() {
                assert_bits_eq(
                    out[k],
                    batch[r][k],
                    &format!("pair ({},{}) feature {}", p.left, p.right, fs.features[k].name),
                );
            }
        }
    }

    #[test]
    fn masked_extraction_nans_dead_slots_and_preserves_live() {
        let (a, b) = (arrivals(), corpus());
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        let pairs = all_pairs(&a, &b);
        let batch = extract_vectors(&fs, &a, &b, &pairs).unwrap();
        // Every third feature live.
        let mask =
            FeatureMask::from_live_indices(fs.len(), (0..fs.len()).filter(|k| k % 3 == 0));
        assert!(mask.is_strict_subset());
        assert!(mask.n_live() > 0);
        let ex = ServeExtractor::new(&fs, &b).unwrap();
        let mut scratch = ExtractScratch::new();
        let mut out = Vec::new();
        for (r, p) in pairs.iter().enumerate() {
            ex.prepare(&a, p.left, &mut scratch).unwrap();
            ex.extract_into(&a, p.left, &b, p.right, &mask, &mut scratch, &mut out);
            for k in 0..fs.len() {
                if mask.is_live(k) {
                    assert_bits_eq(out[k], batch[r][k], &format!("live feature {k}"));
                } else {
                    assert!(out[k].is_nan(), "dead feature {k} must be NaN, got {}", out[k]);
                }
            }
        }
    }

    #[test]
    fn incremental_growth_equals_fresh_construction() {
        let (a, b) = (arrivals(), corpus());
        let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
        // Grow from the first two rows to all rows one by one.
        let head = read_str("B", "Title,Amount\ncorn fungicide guidelines,10\nTotally Different,5\n")
            .unwrap();
        let mut grown = ServeExtractor::new(&fs, &head).unwrap();
        for j in 2..b.n_rows() {
            grown.push_right_row(&b.rows()[j]);
        }
        assert_eq!(grown.n_rows(), b.n_rows());
        let fresh = ServeExtractor::new(&fs, &b).unwrap();
        let mask = FeatureMask::full(fs.len());
        let (mut s1, mut s2) = (ExtractScratch::new(), ExtractScratch::new());
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        for i in 0..a.n_rows() {
            grown.prepare(&a, i, &mut s1).unwrap();
            fresh.prepare(&a, i, &mut s2).unwrap();
            for j in 0..b.n_rows() {
                grown.extract_into(&a, i, &b, j, &mask, &mut s1, &mut o1);
                fresh.extract_into(&a, i, &b, j, &mask, &mut s2, &mut o2);
                for k in 0..fs.len() {
                    assert_bits_eq(o1[k], o2[k], &format!("pair ({i},{j}) feature {k}"));
                }
            }
        }
    }

    #[test]
    fn mask_accessors_are_consistent() {
        let mask = FeatureMask::from_live_indices(5, [0, 3, 3, 9]);
        assert_eq!(mask.len(), 5);
        assert_eq!(mask.n_live(), 2);
        assert!(mask.is_live(0) && mask.is_live(3));
        assert!(!mask.is_live(1) && !mask.is_live(9));
        assert!(mask.is_strict_subset());
        assert_eq!(mask.live_indices().collect::<Vec<_>>(), vec![0, 3]);
        let full = FeatureMask::full(4);
        assert!(!full.is_strict_subset());
        assert_eq!(full.n_live(), 4);
        assert!(!full.is_empty());
    }

    #[test]
    fn prepare_rejects_bad_inputs() {
        let (a, b) = (arrivals(), corpus());
        let fs = auto_features(&a, &b, &FeatureOptions::default());
        let ex = ServeExtractor::new(&fs, &b).unwrap();
        let mut scratch = ExtractScratch::new();
        assert!(ex.prepare(&a, 999, &mut scratch).is_err());
        let wrong = read_str("A", "Other\nx\n").unwrap();
        assert!(ex.prepare(&wrong, 0, &mut scratch).is_err());
    }
}
