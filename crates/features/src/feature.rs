//! Individual similarity features: one `(attribute pair, measure)` pairing.
//!
//! A [`Feature`] turns a pair of cell values into one `f64`; a missing input
//! yields `NaN` (imputed downstream, exactly as PyMatcher fills missing
//! feature values with column means). Every string measure exists in a
//! case-sensitive and a case-insensitive variant — adding the
//! case-insensitive ones is precisely the Section 9 fix that promoted the
//! decision tree to best matcher.

use em_text::seq;
use em_text::set;
use em_text::tokenize::{AlphanumericTokenizer, QgramTokenizer, Tokenizer};
use em_table::Value;

/// The similarity measure a feature computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Exact string equality (0/1).
    ExactStr,
    /// Levenshtein similarity.
    LevSim,
    /// Jaro similarity.
    Jaro,
    /// Jaro-Winkler similarity.
    JaroWinkler,
    /// Normalized Needleman-Wunsch score.
    NeedlemanWunsch,
    /// Normalized Smith-Waterman score.
    SmithWaterman,
    /// Jaccard over 3-grams — the canonical PyMatcher string feature.
    JaccardQgram3,
    /// Jaccard over word tokens.
    JaccardWord,
    /// Set cosine over word tokens.
    CosineWord,
    /// Overlap coefficient over word tokens.
    OverlapCoeffWord,
    /// Dice over 3-grams.
    DiceQgram3,
    /// Monge-Elkan (Jaro-Winkler inner) over word tokens.
    MongeElkanJw,
    /// Monge-Elkan with a Soundex 0/1 inner over word tokens — the
    /// person-name signal of the paper's M3 hint ("matched by comparing
    /// the individuals involved").
    MongeElkanSoundex,
    /// Numeric exact equality (0/1).
    NumExact,
    /// Numeric absolute difference.
    NumAbsDiff,
    /// Numeric relative similarity `1 − min(reldiff, 1)`.
    NumRelSim,
    /// Date gap in years (absolute).
    DateYearGap,
    /// Date exact equality (0/1).
    DateExact,
    /// Boolean equality (0/1).
    BoolExact,
}

impl FeatureKind {
    /// Short suffix used in feature names.
    pub fn tag(&self) -> &'static str {
        use FeatureKind::*;
        match self {
            ExactStr => "exact",
            LevSim => "lev",
            Jaro => "jaro",
            JaroWinkler => "jw",
            NeedlemanWunsch => "nw",
            SmithWaterman => "sw",
            JaccardQgram3 => "jac_q3",
            JaccardWord => "jac_ws",
            CosineWord => "cos_ws",
            OverlapCoeffWord => "oc_ws",
            DiceQgram3 => "dice_q3",
            MongeElkanJw => "me_jw",
            MongeElkanSoundex => "me_sdx",
            NumExact => "num_exact",
            NumAbsDiff => "abs_diff",
            NumRelSim => "rel_sim",
            DateYearGap => "year_gap",
            DateExact => "date_exact",
            BoolExact => "bool_exact",
        }
    }

    /// Inverse of [`FeatureKind::tag`]: resolves a tag back to its kind
    /// (`None` for unknown tags). Snapshot loaders use this to rebuild
    /// feature plans from their serialized form.
    pub fn from_tag(tag: &str) -> Option<FeatureKind> {
        use FeatureKind::*;
        Some(match tag {
            "exact" => ExactStr,
            "lev" => LevSim,
            "jaro" => Jaro,
            "jw" => JaroWinkler,
            "nw" => NeedlemanWunsch,
            "sw" => SmithWaterman,
            "jac_q3" => JaccardQgram3,
            "jac_ws" => JaccardWord,
            "cos_ws" => CosineWord,
            "oc_ws" => OverlapCoeffWord,
            "dice_q3" => DiceQgram3,
            "me_jw" => MongeElkanJw,
            "me_sdx" => MongeElkanSoundex,
            "num_exact" => NumExact,
            "abs_diff" => NumAbsDiff,
            "rel_sim" => NumRelSim,
            "year_gap" => DateYearGap,
            "date_exact" => DateExact,
            "bool_exact" => BoolExact,
            _ => return None,
        })
    }

    /// True for measures computed on strings.
    pub fn is_string_measure(&self) -> bool {
        use FeatureKind::*;
        matches!(
            self,
            ExactStr
                | LevSim
                | Jaro
                | JaroWinkler
                | NeedlemanWunsch
                | SmithWaterman
                | JaccardQgram3
                | JaccardWord
                | CosineWord
                | OverlapCoeffWord
                | DiceQgram3
                | MongeElkanJw
                | MongeElkanSoundex
        )
    }
}

/// One feature: a measure applied to an attribute pair, optionally
/// case-folded first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feature {
    /// Unique feature name, e.g. `AwardTitle_jac_q3_lc`.
    pub name: String,
    /// Attribute in the left table.
    pub left_attr: String,
    /// Attribute in the right table.
    pub right_attr: String,
    /// The measure.
    pub kind: FeatureKind,
    /// Lowercase both strings before measuring (case-insensitive variant).
    pub lowercase: bool,
}

impl Feature {
    /// Builds a feature with the canonical name.
    pub fn new(
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
        kind: FeatureKind,
        lowercase: bool,
    ) -> Feature {
        let left_attr = left_attr.into();
        let right_attr = right_attr.into();
        let lc = if lowercase { "_lc" } else { "" };
        let name = if left_attr == right_attr {
            format!("{left_attr}_{}{lc}", kind.tag())
        } else {
            format!("{left_attr}~{right_attr}_{}{lc}", kind.tag())
        };
        Feature { name, left_attr, right_attr, kind, lowercase }
    }

    /// Computes the feature value; `NaN` when either side is missing or not
    /// of a usable type.
    ///
    /// This is the direct (reference) path: it renders, lowercases, and
    /// tokenizes per call. Batch extraction in [`crate::extract`] routes
    /// string measures through cached interned/normalized columns instead
    /// and is bit-for-bit equal to this function.
    pub fn compute(&self, a: &Value, b: &Value) -> f64 {
        if a.is_null() || b.is_null() {
            return f64::NAN;
        }
        use FeatureKind::*;
        match self.kind {
            NumExact => nums(a, b).map_or(f64::NAN, |(x, y)| f64::from(x == y)),
            NumAbsDiff => nums(a, b).map_or(f64::NAN, |(x, y)| (x - y).abs()),
            NumRelSim => nums(a, b).map_or(f64::NAN, |(x, y)| {
                let denom = x.abs().max(y.abs());
                if denom == 0.0 {
                    1.0
                } else {
                    1.0 - ((x - y).abs() / denom).min(1.0)
                }
            }),
            DateYearGap => dates(a, b)
                .map_or(f64::NAN, |(x, y)| (x.days_between(&y).abs() as f64) / 365.25),
            DateExact => dates(a, b).map_or(f64::NAN, |(x, y)| f64::from(x == y)),
            BoolExact => match (a.as_bool(), b.as_bool()) {
                (Some(x), Some(y)) => f64::from(x == y),
                _ => f64::NAN,
            },
            _ => {
                // String measures operate on rendered text so that numeric
                // identifiers stored as ints still compare as strings.
                let (sa, sb) = (a.render(), b.render());
                // Allow-listed: the per-pair hot path uses the cached
                // columns in `extract`; this direct path is the reference.
                #[allow(clippy::disallowed_methods)]
                let (sa, sb) = if self.lowercase {
                    (sa.to_lowercase(), sb.to_lowercase())
                } else {
                    (sa, sb)
                };
                self.string_measure(&sa, &sb)
            }
        }
    }

    fn string_measure(&self, a: &str, b: &str) -> f64 {
        use FeatureKind::*;
        let q3 = QgramTokenizer::new(3);
        match self.kind {
            ExactStr => f64::from(a == b),
            LevSim => seq::levenshtein_sim(a, b),
            Jaro => seq::jaro(a, b),
            JaroWinkler => seq::jaro_winkler(a, b),
            NeedlemanWunsch => seq::needleman_wunsch_sim(a, b),
            SmithWaterman => seq::smith_waterman_sim(a, b),
            JaccardQgram3 => set::jaccard(&q3.tokenize(a), &q3.tokenize(b)),
            JaccardWord => {
                set::jaccard(&AlphanumericTokenizer.tokenize(a), &AlphanumericTokenizer.tokenize(b))
            }
            CosineWord => {
                set::cosine(&AlphanumericTokenizer.tokenize(a), &AlphanumericTokenizer.tokenize(b))
            }
            OverlapCoeffWord => set::overlap_coefficient(
                &AlphanumericTokenizer.tokenize(a),
                &AlphanumericTokenizer.tokenize(b),
            ),
            DiceQgram3 => set::dice(&q3.tokenize(a), &q3.tokenize(b)),
            MongeElkanJw => set::monge_elkan_sym(
                &AlphanumericTokenizer.tokenize(a),
                &AlphanumericTokenizer.tokenize(b),
                seq::jaro_winkler,
            ),
            MongeElkanSoundex => set::monge_elkan_sym(
                &AlphanumericTokenizer.tokenize(a),
                &AlphanumericTokenizer.tokenize(b),
                em_text::phonetic::soundex_sim,
            ),
            _ => unreachable!("non-string kinds handled in compute"),
        }
    }
}

fn nums(a: &Value, b: &Value) -> Option<(f64, f64)> {
    Some((a.as_f64()?, b.as_f64()?))
}

fn dates(a: &Value, b: &Value) -> Option<(em_table::Date, em_table::Date)> {
    Some((a.as_date()?, b.as_date()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_table::Date;

    fn s(v: &str) -> Value {
        Value::Str(v.to_string())
    }

    #[test]
    fn from_tag_inverts_tag_for_every_kind() {
        use FeatureKind::*;
        for kind in [
            ExactStr, LevSim, Jaro, JaroWinkler, NeedlemanWunsch, SmithWaterman,
            JaccardQgram3, JaccardWord, CosineWord, OverlapCoeffWord, DiceQgram3,
            MongeElkanJw, MongeElkanSoundex, NumExact, NumAbsDiff, NumRelSim,
            DateYearGap, DateExact, BoolExact,
        ] {
            assert_eq!(FeatureKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(FeatureKind::from_tag("nope"), None);
    }

    #[test]
    fn names_are_canonical() {
        let f = Feature::new("AwardTitle", "AwardTitle", FeatureKind::JaccardQgram3, false);
        assert_eq!(f.name, "AwardTitle_jac_q3");
        let g = Feature::new("A", "B", FeatureKind::LevSim, true);
        assert_eq!(g.name, "A~B_lev_lc");
    }

    #[test]
    fn missing_yields_nan() {
        let f = Feature::new("t", "t", FeatureKind::JaccardQgram3, false);
        assert!(f.compute(&Value::Null, &s("x")).is_nan());
        assert!(f.compute(&s("x"), &Value::Null).is_nan());
    }

    #[test]
    fn case_sensitivity_is_the_section9_story() {
        // Same title, different case: the case-sensitive feature scores low,
        // the case-insensitive variant scores 1.0.
        let a = s("CORN FUNGICIDE GUIDELINES");
        let b = s("Corn Fungicide Guidelines");
        let cs = Feature::new("t", "t", FeatureKind::JaccardQgram3, false);
        let ci = Feature::new("t", "t", FeatureKind::JaccardQgram3, true);
        assert!(cs.compute(&a, &b) < 0.2, "case-sensitive q-grams barely overlap");
        assert_eq!(ci.compute(&a, &b), 1.0);
    }

    #[test]
    fn numeric_features() {
        let f = Feature::new("n", "n", FeatureKind::NumAbsDiff, false);
        assert_eq!(f.compute(&Value::Int(10), &Value::Float(4.0)), 6.0);
        let e = Feature::new("n", "n", FeatureKind::NumExact, false);
        assert_eq!(e.compute(&Value::Int(3), &Value::Int(3)), 1.0);
        let r = Feature::new("n", "n", FeatureKind::NumRelSim, false);
        assert_eq!(r.compute(&Value::Int(5), &Value::Int(10)), 0.5);
        assert_eq!(r.compute(&Value::Int(0), &Value::Int(0)), 1.0);
    }

    #[test]
    fn numeric_feature_on_strings_is_nan() {
        let f = Feature::new("n", "n", FeatureKind::NumAbsDiff, false);
        assert!(f.compute(&s("ten"), &Value::Int(10)).is_nan());
    }

    #[test]
    fn date_features() {
        let d1 = Value::Date(Date::new(2008, 10, 1).unwrap());
        let d2 = Value::Date(Date::new(2010, 10, 1).unwrap());
        let gap = Feature::new("d", "d", FeatureKind::DateYearGap, false);
        assert!((gap.compute(&d1, &d2) - 2.0).abs() < 0.01);
        let ex = Feature::new("d", "d", FeatureKind::DateExact, false);
        assert_eq!(ex.compute(&d1, &d1), 1.0);
        assert_eq!(ex.compute(&d1, &d2), 0.0);
    }

    #[test]
    fn string_measures_accept_rendered_numbers() {
        let f = Feature::new("id", "id", FeatureKind::ExactStr, false);
        assert_eq!(f.compute(&Value::Int(19449), &s("19449")), 1.0);
    }

    #[test]
    fn all_string_kinds_bounded() {
        use FeatureKind::*;
        for kind in [
            ExactStr, LevSim, Jaro, JaroWinkler, NeedlemanWunsch, SmithWaterman,
            JaccardQgram3, JaccardWord, CosineWord, OverlapCoeffWord, DiceQgram3, MongeElkanJw,
        ] {
            let f = Feature::new("t", "t", kind, false);
            let v = f.compute(&s("corn fungicide"), &s("corn fungicides"));
            assert!((0.0..=1.0).contains(&v), "{kind:?} gave {v}");
            let same = f.compute(&s("abc def"), &s("abc def"));
            assert!((same - 1.0).abs() < 1e-9, "{kind:?} on equal strings gave {same}");
        }
    }

    #[test]
    fn soundex_monge_elkan_matches_name_variants() {
        let f = Feature::new("EmployeeName", "EmployeeName", FeatureKind::MongeElkanSoundex, false);
        let a = s("Paul Esker|Mary Smyth");
        let b = s("Esker, P.|Smith, M.");
        let v = f.compute(&a, &b);
        assert!(v > 0.4, "soundex overlap on surnames expected, got {v}");
        let unrelated = f.compute(&s("Paul Esker"), &s("Jones, K."));
        assert!(unrelated < v);
    }

    #[test]
    fn bool_exact() {
        let f = Feature::new("b", "b", FeatureKind::BoolExact, false);
        assert_eq!(f.compute(&Value::Bool(true), &Value::Bool(true)), 1.0);
        assert_eq!(f.compute(&Value::Bool(true), &Value::Bool(false)), 0.0);
        assert!(f.compute(&Value::Bool(true), &s("true")).is_nan());
    }
}
