//! # em-features — automatic feature generation for entity matching
//!
//! The feature layer of the pipeline (Section 9, footnote 7): pair up
//! same-named attributes of the two aligned tables, infer each pair's type,
//! and generate the per-type menu of similarity features; then extract
//! feature vectors for candidate pairs (in parallel for large candidate
//! sets), with `NaN` marking missing values for downstream mean imputation.
//!
//! The `case_insensitive` option generates lowercase variants of every
//! string feature — the exact fix that resolved the Section 9 mismatches
//! caused by "award titles having different letter cases".
//!
//! ```
//! use em_features::{auto_features, extract_vectors, FeatureOptions};
//! use em_blocking::Pair;
//! use em_table::csv::read_str;
//!
//! let a = read_str("A", "Title\nCorn Fungicide Guidelines\n").unwrap();
//! let b = read_str("B", "Title\ncorn fungicide guidelines\n").unwrap();
//! let fs = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
//! let x = extract_vectors(&fs, &a, &b, &[Pair::new(0, 0)]).unwrap();
//! assert_eq!(x[0].len(), fs.len());
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod extract;
pub mod feature;
pub mod generate;
pub mod serve;
pub mod types;

pub use batch::{
    BatchExtractor, BatchScratch, SharedWordColumns, BATCH_CHUNK, JW_MEMO_CAP, PAIR_MEMO_CAP,
};
pub use extract::extract_vectors;
pub use feature::{Feature, FeatureKind};
pub use generate::{auto_features, FeatureOptions, FeatureSet};
pub use serve::{ExtractScratch, FeatureMask, ServeExtractor};
pub use types::{infer_attr_type, joint_attr_type, AttrType};
