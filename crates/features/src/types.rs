//! Attribute-type inference for feature generation.
//!
//! PyMatcher decides which similarity features to generate for an attribute
//! pair from the attributes' types and string lengths (short strings get
//! edit-distance-style measures; long texts get token-set measures). This
//! module reproduces that triage.

use em_table::{DataType, Table};

/// The feature-generation type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// Numeric (int or float).
    Numeric,
    /// Calendar date.
    Date,
    /// Boolean.
    Boolean,
    /// String averaging few words (≤ `SHORT_STRING_MAX_WORDS`).
    ShortString,
    /// String averaging many words (titles, descriptions, name lists).
    LongText,
}

/// Strings averaging more than this many word tokens are treated as long
/// text (PyMatcher's boundary between "short string" and "medium/long
/// string" feature menus).
pub const SHORT_STRING_MAX_WORDS: f64 = 4.0;

/// Infers the feature type of a column by declared type, falling back to
/// word-count statistics for strings. Columns with no non-null values are
/// `ShortString` (the conservative menu).
pub fn infer_attr_type(table: &Table, column: &str) -> Option<AttrType> {
    let col = table.schema().column(column)?;
    Some(match col.dtype {
        DataType::Int | DataType::Float => AttrType::Numeric,
        DataType::Date => AttrType::Date,
        DataType::Bool => AttrType::Boolean,
        DataType::Str | DataType::Any => {
            let mut words = 0usize;
            let mut n = 0usize;
            for r in table.iter() {
                if let Some(s) = r.str(column) {
                    words += s.split_whitespace().count();
                    n += 1;
                }
            }
            if n > 0 && words as f64 / n as f64 > SHORT_STRING_MAX_WORDS {
                AttrType::LongText
            } else {
                AttrType::ShortString
            }
        }
    })
}

/// The joint type of an attribute pair: both sides must agree on the broad
/// class; a short/long disagreement resolves to long text (the richer
/// token-based menu still applies).
pub fn joint_attr_type(a: AttrType, b: AttrType) -> Option<AttrType> {
    use AttrType::*;
    match (a, b) {
        (Numeric, Numeric) => Some(Numeric),
        (Date, Date) => Some(Date),
        (Boolean, Boolean) => Some(Boolean),
        (ShortString, ShortString) => Some(ShortString),
        (LongText, LongText) | (ShortString, LongText) | (LongText, ShortString) => {
            Some(LongText)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_table::csv::read_str;

    #[test]
    fn numeric_and_date_by_declared_type() {
        let t = read_str("t", "n,d\n1,2008-10-01\n2,2009-01-01\n").unwrap();
        assert_eq!(infer_attr_type(&t, "n"), Some(AttrType::Numeric));
        assert_eq!(infer_attr_type(&t, "d"), Some(AttrType::Date));
    }

    #[test]
    fn short_vs_long_strings_by_word_count() {
        let t = read_str(
            "t",
            "id,title\nW1,Development of IPM Based Corn Fungicide Guidelines\nW2,Swamp Dodder Applied Ecology and Management\n",
        )
        .unwrap();
        assert_eq!(infer_attr_type(&t, "id"), Some(AttrType::ShortString));
        assert_eq!(infer_attr_type(&t, "title"), Some(AttrType::LongText));
    }

    #[test]
    fn empty_column_defaults_short() {
        let t = read_str("t", "a,b\n,1\n,2\n").unwrap();
        assert_eq!(infer_attr_type(&t, "a"), Some(AttrType::ShortString));
    }

    #[test]
    fn missing_column_is_none() {
        let t = read_str("t", "a\n1\n").unwrap();
        assert_eq!(infer_attr_type(&t, "nope"), None);
    }

    #[test]
    fn joint_types() {
        use AttrType::*;
        assert_eq!(joint_attr_type(Numeric, Numeric), Some(Numeric));
        assert_eq!(joint_attr_type(ShortString, LongText), Some(LongText));
        assert_eq!(joint_attr_type(Numeric, ShortString), None);
        assert_eq!(joint_attr_type(Date, Numeric), None);
    }
}
