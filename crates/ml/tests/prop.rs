//! Property-based tests for ML invariants.

use em_ml::cv::kfold_indices;
use em_ml::dataset::{Dataset, Imputer};
use em_ml::metrics::Confusion;
use em_ml::model::Learner;
use em_ml::tree::DecisionTreeLearner;
use proptest::prelude::*;

fn labeled_rows() -> impl Strategy<Value = Vec<(Vec<f64>, bool)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(-10.0f64..10.0, 3),
            any::<bool>(),
        ),
        4..40,
    )
}

proptest! {
    /// Confusion counts always sum to the number of examples, and all
    /// derived metrics stay in [0, 1].
    #[test]
    fn confusion_invariants(pairs in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..50)) {
        let predicted: Vec<bool> = pairs.iter().map(|(p, _)| *p).collect();
        let actual: Vec<bool> = pairs.iter().map(|(_, a)| *a).collect();
        let c = Confusion::from_predictions(&predicted, &actual);
        prop_assert_eq!(c.total(), pairs.len());
        for v in [c.precision(), c.recall(), c.f1(), c.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // F1 is between min and max of P and R (harmonic mean property),
        // except the 0/0 convention.
        if c.tp > 0 {
            let (p, r) = (c.precision(), c.recall());
            prop_assert!(c.f1() <= p.max(r) + 1e-12);
            prop_assert!(c.f1() >= p.min(r) - 1e-12);
        }
    }

    /// Imputation is idempotent and leaves finite values untouched.
    #[test]
    fn imputer_idempotent(rows in proptest::collection::vec(
        proptest::collection::vec(proptest::option::of(-100.0f64..100.0), 3), 1..20
    )) {
        let x: Vec<Vec<f64>> = rows.iter()
            .map(|r| r.iter().map(|o| o.unwrap_or(f64::NAN)).collect())
            .collect();
        let imp = Imputer::fit(&x, 3);
        let mut once = x.clone();
        imp.transform(&mut once);
        let mut twice = once.clone();
        imp.transform(&mut twice);
        prop_assert_eq!(&once, &twice);
        // finite originals preserved
        for (orig, filled) in x.iter().zip(&once) {
            for (o, f) in orig.iter().zip(filled) {
                if o.is_finite() {
                    prop_assert_eq!(o, f);
                }
                prop_assert!(f.is_finite());
            }
        }
    }

    /// A decision tree perfectly memorizes training data that has no
    /// contradictory rows (same x, different y), and always emits
    /// probabilities in [0, 1].
    #[test]
    fn tree_memorizes_consistent_data(rows in labeled_rows()) {
        // Deduplicate contradictions: keep first label per feature vector.
        let mut seen: std::collections::HashMap<String, bool> = std::collections::HashMap::new();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (r, l) in &rows {
            let key = format!("{r:?}");
            match seen.get(&key) {
                Some(_) => continue,
                None => {
                    seen.insert(key, *l);
                    x.push(r.clone());
                    y.push(*l);
                }
            }
        }
        let data = Dataset::new(
            vec!["a".into(), "b".into(), "c".into()],
            x.clone(),
            y.clone(),
        ).unwrap();
        let learner = DecisionTreeLearner { max_depth: 64, ..Default::default() };
        let model = learner.fit(&data).unwrap();
        for (row, label) in x.iter().zip(&y) {
            let p = model.predict_proba(row);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert_eq!(model.predict(row), *label);
        }
    }

    /// k-fold folds partition the index range exactly, for any valid (n, k).
    #[test]
    fn kfold_partition(n in 2usize..200, k in 2usize..10, seed in any::<u64>()) {
        prop_assume!(n >= k);
        let folds = kfold_indices(n, k, seed).unwrap();
        prop_assert_eq!(folds.len(), k);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        let (min, max) = folds.iter().map(Vec::len)
            .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
        prop_assert!(max - min <= 1, "folds unbalanced: {min}..{max}");
    }
}
