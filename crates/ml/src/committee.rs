//! Query-by-committee scoring for active learning.
//!
//! A committee is a small ensemble of bagged CART trees — the same
//! per-member machinery as [`crate::forest`], with each member's RNG
//! stream derived independently from the committee seed — that exposes
//! *per-member* votes instead of collapsing them into one probability.
//! Active-learning loops (Meduri et al.'s query-by-committee / margin
//! strategies) rank the unlabeled pool by how much the members disagree:
//!
//! - **vote entropy**: binary entropy of the fraction of members voting
//!   match — maximal when the committee splits evenly;
//! - **margin**: distance of the mean member probability from the 0.5
//!   decision boundary — minimal where the ensemble is least committed.
//!
//! Members fit in parallel over [`em_parallel::Executor`] with results
//! bit-identical to the sequential order at any thread count, so the
//! selection order (and therefore every downstream label) is deterministic.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::forest::tree_seed;
use crate::model::{validate_training, Model};
use crate::tree::{seeded_rng, DecisionTreeLearner, DecisionTreeModel};
use em_parallel::Executor;
use rand::Rng;

/// Hyper-parameters of a query-by-committee ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitteeLearner {
    /// Number of committee members (odd counts avoid exact vote ties).
    pub n_members: usize,
    /// Per-member tree parameters.
    pub tree: DecisionTreeLearner,
    /// Features considered per split; `None` → `ceil(sqrt(d))`.
    pub mtry: Option<usize>,
    /// Seed; each member derives an independent stream from it.
    pub seed: u64,
    /// Stratified bootstrap: resample positives and negatives separately so
    /// every member sees the training class balance. With very few positive
    /// labels (the early rounds of an active-learning loop) a plain
    /// bootstrap regularly drops *every* positive from a member's sample,
    /// making the ensemble wildly unstable round to round.
    pub stratified: bool,
}

impl Default for CommitteeLearner {
    fn default() -> Self {
        CommitteeLearner {
            n_members: 7,
            tree: DecisionTreeLearner::default(),
            mtry: None,
            seed: 7,
            stratified: false,
        }
    }
}

/// How unsure the committee is about one row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitteeScore {
    /// Members voting match.
    pub votes_yes: usize,
    /// Binary vote entropy in nats (0 = unanimous, `ln 2` = even split).
    pub vote_entropy: f64,
    /// `|mean member probability − 0.5|`: small = near the boundary.
    pub margin: f64,
    /// Mean member probability.
    pub mean_proba: f64,
}

/// A fitted committee.
#[derive(Debug, Clone)]
pub struct CommitteeModel {
    members: Vec<DecisionTreeModel>,
}

/// `−(p ln p + (1−p) ln(1−p))` with the `0 ln 0 = 0` convention.
fn binary_entropy(p: f64) -> f64 {
    let mut h = 0.0;
    for q in [p, 1.0 - p] {
        if q > 0.0 {
            h -= q * q.ln();
        }
    }
    h
}

impl CommitteeModel {
    /// Number of members.
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// Each member's match probability for `row`, in member order.
    pub fn member_probas(&self, row: &[f64]) -> Vec<f64> {
        self.members.iter().map(|m| m.predict_proba(row)).collect()
    }

    /// Mean member probability — the committee's point prediction.
    pub fn mean_proba(&self, row: &[f64]) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.members.iter().map(|m| m.predict_proba(row)).sum();
        sum / self.members.len() as f64
    }

    /// The disagreement scores of one row.
    pub fn score(&self, row: &[f64]) -> CommitteeScore {
        let mut votes_yes = 0usize;
        let mut sum = 0.0f64;
        for m in &self.members {
            let p = m.predict_proba(row);
            sum += p;
            if p > 0.5 {
                votes_yes += 1;
            }
        }
        let k = self.members.len().max(1) as f64;
        let mean = sum / k;
        CommitteeScore {
            votes_yes,
            vote_entropy: binary_entropy(votes_yes as f64 / k),
            margin: (mean - 0.5).abs(),
            mean_proba: mean,
        }
    }

    /// Scores every row of a pool in parallel, in pool order, bit-identical
    /// at any thread count.
    pub fn score_pool(&self, pool: &[Vec<f64>]) -> Vec<CommitteeScore> {
        Executor::current().map_slice(pool, 64, |row| self.score(row))
    }
}

impl CommitteeLearner {
    /// Fits the committee: each member trains a CART tree on its own
    /// bootstrap sample with its own derived RNG stream — a pure function
    /// of `(seed, member index)`, so the parallel fan-out reproduces the
    /// sequential fit bit for bit.
    pub fn fit(&self, data: &Dataset) -> Result<CommitteeModel, MlError> {
        validate_training(data)?;
        if self.n_members == 0 {
            return Err(MlError::BadParameter("n_members must be >= 1".to_string()));
        }
        let d = data.n_features();
        let mtry = self
            .mtry
            .unwrap_or_else(|| (d as f64).sqrt().ceil() as usize)
            .clamp(1, d.max(1));
        let n = data.len();
        let strata: Option<(Vec<usize>, Vec<usize>)> = self.stratified.then(|| {
            (0..n).partition(|&i| data.y[i])
        });
        const SPAWN_CELLS: usize = 10_000;
        let min_members = SPAWN_CELLS.div_ceil(n.max(1));
        let members =
            Executor::current().with_min_items(min_members).map_indexed(self.n_members, 1, |t| {
                let mut rng = seeded_rng(tree_seed(self.seed, t));
                let idx: Vec<usize> = match &strata {
                    Some((pos, neg)) => {
                        // Resample each class onto itself: every member
                        // trains on exactly the original class counts.
                        let mut idx = Vec::with_capacity(n);
                        for stratum in [pos, neg] {
                            idx.extend(
                                (0..stratum.len())
                                    .map(|_| stratum[rng.gen_range(0..stratum.len())]),
                            );
                        }
                        idx
                    }
                    None => (0..n).map(|_| rng.gen_range(0..n)).collect(),
                };
                self.tree.fit_on_indices(&data.x, &data.y, &idx, mtry, &mut rng)
            });
        Ok(CommitteeModel { members })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threshold_data(n: usize, seed: u64) -> Dataset {
        let mut rng = seeded_rng(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let v: f64 = rng.gen();
            let noise: f64 = rng.gen_range(-0.05..0.05);
            x.push(vec![v, rng.gen()]);
            y.push(v + noise > 0.5);
        }
        Dataset::new(vec!["signal".into(), "junk".into()], x, y).unwrap()
    }

    #[test]
    fn committee_agrees_on_easy_rows_and_splits_near_boundary() {
        let d = threshold_data(300, 1);
        let m = CommitteeLearner::default().fit(&d).unwrap();
        let easy_yes = m.score(&[0.95, 0.5]);
        let easy_no = m.score(&[0.05, 0.5]);
        assert_eq!(easy_yes.votes_yes, m.n_members());
        assert_eq!(easy_no.votes_yes, 0);
        assert_eq!(easy_yes.vote_entropy, 0.0);
        let hard = m.score(&[0.5, 0.5]);
        assert!(
            hard.vote_entropy >= easy_yes.vote_entropy && hard.margin <= easy_yes.margin,
            "boundary rows must score at least as uncertain: {hard:?} vs {easy_yes:?}"
        );
    }

    #[test]
    fn committee_is_deterministic_and_thread_invariant() {
        let d = threshold_data(150, 3);
        let learner = CommitteeLearner { seed: 42, ..Default::default() };
        em_parallel::set_threads(1);
        let m1 = learner.fit(&d).unwrap();
        em_parallel::set_threads(4);
        let m4 = learner.fit(&d).unwrap();
        em_parallel::set_threads(0);
        let pool: Vec<Vec<f64>> =
            (0..=20).map(|i| vec![i as f64 / 20.0, 0.3]).collect();
        let s1 = m1.score_pool(&pool);
        let s4 = m4.score_pool(&pool);
        for (a, b) in s1.iter().zip(&s4) {
            assert_eq!(a.votes_yes, b.votes_yes);
            assert_eq!(a.vote_entropy.to_bits(), b.vote_entropy.to_bits());
            assert_eq!(a.margin.to_bits(), b.margin.to_bits());
            assert_eq!(a.mean_proba.to_bits(), b.mean_proba.to_bits());
        }
    }

    #[test]
    fn members_differ_somewhere() {
        let d = threshold_data(150, 5);
        let m = CommitteeLearner::default().fit(&d).unwrap();
        let differs = (0..100).any(|i| {
            let probas = m.member_probas(&[i as f64 / 100.0, 0.5]);
            probas.iter().any(|p| (p - probas[0]).abs() > 1e-12)
        });
        assert!(differs, "bootstrap members should not all be identical");
    }

    #[test]
    fn entropy_convention() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn stratified_members_always_see_both_classes() {
        // 3 positives in 60 rows: a plain bootstrap drops all three from
        // some member's sample; the stratified one never does, so every
        // member must produce a nontrivial probability for a clear positive.
        let mut x: Vec<Vec<f64>> = (0..57).map(|i| vec![0.1 + (i % 10) as f64 * 0.02]).collect();
        let mut y = vec![false; 57];
        x.extend((0..3).map(|i| vec![0.9 + i as f64 * 0.01]));
        y.extend([true; 3]);
        let d = Dataset::new(vec!["f".into()], x, y).unwrap();
        let learner = CommitteeLearner { stratified: true, seed: 11, ..Default::default() };
        let m = learner.fit(&d).unwrap();
        for (t, p) in m.member_probas(&[0.95]).iter().enumerate() {
            assert!(*p > 0.5, "stratified member {t} lost the positive class: proba {p}");
        }
        // Deterministic in the seed, like the plain bootstrap.
        let m2 = learner.fit(&d).unwrap();
        for i in 0..20 {
            let row = [i as f64 / 20.0];
            assert_eq!(m.mean_proba(&row).to_bits(), m2.mean_proba(&row).to_bits());
        }
    }

    #[test]
    fn zero_members_is_an_error() {
        let d = threshold_data(20, 4);
        let l = CommitteeLearner { n_members: 0, ..Default::default() };
        assert!(l.fit(&d).is_err());
    }
}
