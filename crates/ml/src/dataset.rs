//! Feature datasets: the matrix a matcher is trained on.
//!
//! A [`Dataset`] is a dense `f64` matrix plus boolean labels. Missing feature
//! values are `NaN` at construction time and must be imputed (PyMatcher
//! "filled in the missing values … with the mean values of the respective
//! columns" — [`Imputer`] reproduces exactly that, and is fitted on training
//! data so the same means are reused at prediction time).

use crate::error::MlError;

/// A labeled feature matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature names, one per column.
    pub feature_names: Vec<String>,
    /// Row-major feature matrix; `NaN` marks a missing value.
    pub x: Vec<Vec<f64>>,
    /// Binary labels (`true` = match).
    pub y: Vec<bool>,
}

impl Dataset {
    /// Builds a dataset, validating shapes.
    pub fn new(
        feature_names: Vec<String>,
        x: Vec<Vec<f64>>,
        y: Vec<bool>,
    ) -> Result<Dataset, MlError> {
        if x.len() != y.len() {
            return Err(MlError::ShapeMismatch(format!(
                "{} rows but {} labels",
                x.len(),
                y.len()
            )));
        }
        for (i, row) in x.iter().enumerate() {
            if row.len() != feature_names.len() {
                return Err(MlError::ShapeMismatch(format!(
                    "row {i} has {} features, expected {}",
                    row.len(),
                    feature_names.len()
                )));
            }
        }
        Ok(Dataset { feature_names, x, y })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of positive labels.
    pub fn n_positive(&self) -> usize {
        self.y.iter().filter(|&&b| b).count()
    }

    /// A new dataset containing the given row indices, in order.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Verifies every value is finite (call after imputation, before fit).
    pub fn check_finite(&self) -> Result<(), MlError> {
        for (r, row) in self.x.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(MlError::NonFiniteFeature { row: r, col: c });
                }
            }
        }
        Ok(())
    }
}

/// Column-mean imputer fitted on training data.
///
/// Columns that are entirely missing in the fit data impute to `0.0` (an
/// arbitrary but deterministic constant — the model sees the same value at
/// train and predict time, so it carries no signal).
#[derive(Debug, Clone, PartialEq)]
pub struct Imputer {
    /// Per-column fill values.
    pub means: Vec<f64>,
}

impl Imputer {
    /// Learns per-column means over the finite values of `x`.
    pub fn fit(x: &[Vec<f64>], n_features: usize) -> Imputer {
        let mut sums = vec![0.0f64; n_features];
        let mut counts = vec![0usize; n_features];
        for row in x {
            for (c, v) in row.iter().enumerate() {
                if v.is_finite() {
                    sums[c] += v;
                    counts[c] += 1;
                }
            }
        }
        let means = sums
            .into_iter()
            .zip(counts)
            .map(|(s, n)| if n == 0 { 0.0 } else { s / n as f64 })
            .collect();
        Imputer { means }
    }

    /// Replaces non-finite values in a single row with the fitted means.
    pub fn transform_row(&self, row: &mut [f64]) {
        for (c, v) in row.iter_mut().enumerate() {
            if !v.is_finite() {
                *v = self.means[c];
            }
        }
    }

    /// Replaces non-finite values in a whole matrix.
    pub fn transform(&self, x: &mut [Vec<f64>]) {
        for row in x {
            self.transform_row(row);
        }
    }
}

/// Convenience: fit an imputer on the dataset and apply it in place,
/// returning the imputer for later use on unseen rows.
pub fn impute_mean(data: &mut Dataset) -> Imputer {
    let imputer = Imputer::fit(&data.x, data.n_features());
    imputer.transform(&mut data.x);
    imputer
}

/// Builds a training set from *probabilistic* labels (a weak-supervision
/// label model's posteriors): rows whose probability is at least `yes_min`
/// train as matches, rows at or below `no_max` as non-matches, and rows in
/// the uncertain band between are dropped — the probabilistic analogue of
/// excluding `Unsure` expert labels. Returns the dataset plus the indices
/// (into `x`/`probs`) of the rows kept, in order.
pub fn dataset_from_probabilistic(
    feature_names: Vec<String>,
    x: &[Vec<f64>],
    probs: &[f64],
    no_max: f64,
    yes_min: f64,
) -> Result<(Dataset, Vec<usize>), MlError> {
    if x.len() != probs.len() {
        return Err(MlError::ShapeMismatch(format!(
            "{} rows but {} probabilistic labels",
            x.len(),
            probs.len()
        )));
    }
    if !(0.0..=1.0).contains(&no_max) || !(0.0..=1.0).contains(&yes_min) || no_max >= yes_min {
        return Err(MlError::BadParameter(format!(
            "probabilistic thresholds need 0 <= no_max < yes_min <= 1, got ({no_max}, {yes_min})"
        )));
    }
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    let mut kept = Vec::new();
    for (i, (row, &p)) in x.iter().zip(probs).enumerate() {
        let label = if p >= yes_min {
            true
        } else if p <= no_max {
            false
        } else {
            continue;
        };
        rows.push(row.clone());
        labels.push(label);
        kept.push(i);
    }
    Ok((Dataset::new(feature_names, rows, labels)?, kept))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn new_validates_shapes() {
        assert!(Dataset::new(names(2), vec![vec![1.0]], vec![true]).is_err());
        assert!(Dataset::new(names(1), vec![vec![1.0]], vec![true, false]).is_err());
        assert!(Dataset::new(names(1), vec![vec![1.0]], vec![true]).is_ok());
    }

    #[test]
    fn subset_picks_rows() {
        let d = Dataset::new(
            names(1),
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![false, true, false],
        )
        .unwrap();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.x, vec![vec![2.0], vec![0.0]]);
        assert_eq!(s.y, vec![false, false]);
    }

    #[test]
    fn imputer_fills_with_column_means() {
        let mut d = Dataset::new(
            names(2),
            vec![vec![1.0, f64::NAN], vec![3.0, 10.0], vec![f64::NAN, 20.0]],
            vec![true, false, true],
        )
        .unwrap();
        let imp = impute_mean(&mut d);
        assert_eq!(imp.means, vec![2.0, 15.0]);
        assert_eq!(d.x[0][1], 15.0);
        assert_eq!(d.x[2][0], 2.0);
        d.check_finite().unwrap();
    }

    #[test]
    fn imputer_applies_to_unseen_rows() {
        let imp = Imputer { means: vec![5.0, 6.0] };
        let mut row = vec![f64::NAN, 1.0];
        imp.transform_row(&mut row);
        assert_eq!(row, vec![5.0, 1.0]);
    }

    #[test]
    fn all_missing_column_imputes_zero() {
        let imp = Imputer::fit(&[vec![f64::NAN], vec![f64::NAN]], 1);
        assert_eq!(imp.means, vec![0.0]);
    }

    #[test]
    fn check_finite_reports_position() {
        let d = Dataset::new(names(2), vec![vec![1.0, f64::INFINITY]], vec![true]).unwrap();
        assert_eq!(
            d.check_finite(),
            Err(MlError::NonFiniteFeature { row: 0, col: 1 })
        );
    }

    #[test]
    fn probabilistic_labels_threshold_and_drop_the_uncertain_band() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        let probs = [0.95, 0.5, 0.02, 0.9];
        let (d, kept) =
            dataset_from_probabilistic(names(1), &x, &probs, 0.1, 0.9).unwrap();
        assert_eq!(kept, vec![0, 2, 3]);
        assert_eq!(d.y, vec![true, false, true]);
        assert_eq!(d.x, vec![vec![1.0], vec![3.0], vec![4.0]]);
    }

    #[test]
    fn probabilistic_labels_validate_inputs() {
        let x = vec![vec![1.0]];
        assert!(dataset_from_probabilistic(names(1), &x, &[0.5, 0.5], 0.1, 0.9).is_err());
        assert!(dataset_from_probabilistic(names(1), &x, &[0.5], 0.9, 0.1).is_err());
        assert!(dataset_from_probabilistic(names(1), &x, &[0.5], 0.5, 0.5).is_err());
    }

    #[test]
    fn n_positive_counts() {
        let d =
            Dataset::new(names(1), vec![vec![0.0]; 3], vec![true, false, true]).unwrap();
        assert_eq!(d.n_positive(), 2);
    }
}
