//! Cross-validation and matcher selection.
//!
//! Section 9 selects "the best (i.e., the most accurate) matcher using
//! five-fold cross validation", ranking six learners by mean F1;
//! [`select_matcher`] reproduces that procedure. Leave-one-out prediction
//! ([`leave_one_out_predictions`]) backs the Section 8 *label debugging*
//! step, which flags labeled pairs whose held-out prediction disagrees with
//! the expert label.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::metrics::Confusion;
use crate::model::Learner;
use em_parallel::Executor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Minimum total work (work items × training rows each re-scans) worth
/// paying thread spawn cost for; below it the loop runs inline.
const SPAWN_CELLS: usize = 10_000;

/// Splits `0..n` into `k` near-equal shuffled folds.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Result<Vec<Vec<usize>>, MlError> {
    if k < 2 {
        return Err(MlError::BadParameter(format!("k-fold needs k >= 2, got {k}")));
    }
    if n < k {
        return Err(MlError::BadParameter(format!("{n} examples cannot fill {k} folds")));
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds = vec![Vec::with_capacity(n / k + 1); k];
    for (pos, i) in order.into_iter().enumerate() {
        folds[pos % k].push(i);
    }
    Ok(folds)
}

/// Stratified k-fold: positives and negatives are distributed separately so
/// every fold sees roughly the training positive rate — important when
/// matches are rare, as they are after blocking.
pub fn stratified_kfold_indices(
    y: &[bool],
    k: usize,
    seed: u64,
) -> Result<Vec<Vec<usize>>, MlError> {
    if k < 2 {
        return Err(MlError::BadParameter(format!("k-fold needs k >= 2, got {k}")));
    }
    let mut pos: Vec<usize> = (0..y.len()).filter(|&i| y[i]).collect();
    let mut neg: Vec<usize> = (0..y.len()).filter(|&i| !y[i]).collect();
    if pos.len() < k || neg.len() < k {
        // Not enough of one class to stratify; fall back to plain folding.
        return kfold_indices(y.len(), k, seed);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut folds = vec![Vec::new(); k];
    for (p, i) in pos.into_iter().enumerate() {
        folds[p % k].push(i);
    }
    for (p, i) in neg.into_iter().enumerate() {
        folds[p % k].push(i);
    }
    Ok(folds)
}

/// Per-fold and averaged scores from one cross-validation run.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Learner display name.
    pub learner: String,
    /// One confusion matrix per fold.
    pub folds: Vec<Confusion>,
}

impl CvResult {
    /// Mean precision over folds.
    pub fn precision(&self) -> f64 {
        mean(self.folds.iter().map(Confusion::precision))
    }
    /// Mean recall over folds.
    pub fn recall(&self) -> f64 {
        mean(self.folds.iter().map(Confusion::recall))
    }
    /// Mean F1 over folds — the selection criterion.
    pub fn f1(&self) -> f64 {
        mean(self.folds.iter().map(Confusion::f1))
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Runs stratified k-fold cross-validation for one learner.
pub fn cross_validate(
    learner: &dyn Learner,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Result<CvResult, MlError> {
    let folds = stratified_kfold_indices(&data.y, k, seed)?;
    // Folds are independent fits over precomputed index sets, so they fan
    // out one fold per work item; collecting in fold order (and surfacing
    // the first error in fold order) keeps output identical to the
    // sequential loop. Each fold fits on ~the whole set, so the spawn
    // floor scales inversely with the training-set size.
    let min_folds = SPAWN_CELLS.div_ceil(data.len().max(1));
    let results: Vec<Result<Confusion, MlError>> =
        Executor::current().with_min_items(min_folds).map_indexed(folds.len(), 1, |fold| {
            let test_fold = &folds[fold];
            let train_idx: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|&(f, _)| f != fold)
                .flat_map(|(_, idx)| idx.iter().copied())
                .collect();
            let model = learner.fit(&data.subset(&train_idx))?;
            let predicted: Vec<bool> =
                test_fold.iter().map(|&i| model.predict(&data.x[i])).collect();
            let actual: Vec<bool> = test_fold.iter().map(|&i| data.y[i]).collect();
            Ok(Confusion::from_predictions(&predicted, &actual))
        });
    let results: Vec<Confusion> = results.into_iter().collect::<Result<_, _>>()?;
    Ok(CvResult { learner: learner.name(), folds: results })
}

/// Cross-validates every learner and ranks by mean F1 (descending,
/// name-tie-broken for determinism). The first entry is "the best matcher".
pub fn select_matcher(
    learners: &[&dyn Learner],
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Result<Vec<CvResult>, MlError> {
    let mut rows: Vec<CvResult> = learners
        .iter()
        .map(|l| cross_validate(*l, data, k, seed))
        .collect::<Result<_, _>>()?;
    rows.sort_by(|a, b| {
        b.f1()
            .partial_cmp(&a.f1())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.learner.cmp(&b.learner))
    });
    Ok(rows)
}

/// For every example, trains on all the others and predicts it — the
/// leave-one-out pass used to debug labels in Section 8.
///
/// `O(n)` model fits: intended for the small labeled sets it is used on
/// (hundreds of pairs).
pub fn leave_one_out_predictions(
    learner: &dyn Learner,
    data: &Dataset,
) -> Result<Vec<bool>, MlError> {
    if data.len() < 2 {
        return Err(MlError::BadParameter("leave-one-out needs >= 2 examples".to_string()));
    }
    // One independent fit per held-out example — the heaviest trivially
    // parallel loop in the crate. Each item refits on n-1 rows, so the
    // spawn floor is SPAWN_CELLS total refitted rows.
    let min_fits = SPAWN_CELLS.div_ceil(data.len().max(1));
    let out: Vec<Result<bool, MlError>> =
        Executor::current().with_min_items(min_fits).map_indexed(data.len(), 1, |i| {
            let train_idx: Vec<usize> = (0..data.len()).filter(|&j| j != i).collect();
            let model = learner.fit(&data.subset(&train_idx))?;
            Ok(model.predict(&data.x[i]))
        });
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTreeLearner;

    fn dataset(n: usize) -> Dataset {
        // Separable: y = f0 > 0.5, with 30% positives.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let v = (i % 10) as f64 / 10.0;
            x.push(vec![v]);
            y.push(v > 0.65);
        }
        Dataset::new(vec!["f0".into()], x, y).unwrap()
    }

    #[test]
    fn kfold_partitions_everything_once() {
        let folds = kfold_indices(23, 5, 1).unwrap();
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        for f in &folds {
            assert!(f.len() == 4 || f.len() == 5);
        }
    }

    #[test]
    fn kfold_rejects_bad_k() {
        assert!(kfold_indices(10, 1, 0).is_err());
        assert!(kfold_indices(3, 5, 0).is_err());
    }

    #[test]
    fn stratified_folds_balance_positives() {
        let y: Vec<bool> = (0..100).map(|i| i % 5 == 0).collect(); // 20 positives
        let folds = stratified_kfold_indices(&y, 5, 3).unwrap();
        for f in &folds {
            let pos = f.iter().filter(|&&i| y[i]).count();
            assert_eq!(pos, 4, "each fold should hold 4 of the 20 positives");
        }
    }

    #[test]
    fn stratified_falls_back_when_class_too_small() {
        let y = vec![true, false, false, false, false, false];
        let folds = stratified_kfold_indices(&y, 3, 3).unwrap();
        let total: usize = folds.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn cross_validate_scores_separable_data_high() {
        let d = dataset(100);
        let cv = cross_validate(&DecisionTreeLearner::default(), &d, 5, 1).unwrap();
        assert_eq!(cv.folds.len(), 5);
        assert!(cv.f1() > 0.95, "f1 = {}", cv.f1());
    }

    #[test]
    fn select_matcher_ranks_by_f1() {
        let d = dataset(100);
        let dt = DecisionTreeLearner::default();
        let stump = DecisionTreeLearner { max_depth: 0, ..Default::default() };
        let ranked = select_matcher(&[&stump, &dt], &d, 5, 1).unwrap();
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].f1() >= ranked[1].f1());
        assert!(ranked[0].f1() > 0.9);
    }

    #[test]
    fn loo_flags_mislabeled_point() {
        // One deliberately wrong label in otherwise clean data.
        let mut d = dataset(60);
        let flip = d.y.iter().position(|&b| b).unwrap();
        d.y[flip] = false;
        let preds = leave_one_out_predictions(&DecisionTreeLearner::default(), &d).unwrap();
        assert!(preds[flip], "held-out prediction should disagree with the bad label");
        let mismatches = preds.iter().zip(&d.y).filter(|(p, a)| p != a).count();
        assert!(mismatches <= 5, "only a few mismatches expected, got {mismatches}");
    }

    #[test]
    fn loo_needs_two_examples() {
        let d = Dataset::new(vec!["f".into()], vec![vec![0.0]], vec![true]).unwrap();
        assert!(leave_one_out_predictions(&DecisionTreeLearner::default(), &d).is_err());
    }

    #[test]
    fn cv_deterministic_in_seed() {
        let d = dataset(80);
        let a = cross_validate(&DecisionTreeLearner::default(), &d, 4, 9).unwrap();
        let b = cross_validate(&DecisionTreeLearner::default(), &d, 4, 9).unwrap();
        assert_eq!(a.folds, b.folds);
    }
}
