//! Gaussian naive Bayes — one of the six matchers in the Section 9 bake-off.
//!
//! Features are modeled as independent Gaussians per class, with the usual
//! variance smoothing (`var + ε·max_var`) so constant features do not
//! produce degenerate densities.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::model::{validate_training, ConstantModel, Learner, Model};

/// Gaussian naive Bayes learner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveBayesLearner {
    /// Portion of the largest feature variance added to all variances
    /// (scikit-learn's `var_smoothing`).
    pub var_smoothing: f64,
}

impl Default for NaiveBayesLearner {
    fn default() -> Self {
        NaiveBayesLearner { var_smoothing: 1e-9 }
    }
}

/// Per-class Gaussian statistics of a fitted naive Bayes model.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    pub(crate) log_prior: f64,
    pub(crate) means: Vec<f64>,
    pub(crate) vars: Vec<f64>,
}

/// A fitted Gaussian naive Bayes model. Exposed so
/// [`crate::fitted::FittedModel`] can carry and serialize it.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayesModel {
    pub(crate) pos: ClassStats,
    pub(crate) neg: ClassStats,
}

impl ClassStats {
    fn log_likelihood(&self, row: &[f64]) -> f64 {
        let mut ll = self.log_prior;
        for ((v, m), var) in row.iter().zip(&self.means).zip(&self.vars) {
            ll += -0.5 * ((v - m).powi(2) / var + (2.0 * std::f64::consts::PI * var).ln());
        }
        ll
    }
}

impl Model for NaiveBayesModel {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        let lp = self.pos.log_likelihood(row);
        let ln = self.neg.log_likelihood(row);
        // Normalize in log space: p = 1 / (1 + exp(ln - lp)).
        let diff = ln - lp;
        if diff > 500.0 {
            0.0
        } else if diff < -500.0 {
            1.0
        } else {
            1.0 / (1.0 + diff.exp())
        }
    }
}

fn class_stats(x: &[Vec<f64>], idx: &[usize], d: usize, prior: f64, smoothing: f64) -> ClassStats {
    let n = idx.len() as f64;
    let mut means = vec![0.0; d];
    for &i in idx {
        for (c, v) in x[i].iter().enumerate() {
            means[c] += v;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut vars = vec![0.0; d];
    for &i in idx {
        for (c, v) in x[i].iter().enumerate() {
            vars[c] += (v - means[c]).powi(2);
        }
    }
    for v in &mut vars {
        *v = *v / n + smoothing;
    }
    ClassStats { log_prior: prior.ln(), means, vars }
}

impl Learner for NaiveBayesLearner {
    fn name(&self) -> String {
        "Naive Bayes".to_string()
    }

    fn fit_model(&self, data: &Dataset) -> Result<crate::fitted::FittedModel, MlError> {
        use crate::fitted::FittedModel;
        let pos_rate = validate_training(data)?;
        if pos_rate == 0.0 || pos_rate == 1.0 {
            return Ok(FittedModel::Constant(ConstantModel { proba: pos_rate }));
        }
        let d = data.n_features();
        let pos_idx: Vec<usize> = (0..data.len()).filter(|&i| data.y[i]).collect();
        let neg_idx: Vec<usize> = (0..data.len()).filter(|&i| !data.y[i]).collect();
        // Global smoothing scale: var_smoothing * max feature variance.
        let all: Vec<usize> = (0..data.len()).collect();
        let global = class_stats(&data.x, &all, d, 1.0, 0.0);
        let max_var = global.vars.iter().cloned().fold(0.0f64, f64::max);
        let smoothing = (self.var_smoothing * max_var).max(1e-12);
        Ok(FittedModel::Bayes(NaiveBayesModel {
            pos: class_stats(&data.x, &pos_idx, d, pos_rate, smoothing),
            neg: class_stats(&data.x, &neg_idx, d, 1.0 - pos_rate, smoothing),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blobs() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        // Positives around 1.0, negatives around 0.0; deterministic lattice.
        for i in 0..20 {
            let jitter = (i as f64 - 10.0) / 100.0;
            x.push(vec![1.0 + jitter, 1.0 - jitter]);
            y.push(true);
            x.push(vec![jitter, -jitter]);
            y.push(false);
        }
        Dataset::new(vec!["a".into(), "b".into()], x, y).unwrap()
    }

    #[test]
    fn separates_blobs() {
        let m = NaiveBayesLearner::default().fit(&gaussian_blobs()).unwrap();
        assert!(m.predict(&[1.0, 1.0]));
        assert!(!m.predict(&[0.0, 0.0]));
    }

    #[test]
    fn probabilities_in_unit_interval_even_far_away() {
        let m = NaiveBayesLearner::default().fit(&gaussian_blobs()).unwrap();
        for p in [
            m.predict_proba(&[1e6, 1e6]),
            m.predict_proba(&[-1e6, -1e6]),
            m.predict_proba(&[0.5, 0.5]),
        ] {
            assert!((0.0..=1.0).contains(&p), "{p}");
        }
    }

    #[test]
    fn constant_feature_tolerated() {
        let d = Dataset::new(
            vec!["const".into(), "sig".into()],
            vec![vec![2.0, 0.0], vec![2.0, 1.0], vec![2.0, 0.1], vec![2.0, 0.9]],
            vec![false, true, false, true],
        )
        .unwrap();
        let m = NaiveBayesLearner::default().fit(&d).unwrap();
        assert!(m.predict(&[2.0, 0.95]));
        assert!(!m.predict(&[2.0, 0.05]));
    }

    #[test]
    fn respects_priors_when_likelihoods_tie() {
        // 3:1 positives; a point equidistant from both class means should
        // lean positive.
        let d = Dataset::new(
            vec!["f".into()],
            vec![vec![1.0], vec![1.2], vec![0.8], vec![0.0]],
            vec![true, true, true, false],
        )
        .unwrap();
        let m = NaiveBayesLearner::default().fit(&d).unwrap();
        assert!(m.predict_proba(&[0.5]) > 0.5);
    }

    #[test]
    fn single_class_degenerates() {
        let d = Dataset::new(vec!["f".into()], vec![vec![1.0], vec![2.0]], vec![false, false])
            .unwrap();
        let m = NaiveBayesLearner::default().fit(&d).unwrap();
        assert!(!m.predict(&[1.5]));
    }
}
