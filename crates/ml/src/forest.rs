//! Random forests: bagged CART trees with per-split feature subsetting —
//! the matcher that won the case study's first selection round before the
//! case-insensitive feature fix (Section 9).

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::model::{validate_training, Learner, Model};
use crate::tree::{seeded_rng, DecisionTreeLearner, DecisionTreeModel, FlatTree};
use em_parallel::Executor;
use rand::Rng;

/// Derives an independent per-tree seed from the forest seed, so every tree
/// owns its RNG stream and trees can fit in parallel with results identical
/// to the sequential order at any thread count.
pub(crate) fn tree_seed(forest_seed: u64, tree: usize) -> u64 {
    // Golden-ratio (Weyl) increment: distinct, well-mixed streams per tree.
    forest_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tree as u64 + 1)
}

/// Hyper-parameters for a random forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomForestLearner {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters.
    pub tree: DecisionTreeLearner,
    /// Features considered per split; `None` → `ceil(sqrt(d))`.
    pub mtry: Option<usize>,
    /// RNG seed for bootstrap sampling and feature subsetting.
    pub seed: u64,
}

impl Default for RandomForestLearner {
    fn default() -> Self {
        RandomForestLearner {
            n_trees: 25,
            tree: DecisionTreeLearner::default(),
            mtry: None,
            seed: 7,
        }
    }
}

/// A fitted forest: mean of member-tree probabilities.
#[derive(Debug, Clone)]
pub struct RandomForestModel {
    trees: Vec<DecisionTreeModel>,
}

impl RandomForestModel {
    /// Rebuilds a forest from decoded member trees (snapshot loading).
    pub(crate) fn from_trees(trees: Vec<DecisionTreeModel>) -> RandomForestModel {
        RandomForestModel { trees }
    }

    /// The member trees (snapshot encoding).
    pub(crate) fn trees(&self) -> &[DecisionTreeModel] {
        &self.trees
    }

    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Mean Gini feature importance over the member trees, normalized to
    /// sum to 1 (zeros if no tree split at all).
    pub fn feature_importance(&self, n_features: usize) -> Vec<f64> {
        let mut acc = vec![0.0; n_features];
        for t in &self.trees {
            for (slot, v) in acc.iter_mut().zip(t.feature_importance(n_features)) {
                *slot += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for v in &mut acc {
                *v /= total;
            }
        }
        acc
    }
}

impl Model for RandomForestModel {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.trees.iter().map(|t| t.predict_proba(row)).sum();
        sum / self.trees.len() as f64
    }
}

/// A forest flattened into [`FlatTree`]s for cache-friendly block scoring:
/// trees on the outer loop, a contiguous row block on the inner loop, so
/// each tree's node arrays stay hot while it sweeps the block.
///
/// Bit-identity with [`RandomForestModel::predict_proba`]: per row the
/// accumulator starts at `0.0` and absorbs tree probabilities in tree
/// order — the same left fold as `iter().sum::<f64>()` — then divides by
/// the tree count once. An empty forest scores `0.0`, matching the
/// explicit empty branch above.
#[derive(Debug, Clone)]
pub struct FlatForest {
    trees: Vec<FlatTree>,
}

impl FlatForest {
    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Scores every row of a row-major `block` (row `r` is
    /// `block[r * stride..][..stride]`) into `out`. `out.len()` must equal
    /// the row count; `stride` must divide `block.len()`.
    pub fn score_block(&self, block: &[f64], stride: usize, out: &mut [f64]) {
        debug_assert!(stride > 0 && block.len() == out.len() * stride);
        out.fill(0.0);
        if self.trees.is_empty() {
            return;
        }
        for tree in &self.trees {
            for (slot, row) in out.iter_mut().zip(block.chunks_exact(stride)) {
                *slot += tree.score(row);
            }
        }
        let n = self.trees.len() as f64;
        for slot in out.iter_mut() {
            *slot /= n;
        }
    }

    /// Scores one row; bit-identical to the boxed forest's `predict_proba`.
    pub fn score_row(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for tree in &self.trees {
            sum += tree.score(row);
        }
        sum / self.trees.len() as f64
    }
}

impl RandomForestModel {
    /// Flattens every member tree for [`FlatForest::score_block`].
    pub fn flatten(&self) -> FlatForest {
        FlatForest { trees: self.trees.iter().map(DecisionTreeModel::flatten).collect() }
    }
}

impl RandomForestLearner {
    /// Like [`Learner::fit`] but returns the concrete model, for callers
    /// that need [`RandomForestModel::feature_importance`].
    pub fn fit_forest(&self, data: &Dataset) -> Result<RandomForestModel, MlError> {
        validate_training(data)?;
        if self.n_trees == 0 {
            return Err(MlError::BadParameter("n_trees must be >= 1".to_string()));
        }
        let d = data.n_features();
        let mtry = self
            .mtry
            .unwrap_or_else(|| (d as f64).sqrt().ceil() as usize)
            .clamp(1, d.max(1));
        let n = data.len();
        // Each tree draws its bootstrap and splits from its own derived RNG
        // stream — a pure function of (forest seed, tree index) — so the
        // fan-out is bit-identical to a sequential fit at any thread count.
        // A tree costs O(n) per work item, so the spawn floor is expressed
        // in trees-per-training-set-size: spawn only when the forest scans
        // at least SPAWN_CELLS training rows in total.
        const SPAWN_CELLS: usize = 10_000;
        let min_trees = SPAWN_CELLS.div_ceil(n.max(1));
        let trees =
            Executor::current().with_min_items(min_trees).map_indexed(self.n_trees, 1, |t| {
                let mut rng = seeded_rng(tree_seed(self.seed, t));
                // Bootstrap sample: n draws with replacement.
                let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                self.tree.fit_on_indices(&data.x, &data.y, &idx, mtry, &mut rng)
            });
        Ok(RandomForestModel { trees })
    }
}

impl Learner for RandomForestLearner {
    fn name(&self) -> String {
        "Random Forest".to_string()
    }

    fn fit_model(&self, data: &Dataset) -> Result<crate::fitted::FittedModel, MlError> {
        Ok(crate::fitted::FittedModel::Forest(self.fit_forest(data)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn noisy_threshold_data(n: usize, seed: u64) -> Dataset {
        // y = (f0 + small noise) > 0.5, plus an irrelevant feature
        let mut rng = seeded_rng(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let v: f64 = rng.gen();
            let noise: f64 = rng.gen_range(-0.05..0.05);
            let junk: f64 = rng.gen();
            x.push(vec![v, junk]);
            y.push(v + noise > 0.5);
        }
        Dataset::new(vec!["signal".into(), "junk".into()], x, y).unwrap()
    }

    #[test]
    fn forest_learns_noisy_threshold() {
        let d = noisy_threshold_data(300, 1);
        let m = RandomForestLearner::default().fit(&d).unwrap();
        assert!(m.predict(&[0.95, 0.5]));
        assert!(!m.predict(&[0.05, 0.5]));
    }

    #[test]
    fn forest_probability_is_mean_of_trees() {
        let d = noisy_threshold_data(100, 2);
        let m = RandomForestLearner { n_trees: 5, ..Default::default() }.fit(&d).unwrap();
        let p = m.predict_proba(&[0.9, 0.0]);
        assert!((0.0..=1.0).contains(&p));
        assert!(p > 0.5);
    }

    #[test]
    fn deterministic_in_seed() {
        let d = noisy_threshold_data(120, 3);
        let l = RandomForestLearner { seed: 42, ..Default::default() };
        let m1 = l.fit(&d).unwrap();
        let m2 = l.fit(&d).unwrap();
        for v in [0.1, 0.4, 0.6, 0.9] {
            assert_eq!(m1.predict_proba(&[v, 0.3]), m2.predict_proba(&[v, 0.3]));
        }
    }

    #[test]
    fn forest_is_thread_count_invariant() {
        let d = noisy_threshold_data(120, 5);
        let l = RandomForestLearner { seed: 11, ..Default::default() };
        em_parallel::set_threads(1);
        let m1 = l.fit(&d).unwrap();
        em_parallel::set_threads(4);
        let m4 = l.fit(&d).unwrap();
        em_parallel::set_threads(0);
        for i in 0..=20 {
            let v = i as f64 / 20.0;
            assert_eq!(
                m1.predict_proba(&[v, 0.3]).to_bits(),
                m4.predict_proba(&[v, 0.3]).to_bits(),
                "v={v}"
            );
        }
    }

    #[test]
    fn flat_forest_matches_boxed_forest_bitwise() {
        let d = noisy_threshold_data(200, 7);
        let m = RandomForestLearner { n_trees: 7, ..Default::default() }.fit_forest(&d).unwrap();
        let flat = m.flatten();
        // Random rows, plus NaN, short, long, and empty rows: every input
        // predict_proba accepts must score bit-identically.
        let mut rng = seeded_rng(99);
        let mut rows: Vec<Vec<f64>> = (0..64)
            .map(|_| vec![rng.gen_range(-1.0..2.0), rng.gen_range(-1.0..2.0)])
            .collect();
        rows.push(vec![f64::NAN, 0.3]);
        rows.push(vec![0.5, f64::NAN]);
        rows.push(vec![0.5]);
        rows.push(vec![0.5, 0.5, 9.0]);
        rows.push(vec![]);
        for row in &rows {
            assert_eq!(m.predict_proba(row).to_bits(), flat.score_row(row).to_bits());
        }
        // Block scoring over a uniform-stride slab agrees too.
        let stride = 2;
        let block: Vec<f64> = rows
            .iter()
            .filter(|r| r.len() == stride)
            .flat_map(|r| r.iter().copied())
            .collect();
        let n = block.len() / stride;
        let mut out = vec![0.0; n];
        flat.score_block(&block, stride, &mut out);
        for (r, got) in block.chunks_exact(stride).zip(&out) {
            assert_eq!(m.predict_proba(r).to_bits(), got.to_bits());
        }
        // Empty forest convention: score 0.0, matching predict_proba.
        let empty = RandomForestModel::from_trees(Vec::new());
        assert_eq!(empty.predict_proba(&[0.5]).to_bits(), empty.flatten().score_row(&[0.5]).to_bits());
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let d = noisy_threshold_data(120, 3);
        let m1 = RandomForestLearner { seed: 1, ..Default::default() }.fit(&d).unwrap();
        let m2 = RandomForestLearner { seed: 2, ..Default::default() }.fit(&d).unwrap();
        let differs = (0..100).any(|i| {
            let v = i as f64 / 100.0;
            (m1.predict_proba(&[v, 0.5]) - m2.predict_proba(&[v, 0.5])).abs() > 1e-12
        });
        assert!(differs);
    }

    #[test]
    fn forest_importance_finds_signal() {
        let d = noisy_threshold_data(200, 9);
        let learner = RandomForestLearner::default();
        let forest = learner.fit_forest(&d).unwrap();
        let imp = forest.feature_importance(2);
        assert!(imp[0] > 0.8, "signal feature under-credited: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_trees_is_an_error() {
        let d = noisy_threshold_data(10, 4);
        let l = RandomForestLearner { n_trees: 0, ..Default::default() };
        assert!(l.fit(&d).is_err());
    }

    #[test]
    fn single_class_training_predicts_that_class() {
        let d = Dataset::new(
            vec!["f".into()],
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![true, true, true],
        )
        .unwrap();
        let m = RandomForestLearner::default().fit(&d).unwrap();
        assert!(m.predict(&[7.0]));
    }
}
