//! CART decision trees with Gini impurity — the matcher that ultimately won
//! the case study's bake-off (Section 9: "Now the decision tree performed
//! the best with 97% precision, 95% recall").
//!
//! The builder also supports per-split random feature subsetting so
//! [`crate::forest`] can reuse it for random forests.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::model::{validate_training, Learner, Model};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters for a CART decision tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionTreeLearner {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain.
    pub min_samples_leaf: usize,
}

impl Default for DecisionTreeLearner {
    fn default() -> Self {
        DecisionTreeLearner { max_depth: 12, min_samples_split: 2, min_samples_leaf: 1 }
    }
}

/// A fitted tree.
#[derive(Debug, Clone)]
pub struct DecisionTreeModel {
    root: Node,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        proba: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// `n_samples × Gini gain` of this split, for feature importance.
        weighted_gain: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Model for DecisionTreeModel {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { proba } => return *proba,
                Node::Split { feature, threshold, left, right, .. } => {
                    node = if row.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

/// A decision tree flattened into pre-order parallel arrays for
/// cache-friendly block scoring. Node `n` is a leaf when `feature[n] ==
/// LEAF`; then `value[n]` is the leaf probability. Otherwise `value[n]` is
/// the split threshold, the left child is `n + 1` (pre-order), and the
/// right child is `right[n]`.
///
/// [`FlatTree::score`] walks exactly the same comparisons as
/// [`DecisionTreeModel::predict_proba`] — `row.get(feature)` defaulting to
/// `0.0`, `<= threshold` goes left — so scores are bit-identical,
/// `NaN`/short rows included (a `NaN` comparison is false, taking the
/// right branch in both).
#[derive(Debug, Clone, Default)]
pub struct FlatTree {
    feature: Vec<u32>,
    value: Vec<f64>,
    right: Vec<u32>,
}

/// Sentinel in `FlatTree::feature` marking a leaf node.
const LEAF: u32 = u32::MAX;

impl FlatTree {
    /// Scores one row; bit-identical to the boxed tree's `predict_proba`.
    #[inline]
    pub fn score(&self, row: &[f64]) -> f64 {
        let mut n = 0usize;
        loop {
            let f = self.feature[n];
            if f == LEAF {
                return self.value[n];
            }
            n = if row.get(f as usize).copied().unwrap_or(0.0) <= self.value[n] {
                n + 1
            } else {
                self.right[n] as usize
            };
        }
    }

    /// Number of nodes (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    fn push(&mut self, node: &Node) {
        match node {
            Node::Leaf { proba } => {
                self.feature.push(LEAF);
                self.value.push(*proba);
                self.right.push(0);
            }
            Node::Split { feature, threshold, left, right, .. } => {
                debug_assert!(*feature < LEAF as usize, "feature index collides with sentinel");
                let slot = self.feature.len();
                self.feature.push(*feature as u32);
                self.value.push(*threshold);
                self.right.push(0);
                self.push(left);
                self.right[slot] = self.feature.len() as u32;
                self.push(right);
            }
        }
    }
}

impl DecisionTreeModel {
    /// Flattens the boxed node tree into a [`FlatTree`] for block scoring.
    pub fn flatten(&self) -> FlatTree {
        let mut flat = FlatTree::default();
        flat.push(&self.root);
        flat
    }
}

impl DecisionTreeModel {
    /// Number of decision (split) nodes — used by tests and the tree
    /// debugger to reason about model complexity.
    pub fn n_splits(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Adds the feature indices read by any split of this tree to `acc` —
    /// the exhaustive set of features `predict_proba` can ever inspect.
    pub fn collect_split_features(&self, acc: &mut std::collections::BTreeSet<usize>) {
        fn walk(n: &Node, acc: &mut std::collections::BTreeSet<usize>) {
            if let Node::Split { feature, left, right, .. } = n {
                acc.insert(*feature);
                walk(left, acc);
                walk(right, acc);
            }
        }
        walk(&self.root, acc);
    }

    /// Gini feature importances, normalized to sum to 1 (all zeros for a
    /// pure-leaf tree). Importance of a feature is the total
    /// `n_samples × impurity decrease` over the splits that use it — the
    /// view PyMatcher's matcher debugger offers to explain which features a
    /// selected matcher actually relies on.
    pub fn feature_importance(&self, n_features: usize) -> Vec<f64> {
        fn walk(n: &Node, acc: &mut [f64]) {
            if let Node::Split { feature, weighted_gain, left, right, .. } = n {
                if let Some(slot) = acc.get_mut(*feature) {
                    *slot += weighted_gain.max(0.0);
                }
                walk(left, acc);
                walk(right, acc);
            }
        }
        let mut acc = vec![0.0; n_features];
        walk(&self.root, &mut acc);
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for v in &mut acc {
                *v /= total;
            }
        }
        acc
    }

    /// Renders the tree as indented `if/else` pseudocode over the supplied
    /// feature names (the PyMatcher decision-tree debugger shows the same
    /// view).
    pub fn describe(&self, feature_names: &[String]) -> String {
        fn go(n: &Node, names: &[String], depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match n {
                Node::Leaf { proba } => {
                    out.push_str(&format!("{pad}predict match_proba={proba:.3}\n"));
                }
                Node::Split { feature, threshold, left, right, .. } => {
                    let name = names
                        .get(*feature)
                        .map(String::as_str)
                        .unwrap_or("?");
                    out.push_str(&format!("{pad}if {name} <= {threshold:.4}:\n"));
                    go(left, names, depth + 1, out);
                    out.push_str(&format!("{pad}else:\n"));
                    go(right, names, depth + 1, out);
                }
            }
        }
        let mut s = String::new();
        go(&self.root, feature_names, 0, &mut s);
        s
    }
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

/// Finds the Gini-gain-maximizing threshold split over `features`,
/// considering only rows in `idx`. Ties break toward the lower feature
/// index, then lower threshold, for determinism.
fn best_split(
    x: &[Vec<f64>],
    y: &[bool],
    idx: &[usize],
    features: &[usize],
    min_leaf: usize,
) -> Option<BestSplit> {
    let total = idx.len();
    let total_pos = idx.iter().filter(|&&i| y[i]).count();
    let parent = gini(total_pos, total);
    let mut best: Option<BestSplit> = None;

    let mut pairs: Vec<(f64, bool)> = Vec::with_capacity(total);
    for &f in features {
        pairs.clear();
        pairs.extend(idx.iter().map(|&i| (x[i][f], y[i])));
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut left_n = 0usize;
        let mut left_pos = 0usize;
        for k in 0..total - 1 {
            left_n += 1;
            if pairs[k].1 {
                left_pos += 1;
            }
            if pairs[k].0 == pairs[k + 1].0 {
                continue; // can't split between equal values
            }
            let right_n = total - left_n;
            if left_n < min_leaf || right_n < min_leaf {
                continue;
            }
            let right_pos = total_pos - left_pos;
            let weighted = (left_n as f64 * gini(left_pos, left_n)
                + right_n as f64 * gini(right_pos, right_n))
                / total as f64;
            let gain = parent - weighted;
            let threshold = (pairs[k].0 + pairs[k + 1].0) / 2.0;
            // Zero-gain splits are admissible on impure nodes (XOR-style
            // interactions only pay off one level deeper); recursion still
            // terminates because children are strictly smaller.
            let better = match &best {
                None => gain >= -1e-12,
                Some(b) => gain > b.gain + 1e-12,
            };
            if better {
                best = Some(BestSplit { feature: f, threshold, gain });
            }
        }
    }
    best
}

/// Recursive CART builder. `mtry` with an RNG enables random-forest-style
/// feature subsetting at every split.
fn build_tree(
    x: &[Vec<f64>],
    y: &[bool],
    idx: &[usize],
    depth: usize,
    params: &DecisionTreeLearner,
    mtry: Option<usize>,
    rng: &mut Option<&mut StdRng>,
) -> Node {
    let n_features = x.first().map_or(0, Vec::len);
    let pos = idx.iter().filter(|&&i| y[i]).count();
    let proba = if idx.is_empty() { 0.0 } else { pos as f64 / idx.len() as f64 };

    let pure = pos == 0 || pos == idx.len();
    if pure || depth >= params.max_depth || idx.len() < params.min_samples_split {
        return Node::Leaf { proba };
    }

    let mut all_features: Vec<usize> = (0..n_features).collect();
    let features: Vec<usize> = match (mtry, rng.as_deref_mut()) {
        (Some(m), Some(r)) if m < n_features => {
            all_features.shuffle(r);
            let mut chosen = all_features[..m].to_vec();
            chosen.sort_unstable(); // determinism of tie-breaking
            chosen
        }
        _ => all_features,
    };

    let Some(split) = best_split(x, y, idx, &features, params.min_samples_leaf) else {
        return Node::Leaf { proba };
    };

    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        idx.iter().partition(|&&i| x[i][split.feature] <= split.threshold);
    let left = build_tree(x, y, &left_idx, depth + 1, params, mtry, rng);
    let right = build_tree(x, y, &right_idx, depth + 1, params, mtry, rng);
    Node::Split {
        feature: split.feature,
        threshold: split.threshold,
        weighted_gain: idx.len() as f64 * split.gain,
        left: Box::new(left),
        right: Box::new(right),
    }
}

impl Learner for DecisionTreeLearner {
    fn name(&self) -> String {
        "Decision Tree".to_string()
    }

    fn fit_model(&self, data: &Dataset) -> Result<crate::fitted::FittedModel, MlError> {
        Ok(crate::fitted::FittedModel::Tree(self.fit_tree(data)?))
    }
}

impl DecisionTreeLearner {
    /// Like [`Learner::fit`] but returns the concrete model, for callers
    /// that need [`DecisionTreeModel::describe`] / [`DecisionTreeModel::n_splits`].
    pub fn fit_tree(&self, data: &Dataset) -> Result<DecisionTreeModel, MlError> {
        validate_training(data)?;
        let idx: Vec<usize> = (0..data.len()).collect();
        let root = build_tree(&data.x, &data.y, &idx, 0, self, None, &mut None);
        Ok(DecisionTreeModel { root })
    }

    /// Forest hook: fit on a bootstrap index set with feature subsetting.
    pub(crate) fn fit_on_indices(
        &self,
        x: &[Vec<f64>],
        y: &[bool],
        idx: &[usize],
        mtry: usize,
        rng: &mut StdRng,
    ) -> DecisionTreeModel {
        let root = build_tree(x, y, idx, 0, self, Some(mtry), &mut Some(rng));
        DecisionTreeModel { root }
    }
}

/// Convenience for forest code: a seeded RNG (kept here so seeding policy
/// lives in one place).
pub(crate) fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// ---- Serialization (pre-order node lines) -------------------------------
//
// The node format lives here because `Node` is private to this module.
// Pre-order with fixed arity is self-delimiting, so a forest can decode N
// trees from one shared line iterator. Floats use `{:?}`, which round-trips
// every f64 bit pattern through `parse::<f64>()`.

impl DecisionTreeModel {
    /// Appends the tree's pre-order node lines to `out` (one node per
    /// line: `L <proba>` / `S <feature> <threshold> <weighted_gain>`).
    pub(crate) fn encode_lines(&self, out: &mut String) {
        fn go(n: &Node, out: &mut String) {
            match n {
                Node::Leaf { proba } => {
                    out.push_str(&format!("L {proba:?}\n"));
                }
                Node::Split { feature, threshold, weighted_gain, left, right } => {
                    out.push_str(&format!("S {feature} {threshold:?} {weighted_gain:?}\n"));
                    go(left, out);
                    go(right, out);
                }
            }
        }
        go(&self.root, out);
    }

    /// Decodes one pre-order tree from `lines`, consuming exactly the lines
    /// of this tree (so callers can decode several trees from one iterator).
    pub(crate) fn decode_from<'a>(
        lines: &mut impl Iterator<Item = &'a str>,
    ) -> Result<DecisionTreeModel, MlError> {
        fn bad(detail: &str) -> MlError {
            MlError::BadParameter(format!("corrupt tree encoding: {detail}"))
        }
        fn num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, MlError> {
            tok.ok_or_else(|| bad(&format!("missing {what}")))?
                .parse::<T>()
                .map_err(|_| bad(&format!("unparsable {what}")))
        }
        fn node<'a>(lines: &mut impl Iterator<Item = &'a str>) -> Result<Node, MlError> {
            let line = lines.next().ok_or_else(|| bad("unexpected end of node lines"))?;
            let mut toks = line.split_whitespace();
            match toks.next() {
                Some("L") => Ok(Node::Leaf { proba: num(toks.next(), "leaf proba")? }),
                Some("S") => {
                    let feature = num(toks.next(), "split feature")?;
                    let threshold = num(toks.next(), "split threshold")?;
                    let weighted_gain = num(toks.next(), "split gain")?;
                    let left = Box::new(node(lines)?);
                    let right = Box::new(node(lines)?);
                    Ok(Node::Split { feature, threshold, weighted_gain, left, right })
                }
                other => Err(bad(&format!("unknown node tag {other:?}"))),
            }
        }
        Ok(DecisionTreeModel { root: node(lines)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(xy: &[(&[f64], bool)]) -> Dataset {
        let n = xy[0].0.len();
        Dataset::new(
            (0..n).map(|i| format!("f{i}")).collect(),
            xy.iter().map(|(r, _)| r.to_vec()).collect(),
            xy.iter().map(|(_, l)| *l).collect(),
        )
        .unwrap()
    }

    #[test]
    fn learns_a_threshold() {
        let d = data(&[
            (&[0.1], false),
            (&[0.2], false),
            (&[0.3], false),
            (&[0.8], true),
            (&[0.9], true),
        ]);
        let m = DecisionTreeLearner::default().fit(&d).unwrap();
        assert!(!m.predict(&[0.0]));
        assert!(m.predict(&[1.0]));
        assert!(!m.predict(&[0.25]));
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let d = data(&[
            (&[0.0, 0.0], false),
            (&[0.0, 1.0], true),
            (&[1.0, 0.0], true),
            (&[1.0, 1.0], false),
        ]);
        let m = DecisionTreeLearner::default().fit_tree(&d).unwrap();
        assert!(m.predict(&[0.0, 1.0]));
        assert!(m.predict(&[1.0, 0.0]));
        assert!(!m.predict(&[0.0, 0.0]));
        assert!(!m.predict(&[1.0, 1.0]));
        assert!(m.n_splits() >= 2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let d = data(&[(&[1.0], true), (&[2.0], true)]);
        let m = DecisionTreeLearner::default().fit_tree(&d).unwrap();
        assert_eq!(m.n_splits(), 0);
        assert_eq!(m.predict_proba(&[0.0]), 1.0);
    }

    #[test]
    fn max_depth_zero_is_a_stump_prior() {
        let d = data(&[(&[0.0], false), (&[1.0], true), (&[2.0], true)]);
        let learner = DecisionTreeLearner { max_depth: 0, ..Default::default() };
        let m = learner.fit_tree(&d).unwrap();
        assert_eq!(m.n_splits(), 0);
        assert!((m.predict_proba(&[5.0]) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_respected() {
        // With min_leaf = 3 the only admissible splits of 4 points fail,
        // so we must get a leaf.
        let d = data(&[(&[0.0], false), (&[1.0], false), (&[2.0], true), (&[3.0], true)]);
        let learner = DecisionTreeLearner { min_samples_leaf: 3, ..Default::default() };
        let m = learner.fit_tree(&d).unwrap();
        assert_eq!(m.n_splits(), 0);
    }

    #[test]
    fn constant_feature_yields_leaf() {
        let d = data(&[(&[5.0], false), (&[5.0], true), (&[5.0], true)]);
        let m = DecisionTreeLearner::default().fit_tree(&d).unwrap();
        assert_eq!(m.n_splits(), 0);
    }

    #[test]
    fn deterministic_across_fits() {
        let d = data(&[
            (&[0.1, 3.0], false),
            (&[0.4, 2.0], false),
            (&[0.6, 8.0], true),
            (&[0.9, 1.0], true),
            (&[0.5, 9.0], true),
        ]);
        let l = DecisionTreeLearner::default();
        let a = l.fit_tree(&d).unwrap().describe(&d.feature_names);
        let b = l.fit_tree(&d).unwrap().describe(&d.feature_names);
        assert_eq!(a, b);
    }

    #[test]
    fn importance_credits_the_informative_feature() {
        // f1 is pure signal, f0 is constant noise.
        let d = data(&[
            (&[5.0, 0.1], false),
            (&[5.0, 0.2], false),
            (&[5.0, 0.8], true),
            (&[5.0, 0.9], true),
        ]);
        let m = DecisionTreeLearner::default().fit_tree(&d).unwrap();
        let imp = m.feature_importance(2);
        assert!(imp[1] > 0.99, "{imp:?}");
        assert!(imp[0] < 0.01);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn importance_zero_for_pure_leaf_tree() {
        let d = data(&[(&[1.0], true), (&[2.0], true)]);
        let m = DecisionTreeLearner::default().fit_tree(&d).unwrap();
        assert_eq!(m.feature_importance(1), vec![0.0]);
    }

    #[test]
    fn describe_names_features() {
        let d = data(&[(&[0.0], false), (&[1.0], true)]);
        let m = DecisionTreeLearner::default().fit_tree(&d).unwrap();
        let s = m.describe(&d.feature_names);
        assert!(s.contains("if f0 <= 0.5"), "{s}");
    }

    #[test]
    fn rejects_nan() {
        let d = Dataset::new(vec!["f".into()], vec![vec![f64::NAN]], vec![true]).unwrap();
        assert!(DecisionTreeLearner::default().fit(&d).is_err());
    }
}
