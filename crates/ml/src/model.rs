//! The learner/model abstraction shared by all matchers.
//!
//! PyMatcher wraps six scikit-learn classifiers behind one interface; this
//! module is the Rust equivalent. A [`Learner`] is a (hyper-)parameterized
//! algorithm; [`Learner::fit`] produces an immutable [`Model`] that scores
//! feature rows. Keeping learners stateless makes cross-validation trivial:
//! the same learner is fitted independently per fold.

use crate::dataset::Dataset;
use crate::error::MlError;

/// A trained binary classifier.
pub trait Model: Send + Sync {
    /// Probability (or score calibrated into `[0, 1]`) that `row` is a
    /// match. Rows must be finite (impute first).
    fn predict_proba(&self, row: &[f64]) -> f64;

    /// Hard decision at the 0.5 threshold.
    fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }
}

/// A fittable learning algorithm.
pub trait Learner: Send + Sync {
    /// Short display name ("Decision Tree", "RF", …).
    fn name(&self) -> String;

    /// Fits a model on the dataset, returning the concrete fitted form —
    /// the serializable [`FittedModel`](crate::fitted::FittedModel) enum —
    /// so callers that need to persist the artifact (workflow snapshots)
    /// get it without downcasting. Implementations must not mutate `data`;
    /// they may assume `check_finite` would pass (and should fail with
    /// [`MlError::NonFiniteFeature`] otherwise).
    fn fit_model(&self, data: &Dataset) -> Result<crate::fitted::FittedModel, MlError>;

    /// Fits and type-erases — the ergonomic entry point for callers that
    /// only score rows.
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Model>, MlError> {
        Ok(Box::new(self.fit_model(data)?))
    }
}

/// Applies a trained model to many rows.
pub fn predict_all(model: &dyn Model, x: &[Vec<f64>]) -> Vec<bool> {
    x.iter().map(|r| model.predict(r)).collect()
}

/// A constant-probability model; useful as a baseline and for degenerate
/// single-class training sets.
#[derive(Debug, Clone, Copy)]
pub struct ConstantModel {
    /// The probability returned for every row.
    pub proba: f64,
}

impl Model for ConstantModel {
    fn predict_proba(&self, _row: &[f64]) -> f64 {
        self.proba
    }
}

/// Shared guard used by learners: non-empty, finite, returns the positive
/// rate (learners that need both classes can then handle 0.0/1.0 by
/// returning a [`ConstantModel`]).
pub(crate) fn validate_training(data: &Dataset) -> Result<f64, MlError> {
    if data.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    data.check_finite()?;
    Ok(data.n_positive() as f64 / data.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_predicts() {
        let m = ConstantModel { proba: 0.7 };
        assert!(m.predict(&[1.0, 2.0]));
        assert_eq!(m.predict_proba(&[]), 0.7);
        assert!(!ConstantModel { proba: 0.3 }.predict(&[]));
    }

    #[test]
    fn predict_all_maps_rows() {
        let m = ConstantModel { proba: 1.0 };
        assert_eq!(predict_all(&m, &[vec![0.0], vec![1.0]]), vec![true, true]);
    }

    #[test]
    fn validate_rejects_empty_and_nan() {
        let d = Dataset::new(vec!["f".into()], vec![], vec![]).unwrap();
        assert_eq!(validate_training(&d), Err(MlError::EmptyTrainingSet));
        let d = Dataset::new(vec!["f".into()], vec![vec![f64::NAN]], vec![true]).unwrap();
        assert!(matches!(validate_training(&d), Err(MlError::NonFiniteFeature { .. })));
    }

    #[test]
    fn validate_returns_positive_rate() {
        let d = Dataset::new(
            vec!["f".into()],
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![true, false, false, false],
        )
        .unwrap();
        assert_eq!(validate_training(&d), Ok(0.25));
    }
}
