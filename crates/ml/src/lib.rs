//! # em-ml — learning-based matchers, cross-validation, and debugging
//!
//! Hand-rolled equivalents of the scikit-learn classifiers PyMatcher wraps,
//! behind a single [`Learner`]/[`Model`] interface:
//!
//! | Paper matcher | Here |
//! |---|---|
//! | decision tree | [`tree::DecisionTreeLearner`] (CART, Gini) |
//! | random forest | [`forest::RandomForestLearner`] (bagging + √d features) |
//! | logistic regression | [`linear::LogisticRegressionLearner`] |
//! | linear regression | [`linear::LinearRegressionLearner`] |
//! | SVM | [`linear::LinearSvmLearner`] (Pegasos) |
//! | naive Bayes | [`bayes::NaiveBayesLearner`] (Gaussian) |
//!
//! Plus the surrounding machinery the case study leans on: mean imputation
//! ([`dataset::Imputer`]), five-fold matcher selection
//! ([`cv::select_matcher`]), leave-one-out label debugging
//! ([`cv::leave_one_out_predictions`]), and split-half mismatch mining
//! ([`debug::mine_mismatches`]).
//!
//! ```
//! use em_ml::dataset::Dataset;
//! use em_ml::model::Learner;
//! use em_ml::tree::DecisionTreeLearner;
//!
//! let data = Dataset::new(
//!     vec!["title_jaccard".into()],
//!     vec![vec![0.9], vec![0.1], vec![0.8], vec![0.2]],
//!     vec![true, false, true, false],
//! ).unwrap();
//! let model = DecisionTreeLearner::default().fit(&data).unwrap();
//! assert!(model.predict(&[0.95]));
//! ```

#![warn(missing_docs)]

pub mod bayes;
pub mod committee;
pub mod cv;
pub mod dataset;
pub mod debug;
pub mod error;
pub mod fitted;
pub mod forest;
pub mod linear;
pub mod metrics;
pub mod model;
pub mod tree;

pub use committee::{CommitteeLearner, CommitteeModel, CommitteeScore};
pub use dataset::{dataset_from_probabilistic, impute_mean, Dataset, Imputer};
pub use error::MlError;
pub use fitted::{BlockScorer, FittedModel};
pub use forest::FlatForest;
pub use tree::FlatTree;
pub use metrics::Confusion;
pub use model::{Learner, Model};

/// The six matchers of the Section 9 bake-off, with default
/// hyper-parameters, in the order the paper lists them.
pub fn standard_learners(seed: u64) -> Vec<Box<dyn Learner>> {
    vec![
        Box::new(tree::DecisionTreeLearner::default()),
        Box::new(linear::LinearSvmLearner { seed, ..Default::default() }),
        Box::new(forest::RandomForestLearner { seed, ..Default::default() }),
        Box::new(linear::LogisticRegressionLearner::default()),
        Box::new(bayes::NaiveBayesLearner::default()),
        Box::new(linear::LinearRegressionLearner::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_learners_has_all_six() {
        let ls = standard_learners(1);
        let names: Vec<String> = ls.iter().map(|l| l.name()).collect();
        assert_eq!(
            names,
            vec![
                "Decision Tree",
                "SVM",
                "Random Forest",
                "Logistic Regression",
                "Naive Bayes",
                "Linear Regression"
            ]
        );
    }

    #[test]
    fn all_six_fit_and_predict() {
        let data = Dataset::new(
            vec!["a".into(), "b".into()],
            (0..40)
                .map(|i| vec![(i % 10) as f64 / 10.0, ((i * 3) % 7) as f64])
                .collect(),
            (0..40).map(|i| (i % 10) as f64 / 10.0 > 0.5).collect(),
        )
        .unwrap();
        for l in standard_learners(3) {
            let m = l.fit(&data).unwrap();
            assert!(m.predict(&[0.9, 1.0]), "{} failed high", l.name());
            assert!(!m.predict(&[0.0, 1.0]), "{} failed low", l.name());
        }
    }
}
