//! Error type for ML operations.

use std::fmt;

/// Errors raised while building datasets or fitting/evaluating models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Training data was empty.
    EmptyTrainingSet,
    /// Rows disagree on feature count, or labels/rows differ in length.
    ShapeMismatch(String),
    /// A feature value was NaN/infinite where a finite value is required
    /// (impute before fitting).
    NonFiniteFeature {
        /// Row index of the offending value.
        row: usize,
        /// Column index of the offending value.
        col: usize,
    },
    /// Training data contained a single class where two are required.
    SingleClass,
    /// A parameter was out of range (e.g. `k < 2` folds).
    BadParameter(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyTrainingSet => write!(f, "empty training set"),
            MlError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            MlError::NonFiniteFeature { row, col } => {
                write!(f, "non-finite feature at row {row}, column {col} (impute first)")
            }
            MlError::SingleClass => write!(f, "training set has a single class"),
            MlError::BadParameter(m) => write!(f, "bad parameter: {m}"),
        }
    }
}

impl std::error::Error for MlError {}
