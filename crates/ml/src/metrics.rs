//! Evaluation metrics: confusion matrix, precision, recall, F1.

/// Counts of prediction outcomes against reference labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// Predicted match, labeled match.
    pub tp: usize,
    /// Predicted match, labeled non-match.
    pub fp: usize,
    /// Predicted non-match, labeled non-match.
    pub tn: usize,
    /// Predicted non-match, labeled match.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies predictions against labels. Panics in debug builds if the
    /// slices disagree in length (programming error, not data error).
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Confusion {
        debug_assert_eq!(predicted.len(), actual.len());
        let mut c = Confusion::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Merges two confusion matrices (summing counts).
    pub fn merge(&self, other: &Confusion) -> Confusion {
        Confusion {
            tp: self.tp + other.tp,
            fp: self.fp + other.fp,
            tn: self.tn + other.tn,
            fn_: self.fn_ + other.fn_,
        }
    }

    /// Total examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision `tp / (tp + fp)`; `1.0` when nothing was predicted
    /// positive (the vacuous-precision convention the paper's 100%-precision
    /// IRIS baseline relies on).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`; `1.0` when there are no actual positives.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1: harmonic mean of precision and recall (`0.0` when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy `(tp + tn) / total`; `1.0` on empty input.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / t as f64
        }
    }
}

/// Area under the ROC curve from scores and labels, by the rank statistic
/// (probability a random positive outscores a random negative; ties count
/// half). Returns `None` when either class is absent — AUC is undefined.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> Option<f64> {
    debug_assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return None;
    }
    // Rank-sum (Mann-Whitney U): sort by score, assign average ranks.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&i, &j| {
        scores[i].partial_cmp(&scores[j]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        // Tie group [i, j): average rank over the group.
        let mut j = i + 1;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = ((i + 1 + j) as f64) / 2.0; // 1-based ranks i+1 ..= j
        for &k in &order[i..j] {
            if labels[k] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    Some(u / (n_pos * n_neg) as f64)
}

impl std::fmt::Display for Confusion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={} | P={:.1}% R={:.1}% F1={:.1}%",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            100.0 * self.precision(),
            100.0 * self.recall(),
            100.0 * self.f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_outcomes() {
        let c = Confusion::from_predictions(
            &[true, true, false, false, true],
            &[true, false, false, true, true],
        );
        assert_eq!(c, Confusion { tp: 2, fp: 1, tn: 1, fn_: 1 });
    }

    #[test]
    fn perfect_prediction() {
        let c = Confusion::from_predictions(&[true, false], &[true, false]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn known_fractions() {
        let c = Confusion { tp: 3, fp: 1, tn: 5, fn_: 1 };
        assert!((c.precision() - 0.75).abs() < 1e-12);
        assert!((c.recall() - 0.75).abs() < 1e-12);
        assert!((c.f1() - 0.75).abs() < 1e-12);
        assert!((c.accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_conventions() {
        let none_predicted = Confusion { tp: 0, fp: 0, tn: 4, fn_: 2 };
        assert_eq!(none_predicted.precision(), 1.0);
        assert_eq!(none_predicted.recall(), 0.0);
        assert_eq!(none_predicted.f1(), 0.0);
        let no_positives = Confusion { tp: 0, fp: 0, tn: 4, fn_: 0 };
        assert_eq!(no_positives.recall(), 1.0);
        assert_eq!(Confusion::default().accuracy(), 1.0);
    }

    #[test]
    fn merge_sums() {
        let a = Confusion { tp: 1, fp: 2, tn: 3, fn_: 4 };
        let b = Confusion { tp: 10, fp: 20, tn: 30, fn_: 40 };
        assert_eq!(a.merge(&b), Confusion { tp: 11, fp: 22, tn: 33, fn_: 44 });
    }

    #[test]
    fn auc_known_values() {
        // Perfect separation.
        assert_eq!(
            roc_auc(&[0.1, 0.2, 0.8, 0.9], &[false, false, true, true]),
            Some(1.0)
        );
        // Perfectly wrong.
        assert_eq!(
            roc_auc(&[0.9, 0.8, 0.2, 0.1], &[false, false, true, true]),
            Some(0.0)
        );
        // All scores tied → 0.5.
        assert_eq!(roc_auc(&[0.5, 0.5, 0.5, 0.5], &[true, false, true, false]), Some(0.5));
        // Undefined with one class.
        assert_eq!(roc_auc(&[0.1, 0.9], &[true, true]), None);
    }

    #[test]
    fn auc_partial_overlap() {
        // positives {0.4, 0.8}, negatives {0.3, 0.6}:
        // pairs: (0.4>0.3)=1, (0.4<0.6)=0, (0.8>0.3)=1, (0.8>0.6)=1 → 3/4.
        let auc = roc_auc(&[0.4, 0.8, 0.3, 0.6], &[true, true, false, false]).unwrap();
        assert!((auc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_renders_percentages() {
        let c = Confusion { tp: 1, fp: 1, tn: 1, fn_: 1 };
        let s = c.to_string();
        assert!(s.contains("P=50.0%"));
    }
}
